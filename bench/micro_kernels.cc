/**
 * @file
 * google-benchmark microkernels for the performance-critical primitives:
 * ECC encode/decode, fault injection, ground-truth analysis, GF(2)
 * solving, SAT solving, and full profiling rounds per profiler. These
 * are throughput sanity checks for the Monte-Carlo engine, not paper
 * figures.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "core/beep_profiler.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "gf2/linear_solver.hh"
#include "sat/cnf_builder.hh"

namespace {

using namespace harp;

ecc::HammingCode
makeCode(std::size_t k)
{
    common::Xoshiro256 rng(12345);
    return ecc::HammingCode::randomSec(k, rng);
}

void
BM_EccEncode(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    const ecc::HammingCode code = makeCode(k);
    common::Xoshiro256 rng(1);
    const gf2::BitVector d = gf2::BitVector::random(k, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.encode(d));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EccEncode)->Arg(64)->Arg(128);

void
BM_EccDecodeClean(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    const ecc::HammingCode code = makeCode(k);
    common::Xoshiro256 rng(2);
    const gf2::BitVector c = code.encode(gf2::BitVector::random(k, rng));
    for (auto _ : state)
        benchmark::DoNotOptimize(code.decode(c));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EccDecodeClean)->Arg(64)->Arg(128);

void
BM_EccDecodeWithError(benchmark::State &state)
{
    const ecc::HammingCode code = makeCode(64);
    common::Xoshiro256 rng(3);
    gf2::BitVector c = code.encode(gf2::BitVector::random(64, rng));
    c.flip(17);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.decode(c));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EccDecodeWithError);

void
BM_FaultInjection(benchmark::State &state)
{
    const ecc::HammingCode code = makeCode(64);
    common::Xoshiro256 rng(4);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(
            code.n(), static_cast<std::size_t>(state.range(0)), 0.5, rng);
    const gf2::BitVector c = code.encode(gf2::BitVector::random(64, rng));
    for (auto _ : state)
        benchmark::DoNotOptimize(fm.injectErrors(c, rng));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultInjection)->Arg(2)->Arg(5)->Arg(8);

void
BM_AtRiskAnalyzerConstruction(benchmark::State &state)
{
    const ecc::HammingCode code = makeCode(64);
    common::Xoshiro256 rng(5);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(
            code.n(), static_cast<std::size_t>(state.range(0)), 0.5, rng);
    for (auto _ : state) {
        core::AtRiskAnalyzer analyzer(code, fm);
        benchmark::DoNotOptimize(analyzer.outcomes().size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AtRiskAnalyzerConstruction)->Arg(2)->Arg(5)->Arg(8);

void
BM_Gf2Solve(benchmark::State &state)
{
    common::Xoshiro256 rng(6);
    const gf2::BitMatrix a = gf2::BitMatrix::random(8, 64, rng);
    const gf2::BitVector b = gf2::BitVector::random(8, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(gf2::solve(a, b));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Gf2Solve);

void
BM_SatSolveRandom3Sat(benchmark::State &state)
{
    // Satisfiable-density random 3-SAT instances, rebuilt per iteration.
    const int num_vars = static_cast<int>(state.range(0));
    const int num_clauses = num_vars * 3;
    std::uint64_t seed = 7;
    for (auto _ : state) {
        common::Xoshiro256 rng(seed++);
        sat::Solver solver;
        for (int i = 0; i < num_vars; ++i)
            solver.newVar();
        for (int c = 0; c < num_clauses; ++c) {
            sat::Clause clause;
            for (int l = 0; l < 3; ++l)
                clause.push_back(sat::Lit::make(
                    static_cast<sat::Var>(rng.nextBelow(
                        static_cast<std::uint64_t>(num_vars))),
                    rng.nextBernoulli(0.5)));
            solver.addClause(clause);
        }
        benchmark::DoNotOptimize(solver.solve());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SatSolveRandom3Sat)->Arg(30)->Arg(60);

void
BM_ProfilingRound(benchmark::State &state)
{
    // One full profiling round for a given profiler (argument selects).
    const ecc::HammingCode code = makeCode(64);
    common::Xoshiro256 rng(8);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 4, 0.5,
                                                     rng);
    std::unique_ptr<core::Profiler> profiler;
    switch (state.range(0)) {
      case 0:
        profiler = std::make_unique<core::NaiveProfiler>(code.k());
        break;
      case 1:
        profiler = std::make_unique<core::BeepProfiler>(code);
        break;
      case 2:
        profiler = std::make_unique<core::HarpUProfiler>(code.k());
        break;
      default:
        profiler = std::make_unique<core::HarpAProfiler>(code);
        break;
    }
    core::RoundEngine engine(code, fm, core::PatternKind::Random, 99);
    std::vector<core::Profiler *> ps = {profiler.get()};
    for (auto _ : state)
        engine.runRound(ps);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel(profiler->name());
}
BENCHMARK(BM_ProfilingRound)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

} // namespace

BENCHMARK_MAIN();
