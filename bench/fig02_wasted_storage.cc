/**
 * @file
 * Reproduces HARP Fig. 2: expected wasted storage capacity vs. raw bit
 * error rate when repairing uniform-random single-bit errors at repair
 * granularities of 1, 32, 64, 512 and 1024 bits.
 *
 * Prints the closed-form series the figure plots, plus a Monte-Carlo
 * cross-check column at each point.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/rng.hh"
#include "core/waste_model.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    const std::size_t mc_blocks =
        static_cast<std::size_t>(cli.getInt("blocks", 4000));
    common::Xoshiro256 rng(
        static_cast<std::uint64_t>(cli.getInt("seed", 1)));

    std::cout << "=== HARP Fig. 2: expected wasted storage vs. RBER ===\n"
              << "E[waste] = (1 - (1-p)^g) - p; Monte-Carlo cross-check "
              << "over " << mc_blocks << " blocks per point\n\n";

    const std::vector<std::size_t> granularities = {1024, 512, 64, 32, 1};

    common::Table table({"rber", "granularity_bits", "expected_waste",
                         "monte_carlo", "abs_error"});
    // RBER sweep 1e-7 .. ~0.5 (log-spaced), matching the figure's x-axis.
    for (double rber = 1e-7; rber <= 0.5; rber *= std::sqrt(10.0)) {
        for (const std::size_t g : granularities) {
            const double expected =
                core::expectedWastedFraction(g, rber);
            const double simulated = core::simulateWastedFraction(
                g, rber, mc_blocks, rng);
            table.addRow({common::formatSci(rber, 2), std::to_string(g),
                          common::formatDouble(expected, 6),
                          common::formatDouble(simulated, 6),
                          common::formatSci(
                              std::abs(expected - simulated), 1)});
        }
    }
    bench::printTable(table, cli, std::cout);

    // The paper's headline observation for this figure.
    std::cout << "\nWorst case at 1024-bit granularity, RBER 6.8e-3: "
              << common::formatDouble(
                     core::expectedWastedFraction(1024, 6.8e-3) * 100.0,
                     2)
              << "% of capacity wasted (paper: >99%).\n"
              << "Bit-granularity repair (g=1) wastes 0% at every RBER.\n";
    return 0;
}
