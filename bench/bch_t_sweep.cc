/**
 * @file
 * Alias binary for `harp_run bch_t_sweep`: forwards into the unified
 * experiment-campaign runner with this experiment pre-selected. The
 * experiment itself is defined in src/runner/ (see `harp_run --list`).
 */

#include "runner/cli.hh"

int
main(int argc, char **argv)
{
    return harp::runner::runnerMain(argc, argv, "bch_t_sweep");
}
