/**
 * @file
 * Reproduces HARP Table 1: survey of prevalent memory repair mechanisms
 * by profiling granularity. The table itself is a literature survey
 * (static data); this binary reprints it and augments each granularity
 * class with the quantitative waste model of Fig. 2 at two sample RBERs,
 * tying the survey to the motivation experiment.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/waste_model.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);

    std::cout << "=== HARP Table 1: survey of memory repair mechanisms "
                 "===\n\n";

    struct Row
    {
        const char *granularity;
        const char *size_bits;
        std::size_t representative_bits;
        const char *examples;
    };
    const Row rows[] = {
        {"System page", "32K", 32768,
         "RAPID, RIO, page retirement"},
        {"DRAM external row", "2-64K", 16384,
         "PPR, Agnos, RAIDR, DIVA"},
        {"DRAM internal row/col", "512-1024", 1024,
         "row/col sparing, Solar"},
        {"Cache block", "256-512", 512, "FREE-p, CiDRA"},
        {"Processor word", "32-64", 64, "ArchShield"},
        {"Byte", "8", 8, "DRM"},
        {"Single bit", "1", 1,
         "ECP, SECRET, REMAP, SFaultMap, HOTH, FLOWER, SAFER, Bit-fix"},
    };

    common::Table table({"profiling_granularity", "size_bits", "examples",
                         "waste_at_rber_1e-4", "waste_at_rber_1e-2"});
    for (const Row &row : rows) {
        table.addRow(
            {row.granularity, row.size_bits, row.examples,
             common::formatDouble(core::expectedWastedFraction(
                                      row.representative_bits, 1e-4),
                                  6),
             common::formatDouble(core::expectedWastedFraction(
                                      row.representative_bits, 1e-2),
                                  6)});
    }
    bench::printTable(table, cli, std::cout);

    std::cout << "\nFiner repair granularity -> less internal "
                 "fragmentation at high error rates,\nwhich is why "
                 "bit-granularity repair (HARP's target use case) wins "
                 "for RBER > 1e-4.\n";
    return 0;
}
