/**
 * @file
 * Reproduces HARP Fig. 6: coverage of bits at risk of direct error
 * (y-axis) across profiling rounds (x-axis, log-spaced checkpoints), for
 * Naive, BEEP, HARP-U and HARP-A, swept over 2/3/4/5 pre-correction
 * errors per ECC word and per-bit probabilities 25/50/75/100%.
 *
 * Also prints the paper's headline metric: the round at which each
 * profiler reaches 99th-percentile(=full, here aggregate) coverage, and
 * HARP's speedup over the best baseline.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    core::CoverageConfig base = bench::coverageConfigFromCli(cli);

    std::cout << "=== HARP Fig. 6: direct-error coverage vs. profiling "
                 "rounds ===\n"
              << "codes=" << base.numCodes
              << " words/code=" << base.wordsPerCode
              << " rounds=" << base.rounds << " k=" << base.k << "\n\n";

    const auto checkpoints = bench::roundCheckpoints(base.rounds);

    std::vector<std::string> headers = {"per_bit_prob", "pre_errors",
                                        "profiler"};
    for (const std::size_t cp : checkpoints)
        headers.push_back("r" + std::to_string(cp));
    common::Table table(headers);

    // Rounds to full aggregate direct coverage, per (prob, n, profiler).
    common::Table speedups({"per_bit_prob", "pre_errors",
                            "harp_full_round", "naive_full_round",
                            "beep_full_round", "harp_vs_best_baseline"});

    for (const double prob : bench::paperProbabilities) {
        for (const std::size_t n : bench::paperErrorCounts) {
            core::CoverageConfig config = base;
            config.perBitProbability = prob;
            config.numPreCorrectionErrors = n;
            const core::CoverageResult result =
                core::runCoverageExperiment(config);

            std::vector<std::size_t> full_round(result.profilers.size(),
                                                config.rounds + 1);
            for (std::size_t p = 0; p < result.profilers.size(); ++p) {
                std::vector<std::string> row = {
                    common::formatDouble(prob, 2), std::to_string(n),
                    result.profilers[p].name};
                for (const std::size_t cp : checkpoints)
                    row.push_back(common::formatDouble(
                        result.directCoverage(p, cp - 1), 4));
                table.addRow(std::move(row));
                for (std::size_t r = 0; r < config.rounds; ++r) {
                    if (result.profilers[p].directIdentifiedSum[r] ==
                        result.totalDirectAtRisk) {
                        full_round[p] = r + 1;
                        break;
                    }
                }
            }
            const std::size_t harp = full_round[2];
            const std::size_t naive = full_round[0];
            const std::size_t beep = full_round[1];
            const std::size_t best_baseline = std::min(naive, beep);
            const std::string ratio =
                (harp <= config.rounds && best_baseline <= config.rounds)
                    ? common::formatDouble(
                          static_cast<double>(harp) /
                              static_cast<double>(best_baseline),
                          3)
                    : "n/a";
            auto show = [&](std::size_t r) {
                return r <= config.rounds ? std::to_string(r)
                                          : (">" +
                                             std::to_string(config.rounds));
            };
            speedups.addRow({common::formatDouble(prob, 2),
                             std::to_string(n), show(harp), show(naive),
                             show(beep), ratio});
        }
    }

    bench::printTable(table, cli, std::cout);
    std::cout << "\nRounds to FULL aggregate direct coverage (paper: "
                 "HARP reaches 99th-pct coverage in\n20.6/36.4/52.9/62.1% "
                 "of the best baseline's rounds at n=2/3/4/5, p=0.5):\n\n";
    bench::printTable(speedups, cli, std::cout);

    // Supplementary: identified bits outside the ground-truth at-risk
    // sets (wasted repair capacity). HARP's observations are sound by
    // construction; BEEP's inference may over-approximate.
    std::cout << "\nFalse positives after the full budget (mean per "
                 "word, p=0.5):\n\n";
    common::Table fp({"pre_errors", "Naive", "BEEP", "HARP-U",
                      "HARP-A"});
    for (const std::size_t n : bench::paperErrorCounts) {
        core::CoverageConfig config = base;
        config.perBitProbability = 0.5;
        config.numPreCorrectionErrors = n;
        const core::CoverageResult result =
            core::runCoverageExperiment(config);
        std::vector<std::string> row = {std::to_string(n)};
        for (std::size_t p = 0; p < 4; ++p) {
            const double mean =
                static_cast<double>(
                    result.profilers[p]
                        .falsePositiveSum[config.rounds - 1]) /
                static_cast<double>(result.numWords);
            row.push_back(common::formatDouble(mean, 3));
        }
        fp.addRow(std::move(row));
    }
    bench::printTable(fp, cli, std::cout);
    return 0;
}
