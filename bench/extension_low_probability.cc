/**
 * @file
 * Extension experiment: HARP's stated limitation under low-probability
 * errors (HARP sections 2.4 and 6.4).
 *
 * HARP's safety argument assumes the active phase achieves full coverage
 * of direct errors. Cells that fail with very low probability (e.g.
 * variable-retention-time-like behaviour) can evade a finite active
 * budget; any missed direct bit re-enables multi-bit patterns during
 * reactive profiling. This bench quantifies that risk: words carry a mix
 * of ordinary (p = 0.5) and low-probability at-risk cells, and we sweep
 * the low probability and the active-round budget, reporting
 *
 *   - direct-coverage shortfall after the active phase,
 *   - the fraction of words left unsafe for a SEC secondary ECC
 *     (max simultaneous unprofiled post-correction errors > 1),
 *
 * demonstrating both the limitation and its mitigation (longer active
 * profiling, the paper's suggested complementary techniques).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "core/harp_profiler.hh"
#include "core/round_engine.hh"
#include "ecc/hamming_code.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    const std::size_t words =
        static_cast<std::size_t>(cli.getInt("words", 150));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 1));
    const std::size_t n_normal =
        static_cast<std::size_t>(cli.getInt("normal-cells", 3));
    const std::size_t n_low =
        static_cast<std::size_t>(cli.getInt("low-cells", 2));

    std::cout << "=== Extension: low-probability errors vs. HARP's "
                 "active phase (sections 2.4/6.4) ===\n"
              << words << " words; " << n_normal
              << " cells at p=0.5 plus " << n_low
              << " low-probability cells per word\n\n";

    common::Table table({"p_low", "active_rounds",
                         "direct_coverage", "missed_direct_bits",
                         "words_unsafe_for_SEC_secondary"});

    for (const double p_low : {0.1, 0.02, 0.004}) {
        for (const std::size_t rounds :
             {std::size_t{128}, std::size_t{512}, std::size_t{2048}}) {
            std::size_t direct_total = 0, direct_found = 0;
            std::size_t missed_bits = 0, unsafe_words = 0;

            for (std::size_t w = 0; w < words; ++w) {
                common::Xoshiro256 code_rng(
                    common::deriveSeed(seed, {0xC0DEu, w}));
                const ecc::HammingCode code =
                    ecc::HammingCode::randomSec(64, code_rng);

                // Mixed fault model: distinct positions, two tiers.
                common::Xoshiro256 fault_rng(common::deriveSeed(
                    seed, {0xFA17u, w,
                           static_cast<std::uint64_t>(p_low * 1e6)}));
                const fault::WordFaultModel placement =
                    fault::WordFaultModel::makeUniformFixedCount(
                        code.n(), n_normal + n_low, 0.5, fault_rng);
                std::vector<fault::CellFault> cells = placement.faults();
                for (std::size_t i = 0; i < cells.size(); ++i)
                    cells[i].probability =
                        i < n_normal ? 0.5 : p_low;
                const fault::WordFaultModel fm(code.n(), cells);

                const core::AtRiskAnalyzer analyzer(code, fm);
                core::HarpUProfiler harp(code.k());
                core::RoundEngine engine(
                    code, fm, core::PatternKind::Random,
                    common::deriveSeed(seed, {0xE221u, w, rounds}));
                std::vector<core::Profiler *> ps = {&harp};
                for (std::size_t r = 0; r < rounds; ++r)
                    engine.runRound(ps);

                const std::size_t total =
                    analyzer.directAtRisk().popcount();
                gf2::BitVector covered = harp.identified();
                covered &= analyzer.directAtRisk();
                const std::size_t found = covered.popcount();
                direct_total += total;
                direct_found += found;
                missed_bits += total - found;
                if (analyzer.maxSimultaneousErrors(harp.identified()) >
                    1)
                    ++unsafe_words;
            }

            table.addRow(
                {common::formatDouble(p_low, 3),
                 std::to_string(rounds),
                 common::formatDouble(
                     direct_total == 0
                         ? 1.0
                         : static_cast<double>(direct_found) /
                               static_cast<double>(direct_total),
                     4),
                 std::to_string(missed_bits),
                 std::to_string(unsafe_words) + "/" +
                     std::to_string(words)});
        }
    }
    bench::printTable(table, cli, std::cout);

    std::cout << "\nReading the table: low-probability cells evade short "
                 "active budgets (coverage < 1,\nunsafe words > 0) — the "
                 "theoretical limitation HARP acknowledges in section "
                 "6.4.\nLonger active profiling (or the complementary "
                 "low-probability techniques of\nsection 2.4: error "
                 "amplification, periodic scrubbing, stronger secondary "
                 "ECC)\ndrives the shortfall toward zero.\n";
    return 0;
}
