/**
 * @file
 * Reproduces HARP Fig. 9: secondary-ECC provisioning.
 *
 *  (a) Histogram of the maximum number of simultaneous post-correction
 *      errors possible per ECC word after the full active-profiling
 *      budget, per profiler.
 *  (b) Number of profiling rounds needed before no more than x
 *      simultaneous post-correction errors remain possible (99th
 *      percentile across words) — the correction capability the
 *      secondary ECC must provision for reactive profiling.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    core::CoverageConfig base = bench::coverageConfigFromCli(cli);

    std::cout << "=== HARP Fig. 9: secondary ECC correction capability "
                 "===\n"
              << "codes=" << base.numCodes
              << " words/code=" << base.wordsPerCode
              << " rounds=" << base.rounds << "\n\n";

    common::Table hist_table({"per_bit_prob", "pre_errors", "profiler",
                              "frac_max0", "frac_max1", "frac_max2",
                              "frac_max3", "frac_max4plus"});
    common::Table bound_table({"per_bit_prob", "pre_errors", "profiler",
                               "rounds_to_le1_p99", "rounds_to_le2_p99",
                               "rounds_to_le3_p99"});

    for (const double prob : bench::paperProbabilities) {
        for (const std::size_t n : bench::paperErrorCounts) {
            core::CoverageConfig config = base;
            config.perBitProbability = prob;
            config.numPreCorrectionErrors = n;
            const core::CoverageResult result =
                core::runCoverageExperiment(config);
            for (const core::ProfilerAggregate &agg : result.profilers) {
                // Fig. 9a: distribution of the final max-simultaneous
                // error count.
                const auto &hist = agg.maxSimultaneousFinal;
                double frac4plus = 0.0;
                for (std::size_t b = 4; b < hist.numBins(); ++b)
                    frac4plus += hist.fraction(b);
                hist_table.addRow(
                    {common::formatDouble(prob, 2), std::to_string(n),
                     agg.name, common::formatDouble(hist.fraction(0), 3),
                     common::formatDouble(hist.fraction(1), 3),
                     common::formatDouble(hist.fraction(2), 3),
                     common::formatDouble(hist.fraction(3), 3),
                     common::formatDouble(frac4plus, 3)});

                // Fig. 9b: 99th-percentile rounds to bound <= x.
                auto show = [&](std::size_t x) {
                    const double v =
                        agg.roundsToBound[x - 1].quantile(0.99);
                    if (v > static_cast<double>(config.rounds))
                        return std::string(">") +
                               std::to_string(config.rounds);
                    return common::formatDouble(v, 0);
                };
                bound_table.addRow({common::formatDouble(prob, 2),
                                    std::to_string(n), agg.name, show(1),
                                    show(2), show(3)});
            }
        }
    }

    std::cout << "--- Fig. 9a: fraction of ECC words by max simultaneous "
                 "post-correction errors (after full budget) ---\n";
    bench::printTable(hist_table, cli, std::cout);
    std::cout << "\n--- Fig. 9b: rounds to bound simultaneous errors "
                 "(99th percentile) ---\n";
    bench::printTable(bound_table, cli, std::cout);

    std::cout << "\nPaper's observations to verify: HARP words never "
                 "admit more than one simultaneous\npost-correction "
                 "error after profiling (a single-error-correcting "
                 "secondary ECC\nsuffices); Naive and BEEP leave "
                 "multi-bit tails; HARP reaches the <=1 bound in\nfar "
                 "fewer rounds than the baselines.\n";
    return 0;
}
