/**
 * @file
 * Reproduces HARP Fig. 7: distribution of the number of profiling rounds
 * each profiler spends "bootstrapping" — i.e., before it identifies its
 * first direct error in an ECC word. Words where no direct error is ever
 * identified within the budget are reported at rounds+1 (the paper
 * conservatively plots them at the 128-round cap).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    core::CoverageConfig base = bench::coverageConfigFromCli(cli);

    std::cout << "=== HARP Fig. 7: rounds spent bootstrapping (first "
                 "direct error) ===\n"
              << "codes=" << base.numCodes
              << " words/code=" << base.wordsPerCode
              << " rounds=" << base.rounds << "\n\n";

    common::Table table({"per_bit_prob", "pre_errors", "profiler", "p25",
                         "median", "p75", "p99", "max",
                         "never_bootstrapped"});

    for (const double prob : bench::paperProbabilities) {
        for (const std::size_t n : bench::paperErrorCounts) {
            core::CoverageConfig config = base;
            config.perBitProbability = prob;
            config.numPreCorrectionErrors = n;
            const core::CoverageResult result =
                core::runCoverageExperiment(config);
            for (const core::ProfilerAggregate &agg : result.profilers) {
                const auto &boot = agg.bootstrapRounds;
                // Count words that never identified a direct error.
                std::size_t never = 0;
                const double cap =
                    static_cast<double>(config.rounds);
                // quantile(1.0) == rounds+1 iff some word never did;
                // count via thresholding on retained samples.
                for (double q = 1.0; q >= 0.0; q -= 1.0 / 512.0) {
                    if (boot.quantile(q) > cap)
                        never = static_cast<std::size_t>(
                            (1.0 - q) *
                            static_cast<double>(boot.count()));
                    else
                        break;
                }
                table.addRow(
                    {common::formatDouble(prob, 2), std::to_string(n),
                     agg.name,
                     common::formatDouble(boot.quantile(0.25), 1),
                     common::formatDouble(boot.median(), 1),
                     common::formatDouble(boot.quantile(0.75), 1),
                     common::formatDouble(boot.quantile(0.99), 1),
                     common::formatDouble(boot.quantile(1.0), 0),
                     std::to_string(never)});
            }
        }
    }
    bench::printTable(table, cli, std::cout);

    std::cout << "\nPaper's observations to verify: HARP identifies the "
                 "first direct error far sooner\nthan Naive or BEEP; "
                 "HARP never fails to bootstrap within 128 rounds; BEEP "
                 "sometimes\nnever observes an error at low per-bit "
                 "probabilities.\n";
    return 0;
}
