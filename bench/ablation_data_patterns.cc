/**
 * @file
 * Ablation (HARP section 7.1.2's methodology note): how the choice of
 * active-profiling data pattern — random-with-inversion vs. static
 * charged (0xFF) vs. checkered-with-inversion — affects direct-error
 * coverage for Naive and HARP profiling.
 *
 * The paper states that the random pattern "performs on par or better
 * than the static charged and checkered patterns that do not explore
 * different pre-correction error combinations", and that Naive "fails
 * to achieve full coverage when using static data patterns".
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    core::CoverageConfig base = bench::coverageConfigFromCli(cli);
    base.perBitProbability = cli.getDouble("prob", 0.5);
    base.numPreCorrectionErrors =
        static_cast<std::size_t>(cli.getInt("pre-errors", 4));

    std::cout << "=== Ablation: data-pattern policy vs. direct coverage "
                 "===\n"
              << "pre-errors=" << base.numPreCorrectionErrors
              << " p=" << base.perBitProbability << " rounds="
              << base.rounds << "\n\n";

    const auto checkpoints = bench::roundCheckpoints(base.rounds);
    std::vector<std::string> headers = {"pattern", "profiler"};
    for (const std::size_t cp : checkpoints)
        headers.push_back("r" + std::to_string(cp));
    common::Table table(headers);

    for (const core::PatternKind kind :
         {core::PatternKind::Random, core::PatternKind::Charged,
          core::PatternKind::Checkered}) {
        core::CoverageConfig config = base;
        config.pattern = kind;
        const core::CoverageResult result =
            core::runCoverageExperiment(config);
        for (std::size_t p = 0; p < result.profilers.size(); ++p) {
            // Focus the ablation on Naive (0) and HARP-U (2).
            if (p != 0 && p != 2)
                continue;
            std::vector<std::string> row = {
                core::patternKindName(kind),
                result.profilers[p].name};
            for (const std::size_t cp : checkpoints)
                row.push_back(common::formatDouble(
                    result.directCoverage(p, cp - 1), 4));
            table.addRow(std::move(row));
        }
    }
    bench::printTable(table, cli, std::cout);

    std::cout << "\nExpected: the charged pattern can strand Naive below "
                 "full coverage (cells that only\nfail in combinations "
                 "the static pattern never charges); HARP with "
                 "inverting\npatterns reaches full coverage regardless "
                 "(every cell is charged every two rounds).\nNote the "
                 "static charged pattern never charges ~half the parity "
                 "cells, so even\nHARP's observable direct coverage is "
                 "unaffected, but Naive's combination\nexploration "
                 "stalls.\n";
    return 0;
}
