/**
 * @file
 * Shared helpers for the benchmark/experiment binaries: standard sweep
 * axes from the paper, round checkpoints for printing curves, and CLI
 * plumbing into the experiment configs.
 *
 * Every bench accepts:
 *   --codes N --words N --rounds N --seed N --threads N --csv
 * so the default laptop-scale run can be scaled up toward the paper's
 * full Monte-Carlo configuration.
 */

#ifndef HARP_BENCH_BENCH_COMMON_HH
#define HARP_BENCH_BENCH_COMMON_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/coverage_experiment.hh"

namespace harp::bench {

/** Per-bit pre-correction error probabilities evaluated in the paper. */
inline const std::vector<double> paperProbabilities = {0.25, 0.50, 0.75,
                                                       1.00};

/** Pre-correction error counts evaluated in Figs. 6-10. */
inline const std::vector<std::size_t> paperErrorCounts = {2, 3, 4, 5};

/** Logarithmically spaced profiling-round checkpoints for curve output. */
inline std::vector<std::size_t>
roundCheckpoints(std::size_t rounds)
{
    std::vector<std::size_t> points;
    for (std::size_t r = 1; r <= rounds; r *= 2)
        points.push_back(r);
    if (points.empty() || points.back() != rounds)
        points.push_back(rounds);
    return points;
}

/** Populate a coverage config from the standard CLI flags. */
inline core::CoverageConfig
coverageConfigFromCli(const common::CommandLine &cli)
{
    core::CoverageConfig config;
    config.k = static_cast<std::size_t>(cli.getInt("k", 64));
    config.numCodes = static_cast<std::size_t>(cli.getInt("codes", 8));
    config.wordsPerCode =
        static_cast<std::size_t>(cli.getInt("words", 24));
    config.rounds = static_cast<std::size_t>(cli.getInt("rounds", 128));
    config.seed = static_cast<std::uint64_t>(cli.getInt("seed", 1));
    config.threads = static_cast<std::size_t>(cli.getInt("threads", 0));
    return config;
}

/** Print a rendered table, as CSV when --csv was passed. */
inline void
printTable(const common::Table &table, const common::CommandLine &cli,
           std::ostream &os)
{
    if (cli.getBool("csv", false))
        table.printCsv(os);
    else
        table.print(os);
}

} // namespace harp::bench

#endif // HARP_BENCH_BENCH_COMMON_HH
