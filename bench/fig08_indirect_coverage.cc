/**
 * @file
 * Reproduces HARP Fig. 8: missed indirect errors per ECC word (i.e., the
 * at-risk bits the reactive phase must still identify) across profiling
 * rounds, for HARP-A, HARP-U, Naive, BEEP and the HARP-A+BEEP hybrid.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    core::CoverageConfig base = bench::coverageConfigFromCli(cli);
    base.includeHarpABeep = true;

    std::cout << "=== HARP Fig. 8: missed indirect errors per ECC word "
                 "vs. profiling rounds ===\n"
              << "codes=" << base.numCodes
              << " words/code=" << base.wordsPerCode
              << " rounds=" << base.rounds << "\n\n";

    const auto checkpoints = bench::roundCheckpoints(base.rounds);
    std::vector<std::string> headers = {"per_bit_prob", "pre_errors",
                                        "profiler"};
    for (const std::size_t cp : checkpoints)
        headers.push_back("r" + std::to_string(cp));
    common::Table table(headers);

    for (const double prob : bench::paperProbabilities) {
        for (const std::size_t n : bench::paperErrorCounts) {
            core::CoverageConfig config = base;
            config.perBitProbability = prob;
            config.numPreCorrectionErrors = n;
            const core::CoverageResult result =
                core::runCoverageExperiment(config);
            for (std::size_t p = 0; p < result.profilers.size(); ++p) {
                std::vector<std::string> row = {
                    common::formatDouble(prob, 2), std::to_string(n),
                    result.profilers[p].name};
                for (const std::size_t cp : checkpoints)
                    row.push_back(common::formatDouble(
                        result.missedIndirectPerWord(p, cp - 1), 3));
                table.addRow(std::move(row));
            }
        }
    }
    bench::printTable(table, cli, std::cout);

    std::cout << "\nPaper's observations to verify: HARP-U identifies "
                 "(almost) no indirect errors;\nHARP-A instantly "
                 "identifies the subset predictable from direct errors; "
                 "Naive and BEEP\nslowly expose indirect errors by "
                 "observation (BEEP more than Naive in the long\nrun); "
                 "HARP-A+BEEP reaches comparable coverage in fewer "
                 "rounds.\n";
    return 0;
}
