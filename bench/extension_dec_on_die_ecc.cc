/**
 * @file
 * Extension experiment: HARP under a *double-error-correcting* on-die
 * ECC (the generalization HARP defers to future work — section 2.5.1
 * footnote 9 and section 6.3.2).
 *
 * The paper's key insight bounds the number of concurrent indirect
 * errors by the on-die code's correction capability N. This bench swaps
 * the (71,64) SEC Hamming code for a (78,64) DEC BCH code and verifies
 * the generalized claims empirically:
 *
 *   1. once all direct-at-risk bits are profiled, at most N = 2
 *      simultaneous post-correction errors remain possible;
 *   2. a single-error-correcting secondary ECC is therefore *not*
 *      sufficient, but a double-error-correcting one is;
 *   3. HARP's active phase (bypass reads) is unaffected by the stronger
 *      code — it still reaches full direct coverage at the same speed.
 */

#include <iostream>
#include <set>

#include "bench_common.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "core/data_pattern.hh"
#include "ecc/bch_code.hh"
#include "ecc/bch_general.hh"
#include "fault/fault_model.hh"
#include "gf2/linear_solver.hh"

namespace {

using namespace harp;

/** Post-correction data errors of a failing-cell subset on the BCH word. */
std::vector<std::size_t>
postErrors(const ecc::BchDecCode &code, const fault::WordFaultModel &fm,
           std::uint32_t mask)
{
    std::vector<std::size_t> failing;
    for (std::size_t i = 0; i < fm.numFaults(); ++i)
        if ((mask >> i) & 1)
            failing.push_back(fm.faults()[i].position);
    return code.decodeErrorPattern(failing);
}

/** True iff some dataword charges every cell of the subset. */
bool
feasible(const ecc::BchDecCode &code, const fault::WordFaultModel &fm,
         std::uint32_t mask)
{
    gf2::ConstraintSystem cs(code.k());
    for (std::size_t i = 0; i < fm.numFaults(); ++i) {
        if (((mask >> i) & 1) == 0)
            continue;
        const std::size_t pos = fm.faults()[i].position;
        if (pos < code.k())
            cs.pinVariable(pos, true);
        else
            cs.addConstraint(code.parityRow(pos - code.k()), true);
    }
    return cs.consistent();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    const std::size_t words =
        static_cast<std::size_t>(cli.getInt("words", 200));
    const std::size_t rounds =
        static_cast<std::size_t>(cli.getInt("rounds", 128));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 1));

    const ecc::BchDecCode code(64);
    std::cout << "=== Extension: HARP with DEC BCH on-die ECC ===\n"
              << "code: (" << code.n() << "," << code.k()
              << ") BCH over GF(2^" << code.field().m()
              << "), t = " << ecc::BchDecCode::correctionCapability()
              << "; " << words << " words per config, " << rounds
              << " active rounds\n\n";

    common::Table table({"pre_errors", "max_simul_no_profile_p100",
                         "max_simul_direct_profile_p100",
                         "words_unsafe_with_SEC_secondary",
                         "words_unsafe_with_DEC_secondary",
                         "harp_full_direct_coverage"});

    for (const std::size_t n : {2u, 3u, 4u, 5u, 6u}) {
        common::RunningStat max_empty, max_direct;
        std::size_t unsafe_sec = 0, unsafe_dec = 0, full_coverage = 0;

        for (std::size_t w = 0; w < words; ++w) {
            common::Xoshiro256 fault_rng(
                common::deriveSeed(seed, {0xFA17u, n, w}));
            const fault::WordFaultModel fm =
                fault::WordFaultModel::makeUniformFixedCount(
                    code.n(), n, 0.5, fault_rng);

            // Ground truth by enumeration (as AtRiskAnalyzer does for
            // the SEC code).
            std::set<std::size_t> direct;
            for (const fault::CellFault &f : fm.faults())
                if (f.position < code.k())
                    direct.insert(f.position);

            std::size_t worst_empty = 0, worst_direct = 0;
            for (std::uint32_t mask = 1;
                 mask < (std::uint32_t{1} << fm.numFaults()); ++mask) {
                if (!feasible(code, fm, mask))
                    continue;
                const auto errors = postErrors(code, fm, mask);
                worst_empty = std::max(worst_empty, errors.size());
                std::size_t unprofiled = 0;
                for (const std::size_t e : errors)
                    if (direct.count(e) == 0)
                        ++unprofiled;
                worst_direct = std::max(worst_direct, unprofiled);
            }
            max_empty.add(static_cast<double>(worst_empty));
            max_direct.add(static_cast<double>(worst_direct));
            if (worst_direct > 1)
                ++unsafe_sec;
            if (worst_direct > 2)
                ++unsafe_dec; // the generalized bound says: never

            // HARP-U active phase on the BCH chip: bypass reads are
            // ECC-agnostic, so coverage behaviour must match the SEC
            // case.
            core::PatternGenerator patterns(
                core::PatternKind::Random, code.k(),
                common::deriveSeed(seed, {0xACE5u, n, w}));
            common::Xoshiro256 inject_rng(
                common::deriveSeed(seed, {0x113Cu, n, w}));
            gf2::BitVector identified(code.k());
            for (std::size_t r = 0; r < rounds; ++r) {
                const gf2::BitVector d = patterns.pattern(r);
                const gf2::BitVector stored = code.encode(d);
                gf2::BitVector received = stored;
                received ^= fm.injectErrors(stored, inject_rng);
                gf2::BitVector raw = received.slice(0, code.k());
                raw ^= d;
                identified |= raw;
            }
            bool covered = true;
            for (const std::size_t pos : direct)
                covered = covered && identified.get(pos);
            if (covered)
                ++full_coverage;
        }

        table.addRow({std::to_string(n),
                      common::formatDouble(max_empty.max(), 0),
                      common::formatDouble(max_direct.max(), 0),
                      std::to_string(unsafe_sec),
                      std::to_string(unsafe_dec),
                      std::to_string(full_coverage) + "/" +
                          std::to_string(words)});
    }
    bench::printTable(table, cli, std::cout);

    std::cout << "\nGeneralized HARP bound (section 6.3.2): with a t=2 "
                 "on-die code and full direct\ncoverage, at most 2 "
                 "simultaneous post-correction errors remain possible "
                 "(column 3\nnever exceeds 2, column 5 is always 0) — a "
                 "DEC secondary ECC is sufficient, while\ncolumn 4 shows "
                 "a SEC secondary ECC is not.\n";

    // --- Sweep the on-die correction capability t = 1..3 with the
    // general Berlekamp-Massey decoder: the worst-case number of
    // simultaneous unprofiled (indirect) errors equals t exactly.
    std::cout << "\n--- Correction-capability sweep (general BCH, "
                 "Berlekamp-Massey decoder) ---\n";
    const std::size_t sweep_words =
        std::min<std::size_t>(words, 100);
    const std::size_t sweep_n = 6;
    common::Table sweep({"on_die_t", "code", "max_simul_after_direct",
                         "bound_t_respected"});
    for (const std::size_t t : {1u, 2u, 3u}) {
        const ecc::BchCode code_t(64, t);
        std::size_t worst = 0;
        for (std::size_t w = 0; w < sweep_words; ++w) {
            common::Xoshiro256 fault_rng(
                common::deriveSeed(seed, {0x5EEDu, t, w}));
            const fault::WordFaultModel fm =
                fault::WordFaultModel::makeUniformFixedCount(
                    code_t.n(), sweep_n, 0.5, fault_rng);
            std::set<std::size_t> direct;
            for (const fault::CellFault &f : fm.faults())
                if (f.position < code_t.k())
                    direct.insert(f.position);
            for (std::uint32_t mask = 1;
                 mask < (std::uint32_t{1} << fm.numFaults()); ++mask) {
                std::vector<std::size_t> failing;
                for (std::size_t i = 0; i < fm.numFaults(); ++i)
                    if ((mask >> i) & 1)
                        failing.push_back(fm.faults()[i].position);
                std::size_t unprofiled = 0;
                for (const std::size_t e :
                     code_t.decodeErrorPattern(failing))
                    if (direct.count(e) == 0)
                        ++unprofiled;
                worst = std::max(worst, unprofiled);
            }
        }
        sweep.addRow({std::to_string(t),
                      "(" + std::to_string(code_t.n()) + "," +
                          std::to_string(code_t.k()) + ")",
                      std::to_string(worst),
                      worst <= t ? "yes" : "NO"});
    }
    bench::printTable(sweep, cli, std::cout);
    std::cout << "\nThe required secondary-ECC correction capability "
                 "equals the on-die code's t\n(column 3 == column 1), "
                 "for every t.\n";
    return 0;
}
