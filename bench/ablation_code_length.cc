/**
 * @file
 * Ablation (HARP section 7.1.2): the paper evaluates (71,64) codes and
 * "verified that our observations hold for longer (136,128) codes".
 * This bench runs the Fig. 6-style direct-coverage sweep at both code
 * lengths and prints them side by side.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    core::CoverageConfig base = bench::coverageConfigFromCli(cli);
    base.perBitProbability = cli.getDouble("prob", 0.5);

    std::cout << "=== Ablation: on-die ECC code length (71,64) vs. "
                 "(136,128) ===\n"
              << "p=" << base.perBitProbability << " rounds="
              << base.rounds << "\n\n";

    const auto checkpoints = bench::roundCheckpoints(base.rounds);
    std::vector<std::string> headers = {"code", "pre_errors", "profiler"};
    for (const std::size_t cp : checkpoints)
        headers.push_back("r" + std::to_string(cp));
    common::Table table(headers);

    for (const std::size_t k : {std::size_t{64}, std::size_t{128}}) {
        for (const std::size_t n : bench::paperErrorCounts) {
            core::CoverageConfig config = base;
            config.k = k;
            config.numPreCorrectionErrors = n;
            const core::CoverageResult result =
                core::runCoverageExperiment(config);
            const std::string code_name =
                "(" + std::to_string(k + (k == 64 ? 7 : 8)) + "," +
                std::to_string(k) + ")";
            for (std::size_t p = 0; p < result.profilers.size(); ++p) {
                std::vector<std::string> row = {
                    code_name, std::to_string(n),
                    result.profilers[p].name};
                for (const std::size_t cp : checkpoints)
                    row.push_back(common::formatDouble(
                        result.directCoverage(p, cp - 1), 4));
                table.addRow(std::move(row));
            }
        }
    }
    bench::printTable(table, cli, std::cout);

    std::cout << "\nExpected: the profiler ordering (HARP > Naive > "
                 "BEEP in coverage speed) and curve\nshapes are "
                 "unchanged between the two code lengths.\n";
    return 0;
}
