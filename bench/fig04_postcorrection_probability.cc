/**
 * @file
 * Reproduces HARP Fig. 4: distribution (violin summary) of each at-risk
 * bit's probability of post-correction error, before vs. after on-die
 * ECC, as the number of injected pre-correction at-risk cells grows from
 * 2 to 8. Pattern 0xFF (all data cells charged), per-bit probability 0.5,
 * randomly generated (71,64) codes.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/fig4_experiment.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);

    core::Fig4Config config;
    config.k = static_cast<std::size_t>(cli.getInt("k", 64));
    config.numCodes = static_cast<std::size_t>(cli.getInt("codes", 40));
    config.wordsPerCode =
        static_cast<std::size_t>(cli.getInt("words", 40));
    config.perBitProbability = cli.getDouble("prob", 0.5);
    config.seed = static_cast<std::uint64_t>(cli.getInt("seed", 1));
    config.threads = static_cast<std::size_t>(cli.getInt("threads", 0));

    std::cout << "=== HARP Fig. 4: per-bit post-correction error "
                 "probability distribution ===\n"
              << "codes=" << config.numCodes
              << " words/code=" << config.wordsPerCode
              << " pattern=0xFF p=" << config.perBitProbability << "\n\n";

    const core::Fig4Result result = core::runFig4Experiment(config);

    common::Table table({"pre_correction_errors", "series", "p5", "p25",
                         "median", "p75", "p95", "mean", "samples"});
    for (const core::Fig4Row &row : result.rows) {
        const auto &post = row.postCorrection;
        table.addRow({std::to_string(row.numPreCorrectionErrors),
                      "post-correction",
                      common::formatDouble(post.quantile(0.05), 4),
                      common::formatDouble(post.quantile(0.25), 4),
                      common::formatDouble(post.median(), 4),
                      common::formatDouble(post.quantile(0.75), 4),
                      common::formatDouble(post.quantile(0.95), 4),
                      common::formatDouble(post.mean(), 4),
                      std::to_string(post.count())});
        const auto &pre = row.preCorrection;
        table.addRow({std::to_string(row.numPreCorrectionErrors),
                      "pre-correction",
                      common::formatDouble(pre.quantile(0.05), 4),
                      common::formatDouble(pre.quantile(0.25), 4),
                      common::formatDouble(pre.median(), 4),
                      common::formatDouble(pre.quantile(0.75), 4),
                      common::formatDouble(pre.quantile(0.95), 4),
                      common::formatDouble(pre.mean(), 4),
                      std::to_string(pre.count())});
    }
    bench::printTable(table, cli, std::cout);

    std::cout << "\nPaper's observations to verify: pre-correction "
                 "probabilities are all 0.5 by design;\npost-correction "
                 "probabilities spread widely and their mass shifts "
                 "toward 0 as the\nnumber of pre-correction errors "
                 "grows (bits become harder to identify).\n";
    return 0;
}
