/**
 * @file
 * Reproduces HARP Fig. 10 (section 7.4 case study): data-retention bit
 * error rate of a system with an ideal bit-repair mechanism, before
 * (left panel) and after (right panel) reactive profiling with a
 * single-error-correcting secondary ECC, as a function of active
 * profiling rounds. Facets: per-bit pre-correction error probability;
 * series: retention RBER in {1e-4, 1e-6, 1e-8}.
 *
 * Ends with the paper's headline metric: how much faster HARP drives
 * the post-reactive BER to zero than Naive (paper: 3.7x at p = 0.75).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/case_study_experiment.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);

    core::CaseStudyConfig base;
    base.k = static_cast<std::size_t>(cli.getInt("k", 64));
    base.samplesPerCellCount =
        static_cast<std::size_t>(cli.getInt("samples", 24));
    base.maxConditionedCells =
        static_cast<std::size_t>(cli.getInt("max-cells", 5));
    base.rounds = static_cast<std::size_t>(cli.getInt("rounds", 128));
    base.seed = static_cast<std::uint64_t>(cli.getInt("seed", 1));
    base.threads = static_cast<std::size_t>(cli.getInt("threads", 0));

    std::cout << "=== HARP Fig. 10: DRAM data-retention case study ===\n"
              << "samples/cell-count=" << base.samplesPerCellCount
              << " conditioned cell counts=1.." << base.maxConditionedCells
              << " rounds=" << base.rounds << "\n\n";

    const auto checkpoints = bench::roundCheckpoints(base.rounds);
    std::vector<std::string> headers = {"per_bit_prob", "rber",
                                        "profiler", "panel"};
    for (const std::size_t cp : checkpoints)
        headers.push_back("r" + std::to_string(cp));
    common::Table table(headers);

    common::Table headline({"per_bit_prob", "profiler",
                            "rounds_to_zero_after_reactive",
                            "slowdown_vs_harp_u"});

    for (const double prob : bench::paperProbabilities) {
        core::CaseStudyConfig config = base;
        config.perBitProbability = prob;
        const core::CaseStudyResult result =
            core::runCaseStudyExperiment(config);

        for (const core::CaseStudySeries &series : result.series) {
            std::vector<std::string> before = {
                common::formatDouble(prob, 2),
                common::formatSci(series.rber, 0), series.profiler,
                "before"};
            std::vector<std::string> after = {
                common::formatDouble(prob, 2),
                common::formatSci(series.rber, 0), series.profiler,
                "after"};
            for (const std::size_t cp : checkpoints) {
                before.push_back(
                    common::formatSci(series.berBefore[cp - 1], 2));
                after.push_back(
                    common::formatSci(series.berAfter[cp - 1], 2));
            }
            table.addRow(std::move(before));
            table.addRow(std::move(after));
        }

        const std::size_t harp_u_rounds = result.roundsToZeroAfter[2];
        for (std::size_t p = 0; p < result.profilerNames.size(); ++p) {
            const std::size_t rounds = result.roundsToZeroAfter[p];
            std::string shown = rounds <= config.rounds
                                    ? std::to_string(rounds)
                                    : (">" + std::to_string(config.rounds));
            std::string ratio = "n/a";
            if (rounds <= config.rounds && harp_u_rounds <= config.rounds)
                ratio = common::formatDouble(
                    static_cast<double>(rounds) /
                        static_cast<double>(harp_u_rounds),
                    2);
            headline.addRow({common::formatDouble(prob, 2),
                             result.profilerNames[p], shown, ratio});
        }
    }

    bench::printTable(table, cli, std::cout);
    std::cout << "\n--- Rounds until post-reactive BER reaches zero "
                 "(paper headline: Naive needs 3.7x\nHARP's rounds at "
                 "p=0.75; BEEP never reaches zero) ---\n";
    bench::printTable(headline, cli, std::cout);
    return 0;
}
