/**
 * @file
 * Extension experiment: secondary-ECC word layout across on-die ECC
 * words (HARP section 6.3).
 *
 * The paper assumes one secondary ECC word per on-die ECC word and notes
 * that "interleaving secondary ECC words across multiple on-die ECC
 * words could require stronger secondary ECC". This bench quantifies
 * that trade-off end to end: a 128-bit secondary word spans TWO on-die
 * (71,64) words. After a complete HARP active phase (all direct errors
 * profiled and repaired), each on-die word still contributes up to one
 * indirect error per access — so the interleaved secondary word can see
 * two simultaneous errors:
 *
 *   - a SECDED secondary (the single-word-sufficient choice) detects
 *     but cannot correct those events;
 *   - a DEC BCH secondary (t = 2, built on the repo's GF(2^m) substrate)
 *     corrects every one of them.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "ecc/bch_code.hh"
#include "ecc/extended_hamming_code.hh"
#include "fault/fault_model.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    const std::size_t pairs =
        static_cast<std::size_t>(cli.getInt("pairs", 40));
    const std::size_t accesses =
        static_cast<std::size_t>(cli.getInt("accesses", 2000));
    const double prob = cli.getDouble("prob", 0.5);
    const std::size_t n_cells =
        static_cast<std::size_t>(cli.getInt("pre-errors", 4));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 1));

    common::Xoshiro256 setup_rng(seed);
    const ecc::ExtendedHammingCode secded =
        ecc::ExtendedHammingCode::randomSecDed(128, setup_rng);
    const ecc::BchDecCode bch(128);

    std::cout << "=== Extension: interleaved secondary ECC words "
                 "(section 6.3) ===\n"
              << "one 128-bit secondary word spans two (71,64) on-die "
                 "words; " << pairs << " pairs x " << accesses
              << " accesses; " << n_cells << " at-risk cells/word, p="
              << prob << "\n"
              << "secondary candidates: (" << secded.n() << ",128) "
              << "SECDED vs (" << bch.n() << ",128) DEC BCH\n\n";

    std::size_t single_indirect = 0, double_indirect = 0;
    std::size_t secded_uncorrectable = 0, secded_wrong = 0;
    std::size_t bch_failures = 0;

    for (std::size_t pair = 0; pair < pairs; ++pair) {
        // Two independent on-die words with full HARP direct profiles.
        std::vector<ecc::HammingCode> codes;
        std::vector<fault::WordFaultModel> faults;
        std::vector<gf2::BitVector> profiles;
        for (std::size_t w = 0; w < 2; ++w) {
            common::Xoshiro256 rng(
                common::deriveSeed(seed, {pair, w, 0xC0DEu}));
            codes.push_back(ecc::HammingCode::randomSec(64, rng));
            common::Xoshiro256 frng(
                common::deriveSeed(seed, {pair, w, 0xFA17u}));
            faults.push_back(
                fault::WordFaultModel::makeUniformFixedCount(
                    codes[w].n(), n_cells, prob, frng));
            const core::AtRiskAnalyzer analyzer(codes[w], faults[w]);
            profiles.push_back(analyzer.directAtRisk());
        }

        common::Xoshiro256 access_rng(
            common::deriveSeed(seed, {pair, 0xACCE55u}));
        for (std::size_t a = 0; a < accesses; ++a) {
            // Fresh write + retention + read per on-die word, with the
            // ideal repair masking every profiled (direct) bit.
            gf2::BitVector joined_written(128);
            gf2::BitVector joined_read(128);
            std::size_t residual_errors = 0;
            for (std::size_t w = 0; w < 2; ++w) {
                const gf2::BitVector d =
                    gf2::BitVector::random(64, access_rng);
                const gf2::BitVector stored = codes[w].encode(d);
                gf2::BitVector received = stored;
                received ^=
                    faults[w].injectErrors(stored, access_rng);
                gf2::BitVector post =
                    codes[w].decode(received).dataword;
                // Ideal repair of profiled bits.
                profiles[w].forEachSetBit([&](std::size_t bit) {
                    post.set(bit, d.get(bit));
                });
                for (std::size_t i = 0; i < 64; ++i) {
                    joined_written.set(w * 64 + i, d.get(i));
                    joined_read.set(w * 64 + i, post.get(i));
                    residual_errors +=
                        (post.get(i) != d.get(i)) ? 1 : 0;
                }
            }
            if (residual_errors == 1)
                ++single_indirect;
            if (residual_errors >= 2)
                ++double_indirect;
            if (residual_errors == 0)
                continue;

            // SECDED secondary over the interleaved 128-bit word.
            {
                const gf2::BitVector check =
                    secded.encode(joined_written)
                        .slice(128, secded.n());
                gf2::BitVector codeword(secded.n());
                for (std::size_t i = 0; i < 128; ++i)
                    codeword.set(i, joined_read.get(i));
                for (std::size_t i = 0; i < check.size(); ++i)
                    codeword.set(128 + i, check.get(i));
                const ecc::SecondaryDecodeResult r =
                    secded.decode(codeword);
                if (r.status ==
                    ecc::SecondaryDecodeStatus::DetectedUncorrectable)
                    ++secded_uncorrectable;
                else if (!(r.dataword == joined_written))
                    ++secded_wrong;
            }
            // DEC BCH secondary over the same word.
            {
                const gf2::BitVector check =
                    bch.encode(joined_written).slice(128, bch.n());
                gf2::BitVector codeword(bch.n());
                for (std::size_t i = 0; i < 128; ++i)
                    codeword.set(i, joined_read.get(i));
                for (std::size_t i = 0; i < check.size(); ++i)
                    codeword.set(128 + i, check.get(i));
                const ecc::BchDecodeResult r = bch.decode(codeword);
                if (r.detectedUncorrectable ||
                    !(r.dataword == joined_written))
                    ++bch_failures;
            }
        }
    }

    common::Table table({"metric", "count", "per_access"});
    const double total =
        static_cast<double>(pairs) * static_cast<double>(accesses);
    auto add = [&](const char *name, std::size_t count) {
        table.addRow({name, std::to_string(count),
                      common::formatSci(
                          static_cast<double>(count) / total, 2)});
    };
    add("accesses with 1 residual (indirect) error", single_indirect);
    add("accesses with >=2 residual errors (interleaving hazard)",
        double_indirect);
    add("SECDED secondary: detected-uncorrectable", secded_uncorrectable);
    add("SECDED secondary: silent wrong data", secded_wrong);
    add("DEC BCH secondary: any failure", bch_failures);
    bench::printTable(table, cli, std::cout);

    std::cout << "\nConclusion (section 6.3): per-on-die-word SEC "
                 "secondary ECC is sufficient, but a\nsecondary word "
                 "interleaved across two on-die words must tolerate two "
                 "simultaneous\nindirect errors — SECDED stalls on every "
                 "such event while the t=2 BCH corrects\nthem all "
                 "(expect 0 in the last row).\n";
    return bch_failures == 0 ? 0 : 1;
}
