/**
 * @file
 * Reproduces HARP Table 2: on-die ECC amplifies n bits at risk of
 * pre-correction error into up to 2^n - 1 bits at risk of
 * post-correction error. Prints the closed forms from the table and the
 * measured maximum/mean across randomly generated codes and fault
 * placements (the worst case requires every uncorrectable pattern to
 * alias to a distinct data column).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "core/at_risk_analyzer.hh"
#include "ecc/hamming_code.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    const std::size_t k = static_cast<std::size_t>(cli.getInt("k", 64));
    const std::size_t trials =
        static_cast<std::size_t>(cli.getInt("trials", 400));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 1));

    std::cout << "=== HARP Table 2: at-risk bit amplification ===\n"
              << "closed forms + measured max/mean over " << trials
              << " random (" << k + ecc::HammingCode::minParityBits(k)
              << "," << k << ") codes per n\n\n";

    common::Table table({"n_pre_correction", "unique_patterns_2^n-1",
                         "uncorrectable_2^n-n-1", "worst_case_at_risk",
                         "measured_max", "measured_mean"});

    for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
        const std::size_t unique = (std::size_t{1} << n) - 1;
        const std::size_t uncorrectable =
            (std::size_t{1} << n) - n - 1;
        common::RunningStat at_risk;
        for (std::size_t t = 0; t < trials; ++t) {
            common::Xoshiro256 code_rng(
                common::deriveSeed(seed, {n, t, 0xC0DEu}));
            const ecc::HammingCode code =
                ecc::HammingCode::randomSec(k, code_rng);
            common::Xoshiro256 fault_rng(
                common::deriveSeed(seed, {n, t, 0xFA17u}));
            const fault::WordFaultModel faults =
                fault::WordFaultModel::makeUniformFixedCount(
                    code.n(), n, 0.5, fault_rng);
            const core::AtRiskAnalyzer analyzer(code, faults);
            at_risk.add(static_cast<double>(
                analyzer.postCorrectionAtRisk().popcount()));
        }
        table.addRow({std::to_string(n), std::to_string(unique),
                      std::to_string(uncorrectable),
                      std::to_string(unique),
                      common::formatDouble(at_risk.max(), 0),
                      common::formatDouble(at_risk.mean(), 2)});
    }
    bench::printTable(table, cli, std::cout);

    std::cout << "\nThe worst case (2^n - 1) assumes every uncorrectable "
                 "pattern maps to a unique data\nbit; random codes "
                 "approach it from below because some syndromes alias "
                 "parity columns\nor match no column (shortened code).\n";
    return 0;
}
