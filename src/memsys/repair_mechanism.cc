#include "memsys/repair_mechanism.hh"

namespace harp::mem {

RepairMechanism::RepairMechanism(std::size_t num_words,
                                 std::size_t word_bits)
    : wordBits_(word_bits), spares_(num_words)
{
}

void
RepairMechanism::onWrite(std::size_t word, const gf2::BitVector &dataword,
                         const ErrorProfile &profile)
{
    auto &spare = spares_.at(word);
    profile.wordBitmap(word).forEachSetBit([&](std::size_t bit) {
        const auto it = spare.find(bit);
        if (it != spare.end()) {
            it->second = dataword.get(bit);
            return;
        }
        if (used_ >= capacity_) {
            ++dropped_;
            return;
        }
        spare.emplace(bit, dataword.get(bit));
        ++used_;
    });
}

std::size_t
RepairMechanism::repair(std::size_t word, gf2::BitVector &dataword) const
{
    std::size_t changed = 0;
    for (const auto &[bit, value] : spares_.at(word)) {
        if (dataword.get(bit) != value) {
            dataword.set(bit, value);
            ++changed;
        }
    }
    return changed;
}

std::size_t
RepairMechanism::spareBitsUsed() const
{
    return used_;
}

} // namespace harp::mem
