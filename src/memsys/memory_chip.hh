/**
 * @file
 * Simulated memory chip with proprietary on-die ECC (HARP Fig. 3).
 *
 * The chip stores raw codewords, encodes on write, and syndrome-decodes on
 * read. Two read paths are exposed:
 *  - read():     the normal path — on-die ECC corrects before returning
 *                the dataword; pre-correction state stays hidden.
 *  - readRaw():  the HARP decode-bypass path (section 5.2) — returns the
 *                raw stored *data* bits. Parity bits remain invisible,
 *                exactly the transparency limit the paper assumes.
 *
 * Retention errors are injected explicitly via retentionTick(), modelling
 * the "program, wait, read" structure of a profiling round.
 */

#ifndef HARP_MEMSYS_MEMORY_CHIP_HH
#define HARP_MEMSYS_MEMORY_CHIP_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "ecc/hamming_code.hh"
#include "fault/fault_model.hh"
#include "gf2/bit_vector.hh"

namespace harp::mem {

/** Controller-visible result of a normal (on-die-ECC-corrected) read. */
struct ChipReadResult
{
    /** Post-correction dataword d'. */
    gf2::BitVector dataword;
};

/**
 * A memory chip: an array of ECC words behind a single on-die ECC engine.
 */
class MemoryChip
{
  public:
    /**
     * @param on_die_ecc The chip's proprietary SEC code.
     * @param num_words  Number of addressable ECC words.
     */
    MemoryChip(ecc::HammingCode on_die_ecc, std::size_t num_words);

    /** Number of addressable ECC words. */
    std::size_t numWords() const { return storage_.size(); }
    /** Dataword length k of the on-die ECC code. */
    std::size_t datawordBits() const { return onDieEcc_.k(); }
    /** Codeword length n of the on-die ECC code. */
    std::size_t codewordBits() const { return onDieEcc_.n(); }

    /** The on-die ECC function. Real chips keep this secret; profilers
     *  that are "unaware" simply must not call it. */
    const ecc::HammingCode &onDieEcc() const { return onDieEcc_; }

    /** Attach a fault model to word @p word. */
    void setFaultModel(std::size_t word, fault::WordFaultModel model);

    /**
     * Merge one at-risk cell into word @p word's fault model — the
     * distribution-driven placement hook used by the fleet population
     * sampler, which accumulates fault *events* (bit / row / column /
     * chip-wide) cell by cell. A duplicate position keeps the higher
     * failure probability; the cell technology of the existing model is
     * preserved.
     */
    void addCellFault(std::size_t word, const fault::CellFault &cell);

    /** Indices of words whose fault model has at least one at-risk
     *  cell, ascending — the sparse iteration set for fleet chips,
     *  where almost every word is fault-free. */
    std::vector<std::size_t> faultyWords() const;

    /** Fault model currently attached to word @p word. */
    const fault::WordFaultModel &faultModel(std::size_t word) const;

    /** Encode @p dataword through on-die ECC and store it. */
    void write(std::size_t word, const gf2::BitVector &dataword);

    /** Normal read: on-die ECC decodes (and possibly miscorrects). */
    ChipReadResult read(std::size_t word) const;

    /** Decode-bypass read: raw stored data bits, no parity, no correction. */
    gf2::BitVector readRaw(std::size_t word) const;

    /**
     * Let retention errors strike word @p word once: samples the fault
     * model against the currently stored codeword and flips the victims
     * in place (errors persist until the next write).
     *
     * @return Number of cells flipped.
     */
    std::size_t retentionTick(std::size_t word, common::Xoshiro256 &rng);

    /** Apply a precomputed error mask (for deterministic tests). */
    void corrupt(std::size_t word, const gf2::BitVector &error_mask);

    /** White-box access to the stored codeword (tests/analysis only). */
    const gf2::BitVector &storedCodeword(std::size_t word) const;

  private:
    ecc::HammingCode onDieEcc_;
    std::vector<gf2::BitVector> storage_;
    std::vector<fault::WordFaultModel> faultModels_;
};

} // namespace harp::mem

#endif // HARP_MEMSYS_MEMORY_CHIP_HH
