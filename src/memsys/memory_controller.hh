/**
 * @file
 * Memory controller of a HARP-enabled system (HARP Fig. 5).
 *
 * Owns the error-mitigation resources the paper places in the controller:
 * the error profile, the ideal bit-repair mechanism, and the secondary
 * (SECDED) ECC that implements reactive profiling. The controller's read
 * path is: chip read (on-die ECC) -> repair -> secondary ECC decode
 * (reactive identification) -> return to CPU.
 */

#ifndef HARP_MEMSYS_MEMORY_CONTROLLER_HH
#define HARP_MEMSYS_MEMORY_CONTROLLER_HH

#include <cstddef>
#include <optional>
#include <vector>

#include "ecc/extended_hamming_code.hh"
#include "gf2/bit_vector.hh"
#include "memsys/error_profile.hh"
#include "memsys/memory_chip.hh"
#include "memsys/repair_mechanism.hh"

namespace harp::mem {

/** Outcome of one controller read. */
struct ControllerReadResult
{
    /** Data returned to the CPU (post repair + secondary correction). */
    gf2::BitVector dataword;
    /** True iff this read returned corrupt data (uncorrectable event or
     *  secondary ECC disabled and an error slipped through repair). */
    bool corrupt = false;
    /** Bit newly identified as at-risk by reactive profiling, if any. */
    std::optional<std::size_t> newlyProfiledBit;
};

/** Lifetime statistics for the controller. */
struct ControllerStats
{
    std::size_t reads = 0;
    std::size_t writes = 0;
    std::size_t repairedBits = 0;
    std::size_t secondaryCorrections = 0;
    std::size_t uncorrectableEvents = 0;
    std::size_t reactiveIdentifications = 0;
    std::size_t scrubs = 0;
    std::size_t scrubWritebacks = 0;
};

/**
 * Memory controller wired to one chip (the paper's single-chip LPDDR4-like
 * configuration, section 6.3).
 */
class MemoryController
{
  public:
    /**
     * @param chip          The attached memory chip (externally owned).
     * @param secondary_ecc SECDED code over the chip's dataword length, or
     *                      std::nullopt to run without reactive profiling.
     */
    MemoryController(MemoryChip &chip,
                     std::optional<ecc::ExtendedHammingCode> secondary_ecc);

    /** Write a dataword: capture spares, update secondary check bits,
     *  store through the chip's on-die ECC. */
    void write(std::size_t word, const gf2::BitVector &dataword);

    /**
     * Normal read: on-die decode, repair, then reactive secondary decode.
     * Newly identified at-risk bits are recorded into the error profile.
     */
    ControllerReadResult read(std::size_t word);

    /** Active-profiling read: the chip's decode-bypass raw data path. */
    gf2::BitVector readRaw(std::size_t word) const;

    /**
     * ECC scrubbing pass over one word (the classic reactive-profiling
     * mechanism, HARP section 2.3.2): read through the full correction
     * path and, when anything was repaired or corrected, write the
     * clean data back so raw errors do not accumulate between accesses.
     *
     * @return The read outcome (newlyProfiledBit reports a reactive
     *         identification, corrupt reports an unscrubbable word).
     */
    ControllerReadResult scrub(std::size_t word);

    /** Scrub every word once; returns the number of corrupt words. */
    std::size_t scrubAll();

    ErrorProfile &profile() { return profile_; }
    const ErrorProfile &profile() const { return profile_; }

    /**
     * Budget the repair mechanism's spare storage (fleet policy sweeps
     * size this per chip): at most @p bits profiled bits ever get spare
     * slots, first-come-first-served in write order. Pass
     * RepairMechanism::kUnlimited to remove the budget.
     */
    void setRepairCapacity(std::size_t bits) { repair_.setCapacity(bits); }

    /** The repair mechanism (spare-capacity observability). */
    const RepairMechanism &repairMechanism() const { return repair_; }

    const ControllerStats &stats() const { return stats_; }

    bool hasSecondaryEcc() const { return secondaryEcc_.has_value(); }

  private:
    /** Shared write path without application-write accounting. */
    void writeInternal(std::size_t word, const gf2::BitVector &dataword);

    MemoryChip &chip_;
    std::optional<ecc::ExtendedHammingCode> secondaryEcc_;
    ErrorProfile profile_;
    RepairMechanism repair_;
    /** Secondary ECC check bits per word, held in reliable controller-side
     *  storage (check-bit storage is assumed error-free, as in the paper's
     *  evaluation of the reactive phase). */
    std::vector<gf2::BitVector> secondaryCheckBits_;
    ControllerStats stats_;
};

} // namespace harp::mem

#endif // HARP_MEMSYS_MEMORY_CONTROLLER_HH
