/**
 * @file
 * The error profile: the list of bits known to be at risk of
 * post-correction error, maintained by the profilers and consumed by the
 * repair mechanism (HARP Fig. 1/5).
 */

#ifndef HARP_MEMSYS_ERROR_PROFILE_HH
#define HARP_MEMSYS_ERROR_PROFILE_HH

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "gf2/bit_vector.hh"

namespace harp::mem {

/**
 * Bit-granularity error profile over an array of ECC words.
 *
 * Stores one bitmap of profiled (at-risk) data-bit positions per word.
 */
class ErrorProfile
{
  public:
    /**
     * @param num_words Number of ECC words covered.
     * @param word_bits Dataword length (profiled positions are data bits).
     */
    ErrorProfile(std::size_t num_words, std::size_t word_bits);

    /** Number of ECC words covered by the profile. */
    std::size_t numWords() const { return bitmaps_.size(); }
    /** Dataword length (profiled positions are data bits). */
    std::size_t wordBits() const { return wordBits_; }

    /** Record that (word, bit) is at risk. Idempotent. */
    void markAtRisk(std::size_t word, std::size_t bit);

    /**
     * OR a whole bitmap of at-risk positions into word @p word — the
     * bulk-placement hook used when a profiler's identified() set (or a
     * fleet sampler's per-word risk map) is installed in one shot.
     * @throws std::invalid_argument when sizes mismatch.
     */
    void markWordBitmap(std::size_t word, const gf2::BitVector &bits);

    /**
     * Keep only the first @p max_bits profiled bits in (word, bit)
     * order and clear the rest — the deterministic tie-break a
     * budgeted repair mechanism applies when a profile exceeds the
     * spare capacity it feeds.
     *
     * @return Number of profiled bits dropped.
     */
    std::size_t truncateToBudget(std::size_t max_bits);

    /** True iff (word, bit) has been profiled as at risk. */
    bool isAtRisk(std::size_t word, std::size_t bit) const;

    /** Bitmap of profiled positions in @p word. */
    const gf2::BitVector &wordBitmap(std::size_t word) const;

    /** Total profiled bit count across all words. */
    std::size_t totalAtRisk() const;

    /** Merge another profile (union). Shapes must match. */
    void merge(const ErrorProfile &other);

    /** Remove all entries. */
    void clear();

    /**
     * Serialize to a line-oriented text format: a header line
     * `harp-profile v1 <words> <bits>` followed by one
     * `<word> <bit> [bit...]` line per word with at-risk entries.
     * Profiles are built once per chip and must survive reboots to keep
     * feeding the repair mechanism (HARP section 1).
     */
    void save(std::ostream &os) const;

    /**
     * Parse a profile written by save().
     *
     * @throws std::invalid_argument on malformed input or shape
     *         mismatch with the stream header.
     */
    static ErrorProfile load(std::istream &is);

  private:
    std::size_t wordBits_;
    std::vector<gf2::BitVector> bitmaps_;
};

} // namespace harp::mem

#endif // HARP_MEMSYS_ERROR_PROFILE_HH
