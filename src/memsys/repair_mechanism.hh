/**
 * @file
 * Ideal bit-granularity repair mechanism (HARP sections 2.2 and 7.4).
 *
 * Models the "ideal bit-repair mechanism that perfectly repairs all
 * identified at-risk bits": profiled bits are remapped into reliable spare
 * storage inside the memory controller. Writes capture the true values of
 * profiled bits; reads overlay those values on the (possibly erroneous)
 * data coming back from the chip.
 */

#ifndef HARP_MEMSYS_REPAIR_MECHANISM_HH
#define HARP_MEMSYS_REPAIR_MECHANISM_HH

#include <cstddef>
#include <limits>
#include <map>
#include <vector>

#include "gf2/bit_vector.hh"
#include "memsys/error_profile.hh"

namespace harp::mem {

/**
 * Bit-remapping repair backed by an ErrorProfile.
 *
 * The profile may grow at any time (reactive profiling); newly profiled
 * bits start being repaired at the next write that captures their value.
 *
 * Spare storage may be budgeted (setCapacity): once the budget is
 * exhausted, further profiled bits are simply not repaired. Allocation
 * is first-come-first-served in write order — within one write, spare
 * slots go to profiled bits in ascending bit order — so exhaustion
 * behaviour is deterministic and testable.
 */
class RepairMechanism
{
  public:
    /** Capacity value meaning "no spare-storage budget". */
    static constexpr std::size_t kUnlimited =
        std::numeric_limits<std::size_t>::max();

    /**
     * @param num_words Number of ECC words covered.
     * @param word_bits Dataword length.
     */
    RepairMechanism(std::size_t num_words, std::size_t word_bits);

    std::size_t wordBits() const { return wordBits_; }

    /**
     * Budget the spare storage to @p max_spare_bits allocated bits
     * (kUnlimited by default). Shrinking below the bits already
     * allocated does not evict them — real spare rows cannot be
     * un-soldered — it only stops further allocation.
     */
    void setCapacity(std::size_t max_spare_bits) { capacity_ = max_spare_bits; }

    /** Current spare-storage budget (kUnlimited when unbudgeted). */
    std::size_t capacity() const { return capacity_; }

    /** True iff allocation has hit the budget: newly profiled bits can
     *  no longer be captured. */
    bool exhausted() const { return used_ >= capacity_; }

    /** Profiled bits that could not be allocated a spare slot because
     *  the budget was exhausted when their capturing write occurred. */
    std::size_t droppedAllocations() const { return dropped_; }

    /**
     * Observe a write: capture spare copies of all currently-profiled bits
     * of @p dataword (allocating new spare slots only while the budget
     * allows; already-allocated slots always refresh their value).
     */
    void onWrite(std::size_t word, const gf2::BitVector &dataword,
                 const ErrorProfile &profile);

    /**
     * Repair a read: overwrite profiled bits of @p dataword with their
     * spare copies (bits profiled after the last write have no spare copy
     * yet and are left untouched).
     *
     * @return Number of bits whose value was actually changed.
     */
    std::size_t repair(std::size_t word, gf2::BitVector &dataword) const;

    /** Number of spare bits currently allocated (repair capacity used). */
    std::size_t spareBitsUsed() const;

  private:
    std::size_t wordBits_;
    std::size_t capacity_ = kUnlimited;
    /** Spare bits allocated so far (== spareBitsUsed(), maintained
     *  incrementally for the budget check). */
    std::size_t used_ = 0;
    std::size_t dropped_ = 0;
    /** Per word: profiled position -> captured value. */
    std::vector<std::map<std::size_t, bool>> spares_;
};

} // namespace harp::mem

#endif // HARP_MEMSYS_REPAIR_MECHANISM_HH
