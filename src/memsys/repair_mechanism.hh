/**
 * @file
 * Ideal bit-granularity repair mechanism (HARP sections 2.2 and 7.4).
 *
 * Models the "ideal bit-repair mechanism that perfectly repairs all
 * identified at-risk bits": profiled bits are remapped into reliable spare
 * storage inside the memory controller. Writes capture the true values of
 * profiled bits; reads overlay those values on the (possibly erroneous)
 * data coming back from the chip.
 */

#ifndef HARP_MEMSYS_REPAIR_MECHANISM_HH
#define HARP_MEMSYS_REPAIR_MECHANISM_HH

#include <cstddef>
#include <map>
#include <vector>

#include "gf2/bit_vector.hh"
#include "memsys/error_profile.hh"

namespace harp::mem {

/**
 * Bit-remapping repair backed by an ErrorProfile.
 *
 * The profile may grow at any time (reactive profiling); newly profiled
 * bits start being repaired at the next write that captures their value.
 */
class RepairMechanism
{
  public:
    /**
     * @param num_words Number of ECC words covered.
     * @param word_bits Dataword length.
     */
    RepairMechanism(std::size_t num_words, std::size_t word_bits);

    std::size_t wordBits() const { return wordBits_; }

    /**
     * Observe a write: capture spare copies of all currently-profiled bits
     * of @p dataword.
     */
    void onWrite(std::size_t word, const gf2::BitVector &dataword,
                 const ErrorProfile &profile);

    /**
     * Repair a read: overwrite profiled bits of @p dataword with their
     * spare copies (bits profiled after the last write have no spare copy
     * yet and are left untouched).
     *
     * @return Number of bits whose value was actually changed.
     */
    std::size_t repair(std::size_t word, gf2::BitVector &dataword) const;

    /** Number of spare bits currently allocated (repair capacity used). */
    std::size_t spareBitsUsed() const;

  private:
    std::size_t wordBits_;
    /** Per word: profiled position -> captured value. */
    std::vector<std::map<std::size_t, bool>> spares_;
};

} // namespace harp::mem

#endif // HARP_MEMSYS_REPAIR_MECHANISM_HH
