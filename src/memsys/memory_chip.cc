#include "memsys/memory_chip.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace harp::mem {

MemoryChip::MemoryChip(ecc::HammingCode on_die_ecc, std::size_t num_words)
    : onDieEcc_(std::move(on_die_ecc)),
      storage_(num_words, gf2::BitVector(onDieEcc_.n())),
      faultModels_(num_words,
                   fault::WordFaultModel(onDieEcc_.n(), {}))
{
}

void
MemoryChip::setFaultModel(std::size_t word, fault::WordFaultModel model)
{
    if (model.wordBits() != onDieEcc_.n())
        throw std::invalid_argument("fault model size != codeword size");
    faultModels_.at(word) = std::move(model);
}

void
MemoryChip::addCellFault(std::size_t word, const fault::CellFault &cell)
{
    if (cell.position >= onDieEcc_.n())
        throw std::invalid_argument("cell fault position out of range");
    const fault::WordFaultModel &current = faultModels_.at(word);
    std::vector<fault::CellFault> faults = current.faults();
    bool merged = false;
    for (fault::CellFault &existing : faults) {
        if (existing.position == cell.position) {
            existing.probability =
                std::max(existing.probability, cell.probability);
            merged = true;
            break;
        }
    }
    if (!merged)
        faults.push_back(cell);
    faultModels_.at(word) = fault::WordFaultModel(
        onDieEcc_.n(), std::move(faults), current.technology());
}

std::vector<std::size_t>
MemoryChip::faultyWords() const
{
    std::vector<std::size_t> words;
    for (std::size_t w = 0; w < faultModels_.size(); ++w)
        if (faultModels_[w].numFaults() > 0)
            words.push_back(w);
    return words;
}

const fault::WordFaultModel &
MemoryChip::faultModel(std::size_t word) const
{
    return faultModels_.at(word);
}

void
MemoryChip::write(std::size_t word, const gf2::BitVector &dataword)
{
    assert(dataword.size() == onDieEcc_.k());
    storage_.at(word) = onDieEcc_.encode(dataword);
}

ChipReadResult
MemoryChip::read(std::size_t word) const
{
    const ecc::DecodeResult decoded = onDieEcc_.decode(storage_.at(word));
    return ChipReadResult{decoded.dataword};
}

gf2::BitVector
MemoryChip::readRaw(std::size_t word) const
{
    return storage_.at(word).slice(0, onDieEcc_.k());
}

std::size_t
MemoryChip::retentionTick(std::size_t word, common::Xoshiro256 &rng)
{
    const gf2::BitVector mask =
        faultModels_.at(word).injectErrors(storage_.at(word), rng);
    storage_.at(word) ^= mask;
    return mask.popcount();
}

void
MemoryChip::corrupt(std::size_t word, const gf2::BitVector &error_mask)
{
    assert(error_mask.size() == onDieEcc_.n());
    storage_.at(word) ^= error_mask;
}

const gf2::BitVector &
MemoryChip::storedCodeword(std::size_t word) const
{
    return storage_.at(word);
}

} // namespace harp::mem
