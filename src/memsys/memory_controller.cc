#include "memsys/memory_controller.hh"

#include <cassert>

namespace harp::mem {

MemoryController::MemoryController(
    MemoryChip &chip,
    std::optional<ecc::ExtendedHammingCode> secondary_ecc)
    : chip_(chip),
      secondaryEcc_(std::move(secondary_ecc)),
      profile_(chip.numWords(), chip.datawordBits()),
      repair_(chip.numWords(), chip.datawordBits())
{
    if (secondaryEcc_) {
        assert(secondaryEcc_->k() == chip.datawordBits());
        const std::size_t check_bits =
            secondaryEcc_->n() - secondaryEcc_->k();
        secondaryCheckBits_.assign(chip.numWords(),
                                   gf2::BitVector(check_bits));
    }
}

void
MemoryController::write(std::size_t word, const gf2::BitVector &dataword)
{
    ++stats_.writes;
    writeInternal(word, dataword);
}

void
MemoryController::writeInternal(std::size_t word,
                                const gf2::BitVector &dataword)
{
    repair_.onWrite(word, dataword, profile_);
    if (secondaryEcc_) {
        const gf2::BitVector codeword = secondaryEcc_->encode(dataword);
        secondaryCheckBits_.at(word) =
            codeword.slice(secondaryEcc_->k(), secondaryEcc_->n());
    }
    chip_.write(word, dataword);
}

ControllerReadResult
MemoryController::read(std::size_t word)
{
    ++stats_.reads;
    ControllerReadResult result;

    // 1. On-die ECC decode inside the chip.
    gf2::BitVector data = chip_.read(word).dataword;

    // 2. Bit-repair of profiled positions.
    stats_.repairedBits += repair_.repair(word, data);

    // 3. Reactive profiling through the secondary ECC.
    if (!secondaryEcc_) {
        result.dataword = std::move(data);
        return result;
    }

    const std::size_t k = secondaryEcc_->k();
    gf2::BitVector codeword(secondaryEcc_->n());
    for (std::size_t i = 0; i < k; ++i)
        codeword.set(i, data.get(i));
    const gf2::BitVector &check = secondaryCheckBits_.at(word);
    for (std::size_t i = 0; i < check.size(); ++i)
        codeword.set(k + i, check.get(i));

    const ecc::SecondaryDecodeResult decoded =
        secondaryEcc_->decode(codeword);
    switch (decoded.status) {
      case ecc::SecondaryDecodeStatus::NoError:
        result.dataword = std::move(data);
        return result;
      case ecc::SecondaryDecodeStatus::CorrectedSingle:
        if (decoded.correctedPosition && *decoded.correctedPosition < k) {
            // A genuine single data-bit error: correct it and record the
            // bit as at-risk (first-failure reactive identification).
            ++stats_.secondaryCorrections;
            if (!profile_.isAtRisk(word, *decoded.correctedPosition)) {
                profile_.markAtRisk(word, *decoded.correctedPosition);
                ++stats_.reactiveIdentifications;
                result.newlyProfiledBit = decoded.correctedPosition;
            }
            result.dataword = decoded.dataword;
            return result;
        }
        // The decoder blamed a check bit, but check bits live in reliable
        // controller storage: the real error pattern had >= 3 data errors.
        ++stats_.uncorrectableEvents;
        result.dataword = std::move(data);
        result.corrupt = true;
        return result;
      case ecc::SecondaryDecodeStatus::DetectedUncorrectable:
      default:
        ++stats_.uncorrectableEvents;
        result.dataword = std::move(data);
        result.corrupt = true;
        return result;
    }
}

gf2::BitVector
MemoryController::readRaw(std::size_t word) const
{
    return chip_.readRaw(word);
}

ControllerReadResult
MemoryController::scrub(std::size_t word)
{
    ++stats_.scrubs;
    // Detect whether the stored codeword currently carries raw *data*
    // errors: compare the bypass view against the corrected data. Note
    // that a controller-side scrubber cannot see parity-cell errors (the
    // bypass path hides parity, section 5.2), so parity-only corruption
    // persists until the next write — a faithful consequence of on-die
    // ECC opacity.
    const gf2::BitVector raw_before = chip_.readRaw(word);
    ControllerReadResult result = read(word);
    if (result.corrupt)
        return result; // cannot scrub what cannot be corrected
    if (!(raw_before == result.dataword)) {
        // Write the clean value back, resetting accumulated raw errors.
        writeInternal(word, result.dataword);
        ++stats_.scrubWritebacks;
    }
    return result;
}

std::size_t
MemoryController::scrubAll()
{
    std::size_t corrupt_words = 0;
    for (std::size_t w = 0; w < chip_.numWords(); ++w)
        if (scrub(w).corrupt)
            ++corrupt_words;
    return corrupt_words;
}

} // namespace harp::mem
