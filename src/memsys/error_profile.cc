#include "memsys/error_profile.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace harp::mem {

ErrorProfile::ErrorProfile(std::size_t num_words, std::size_t word_bits)
    : wordBits_(word_bits),
      bitmaps_(num_words, gf2::BitVector(word_bits))
{
}

void
ErrorProfile::markAtRisk(std::size_t word, std::size_t bit)
{
    bitmaps_.at(word).set(bit, true);
}

void
ErrorProfile::markWordBitmap(std::size_t word, const gf2::BitVector &bits)
{
    if (bits.size() != wordBits_)
        throw std::invalid_argument(
            "ErrorProfile::markWordBitmap: size mismatch");
    bitmaps_.at(word) |= bits;
}

std::size_t
ErrorProfile::truncateToBudget(std::size_t max_bits)
{
    std::size_t kept = 0, dropped = 0;
    for (auto &bitmap : bitmaps_) {
        if (kept >= max_bits && !bitmap.isZero()) {
            dropped += bitmap.popcount();
            bitmap.fill(false);
            continue;
        }
        const std::size_t here = bitmap.popcount();
        if (kept + here <= max_bits) {
            kept += here;
            continue;
        }
        // Partial word: keep the lowest positions up to the budget.
        gf2::BitVector truncated(bitmap.size());
        bitmap.forEachSetBit([&](std::size_t bit) {
            if (kept < max_bits) {
                truncated.set(bit, true);
                ++kept;
            } else {
                ++dropped;
            }
        });
        bitmap = std::move(truncated);
    }
    return dropped;
}

bool
ErrorProfile::isAtRisk(std::size_t word, std::size_t bit) const
{
    return bitmaps_.at(word).get(bit);
}

const gf2::BitVector &
ErrorProfile::wordBitmap(std::size_t word) const
{
    return bitmaps_.at(word);
}

std::size_t
ErrorProfile::totalAtRisk() const
{
    std::size_t total = 0;
    for (const auto &bitmap : bitmaps_)
        total += bitmap.popcount();
    return total;
}

void
ErrorProfile::merge(const ErrorProfile &other)
{
    if (other.numWords() != numWords() || other.wordBits_ != wordBits_)
        throw std::invalid_argument("ErrorProfile::merge: shape mismatch");
    for (std::size_t w = 0; w < bitmaps_.size(); ++w)
        bitmaps_[w] |= other.bitmaps_[w];
}

void
ErrorProfile::clear()
{
    for (auto &bitmap : bitmaps_)
        bitmap.fill(false);
}

void
ErrorProfile::save(std::ostream &os) const
{
    os << "harp-profile v1 " << numWords() << " " << wordBits_ << "\n";
    for (std::size_t w = 0; w < bitmaps_.size(); ++w) {
        if (bitmaps_[w].isZero())
            continue;
        os << w;
        bitmaps_[w].forEachSetBit(
            [&](std::size_t bit) { os << " " << bit; });
        os << "\n";
    }
}

ErrorProfile
ErrorProfile::load(std::istream &is)
{
    std::string magic, version;
    std::size_t num_words = 0, word_bits = 0;
    if (!(is >> magic >> version >> num_words >> word_bits) ||
        magic != "harp-profile" || version != "v1") {
        throw std::invalid_argument("ErrorProfile::load: bad header");
    }
    ErrorProfile profile(num_words, word_bits);
    std::string line;
    std::getline(is, line); // consume the header's newline
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::size_t word = 0;
        if (!(fields >> word) || word >= num_words)
            throw std::invalid_argument("ErrorProfile::load: bad word");
        std::size_t bit = 0;
        while (fields >> bit) {
            if (bit >= word_bits)
                throw std::invalid_argument(
                    "ErrorProfile::load: bad bit");
            profile.markAtRisk(word, bit);
        }
        if (!fields.eof())
            throw std::invalid_argument("ErrorProfile::load: bad line");
    }
    return profile;
}

} // namespace harp::mem
