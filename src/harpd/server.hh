/**
 * @file
 * The resident profiling service: one warm process multiplexing many
 * tenants' campaign submissions onto a shared thread pool.
 *
 * Layering (see docs/ARCHITECTURE.md):
 *
 *   accept loop ── per-connection reader thread ── verb dispatch
 *        │                                             │ submit
 *        │                              campaign worker thread
 *        │                        CampaignSession (runner/session.hh)
 *        │                   sink: checkpoint + results + client queue
 *        └── client stream:  BoundedQueue -> socket (backpressure)
 *
 * Contracts:
 *  - A served campaign's JSONL and summary.json are byte-identical to
 *    a batch `harp_run --no-timings` of the same specs/seed/repeat at
 *    any thread count.
 *  - Completed jobs are checkpointed (harpd/checkpoint.hh) before the
 *    campaign finishes; a killed daemon resumes them on restart
 *    without recomputation, detached from any client.
 *  - A disconnected client never aborts its campaign: the output
 *    queue closes, producers drop their events, and the campaign runs
 *    to completion on disk (exactly like a resume).
 *  - Graceful shutdown drains in-flight jobs: sessions stop at the
 *    next wave boundary, running jobs finish and reach the
 *    checkpoint, then the process exits; unfinished campaigns resume
 *    on the next start.
 */

#ifndef HARP_HARPD_SERVER_HH
#define HARP_HARPD_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.hh"
#include "common/thread_pool.hh"
#include "harpd/checkpoint.hh"
#include "harpd/net.hh"
#include "harpd/protocol.hh"
#include "runner/registry.hh"

namespace harp::harpd {

struct ServerConfig
{
    /** AF_UNIX socket path the daemon listens on. */
    std::string socketPath;
    /** Root for checkpoints/ and results/<campaign>/. */
    std::string dataDir;
    /** Shared pool width; 0 = hardware concurrency. */
    std::size_t threads = 0;
    /** Per-client output queue capacity (events) before producers
     *  block — the backpressure bound for slow consumers. */
    std::size_t clientQueueCapacity = 256;
    /** Experiment catalogue; nullptr = builtinRegistry(). */
    const runner::Registry *registry = nullptr;
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket, then resume every campaign with a surviving
     * checkpoint (each on its own detached worker).
     * @throws std::runtime_error when binding or data-dir creation
     *         fails.
     */
    void start();

    /** Accept/serve until requestStop(); joins all workers before
     *  returning. */
    void serve();

    /** Ask serve() to stop. Async-signal-safe (writes one byte to a
     *  self-pipe); callable from any thread or a signal handler. */
    void requestStop();

    /** Campaigns resumed by start() (for logs/tests). */
    std::size_t resumedCampaigns() const { return resumed_; }

    /** Currently open client connections (leak witness for tests). */
    std::size_t activeConnections() const
    {
        return connectionCount_.load();
    }

  private:
    /** Event queue feeding one submit stream. */
    using EventQueue = common::BoundedQueue<std::string>;

    enum class CampaignState
    {
        Running,
        Done,
        Failed,
        Cancelled,
    };

    struct Campaign
    {
        CheckpointHeader header;
        std::vector<const runner::ExperimentSpec *> specs;
        std::vector<CheckpointRecord> restored;
        CampaignState state = CampaignState::Running;
        std::string error;
        std::size_t totalJobs = 0;
        std::atomic<std::size_t> completedJobs{0};
        std::atomic<bool> cancel{false};
        /** Null for resumed (detached) campaigns and after the
         *  client's connection goes away. */
        std::shared_ptr<EventQueue> clientQueue;
        std::thread worker;
        std::mutex mutex; ///< guards state/error transitions
    };

    void connectionLoop(Fd fd);
    bool handleRequest(int fd, const std::string &line);
    void handleSubmit(int fd, const Request &request);
    void runCampaign(const std::shared_ptr<Campaign> &campaign);
    std::string campaignStatusLine(const std::string &id,
                                   const Campaign &campaign);
    std::string checkpointPath(const std::string &id) const;
    std::string resultsDir(const std::string &id) const;
    static const char *stateName(CampaignState state);

    ServerConfig config_;
    const runner::Registry *registry_;
    std::unique_ptr<common::ThreadPool> pool_;
    std::size_t poolThreads_ = 1;
    Fd listenFd_;
    Fd stopPipeRead_;
    Fd stopPipeWrite_;
    std::atomic<bool> stopping_{false};
    std::size_t resumed_ = 0;

    mutable std::mutex mutex_; ///< guards campaigns_ and connections_
    std::map<std::string, std::shared_ptr<Campaign>> campaigns_;
    std::vector<std::thread> connections_;
    std::vector<int> connectionFds_;
    std::atomic<std::size_t> connectionCount_{0};
};

} // namespace harp::harpd

#endif // HARP_HARPD_SERVER_HH
