/**
 * @file
 * The resident profiling service: one warm process multiplexing many
 * tenants' campaign submissions onto a shared thread pool.
 *
 * Layering (see docs/ARCHITECTURE.md):
 *
 *   accept loop ── per-connection reader thread ── verb dispatch
 *        │                                             │ submit
 *        │                              campaign worker thread
 *        │                        CampaignSession (runner/session.hh)
 *        │                   sink: checkpoint + results + event log
 *        └── client stream:  BoundedQueue -> socket (backpressure)
 *
 * Contracts:
 *  - A served campaign's JSONL and summary.json are byte-identical to
 *    a batch `harp_run --no-timings` of the same specs/seed/repeat at
 *    any thread count.
 *  - Completed jobs are checkpointed — written *and fsynced* through
 *    the common::io seam — before any client sees them; a killed
 *    daemon resumes them on restart without recomputation, detached
 *    from any client.
 *  - Degrade, never corrupt: every durable-path I/O failure (ENOSPC,
 *    EIO, a failed fsync or publish rename) moves the campaign to
 *    `degraded` with a structured status (errno name + retriable
 *    flag), keeps its checkpoint, and stays resumable via the `resume`
 *    verb once the fault clears. Only genuine computation failures
 *    reach `failed`.
 *  - Every deterministic streamed event carries a `seq` stable across
 *    kill/resume; `subscribe from=<seq>` replays the in-memory event
 *    log so a re-attaching client loses and duplicates nothing.
 *  - Per-tenant admission control bounds concurrent campaigns and
 *    in-flight jobs; oversubscribed submits are shed with a
 *    structured `quota_exceeded` + `retry_after_ms` reply instead of
 *    queueing unboundedly. A watchdog marks campaigns that stop
 *    making progress as `stalled` in status rather than letting
 *    clients hang on a wedged daemon.
 *  - Overload brownout instead of a cliff: admitted campaigns share
 *    the pool through a weighted fair governor (per-tenant weights x
 *    priority classes, stride-selected at wave granularity, no
 *    starvation; background-class campaigns are narrowed first). With
 *    an admission queue configured, over-quota submits park with a
 *    `queued` event (position + retry_after_ms estimate) and admit in
 *    arrival order as quota frees; only a full queue sheds. A
 *    campaign's `deadline_ms` expires it cooperatively at the next
 *    wave boundary into the resumable `deadline_exceeded` state —
 *    checkpoint kept, no torn output.
 *  - A disconnected client never aborts its campaign: the output
 *    queue closes, producers drop their events, and the campaign runs
 *    to completion on disk (exactly like a resume).
 *  - Graceful shutdown drains in-flight jobs: sessions stop at the
 *    next wave boundary, running jobs finish and reach the
 *    checkpoint, then the process exits; unfinished campaigns resume
 *    on the next start.
 */

#ifndef HARP_HARPD_SERVER_HH
#define HARP_HARPD_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.hh"
#include "common/fair_scheduler.hh"
#include "common/io.hh"
#include "common/thread_pool.hh"
#include "harpd/checkpoint.hh"
#include "harpd/net.hh"
#include "harpd/protocol.hh"
#include "runner/registry.hh"

namespace harp::harpd {

struct ServerConfig
{
    /** AF_UNIX socket path the daemon listens on. */
    std::string socketPath;
    /** Root for checkpoints/ and results/<campaign>/. */
    std::string dataDir;
    /** Shared pool width; 0 = hardware concurrency. */
    std::size_t threads = 0;
    /** Per-client output queue capacity (events) before producers
     *  block — the backpressure bound for slow consumers. */
    std::size_t clientQueueCapacity = 256;
    /** Experiment catalogue; nullptr = builtinRegistry(). */
    const runner::Registry *registry = nullptr;
    /** Fault schedule applied to every durable write (tests/chaos
     *  smoke); nullptr = no injection. Not owned. */
    common::io::FaultPlan *ioFaultPlan = nullptr;
    /** Admission control: per-tenant concurrent-campaign cap
     *  (0 = unlimited). */
    std::size_t maxCampaignsPerTenant = 0;
    /** Admission control: per-tenant in-flight job cap
     *  (0 = unlimited). */
    std::size_t maxInflightJobsPerTenant = 0;
    /** Hint in `quota_exceeded` shed replies; also the per-position
     *  unit of the `queued` event's retry_after_ms estimate. */
    std::size_t shedRetryAfterMs = 1000;
    /** Admission queue bound: over-quota submits park (state `queued`)
     *  until quota frees instead of shedding, up to this many; a full
     *  queue sheds. 0 disables queueing (shed immediately — the
     *  pre-brownout behavior). */
    std::size_t admissionQueueLimit = 0;
    /** Fair-scheduler weight per tenant; unlisted tenants get
     *  defaultTenantWeight. Weights are throughput shares: a weight-3
     *  tenant gets 3x the pool slots of a weight-1 tenant while both
     *  are backlogged. */
    std::map<std::string, std::size_t> tenantWeights;
    std::size_t defaultTenantWeight = 1;
    /** Watchdog: a running campaign with no completed job or streamed
     *  event for this long is flagged `stalled` (0 = disabled). */
    std::size_t stallTimeoutMs = 0;
    /** Watchdog poll cadence. */
    std::size_t watchdogPollMs = 200;
    /** fsync each checkpoint record (tests may disable for speed;
     *  the daemon always keeps the default on). */
    bool fsyncCheckpoints = true;
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket, sweep stale staging dirs, then resume every
     * campaign with a surviving checkpoint (each on its own detached
     * worker). A hostile checkpoints/ or results/ entry is set aside
     * or skipped — never thrown out of the server.
     * @throws std::runtime_error when binding or data-dir creation
     *         fails.
     */
    void start();

    /** Accept/serve until requestStop(); joins all workers before
     *  returning. */
    void serve();

    /** Ask serve() to stop. Async-signal-safe (writes one byte to a
     *  self-pipe); callable from any thread or a signal handler. */
    void requestStop();

    /** Ask serve() to write a checkpoint/status snapshot
     *  (<dataDir>/status.json) without stopping — the SIGHUP verb.
     *  Async-signal-safe, same self-pipe discipline as requestStop().
     *  Completed-job records are already fsynced per record, so the
     *  snapshot is the only state not yet on disk. */
    void requestStatusSnapshot();

    /** Campaigns resumed by start() (for logs/tests). */
    std::size_t resumedCampaigns() const { return resumed_; }

    /** Currently open client connections (leak witness for tests). */
    std::size_t activeConnections() const
    {
        return connectionCount_.load();
    }

  private:
    /** Event queue feeding one submit stream. */
    using EventQueue = common::BoundedQueue<std::string>;

    enum class CampaignState
    {
        /** Parked in the admission queue; not yet charged to the
         *  tenant, promoted in arrival order as quota frees. */
        Queued,
        Running,
        Done,
        Failed,
        Cancelled,
        /** A durable-path I/O failure: checkpoint intact, resumable
         *  via the `resume` verb once the fault clears. */
        Degraded,
        /** deadline_ms expired: stopped at a wave boundary, checkpoint
         *  intact, resumable (optionally with a new deadline). */
        DeadlineExceeded,
    };

    struct Campaign
    {
        CheckpointHeader header;
        std::vector<const runner::ExperimentSpec *> specs;
        std::vector<CheckpointRecord> restored;
        CampaignState state = CampaignState::Running;
        std::string error;
        /** Degraded detail: symbolic errno + whether waiting-and-
         *  resuming can clear it (ENOSPC yes, EIO no). */
        std::string errnoName;
        bool retriable = false;
        /** Guards a degraded→running transition so concurrent
         *  `resume` requests cannot both restart the campaign. */
        bool resumeInFlight = false;
        std::size_t totalJobs = 0;
        /** Jobs charged against the tenant's quota at admission. */
        std::size_t admittedJobs = 0;
        /** True once the tenant ledger was actually charged (false
         *  while parked in the admission queue). */
        std::atomic<bool> chargedAdmission{false};
        std::atomic<std::size_t> completedJobs{0};
        std::atomic<bool> cancel{false};
        /** Deadline as a steady-clock deadline in ms; 0 = none. Not
         *  persisted: deadlines belong to callers, not computations. */
        std::atomic<std::uint64_t> deadlineAtMs{0};
        /** Set (once) by the watchdog when the deadline passes; turns
         *  the cooperative cancel into `deadline_exceeded`. */
        std::atomic<bool> deadlineExpired{false};
        /** Fair-scheduler waves granted so far (progress events). */
        std::atomic<std::size_t> waveIndex{0};
        /** Position in the admission queue while state == Queued. */
        std::atomic<std::size_t> queuePosition{0};
        /** Replayable event log: entry i is the wire line whose
         *  `seq` is i. Rebuilt identically on resume (restored lines
         *  re-enter the sink in job order), so `subscribe from=` is
         *  stable across kill/resume and degraded→resume. */
        std::vector<std::string> log;
        bool logComplete = false;
        std::condition_variable logCv;
        /** Watchdog: last progress tick (steady-clock ms). */
        std::atomic<std::uint64_t> lastProgressMs{0};
        std::atomic<bool> stalled{false};
        /** Null for resumed (detached) campaigns and after the
         *  client's connection goes away. */
        std::shared_ptr<EventQueue> clientQueue;
        std::thread worker;
        std::mutex mutex; ///< guards state/error/log transitions
    };

    /** Per-tenant admission ledger (guarded by mutex_). */
    struct TenantUsage
    {
        std::size_t campaigns = 0;
        std::size_t jobs = 0;
    };

    void connectionLoop(Fd fd);
    bool handleRequest(int fd, const std::string &line);
    void handleSubmit(int fd, const Request &request);
    bool handleSubscribe(int fd, const Request &request);
    void handleResume(int fd, const Request &request);
    void runCampaign(const std::shared_ptr<Campaign> &campaign);
    /** Block the campaign worker until promotion out of the admission
     *  queue (true) or a cancel/deadline/shutdown while parked (false,
     *  terminal state already published). */
    bool awaitAdmission(const std::shared_ptr<Campaign> &campaign);
    /** Admit queued campaigns that now fit their tenant's quota, in
     *  arrival order (skipping over ones that still don't fit), and
     *  refresh queue positions. Caller holds mutex_. */
    void promoteQueuedLocked();
    /** Write <dataDir>/status.json atomically (SIGHUP). */
    void writeStatusSnapshot();
    /** Stamp @p event with the next seq, append it to the replayable
     *  log, and forward it to the submit stream (if any). */
    void publishEvent(const std::shared_ptr<Campaign> &campaign,
                      runner::JsonValue event,
                      const std::shared_ptr<EventQueue> &queue);
    void releaseAdmission(const Campaign &campaign);
    std::size_t tenantWeight(const std::string &tenant) const;
    void watchdogLoop();
    std::string campaignStatusLine(const std::string &id,
                                   const Campaign &campaign);
    std::string checkpointPath(const std::string &id) const;
    std::string resultsDir(const std::string &id) const;
    static const char *stateName(CampaignState state);

    ServerConfig config_;
    const runner::Registry *registry_;
    std::unique_ptr<common::ThreadPool> pool_;
    std::unique_ptr<common::FairScheduler> fair_;
    std::size_t poolThreads_ = 1;
    Fd listenFd_;
    Fd stopPipeRead_;
    Fd stopPipeWrite_;
    Fd snapshotPipeRead_;
    Fd snapshotPipeWrite_;
    std::atomic<bool> stopping_{false};
    std::size_t resumed_ = 0;
    std::thread watchdog_;

    mutable std::mutex mutex_; ///< guards campaigns_/connections_/tenants_
    std::map<std::string, std::shared_ptr<Campaign>> campaigns_;
    std::map<std::string, TenantUsage> tenants_;
    /** Over-quota submits awaiting promotion, arrival order. */
    std::deque<std::shared_ptr<Campaign>> admissionQueue_;
    std::vector<std::thread> connections_;
    std::vector<int> connectionFds_;
    std::atomic<std::size_t> connectionCount_{0};
};

} // namespace harp::harpd

#endif // HARP_HARPD_SERVER_HH
