/**
 * @file
 * `harpd` — the resident campaign service.
 *
 *   harpd --socket PATH --data DIR [--threads N] [--queue N]
 *         [--max-campaigns N] [--max-jobs N] [--admission-queue N]
 *         [--tenant-weight NAME=W]... [--default-weight W]
 *         [--stall-ms N] [--fault-plan SPEC]
 *
 * Listens on an AF_UNIX socket for newline-delimited JSON requests
 * (src/harpd/protocol.hh), multiplexes submitted campaigns onto one
 * shared thread pool, checkpoints completed jobs under DIR/checkpoints
 * and publishes finished campaigns under DIR/results/<campaign>/.
 * SIGINT/SIGTERM (or a client `shutdown` verb) drain in-flight jobs and
 * exit; interrupted campaigns resume on the next start. SIGHUP writes a
 * status snapshot (DIR/status.json) without interrupting service.
 *
 * --max-campaigns/--max-jobs bound each tenant's concurrent campaigns
 * and in-flight jobs (overload is shed with `quota_exceeded` +
 * `retry_after_ms`); --admission-queue turns the hard shed into a
 * bounded FIFO park (`queued` events, promoted as quota frees).
 * --tenant-weight sets a tenant's share of the pool under contention
 * (stride-fair; repeatable), --default-weight the share of everyone
 * else. --stall-ms arms the wedged-campaign watchdog.
 * --fault-plan injects deterministic I/O faults into every durable
 * write (see common/io.hh for the spec grammar) — the chaos tier and
 * the verify.sh chaos smoke drive the daemon through ENOSPC/EIO/torn-
 * write schedules with it.
 */

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/io.hh"
#include "harpd/server.hh"

namespace {

harp::harpd::Server *g_server = nullptr;

void
handleStopSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop(); // async-signal-safe (self-pipe)
}

void
handleHangup(int)
{
    if (g_server != nullptr)
        g_server->requestStatusSnapshot(); // async-signal-safe
}

/** Install @p handler via sigaction with SA_RESTART set explicitly:
 *  the serve loop must never see spurious EINTR from a status-snapshot
 *  signal, and std::signal leaves restart semantics implementation-
 *  defined. Returns false (with errno intact) on failure. */
bool
installHandler(int signo, void (*handler)(int))
{
    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_handler = handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    return sigaction(signo, &action, nullptr) == 0;
}

int
usage(std::ostream &out, int code)
{
    out << "usage: harpd --socket PATH --data DIR [--threads N] "
           "[--queue N]\n"
           "             [--max-campaigns N] [--max-jobs N] "
           "[--admission-queue N]\n"
           "             [--tenant-weight NAME=W]... [--default-weight "
           "W]\n"
           "             [--stall-ms N] [--fault-plan SPEC]\n"
           "  --socket PATH      AF_UNIX socket to listen on "
           "(required)\n"
           "  --data DIR         checkpoint/result root (required)\n"
           "  --threads N        shared pool width (default: hardware "
           "concurrency)\n"
           "  --queue N          per-client event queue capacity "
           "(default 256)\n"
           "  --max-campaigns N  per-tenant concurrent-campaign cap "
           "(default: unlimited)\n"
           "  --max-jobs N       per-tenant in-flight job cap "
           "(default: unlimited)\n"
           "  --admission-queue N  park up to N over-quota campaigns "
           "instead of shedding\n"
           "                     (default 0: shed immediately)\n"
           "  --tenant-weight NAME=W  fair-share weight for tenant "
           "NAME (repeatable)\n"
           "  --default-weight W  weight for tenants not named above "
           "(default 1)\n"
           "  --stall-ms N       flag campaigns stalled for N ms "
           "(default: off)\n"
           "  --fault-plan SPEC  inject I/O faults, e.g. "
           "'write#8+=ENOSPC' (testing)\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    harp::harpd::ServerConfig config;
    harp::common::io::FaultPlan fault_plan;
    bool have_fault_plan = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--socket" && has_value) {
            config.socketPath = argv[++i];
        } else if (arg == "--data" && has_value) {
            config.dataDir = argv[++i];
        } else if (arg == "--threads" && has_value) {
            config.threads = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--queue" && has_value) {
            config.clientQueueCapacity =
                std::strtoul(argv[++i], nullptr, 10);
            if (config.clientQueueCapacity == 0)
                config.clientQueueCapacity = 1;
        } else if (arg == "--max-campaigns" && has_value) {
            config.maxCampaignsPerTenant =
                std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--max-jobs" && has_value) {
            config.maxInflightJobsPerTenant =
                std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--admission-queue" && has_value) {
            config.admissionQueueLimit =
                std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--tenant-weight" && has_value) {
            const std::string spec = argv[++i];
            const std::size_t eq = spec.find('=');
            std::size_t weight = 0;
            if (eq != std::string::npos && eq > 0)
                weight = std::strtoul(spec.c_str() + eq + 1, nullptr, 10);
            if (weight == 0) {
                std::cerr << "harpd: --tenant-weight wants NAME=W with "
                             "W >= 1, got '"
                          << spec << "'\n";
                return usage(std::cerr, 2);
            }
            config.tenantWeights[spec.substr(0, eq)] = weight;
        } else if (arg == "--default-weight" && has_value) {
            config.defaultTenantWeight =
                std::strtoul(argv[++i], nullptr, 10);
            if (config.defaultTenantWeight == 0)
                config.defaultTenantWeight = 1;
        } else if (arg == "--stall-ms" && has_value) {
            config.stallTimeoutMs = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--fault-plan" && has_value) {
            try {
                fault_plan =
                    harp::common::io::FaultPlan::parse(argv[++i]);
                have_fault_plan = true;
            } catch (const std::exception &e) {
                std::cerr << "harpd: " << e.what() << "\n";
                return usage(std::cerr, 2);
            }
        } else {
            std::cerr << "harpd: unknown or incomplete flag '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }
    if (config.socketPath.empty() || config.dataDir.empty()) {
        std::cerr << "harpd: --socket and --data are required\n";
        return usage(std::cerr, 2);
    }
    if (have_fault_plan) {
        config.ioFaultPlan = &fault_plan;
        std::cerr << "harpd: fault plan armed: "
                  << fault_plan.describe() << "\n";
    }

    try {
        harp::harpd::Server server(std::move(config));
        g_server = &server;
        if (!installHandler(SIGINT, handleStopSignal) ||
            !installHandler(SIGTERM, handleStopSignal) ||
            !installHandler(SIGHUP, handleHangup) ||
            !installHandler(SIGPIPE, SIG_IGN)) {
            std::cerr << "harpd: fatal: sigaction: "
                      << std::strerror(errno) << "\n";
            return 1;
        }
        server.start();
        if (server.resumedCampaigns() > 0)
            std::cerr << "harpd: resumed " << server.resumedCampaigns()
                      << " checkpointed campaign(s)\n";
        // The line the smoke test and the integration tier wait for.
        std::cout << "harpd: listening" << std::endl;
        server.serve();
        g_server = nullptr;
        std::cerr << "harpd: drained, exiting\n";
    } catch (const std::exception &e) {
        std::cerr << "harpd: fatal: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
