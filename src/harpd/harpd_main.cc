/**
 * @file
 * `harpd` — the resident campaign service.
 *
 *   harpd --socket PATH --data DIR [--threads N] [--queue N]
 *         [--max-campaigns N] [--max-jobs N] [--stall-ms N]
 *         [--fault-plan SPEC]
 *
 * Listens on an AF_UNIX socket for newline-delimited JSON requests
 * (src/harpd/protocol.hh), multiplexes submitted campaigns onto one
 * shared thread pool, checkpoints completed jobs under DIR/checkpoints
 * and publishes finished campaigns under DIR/results/<campaign>/.
 * SIGINT/SIGTERM (or a client `shutdown` verb) drain in-flight jobs and
 * exit; interrupted campaigns resume on the next start.
 *
 * --max-campaigns/--max-jobs bound each tenant's concurrent campaigns
 * and in-flight jobs (overload is shed with `quota_exceeded` +
 * `retry_after_ms`). --stall-ms arms the wedged-campaign watchdog.
 * --fault-plan injects deterministic I/O faults into every durable
 * write (see common/io.hh for the spec grammar) — the chaos tier and
 * the verify.sh chaos smoke drive the daemon through ENOSPC/EIO/torn-
 * write schedules with it.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/io.hh"
#include "harpd/server.hh"

namespace {

harp::harpd::Server *g_server = nullptr;

void
handleSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop(); // async-signal-safe (self-pipe)
}

int
usage(std::ostream &out, int code)
{
    out << "usage: harpd --socket PATH --data DIR [--threads N] "
           "[--queue N]\n"
           "             [--max-campaigns N] [--max-jobs N] "
           "[--stall-ms N]\n"
           "             [--fault-plan SPEC]\n"
           "  --socket PATH      AF_UNIX socket to listen on "
           "(required)\n"
           "  --data DIR         checkpoint/result root (required)\n"
           "  --threads N        shared pool width (default: hardware "
           "concurrency)\n"
           "  --queue N          per-client event queue capacity "
           "(default 256)\n"
           "  --max-campaigns N  per-tenant concurrent-campaign cap "
           "(default: unlimited)\n"
           "  --max-jobs N       per-tenant in-flight job cap "
           "(default: unlimited)\n"
           "  --stall-ms N       flag campaigns stalled for N ms "
           "(default: off)\n"
           "  --fault-plan SPEC  inject I/O faults, e.g. "
           "'write#8+=ENOSPC' (testing)\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    harp::harpd::ServerConfig config;
    harp::common::io::FaultPlan fault_plan;
    bool have_fault_plan = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--socket" && has_value) {
            config.socketPath = argv[++i];
        } else if (arg == "--data" && has_value) {
            config.dataDir = argv[++i];
        } else if (arg == "--threads" && has_value) {
            config.threads = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--queue" && has_value) {
            config.clientQueueCapacity =
                std::strtoul(argv[++i], nullptr, 10);
            if (config.clientQueueCapacity == 0)
                config.clientQueueCapacity = 1;
        } else if (arg == "--max-campaigns" && has_value) {
            config.maxCampaignsPerTenant =
                std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--max-jobs" && has_value) {
            config.maxInflightJobsPerTenant =
                std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--stall-ms" && has_value) {
            config.stallTimeoutMs = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--fault-plan" && has_value) {
            try {
                fault_plan =
                    harp::common::io::FaultPlan::parse(argv[++i]);
                have_fault_plan = true;
            } catch (const std::exception &e) {
                std::cerr << "harpd: " << e.what() << "\n";
                return usage(std::cerr, 2);
            }
        } else {
            std::cerr << "harpd: unknown or incomplete flag '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }
    if (config.socketPath.empty() || config.dataDir.empty()) {
        std::cerr << "harpd: --socket and --data are required\n";
        return usage(std::cerr, 2);
    }
    if (have_fault_plan) {
        config.ioFaultPlan = &fault_plan;
        std::cerr << "harpd: fault plan armed: "
                  << fault_plan.describe() << "\n";
    }

    try {
        harp::harpd::Server server(std::move(config));
        g_server = &server;
        std::signal(SIGINT, handleSignal);
        std::signal(SIGTERM, handleSignal);
        std::signal(SIGPIPE, SIG_IGN);
        server.start();
        if (server.resumedCampaigns() > 0)
            std::cerr << "harpd: resumed " << server.resumedCampaigns()
                      << " checkpointed campaign(s)\n";
        // The line the smoke test and the integration tier wait for.
        std::cout << "harpd: listening" << std::endl;
        server.serve();
        g_server = nullptr;
        std::cerr << "harpd: drained, exiting\n";
    } catch (const std::exception &e) {
        std::cerr << "harpd: fatal: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
