/**
 * @file
 * Thin POSIX plumbing for harpd's newline-delimited JSON transport:
 * AF_UNIX stream sockets, full-buffer sends that never raise SIGPIPE,
 * and a buffered line reader with an explicit oversized-line outcome.
 *
 * Kept free of protocol knowledge so both the server and the client
 * (and the fault-injection tests, which need raw access to half-close
 * and mid-line disconnects) build on the same primitives.
 */

#ifndef HARP_HARPD_NET_HH
#define HARP_HARPD_NET_HH

#include <cstddef>
#include <string>

namespace harp::harpd {

/** Owning file-descriptor wrapper (close-on-destroy, movable). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    /** Release ownership without closing. */
    int release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Bind + listen on an AF_UNIX stream socket at @p path (any stale
 * socket file is unlinked first).
 * @throws std::runtime_error on failure (path too long, bind error).
 */
Fd listenUnix(const std::string &path, int backlog = 16);

/** Connect to the AF_UNIX socket at @p path; invalid Fd on failure.
 *  With @p timeout_ms > 0 the connect itself is bounded (nonblocking
 *  connect + poll); 0 keeps the classic blocking behavior. When the
 *  deadline (not some other error) killed the attempt, @p timed_out
 *  is set. */
Fd connectUnix(const std::string &path, int timeout_ms = 0,
               bool *timed_out = nullptr);

/** Bound every subsequent recv/send on @p fd to @p timeout_ms
 *  (SO_RCVTIMEO/SO_SNDTIMEO); 0 clears the deadline. */
bool setIoTimeout(int fd, int timeout_ms);

/** Write all of @p data (MSG_NOSIGNAL — a dead peer is a false return,
 *  never a SIGPIPE). */
bool sendAll(int fd, const std::string &data);

/**
 * Buffered reader splitting a socket stream into '\n'-terminated
 * lines. One reader per connection; not thread-safe.
 */
class LineReader
{
  public:
    enum class Result
    {
        Line,      ///< A complete line was produced (newline stripped).
        Eof,       ///< Orderly end of stream with no buffered partial.
        EofPartial,///< Stream ended mid-line (half-closed peer).
        Oversized, ///< Line length exceeded the limit before newline.
        Error,     ///< recv() failed.
        Timeout,   ///< recv() hit the SO_RCVTIMEO deadline.
    };

    explicit LineReader(int fd) : fd_(fd) {}

    /** Read the next line (at most @p max_line bytes). */
    Result readLine(std::string &line, std::size_t max_line);

  private:
    int fd_;
    std::string buffer_;
    bool sawEof_ = false;
};

} // namespace harp::harpd

#endif // HARP_HARPD_NET_HH
