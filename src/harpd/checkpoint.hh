/**
 * @file
 * Crash-safe campaign checkpoints: the state harpd needs to resume a
 * killed multi-hour grid without recomputing finished jobs.
 *
 * A checkpoint is an append-only text file of checksummed records:
 *
 *   <fnv1a64 hex16> SP <single-line JSON payload> LF
 *
 * The first record is the header (the submit parameters — enough to
 * rebuild the CampaignSessions); every following record stores one
 * completed job's exact JSONL line. Appends are flushed per record, so
 * a SIGKILL loses at most the record being written — and exactly that
 * failure mode is recoverable: the loader verifies each record's
 * checksum and, at the first corrupt or partial record, truncates the
 * file back to the last good byte and carries on with what survived
 * (the lost job is simply recomputed). A checkpoint whose *header* is
 * unreadable is unusable and reported as such.
 *
 * Byte-identity across kill/resume follows: restored lines re-enter
 * the output stream verbatim via CampaignSession::restore, and
 * recomputed jobs derive the same per-(experiment, point, repeat)
 * seeds as the uninterrupted run.
 */

#ifndef HARP_HARPD_CHECKPOINT_HH
#define HARP_HARPD_CHECKPOINT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <system_error>
#include <vector>

#include "common/fair_scheduler.hh"
#include "common/io.hh"

namespace harp::harpd {

/** The submit parameters a resumed daemon must reconstruct. */
struct CheckpointHeader
{
    std::string campaign;
    std::vector<std::string> experiments;
    std::uint64_t seed = 1;
    std::size_t repeat = 1;
    std::map<std::string, std::string> overrides;
    /** Owner for admission accounting; absent in pre-quota checkpoints
     *  (which load as the default tenant). */
    std::string tenant = "default";
    /** Service class for the fair scheduler; absent in older
     *  checkpoints (which load as Normal). Deadlines deliberately do
     *  NOT persist: a deadline is a property of the submitting caller,
     *  not of the computation, so resume starts without one unless the
     *  resume request sets a new deadline_ms. */
    common::PriorityClass priority = common::PriorityClass::Normal;
};

/** An I/O failure creating a checkpoint, carrying the errno so the
 *  server can degrade with a structured status instead of crashing. */
class CheckpointIoError : public std::runtime_error
{
  public:
    CheckpointIoError(const std::string &what, std::error_code ec)
        : std::runtime_error(what), code(ec)
    {
    }

    std::error_code code;
};

/** One completed (experiment, job) with its exact JSONL line. */
struct CheckpointRecord
{
    /** Index into CheckpointHeader::experiments (selector order). */
    std::size_t experiment = 0;
    /** Job index within that experiment (point-major, repeat-minor). */
    std::size_t job = 0;
    std::string line;
};

/** Appends checksummed records through the common::io seam, fsyncing
 *  each one so a killed process — or a failed disk — loses at most the
 *  in-flight record and every failure surfaces as an error code. */
class CheckpointWriter
{
  public:
    /** Create/truncate @p path and write (and fsync) the header.
     *  @throws CheckpointIoError when the file cannot be written. */
    CheckpointWriter(const std::string &path,
                     const CheckpointHeader &header,
                     common::io::FaultPlan *plan = nullptr,
                     bool fsyncRecords = true);

    /** Reopen @p path for appending after a successful load (the
     *  header is already on disk).
     *  @throws CheckpointIoError when the file cannot be opened. */
    explicit CheckpointWriter(const std::string &path,
                              common::io::FaultPlan *plan = nullptr,
                              bool fsyncRecords = true);

    /** Append one record: write + fsync. A non-empty error code means
     *  the record may not be durable — the caller must treat the
     *  campaign as degraded, not carry on. */
    [[nodiscard]] std::error_code add(const CheckpointRecord &record);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    common::io::File file_;
    bool fsyncRecords_ = true;
};

/** A successfully loaded checkpoint. */
struct LoadedCheckpoint
{
    CheckpointHeader header;
    std::vector<CheckpointRecord> records;
    /** True when a corrupt/partial tail was cut off during load. */
    bool recovered = false;
};

/**
 * Load @p path, verifying every record checksum. On the first bad
 * record the file is truncated to the preceding good byte
 * (recovered = true) and loading stops. Returns std::nullopt when the
 * file is missing or its header record is unreadable.
 */
std::optional<LoadedCheckpoint> loadCheckpoint(const std::string &path);

} // namespace harp::harpd

#endif // HARP_HARPD_CHECKPOINT_HH
