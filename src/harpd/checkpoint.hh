/**
 * @file
 * Crash-safe campaign checkpoints: the state harpd needs to resume a
 * killed multi-hour grid without recomputing finished jobs.
 *
 * A checkpoint is an append-only text file of checksummed records:
 *
 *   <fnv1a64 hex16> SP <single-line JSON payload> LF
 *
 * The first record is the header (the submit parameters — enough to
 * rebuild the CampaignSessions); every following record stores one
 * completed job's exact JSONL line. Appends are flushed per record, so
 * a SIGKILL loses at most the record being written — and exactly that
 * failure mode is recoverable: the loader verifies each record's
 * checksum and, at the first corrupt or partial record, truncates the
 * file back to the last good byte and carries on with what survived
 * (the lost job is simply recomputed). A checkpoint whose *header* is
 * unreadable is unusable and reported as such.
 *
 * Byte-identity across kill/resume follows: restored lines re-enter
 * the output stream verbatim via CampaignSession::restore, and
 * recomputed jobs derive the same per-(experiment, point, repeat)
 * seeds as the uninterrupted run.
 */

#ifndef HARP_HARPD_CHECKPOINT_HH
#define HARP_HARPD_CHECKPOINT_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace harp::harpd {

/** The submit parameters a resumed daemon must reconstruct. */
struct CheckpointHeader
{
    std::string campaign;
    std::vector<std::string> experiments;
    std::uint64_t seed = 1;
    std::size_t repeat = 1;
    std::map<std::string, std::string> overrides;
};

/** One completed (experiment, job) with its exact JSONL line. */
struct CheckpointRecord
{
    /** Index into CheckpointHeader::experiments (selector order). */
    std::size_t experiment = 0;
    /** Job index within that experiment (point-major, repeat-minor). */
    std::size_t job = 0;
    std::string line;
};

/** Appends checksummed records, flushing each one to the OS so a
 *  killed process loses at most the in-flight record. */
class CheckpointWriter
{
  public:
    /** Create/truncate @p path and write the header record.
     *  @throws std::runtime_error when the file cannot be written. */
    CheckpointWriter(const std::string &path,
                     const CheckpointHeader &header);

    /** Reopen @p path for appending after a successful load (the
     *  header is already on disk). */
    explicit CheckpointWriter(const std::string &path);

    void add(const CheckpointRecord &record);

  private:
    void open(const std::string &path, bool truncate);

    std::string path_;
    std::ofstream out_;
};

/** A successfully loaded checkpoint. */
struct LoadedCheckpoint
{
    CheckpointHeader header;
    std::vector<CheckpointRecord> records;
    /** True when a corrupt/partial tail was cut off during load. */
    bool recovered = false;
};

/**
 * Load @p path, verifying every record checksum. On the first bad
 * record the file is truncated to the preceding good byte
 * (recovered = true) and loading stops. Returns std::nullopt when the
 * file is missing or its header record is unreadable.
 */
std::optional<LoadedCheckpoint> loadCheckpoint(const std::string &path);

} // namespace harp::harpd

#endif // HARP_HARPD_CHECKPOINT_HH
