#include "harpd/checkpoint.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/bits.hh"
#include "runner/campaign.hh"
#include "runner/json.hh"

namespace harp::harpd {

using runner::JsonType;
using runner::JsonValue;

namespace {

std::string
framed(const std::string &payload)
{
    return runner::formatResultHash(common::fnv1a64(payload)) + " " +
           payload + "\n";
}

JsonValue
headerJson(const CheckpointHeader &header)
{
    JsonValue doc = JsonValue::object();
    doc.set("type", JsonValue("header"));
    doc.set("campaign", JsonValue(header.campaign));
    JsonValue experiments = JsonValue::array();
    for (const std::string &name : header.experiments)
        experiments.push(JsonValue(name));
    doc.set("experiments", experiments);
    doc.set("seed", JsonValue(std::to_string(header.seed)));
    doc.set("repeat", JsonValue(header.repeat));
    if (!header.tenant.empty() && header.tenant != "default")
        doc.set("tenant", JsonValue(header.tenant));
    if (header.priority != common::PriorityClass::Normal)
        doc.set("priority",
                JsonValue(common::priorityClassName(header.priority)));
    JsonValue overrides = JsonValue::object();
    for (const auto &[key, value] : header.overrides)
        overrides.set(key, JsonValue(value));
    doc.set("overrides", overrides);
    return doc;
}

/** Parse one verified payload; nullopt on schema mismatch. */
std::optional<CheckpointHeader>
parseHeader(const JsonValue &doc)
{
    const JsonValue *type = doc.find("type");
    const JsonValue *campaign = doc.find("campaign");
    const JsonValue *experiments = doc.find("experiments");
    const JsonValue *seed = doc.find("seed");
    const JsonValue *repeat = doc.find("repeat");
    if (type == nullptr || type->type() != JsonType::String ||
        type->asString() != "header" || campaign == nullptr ||
        campaign->type() != JsonType::String || experiments == nullptr ||
        experiments->type() != JsonType::Array || seed == nullptr ||
        seed->type() != JsonType::String || repeat == nullptr ||
        repeat->type() != JsonType::Int || repeat->asInt() < 1)
        return std::nullopt;

    CheckpointHeader header;
    header.campaign = campaign->asString();
    for (std::size_t i = 0; i < experiments->size(); ++i) {
        if (experiments->at(i).type() != JsonType::String)
            return std::nullopt;
        header.experiments.push_back(experiments->at(i).asString());
    }
    try {
        header.seed = std::stoull(seed->asString());
    } catch (const std::exception &) {
        return std::nullopt;
    }
    header.repeat = static_cast<std::size_t>(repeat->asInt());
    if (const JsonValue *tenant = doc.find("tenant")) {
        if (tenant->type() != JsonType::String ||
            tenant->asString().empty())
            return std::nullopt;
        header.tenant = tenant->asString();
    }
    if (const JsonValue *priority = doc.find("priority")) {
        if (priority->type() != JsonType::String)
            return std::nullopt;
        const auto cls = common::parsePriorityClass(priority->asString());
        if (!cls)
            return std::nullopt;
        header.priority = *cls;
    }
    if (const JsonValue *overrides = doc.find("overrides")) {
        if (overrides->type() != JsonType::Object)
            return std::nullopt;
        for (const auto &[key, value] : overrides->members()) {
            if (value.type() != JsonType::String)
                return std::nullopt;
            header.overrides[key] = value.asString();
        }
    }
    return header;
}

std::optional<CheckpointRecord>
parseRecord(const JsonValue &doc)
{
    const JsonValue *type = doc.find("type");
    const JsonValue *experiment = doc.find("exp");
    const JsonValue *job = doc.find("job");
    const JsonValue *line = doc.find("line");
    if (type == nullptr || type->type() != JsonType::String ||
        type->asString() != "job" || experiment == nullptr ||
        experiment->type() != JsonType::Int || experiment->asInt() < 0 ||
        job == nullptr || job->type() != JsonType::Int ||
        job->asInt() < 0 || line == nullptr ||
        line->type() != JsonType::String || line->asString().empty())
        return std::nullopt;
    CheckpointRecord record;
    record.experiment = static_cast<std::size_t>(experiment->asInt());
    record.job = static_cast<std::size_t>(job->asInt());
    record.line = line->asString();
    return record;
}

/** Verify "<hex16> <payload>" framing; returns the payload document. */
std::optional<JsonValue>
verifyFrame(const std::string &frame)
{
    if (frame.size() < 18 || frame[16] != ' ')
        return std::nullopt;
    const std::string digest = frame.substr(0, 16);
    if (digest.find_first_not_of("0123456789abcdef") != std::string::npos)
        return std::nullopt;
    const std::string payload = frame.substr(17);
    if (runner::formatResultHash(common::fnv1a64(payload)) != digest)
        return std::nullopt;
    try {
        return JsonValue::parse(payload);
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

} // namespace

CheckpointWriter::CheckpointWriter(const std::string &path,
                                   const CheckpointHeader &header,
                                   common::io::FaultPlan *plan,
                                   bool fsyncRecords)
    : fsyncRecords_(fsyncRecords)
{
    path_ = path;
    if (std::error_code ec = file_.open(path, /*truncate=*/true, plan))
        throw CheckpointIoError("cannot open checkpoint: " + path + ": " +
                                    ec.message(),
                                ec);
    std::error_code ec = file_.writeAll(framed(headerJson(header).dump()));
    if (!ec && fsyncRecords_)
        ec = file_.sync();
    if (ec)
        throw CheckpointIoError("cannot write checkpoint header: " +
                                    path + ": " + ec.message(),
                                ec);
}

CheckpointWriter::CheckpointWriter(const std::string &path,
                                   common::io::FaultPlan *plan,
                                   bool fsyncRecords)
    : fsyncRecords_(fsyncRecords)
{
    path_ = path;
    if (std::error_code ec = file_.open(path, /*truncate=*/false, plan))
        throw CheckpointIoError("cannot open checkpoint: " + path + ": " +
                                    ec.message(),
                                ec);
}

std::error_code
CheckpointWriter::add(const CheckpointRecord &record)
{
    JsonValue doc = JsonValue::object();
    doc.set("type", JsonValue("job"));
    doc.set("exp", JsonValue(record.experiment));
    doc.set("job", JsonValue(record.job));
    doc.set("line", JsonValue(record.line));
    // Write + fsync per record: the bytes reach the device, so neither
    // a killed daemon nor a lying page cache can lose an acknowledged
    // record — the record is durable before the subscriber sees it.
    if (std::error_code ec = file_.writeAll(framed(doc.dump())))
        return ec;
    if (fsyncRecords_) {
        if (std::error_code ec = file_.sync())
            return ec;
    }
    return {};
}

std::optional<LoadedCheckpoint>
loadCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream raw;
    raw << in.rdbuf();
    const std::string text = raw.str();

    LoadedCheckpoint loaded;
    bool have_header = false;
    std::size_t good_bytes = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t newline = text.find('\n', pos);
        if (newline == std::string::npos) {
            // Partial trailing record: the write the kill interrupted.
            loaded.recovered = true;
            break;
        }
        const std::string frame = text.substr(pos, newline - pos);
        const std::optional<JsonValue> doc = verifyFrame(frame);
        if (!doc.has_value()) {
            loaded.recovered = true;
            break;
        }
        if (!have_header) {
            std::optional<CheckpointHeader> header = parseHeader(*doc);
            if (!header.has_value())
                return std::nullopt; // unusable: no valid header
            loaded.header = std::move(*header);
            have_header = true;
        } else {
            std::optional<CheckpointRecord> record = parseRecord(*doc);
            if (!record.has_value()) {
                loaded.recovered = true;
                break;
            }
            loaded.records.push_back(std::move(*record));
        }
        pos = newline + 1;
        good_bytes = pos;
    }
    if (!have_header)
        return std::nullopt;

    if (loaded.recovered) {
        std::error_code ec;
        std::filesystem::resize_file(path, good_bytes, ec);
        if (ec)
            return std::nullopt;
    }
    return loaded;
}

} // namespace harp::harpd
