#include "harpd/net.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace harp::harpd {

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

namespace {

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long (max " +
                                 std::to_string(sizeof(addr.sun_path) - 1) +
                                 " bytes): " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

Fd
listenUnix(const std::string &path, int backlog)
{
    const sockaddr_un addr = unixAddress(path);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throw std::runtime_error("bind " + path + ": " +
                                 std::strerror(errno));
    if (::listen(fd.get(), backlog) != 0)
        throw std::runtime_error("listen " + path + ": " +
                                 std::strerror(errno));
    return fd;
}

Fd
connectUnix(const std::string &path, int timeout_ms, bool *timed_out)
{
    if (timed_out != nullptr)
        *timed_out = false;
    sockaddr_un addr{};
    try {
        addr = unixAddress(path);
    } catch (const std::exception &) {
        return Fd();
    }
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return Fd();
    if (timeout_ms <= 0) {
        if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) != 0)
            return Fd();
        return fd;
    }

    // Bounded connect: go nonblocking, poll for writability, check
    // SO_ERROR, then restore blocking mode for the caller.
    const int flags = ::fcntl(fd.get(), F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0)
        return Fd();
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS && errno != EAGAIN)
            return Fd();
        pollfd pfd{fd.get(), POLLOUT, 0};
        int rc;
        do {
            rc = ::poll(&pfd, 1, timeout_ms);
        } while (rc < 0 && errno == EINTR);
        if (rc <= 0) {
            if (rc == 0 && timed_out != nullptr)
                *timed_out = true;
            return Fd(); // timeout or poll failure
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) !=
                0 ||
            err != 0)
            return Fd();
    }
    if (::fcntl(fd.get(), F_SETFL, flags) != 0)
        return Fd();
    return fd;
}

bool
setIoTimeout(int fd, int timeout_ms)
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
    return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) ==
               0 &&
           ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) ==
               0;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

LineReader::Result
LineReader::readLine(std::string &line, std::size_t max_line)
{
    for (;;) {
        const std::size_t pos = buffer_.find('\n');
        if (pos != std::string::npos) {
            if (pos > max_line)
                return Result::Oversized;
            line.assign(buffer_, 0, pos);
            buffer_.erase(0, pos + 1);
            return Result::Line;
        }
        if (buffer_.size() > max_line)
            return Result::Oversized;
        if (sawEof_)
            return buffer_.empty() ? Result::Eof : Result::EofPartial;

        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return Result::Timeout;
            return Result::Error;
        }
        if (n == 0) {
            sawEof_ = true;
            continue;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace harp::harpd
