#include "harpd/net.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace harp::harpd {

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

namespace {

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long (max " +
                                 std::to_string(sizeof(addr.sun_path) - 1) +
                                 " bytes): " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

Fd
listenUnix(const std::string &path, int backlog)
{
    const sockaddr_un addr = unixAddress(path);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throw std::runtime_error("bind " + path + ": " +
                                 std::strerror(errno));
    if (::listen(fd.get(), backlog) != 0)
        throw std::runtime_error("listen " + path + ": " +
                                 std::strerror(errno));
    return fd;
}

Fd
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    try {
        addr = unixAddress(path);
    } catch (const std::exception &) {
        return Fd();
    }
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return Fd();
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return Fd();
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

LineReader::Result
LineReader::readLine(std::string &line, std::size_t max_line)
{
    for (;;) {
        const std::size_t pos = buffer_.find('\n');
        if (pos != std::string::npos) {
            if (pos > max_line)
                return Result::Oversized;
            line.assign(buffer_, 0, pos);
            buffer_.erase(0, pos + 1);
            return Result::Line;
        }
        if (buffer_.size() > max_line)
            return Result::Oversized;
        if (sawEof_)
            return buffer_.empty() ? Result::Eof : Result::EofPartial;

        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Result::Error;
        }
        if (n == 0) {
            sawEof_ = true;
            continue;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace harp::harpd
