#include "harpd/server.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <filesystem>
#include <functional>
#include <optional>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "runner/campaign.hh"
#include "runner/session.hh"

namespace harp::harpd {

namespace fs = std::filesystem;
namespace io = common::io;
using runner::JsonValue;

namespace {

std::uint64_t
steadyMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Batch-CLI parity: every override must be an axis or tunable of at
 *  least one selected experiment. Returns an error message or "". */
std::string
validateOverrides(const std::vector<const runner::ExperimentSpec *> &specs,
                  const std::map<std::string, std::string> &overrides)
{
    for (const auto &[name, text] : overrides) {
        (void)text;
        const bool known = std::any_of(
            specs.begin(), specs.end(),
            [&name](const runner::ExperimentSpec *spec) {
                return spec->grid.findAxis(name) != nullptr ||
                       std::any_of(spec->tunables.begin(),
                                   spec->tunables.end(),
                                   [&name](const runner::TunableSpec &t) {
                                       return t.name == name;
                                   });
            });
        if (!known)
            return "unknown override '" + name +
                   "' (not an axis or tunable of the selected "
                   "experiments)";
    }
    return "";
}

/** First durable-path failure of a campaign: the errno and which
 *  writer hit it. */
struct SinkFailure
{
    std::error_code ec;
    std::string where;
};

/**
 * Per-experiment sink of one served campaign: every line goes to the
 * staged results file; fresh lines additionally reach the checkpoint —
 * written and fsynced *before* any client sees them (the durable
 * record leads the volatile stream) — and only then the event emitter.
 * The first I/O failure latches: the campaign is cancelled at the next
 * wave boundary and every later line is dropped, so no un-recorded
 * result ever reaches a client — degrade, never corrupt.
 */
class ServedSink : public runner::ResultSink
{
  public:
    ServedSink(io::File &file, CheckpointWriter *checkpoint,
               std::size_t experiment_index,
               const std::string &experiment_name,
               const std::string &campaign_id,
               std::function<void(JsonValue)> emit,
               std::atomic<bool> *cancel)
        : file_(file), checkpoint_(checkpoint),
          experimentIndex_(experiment_index),
          experimentName_(experiment_name), campaignId_(campaign_id),
          emit_(std::move(emit)), cancel_(cancel)
    {
    }

    void onResult(std::size_t job, const std::string &line,
                  bool fresh) override
    {
        if (failure_.has_value())
            return;
        if (std::error_code ec = file_.writeAll(line + "\n")) {
            fail(ec, "results file " + file_.path());
            return;
        }
        // Empty lines mark errored jobs (reported after the stream);
        // they must never be persisted as completed work.
        if (fresh && !line.empty() && checkpoint_ != nullptr) {
            if (std::error_code ec =
                    checkpoint_->add({experimentIndex_, job, line})) {
                fail(ec, "checkpoint " + checkpoint_->path());
                return;
            }
        }
        if (emit_) {
            JsonValue event = JsonValue::object();
            event.set("type", JsonValue("result"));
            event.set("campaign", JsonValue(campaignId_));
            event.set("experiment", JsonValue(experimentName_));
            event.set("job", JsonValue(job));
            event.set("line", JsonValue(line));
            emit_(std::move(event));
        }
    }

    const std::optional<SinkFailure> &failure() const { return failure_; }

  private:
    void fail(std::error_code ec, const std::string &where)
    {
        failure_ = SinkFailure{ec, where};
        if (cancel_ != nullptr)
            cancel_->store(true);
    }

    io::File &file_;
    CheckpointWriter *checkpoint_;
    std::size_t experimentIndex_;
    const std::string &experimentName_;
    const std::string &campaignId_;
    std::function<void(JsonValue)> emit_;
    std::atomic<bool> *cancel_;
    std::optional<SinkFailure> failure_;
};

/** Total (point, repeat) jobs of a submission — also validates the
 *  override *values* (grid expansion parses them).
 *  @throws std::exception on invalid values. */
std::size_t
countJobs(const std::vector<const runner::ExperimentSpec *> &specs,
          const CheckpointHeader &header)
{
    runner::SessionOptions options;
    options.seed = header.seed;
    options.repeat = header.repeat;
    options.overrides = header.overrides;
    std::size_t total = 0;
    for (const runner::ExperimentSpec *spec : specs)
        total += runner::CampaignSession(*spec, options).totalJobs();
    return total;
}

/**
 * Bridges one campaign's wave loop to the shared FairScheduler: each
 * wave blocks for a stride-selected grant (width + intra-job
 * allowance), each finished job hands its slot straight back so other
 * tenants start without waiting for the whole wave. Aborts (cancel,
 * deadline, shutdown) surface as a width-0 wave.
 */
class FairWaveScheduler : public runner::WaveScheduler
{
  public:
    FairWaveScheduler(common::FairScheduler &fair, std::uint64_t entity,
                      std::atomic<std::size_t> &wave_index,
                      const std::atomic<bool> &abort)
        : fair_(fair), entity_(entity), waveIndex_(wave_index),
          abort_(abort)
    {
    }

    Wave next(std::size_t remaining) override
    {
        const common::FairScheduler::Grant grant =
            fair_.acquire(entity_, remaining, &abort_);
        if (grant.width == 0)
            return Wave{0, 1};
        waveIndex_.fetch_add(1, std::memory_order_relaxed);
        return Wave{grant.width, grant.innerThreads};
    }

    void jobDone() override { fair_.releaseOne(entity_); }

  private:
    common::FairScheduler &fair_;
    std::uint64_t entity_;
    std::atomic<std::size_t> &waveIndex_;
    const std::atomic<bool> &abort_;
};

} // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      registry_(config_.registry != nullptr ? config_.registry
                                            : &runner::builtinRegistry())
{
    poolThreads_ = config_.threads != 0
                       ? config_.threads
                       : std::max<std::size_t>(
                             1, std::thread::hardware_concurrency());
}

Server::~Server()
{
    requestStop();
    // serve() joins everything; if serve() never ran (start() threw or
    // the caller stopped early), reap what exists.
    std::vector<std::thread> connections;
    std::vector<std::shared_ptr<Campaign>> campaigns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        connections.swap(connections_);
        for (auto &[id, campaign] : campaigns_) {
            campaign->cancel.store(true);
            campaigns.push_back(campaign);
        }
        for (const int fd : connectionFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &thread : connections)
        if (thread.joinable())
            thread.join();
    for (const auto &campaign : campaigns)
        if (campaign->worker.joinable())
            campaign->worker.join();
    if (watchdog_.joinable())
        watchdog_.join();
}

std::string
Server::checkpointPath(const std::string &id) const
{
    return (fs::path(config_.dataDir) / "checkpoints" / (id + ".ckpt"))
        .string();
}

std::string
Server::resultsDir(const std::string &id) const
{
    return (fs::path(config_.dataDir) / "results" / id).string();
}

const char *
Server::stateName(CampaignState state)
{
    switch (state) {
    case CampaignState::Queued:
        return "queued";
    case CampaignState::Running:
        return "running";
    case CampaignState::Done:
        return "done";
    case CampaignState::Failed:
        return "failed";
    case CampaignState::Cancelled:
        return "cancelled";
    case CampaignState::Degraded:
        return "degraded";
    case CampaignState::DeadlineExceeded:
        return "deadline_exceeded";
    }
    return "unknown";
}

void
Server::start()
{
    fs::create_directories(fs::path(config_.dataDir) / "checkpoints");
    fs::create_directories(fs::path(config_.dataDir) / "results");

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
        throw std::runtime_error("harpd: cannot create stop pipe");
    stopPipeRead_ = Fd(pipe_fds[0]);
    stopPipeWrite_ = Fd(pipe_fds[1]);
    // Nonblocking write end: requestStop() must never block (it runs
    // in signal handlers); a full pipe already holds a wake-up byte.
    const int flags = ::fcntl(stopPipeWrite_.get(), F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(stopPipeWrite_.get(), F_SETFL, flags | O_NONBLOCK) != 0)
        throw std::runtime_error("harpd: cannot configure stop pipe");

    // Second self-pipe for SIGHUP snapshots, same discipline.
    int snap_fds[2];
    if (::pipe(snap_fds) != 0)
        throw std::runtime_error("harpd: cannot create snapshot pipe");
    snapshotPipeRead_ = Fd(snap_fds[0]);
    snapshotPipeWrite_ = Fd(snap_fds[1]);
    const int snap_flags = ::fcntl(snapshotPipeWrite_.get(), F_GETFL, 0);
    if (snap_flags < 0 ||
        ::fcntl(snapshotPipeWrite_.get(), F_SETFL,
                snap_flags | O_NONBLOCK) != 0)
        throw std::runtime_error("harpd: cannot configure snapshot pipe");

    listenFd_ = listenUnix(config_.socketPath);
    pool_ = std::make_unique<common::ThreadPool>(poolThreads_);
    common::FairScheduler::Config fair_config;
    fair_config.slots = poolThreads_;
    fair_ = std::make_unique<common::FairScheduler>(fair_config);

    // Sweep staging dirs left by a killed or degraded run: results
    // only ever appear atomically under their final name, so any
    // .tmp-* entry is garbage — including a hostile non-directory
    // plant. Errors skip the entry; they never escape the server.
    {
        std::error_code ec;
        const fs::path results = fs::path(config_.dataDir) / "results";
        for (fs::directory_iterator it(results, ec), end;
             !ec && it != end; it.increment(ec)) {
            const fs::path path = it->path();
            if (path.filename().string().rfind(".tmp-", 0) != 0)
                continue;
            std::error_code cleanup;
            fs::remove_all(path, cleanup);
        }
    }

    // Resume every campaign with a surviving checkpoint, detached from
    // any client. Unreadable checkpoints are set aside as .bad — a
    // corrupted *tail* is not unreadable (loadCheckpoint already
    // truncate-recovered it); only a destroyed header lands here. All
    // filesystem faults here are contained: a hostile checkpoints/
    // entry is skipped, never thrown out of the server.
    std::error_code iter_ec;
    const fs::path ckpt_dir = fs::path(config_.dataDir) / "checkpoints";
    for (fs::directory_iterator it(ckpt_dir, iter_ec), end;
         !iter_ec && it != end; it.increment(iter_ec)) {
        const fs::path entry = it->path();
        if (entry.extension() != ".ckpt")
            continue;
        const std::string id = entry.stem().string();
        std::optional<LoadedCheckpoint> loaded =
            loadCheckpoint(entry.string());
        std::shared_ptr<Campaign> campaign;
        std::size_t jobs = 0;
        if (loaded.has_value() && loaded->header.campaign == id) {
            campaign = std::make_shared<Campaign>();
            campaign->header = std::move(loaded->header);
            campaign->restored = std::move(loaded->records);
            try {
                campaign->specs =
                    registry_->select(campaign->header.experiments);
                jobs = countJobs(campaign->specs, campaign->header);
            } catch (const std::exception &) {
                campaign.reset();
            }
        }
        if (campaign == nullptr) {
            std::error_code rename_ec;
            fs::rename(entry, fs::path(entry.string() + ".bad"),
                       rename_ec);
            if (rename_ec) {
                // Can't even set it aside (read-only dir?): skip it;
                // the next start will try again.
                continue;
            }
            continue;
        }
        campaign->admittedJobs = jobs;
        campaign->chargedAdmission.store(true);
        campaign->lastProgressMs.store(steadyMs());
        {
            std::lock_guard<std::mutex> lock(mutex_);
            campaigns_[id] = campaign;
            // Restarts are never shed: the work was already admitted
            // once; just account it against the tenant again.
            TenantUsage &usage = tenants_[campaign->header.tenant];
            usage.campaigns += 1;
            usage.jobs += jobs;
        }
        campaign->worker =
            std::thread([this, campaign] { runCampaign(campaign); });
        ++resumed_;
    }

    // The watchdog doubles as the deadline enforcer, so it runs even
    // when stall detection is off.
    watchdog_ = std::thread([this] { watchdogLoop(); });
}

void
Server::requestStop()
{
    stopping_.store(true);
    if (stopPipeWrite_.valid()) {
        const char byte = 's';
        for (;;) {
            const ssize_t n = ::write(stopPipeWrite_.get(), &byte, 1);
            if (n == 1)
                break;
            if (n < 0 && errno == EINTR)
                continue;
            // EAGAIN means the pipe already holds a wake-up byte —
            // serve() will see it. Anything else is a programming
            // error (closed/invalid pipe), not an environment fault.
            assert(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK));
            break;
        }
    }
}

void
Server::requestStatusSnapshot()
{
    if (!snapshotPipeWrite_.valid())
        return;
    const char byte = 'h';
    for (;;) {
        const ssize_t n = ::write(snapshotPipeWrite_.get(), &byte, 1);
        if (n == 1)
            break;
        if (n < 0 && errno == EINTR)
            continue;
        // A full pipe already holds a pending snapshot request.
        break;
    }
}

void
Server::serve()
{
    while (!stopping_.load()) {
        pollfd fds[3] = {{listenFd_.get(), POLLIN, 0},
                         {stopPipeRead_.get(), POLLIN, 0},
                         {snapshotPipeRead_.get(), POLLIN, 0}};
        const int ready = ::poll(fds, 3, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if ((fds[1].revents & POLLIN) != 0 || stopping_.load())
            break;
        if ((fds[2].revents & POLLIN) != 0) {
            // One read coalesces a burst of SIGHUPs; leftover bytes
            // just trigger another (idempotent) snapshot.
            char drained[64];
            (void)!::read(snapshotPipeRead_.get(), drained,
                          sizeof drained);
            writeStatusSnapshot();
        }
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        Fd client(::accept(listenFd_.get(), nullptr, nullptr));
        if (!client.valid())
            continue;
        std::lock_guard<std::mutex> lock(mutex_);
        connectionFds_.push_back(client.get());
        connectionCount_.fetch_add(1);
        const int raw = client.release();
        connections_.emplace_back(
            [this, raw] { connectionLoop(Fd(raw)); });
    }

    // Drain: stop accepting, wind down clients, let in-flight jobs
    // finish at the next wave boundary (their results are already
    // checkpointed), leave unfinished campaigns for the next start.
    listenFd_.reset();
    ::unlink(config_.socketPath.c_str());

    std::vector<std::shared_ptr<Campaign>> campaigns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &[id, campaign] : campaigns_) {
            (void)id;
            campaign->cancel.store(true);
            campaigns.push_back(campaign);
        }
        for (const int fd : connectionFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (;;) {
        std::thread connection;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (connections_.empty())
                break;
            connection = std::move(connections_.back());
            connections_.pop_back();
        }
        if (connection.joinable())
            connection.join();
    }
    for (const auto &campaign : campaigns)
        if (campaign->worker.joinable())
            campaign->worker.join();
    if (watchdog_.joinable())
        watchdog_.join();
}

void
Server::watchdogLoop()
{
    const auto cadence = std::chrono::milliseconds(
        std::max<std::size_t>(1, config_.watchdogPollMs));
    while (!stopping_.load()) {
        std::vector<std::shared_ptr<Campaign>> campaigns;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            campaigns.reserve(campaigns_.size());
            for (const auto &[id, campaign] : campaigns_) {
                (void)id;
                campaigns.push_back(campaign);
            }
        }
        const std::uint64_t now = steadyMs();
        for (const auto &campaign : campaigns) {
            bool running;
            bool live;
            {
                std::lock_guard<std::mutex> lock(campaign->mutex);
                running = campaign->state == CampaignState::Running;
                live = running ||
                       campaign->state == CampaignState::Queued;
            }
            if (config_.stallTimeoutMs > 0) {
                const std::uint64_t last =
                    campaign->lastProgressMs.load();
                const bool stalled = running && last != 0 &&
                                     now > last &&
                                     now - last >= config_.stallTimeoutMs;
                campaign->stalled.store(stalled);
            }
            // Deadline enforcement: flip the cooperative cancel once;
            // the worker turns it into `deadline_exceeded` at the next
            // wave boundary (or straight away while queued).
            const std::uint64_t deadline = campaign->deadlineAtMs.load();
            if (live && deadline != 0 && now >= deadline &&
                !campaign->deadlineExpired.exchange(true)) {
                campaign->cancel.store(true);
                campaign->logCv.notify_all();
            }
        }
        std::this_thread::sleep_for(cadence);
    }
}

void
Server::connectionLoop(Fd fd)
{
    LineReader reader(fd.get());
    std::string line;
    bool keep_open = true;
    while (keep_open) {
        const LineReader::Result result =
            reader.readLine(line, maxLineBytes);
        if (result == LineReader::Result::Line) {
            keep_open = handleRequest(fd.get(), line);
            continue;
        }
        if (result == LineReader::Result::Oversized) {
            sendAll(fd.get(),
                    wireLine(errorReply(
                        errc::oversizedLine,
                        "request line exceeds " +
                            std::to_string(maxLineBytes) + " bytes")));
        } else if (result == LineReader::Result::EofPartial) {
            // Half-closed mid-line: best-effort structured reply (the
            // write side may still be open on the peer).
            sendAll(fd.get(),
                    wireLine(errorReply(errc::badRequest,
                                        "connection half-closed mid-"
                                        "line")));
        }
        keep_open = false;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        connectionFds_.erase(std::remove(connectionFds_.begin(),
                                         connectionFds_.end(), fd.get()),
                             connectionFds_.end());
    }
    fd.reset();
    connectionCount_.fetch_sub(1);
}

std::string
Server::campaignStatusLine(const std::string &id, const Campaign &campaign)
{
    JsonValue status = JsonValue::object();
    status.set("id", JsonValue(id));
    status.set("state", JsonValue(stateName(campaign.state)));
    status.set("completed_jobs", JsonValue(campaign.completedJobs.load()));
    status.set("total_jobs", JsonValue(campaign.totalJobs));
    status.set("tenant", JsonValue(campaign.header.tenant));
    status.set("priority", JsonValue(common::priorityClassName(
                               campaign.header.priority)));
    // Re-attach cursor: `subscribe from=next_seq` continues the stream.
    status.set("next_seq", JsonValue(campaign.log.size()));
    if (campaign.state == CampaignState::Queued)
        status.set("queue_position",
                   JsonValue(campaign.queuePosition.load()));
    if (const std::uint64_t deadline = campaign.deadlineAtMs.load();
        deadline != 0) {
        const std::uint64_t now = steadyMs();
        status.set("deadline_ms_left",
                   JsonValue(deadline > now ? deadline - now : 0));
    }
    if (!campaign.error.empty())
        status.set("error", JsonValue(campaign.error));
    if (campaign.state == CampaignState::Degraded) {
        status.set("errno_name", JsonValue(campaign.errnoName));
        status.set("retriable", JsonValue(campaign.retriable));
    }
    if (campaign.stalled.load()) {
        status.set("stalled", JsonValue(true));
        const std::uint64_t last = campaign.lastProgressMs.load();
        const std::uint64_t now = steadyMs();
        status.set("stalled_ms",
                   JsonValue(now > last ? now - last : 0));
    }
    return status.dump();
}

bool
Server::handleRequest(int fd, const std::string &line)
{
    JsonValue error;
    const std::optional<Request> request = parseRequest(line, error);
    if (!request.has_value())
        return sendAll(fd, wireLine(error));

    switch (request->verb) {
    case Verb::Ping: {
        JsonValue reply = JsonValue::object();
        reply.set("type", JsonValue("pong"));
        return sendAll(fd, wireLine(reply));
    }
    case Verb::List: {
        JsonValue reply = JsonValue::object();
        reply.set("type", JsonValue("list"));
        reply.set("registry", runner::registryToJson(*registry_));
        JsonValue list = JsonValue::array();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const auto &[id, campaign] : campaigns_) {
                std::lock_guard<std::mutex> state_lock(campaign->mutex);
                list.push(JsonValue::parse(
                    campaignStatusLine(id, *campaign)));
            }
        }
        reply.set("campaigns", list);
        reply.set("connections", JsonValue(connectionCount_.load()));
        reply.set("pool_backlog",
                  JsonValue(pool_ != nullptr ? pool_->backlog() : 0));
        return sendAll(fd, wireLine(reply));
    }
    case Verb::Status: {
        std::shared_ptr<Campaign> campaign;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = campaigns_.find(request->campaign);
            if (it != campaigns_.end())
                campaign = it->second;
        }
        if (campaign == nullptr)
            return sendAll(fd, wireLine(errorReply(
                                   errc::unknownCampaign,
                                   "no campaign '" + request->campaign +
                                       "'")));
        JsonValue reply;
        {
            std::lock_guard<std::mutex> state_lock(campaign->mutex);
            reply = JsonValue::parse(
                campaignStatusLine(request->campaign, *campaign));
        }
        reply.set("type", JsonValue("status"));
        return sendAll(fd, wireLine(reply));
    }
    case Verb::Cancel: {
        std::shared_ptr<Campaign> campaign;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = campaigns_.find(request->campaign);
            if (it != campaigns_.end())
                campaign = it->second;
        }
        if (campaign == nullptr)
            return sendAll(fd, wireLine(errorReply(
                                   errc::unknownCampaign,
                                   "no campaign '" + request->campaign +
                                       "'")));
        campaign->cancel.store(true);
        JsonValue reply = JsonValue::object();
        reply.set("type", JsonValue("ok"));
        reply.set("campaign", JsonValue(request->campaign));
        reply.set("cancelling", JsonValue(true));
        return sendAll(fd, wireLine(reply));
    }
    case Verb::Submit:
        handleSubmit(fd, *request);
        return true;
    case Verb::Subscribe:
        return handleSubscribe(fd, *request);
    case Verb::Resume:
        handleResume(fd, *request);
        return true;
    case Verb::Shutdown: {
        JsonValue reply = JsonValue::object();
        reply.set("type", JsonValue("ok"));
        reply.set("shutting_down", JsonValue(true));
        sendAll(fd, wireLine(reply));
        requestStop();
        return false;
    }
    }
    return false;
}

void
Server::handleSubmit(int fd, const Request &request)
{
    std::vector<const runner::ExperimentSpec *> specs;
    try {
        specs = registry_->select(request.experiments);
    } catch (const std::exception &e) {
        sendAll(fd,
                wireLine(errorReply(errc::unknownExperiment, e.what())));
        return;
    }
    if (const std::string bad = validateOverrides(specs,
                                                  request.overrides);
        !bad.empty()) {
        sendAll(fd, wireLine(errorReply(errc::badRequest, bad)));
        return;
    }

    auto campaign = std::make_shared<Campaign>();
    campaign->header.campaign = request.campaign;
    campaign->header.experiments = request.experiments;
    campaign->header.seed = request.seed;
    campaign->header.repeat = request.repeat;
    campaign->header.overrides = request.overrides;
    campaign->header.tenant = request.tenant;
    campaign->header.priority = request.priority;
    if (request.deadlineMs > 0)
        campaign->deadlineAtMs.store(steadyMs() + request.deadlineMs);
    campaign->specs = std::move(specs);

    // Expand the grids up front: rejects bad override values at submit
    // time and prices the submission for admission control.
    std::size_t total = 0;
    try {
        total = countJobs(campaign->specs, campaign->header);
    } catch (const std::exception &e) {
        sendAll(fd, wireLine(errorReply(errc::badRequest, e.what())));
        return;
    }

    campaign->clientQueue = std::make_shared<EventQueue>(
        config_.clientQueueCapacity);
    campaign->lastProgressMs.store(steadyMs());
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_.load()) {
            sendAll(fd, wireLine(errorReply(errc::shuttingDown,
                                            "harpd is shutting down")));
            return;
        }
        // Double-submit protection spans restarts: a live table entry
        // (running or terminal) or completed results on disk both
        // make the id taken.
        if (campaigns_.count(request.campaign) > 0 ||
            fs::exists(resultsDir(request.campaign))) {
            sendAll(fd, wireLine(errorReply(
                            errc::duplicateCampaign,
                            "campaign '" + request.campaign +
                                "' already exists")));
            return;
        }
        // Admission control: shed with a structured retry hint rather
        // than queue unboundedly on the shared pool.
        const auto it = tenants_.find(request.tenant);
        const TenantUsage usage =
            it != tenants_.end() ? it->second : TenantUsage{};
        const bool over_campaigns =
            config_.maxCampaignsPerTenant > 0 &&
            usage.campaigns >= config_.maxCampaignsPerTenant;
        const bool over_jobs =
            config_.maxInflightJobsPerTenant > 0 &&
            usage.jobs + total > config_.maxInflightJobsPerTenant;
        if (over_campaigns || over_jobs) {
            // Brownout rung 2: park over-quota submits in a bounded
            // FIFO instead of shedding — but only work that *could*
            // ever fit an empty ledger; an impossible submission would
            // park forever. Rung 3, the shed, is reserved for a full
            // queue (or queueing disabled).
            const bool could_ever_fit =
                config_.maxInflightJobsPerTenant == 0 ||
                total <= config_.maxInflightJobsPerTenant;
            if (config_.admissionQueueLimit > 0 && could_ever_fit &&
                admissionQueue_.size() < config_.admissionQueueLimit) {
                campaign->state = CampaignState::Queued;
                campaign->admittedJobs = total;
                campaign->totalJobs = total;
                campaign->queuePosition.store(admissionQueue_.size());
                admissionQueue_.push_back(campaign);
                campaigns_[request.campaign] = campaign;
            } else {
                JsonValue reply = errorReply(
                    errc::quotaExceeded,
                    over_campaigns
                        ? "tenant '" + request.tenant + "' is at its " +
                              std::to_string(
                                  config_.maxCampaignsPerTenant) +
                              "-campaign limit"
                        : "tenant '" + request.tenant +
                              "' would exceed its in-flight job limit "
                              "(" +
                              std::to_string(usage.jobs) + "+" +
                              std::to_string(total) + " > " +
                              std::to_string(
                                  config_.maxInflightJobsPerTenant) +
                              ")");
                reply.set("retriable", JsonValue(true));
                reply.set("retry_after_ms",
                          JsonValue(config_.shedRetryAfterMs));
                sendAll(fd, wireLine(reply));
                return;
            }
        } else {
            TenantUsage &admitted = tenants_[request.tenant];
            admitted.campaigns += 1;
            admitted.jobs += total;
            campaign->admittedJobs = total;
            campaign->totalJobs = total;
            campaign->chargedAdmission.store(true);
            campaigns_[request.campaign] = campaign;
        }
    }
    const std::shared_ptr<EventQueue> queue = campaign->clientQueue;
    // Parked campaigns announce their place in line before anything
    // else; the estimate is one shed-retry unit per campaign ahead.
    {
        std::lock_guard<std::mutex> state_lock(campaign->mutex);
        if (campaign->state == CampaignState::Queued && queue != nullptr) {
            const std::size_t position = campaign->queuePosition.load();
            JsonValue event = JsonValue::object();
            event.set("type", JsonValue("queued"));
            event.set("campaign", JsonValue(request.campaign));
            event.set("position", JsonValue(position));
            event.set("retry_after_ms",
                      JsonValue(config_.shedRetryAfterMs *
                                (position + 1)));
            queue->push(wireLine(event));
        }
    }
    campaign->worker =
        std::thread([this, campaign] { runCampaign(campaign); });

    // Stream events until the campaign closes the queue. A failed
    // write means the client vanished: close the queue so producers
    // stop paying for it, then keep draining so nothing blocks; the
    // campaign itself continues to completion on disk.
    bool client_alive = true;
    for (;;) {
        std::optional<std::string> event = queue->pop();
        if (!event.has_value())
            break;
        if (client_alive && !sendAll(fd, *event)) {
            client_alive = false;
            queue->close();
        }
    }
}

bool
Server::handleSubscribe(int fd, const Request &request)
{
    std::shared_ptr<Campaign> campaign;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = campaigns_.find(request.campaign);
        if (it != campaigns_.end())
            campaign = it->second;
    }
    if (campaign == nullptr)
        return sendAll(fd, wireLine(errorReply(errc::unknownCampaign,
                                               "no campaign '" +
                                                   request.campaign +
                                                   "'")));
    JsonValue ack = JsonValue::object();
    ack.set("type", JsonValue("subscribed"));
    ack.set("campaign", JsonValue(request.campaign));
    ack.set("from", JsonValue(request.from));
    if (!sendAll(fd, wireLine(ack)))
        return false;

    // Replay from the cursor, then follow live appends. Batches are
    // copied out under the lock and sent outside it so a slow
    // subscriber never blocks the producing campaign.
    std::size_t next = static_cast<std::size_t>(request.from);
    for (;;) {
        std::vector<std::string> batch;
        bool complete = false;
        {
            std::unique_lock<std::mutex> lock(campaign->mutex);
            campaign->logCv.wait_for(
                lock, std::chrono::milliseconds(100), [&] {
                    return campaign->log.size() > next ||
                           campaign->logComplete;
                });
            while (next < campaign->log.size())
                batch.push_back(campaign->log[next++]);
            complete = campaign->logComplete;
        }
        for (const std::string &event : batch)
            if (!sendAll(fd, event))
                return false;
        if (complete && batch.empty())
            break;
        if (stopping_.load())
            break;
    }
    // Terminal snapshot: how the stream ended (done / degraded /
    // cancelled / failed) plus the re-attach cursor.
    JsonValue status;
    {
        std::lock_guard<std::mutex> lock(campaign->mutex);
        status = JsonValue::parse(
            campaignStatusLine(request.campaign, *campaign));
    }
    status.set("type", JsonValue("status"));
    return sendAll(fd, wireLine(status));
}

void
Server::handleResume(int fd, const Request &request)
{
    std::shared_ptr<Campaign> old;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = campaigns_.find(request.campaign);
        if (it != campaigns_.end())
            old = it->second;
    }
    if (old == nullptr) {
        sendAll(fd, wireLine(errorReply(errc::unknownCampaign,
                                        "no campaign '" +
                                            request.campaign + "'")));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(old->mutex);
        const bool resumable =
            old->state == CampaignState::Degraded ||
            old->state == CampaignState::DeadlineExceeded;
        if (!resumable || old->resumeInFlight) {
            sendAll(fd,
                    wireLine(errorReply(
                        errc::notDegraded,
                        "campaign '" + request.campaign + "' is " +
                            stateName(old->state) +
                            (old->resumeInFlight
                                 ? " with a resume in flight"
                                 : "") +
                            "; only degraded or deadline_exceeded "
                            "campaigns can be resumed")));
            return;
        }
        old->resumeInFlight = true;
    }
    // Degraded/deadline_exceeded are terminal for the worker — the
    // join returns promptly.
    if (old->worker.joinable())
        old->worker.join();

    const std::string &id = request.campaign;

    // Crash window: publish rename landed but the checkpoint removal
    // didn't. The results are complete — finish the bookkeeping.
    if (fs::exists(resultsDir(id))) {
        std::error_code cleanup;
        fs::remove(checkpointPath(id), cleanup);
        {
            std::lock_guard<std::mutex> lock(old->mutex);
            old->state = CampaignState::Done;
            old->error.clear();
            old->errnoName.clear();
            old->retriable = false;
            old->resumeInFlight = false;
        }
        JsonValue reply = JsonValue::object();
        reply.set("type", JsonValue("ok"));
        reply.set("campaign", JsonValue(id));
        reply.set("resuming", JsonValue(false));
        reply.set("state", JsonValue("done"));
        sendAll(fd, wireLine(reply));
        return;
    }

    auto campaign = std::make_shared<Campaign>();
    std::optional<LoadedCheckpoint> loaded =
        loadCheckpoint(checkpointPath(id));
    if (loaded.has_value() && loaded->header.campaign == id) {
        campaign->header = std::move(loaded->header);
        campaign->restored = std::move(loaded->records);
    } else {
        // The failure tore the header itself: nothing durable survived
        // but the submit parameters are still in memory — restart from
        // scratch.
        campaign->header = old->header;
    }
    try {
        campaign->specs =
            registry_->select(campaign->header.experiments);
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(old->mutex);
        old->resumeInFlight = false;
        sendAll(fd,
                wireLine(errorReply(errc::campaignFailed, e.what())));
        return;
    }
    const std::size_t jobs = old->totalJobs;
    // A resumed campaign starts with a clean deadline slate: the old
    // deadline already fired (or belongs to a disconnected caller);
    // the resume request may set a fresh one.
    if (request.deadlineMs > 0)
        campaign->deadlineAtMs.store(steadyMs() + request.deadlineMs);
    campaign->lastProgressMs.store(steadyMs());
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_.load()) {
            std::lock_guard<std::mutex> old_lock(old->mutex);
            old->resumeInFlight = false;
            sendAll(fd, wireLine(errorReply(errc::shuttingDown,
                                            "harpd is shutting down")));
            return;
        }
        const auto it = tenants_.find(campaign->header.tenant);
        const TenantUsage usage =
            it != tenants_.end() ? it->second : TenantUsage{};
        const bool over_campaigns =
            config_.maxCampaignsPerTenant > 0 &&
            usage.campaigns >= config_.maxCampaignsPerTenant;
        const bool over_jobs =
            config_.maxInflightJobsPerTenant > 0 &&
            usage.jobs + jobs > config_.maxInflightJobsPerTenant;
        if (over_campaigns || over_jobs) {
            std::lock_guard<std::mutex> old_lock(old->mutex);
            old->resumeInFlight = false;
            JsonValue reply = errorReply(
                errc::quotaExceeded,
                "tenant '" + campaign->header.tenant +
                    "' has no headroom to resume '" + id + "'");
            reply.set("retriable", JsonValue(true));
            reply.set("retry_after_ms",
                      JsonValue(config_.shedRetryAfterMs));
            sendAll(fd, wireLine(reply));
            return;
        }
        TenantUsage &admitted = tenants_[campaign->header.tenant];
        admitted.campaigns += 1;
        admitted.jobs += jobs;
        campaign->admittedJobs = jobs;
        campaign->chargedAdmission.store(true);
        campaigns_[id] = campaign; // replaces the resumable entry
    }
    campaign->worker =
        std::thread([this, campaign] { runCampaign(campaign); });

    JsonValue reply = JsonValue::object();
    reply.set("type", JsonValue("ok"));
    reply.set("campaign", JsonValue(id));
    reply.set("resuming", JsonValue(true));
    sendAll(fd, wireLine(reply));
}

void
Server::publishEvent(const std::shared_ptr<Campaign> &campaign,
                     JsonValue event,
                     const std::shared_ptr<EventQueue> &queue)
{
    std::string line;
    {
        std::lock_guard<std::mutex> lock(campaign->mutex);
        event.set("seq", JsonValue(campaign->log.size()));
        line = wireLine(event);
        campaign->log.push_back(line);
    }
    campaign->logCv.notify_all();
    campaign->lastProgressMs.store(steadyMs());
    if (queue != nullptr)
        queue->push(line);
}

void
Server::releaseAdmission(const Campaign &campaign)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tenants_.find(campaign.header.tenant);
    if (it != tenants_.end()) {
        TenantUsage &usage = it->second;
        usage.campaigns -= std::min<std::size_t>(1, usage.campaigns);
        usage.jobs -= std::min(campaign.admittedJobs, usage.jobs);
        if (usage.campaigns == 0 && usage.jobs == 0)
            tenants_.erase(it);
    }
    // Freed quota is the only thing parked campaigns wait on.
    promoteQueuedLocked();
}

std::size_t
Server::tenantWeight(const std::string &tenant) const
{
    const auto it = config_.tenantWeights.find(tenant);
    const std::size_t weight = it != config_.tenantWeights.end()
                                   ? it->second
                                   : config_.defaultTenantWeight;
    return std::max<std::size_t>(1, weight);
}

void
Server::promoteQueuedLocked()
{
    // Arrival order, skipping over entries that still don't fit — a
    // big parked submission must not head-of-line-block a small one
    // from another tenant.
    for (auto it = admissionQueue_.begin();
         it != admissionQueue_.end();) {
        const std::shared_ptr<Campaign> &campaign = *it;
        if (campaign->cancel.load()) {
            // Its worker is winding the campaign down; just unpark.
            it = admissionQueue_.erase(it);
            continue;
        }
        const auto usage_it = tenants_.find(campaign->header.tenant);
        const TenantUsage usage =
            usage_it != tenants_.end() ? usage_it->second : TenantUsage{};
        const bool over_campaigns =
            config_.maxCampaignsPerTenant > 0 &&
            usage.campaigns >= config_.maxCampaignsPerTenant;
        const bool over_jobs =
            config_.maxInflightJobsPerTenant > 0 &&
            usage.jobs + campaign->admittedJobs >
                config_.maxInflightJobsPerTenant;
        if (over_campaigns || over_jobs) {
            ++it;
            continue;
        }
        TenantUsage &admitted = tenants_[campaign->header.tenant];
        admitted.campaigns += 1;
        admitted.jobs += campaign->admittedJobs;
        campaign->chargedAdmission.store(true);
        {
            std::lock_guard<std::mutex> state_lock(campaign->mutex);
            if (campaign->state == CampaignState::Queued)
                campaign->state = CampaignState::Running;
        }
        campaign->logCv.notify_all();
        it = admissionQueue_.erase(it);
    }
    std::size_t position = 0;
    for (const auto &campaign : admissionQueue_)
        campaign->queuePosition.store(position++);
}

bool
Server::awaitAdmission(const std::shared_ptr<Campaign> &campaign)
{
    // Poll-wait on the campaign cv: promotion notifies, and cancel /
    // deadline / shutdown flags flip without one, so the wait is timed.
    {
        std::unique_lock<std::mutex> lock(campaign->mutex);
        while (campaign->state == CampaignState::Queued &&
               !campaign->cancel.load() && !stopping_.load()) {
            campaign->logCv.wait_for(lock,
                                     std::chrono::milliseconds(50));
        }
        if (campaign->state != CampaignState::Queued)
            return true; // promoted (possibly cancelled later — the
                         // normal run path handles that)
    }
    // Terminal while parked: unpark, publish why, close the stream.
    // Nothing was charged and nothing ran, so there is no checkpoint;
    // a deadline_exceeded here stays resumable from the in-memory
    // header (the resume verb re-prices and re-admits it).
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = admissionQueue_.begin();
             it != admissionQueue_.end(); ++it) {
            if (it->get() == campaign.get()) {
                admissionQueue_.erase(it);
                break;
            }
        }
        std::size_t position = 0;
        for (const auto &parked : admissionQueue_)
            parked->queuePosition.store(position++);
    }
    const bool deadline = campaign->deadlineExpired.load();
    {
        std::lock_guard<std::mutex> lock(campaign->mutex);
        campaign->state = deadline ? CampaignState::DeadlineExceeded
                                   : CampaignState::Cancelled;
        if (deadline)
            campaign->error = "deadline expired while queued";
    }
    const std::shared_ptr<EventQueue> queue = campaign->clientQueue;
    if (queue != nullptr) {
        JsonValue event = JsonValue::object();
        event.set("type", JsonValue(deadline ? "deadline_exceeded"
                                             : "cancelled"));
        event.set("campaign", JsonValue(campaign->header.campaign));
        if (deadline) {
            event.set("completed_jobs", JsonValue(std::size_t{0}));
            event.set("total_jobs", JsonValue(campaign->totalJobs));
            event.set("resumable", JsonValue(true));
        }
        queue->push(wireLine(event));
    }
    return false;
}

void
Server::writeStatusSnapshot()
{
    JsonValue doc = JsonValue::object();
    doc.set("time_ms", JsonValue(steadyMs()));
    doc.set("pool_backlog",
            JsonValue(pool_ != nullptr ? pool_->backlog() : 0));
    JsonValue list = JsonValue::array();
    JsonValue usage = JsonValue::object();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, campaign] : campaigns_) {
            std::lock_guard<std::mutex> state_lock(campaign->mutex);
            list.push(JsonValue::parse(campaignStatusLine(id, *campaign)));
        }
        for (const auto &[tenant, used] : tenants_) {
            JsonValue entry = JsonValue::object();
            entry.set("campaigns", JsonValue(used.campaigns));
            entry.set("jobs", JsonValue(used.jobs));
            usage.set(tenant, entry);
        }
        doc.set("queued", JsonValue(admissionQueue_.size()));
    }
    doc.set("campaigns", list);
    doc.set("tenants", usage);

    // tmp + rename so readers never see a torn snapshot; best-effort —
    // a failed snapshot must never hurt the serving path.
    const std::string path =
        (fs::path(config_.dataDir) / "status.json").string();
    const std::string tmp = path + ".tmp";
    io::File out;
    if (out.open(tmp, /*truncate=*/true, nullptr))
        return;
    if (out.writeAll(doc.dump(2) + "\n") || out.sync() || out.close())
        return;
    (void)!io::renamePath(tmp, path, nullptr);
}

void
Server::runCampaign(const std::shared_ptr<Campaign> &campaign)
{
    const std::string &id = campaign->header.campaign;
    const std::shared_ptr<EventQueue> queue = campaign->clientQueue;

    // Parked submissions wait here for quota; a cancel / deadline /
    // shutdown while parked ends the campaign without running a job.
    bool parked;
    {
        std::lock_guard<std::mutex> lock(campaign->mutex);
        parked = campaign->state == CampaignState::Queued;
    }
    if (parked && !awaitAdmission(campaign)) {
        {
            std::lock_guard<std::mutex> lock(campaign->mutex);
            campaign->logComplete = true;
        }
        campaign->logCv.notify_all();
        if (queue != nullptr)
            queue->close();
        return;
    }

    const std::string ckpt_path = checkpointPath(id);
    const fs::path staging =
        fs::path(config_.dataDir) / "results" / (".tmp-" + id);
    io::FaultPlan *plan = config_.ioFaultPlan;
    const auto finish = [&](CampaignState state,
                            const std::string &error) {
        {
            std::lock_guard<std::mutex> lock(campaign->mutex);
            campaign->state = state;
            campaign->error = error;
        }
        // Quota must be free before any terminal state or event is
        // observable: a client that reacts to `done` by submitting (or
        // resuming) must never be shed by its *own* finished campaign.
        // Running is the shutdown-drain park, not a terminal state —
        // it keeps its charge.
        if (state != CampaignState::Running &&
            campaign->chargedAdmission.exchange(false))
            releaseAdmission(*campaign);
    };
    // Degrade, never corrupt: the checkpoint stays, the status carries
    // the errno and whether a resume can clear it, and the out-of-band
    // (seq-less) degraded event tells the live stream why it ended.
    const auto finishDegraded = [&](std::error_code ec,
                                    const std::string &where) {
        const std::string errno_name = io::errnoName(ec.value());
        const bool retriable = io::isRetriable(ec);
        {
            std::lock_guard<std::mutex> lock(campaign->mutex);
            campaign->state = CampaignState::Degraded;
            campaign->error = where + ": " + ec.message();
            campaign->errnoName = errno_name;
            campaign->retriable = retriable;
        }
        if (campaign->chargedAdmission.exchange(false))
            releaseAdmission(*campaign);
        if (queue != nullptr) {
            JsonValue event = JsonValue::object();
            event.set("type", JsonValue("degraded"));
            event.set("campaign", JsonValue(id));
            event.set("errno_name", JsonValue(errno_name));
            event.set("retriable", JsonValue(retriable));
            event.set("message", JsonValue(where + ": " + ec.message()));
            queue->push(wireLine(event));
        }
    };
    const auto emit = [this, campaign, queue](JsonValue event) {
        publishEvent(campaign, std::move(event), queue);
    };
    // Progress heartbeats are deterministic stream members: they fire
    // after every stride-th delivered result (counting restored +
    // fresh, in job order), so their seq positions are identical on
    // every incarnation of the campaign — only their *content*
    // (wave, jobs_per_sec) reflects this run. That keeps `subscribe
    // from=` cursors stable across kill/resume with heartbeats in the
    // log.
    std::size_t progress_results = 0;
    std::size_t progress_stride = 0;
    std::size_t progress_total = 0;
    const std::uint64_t run_start_ms = steadyMs();
    const auto emitResult = [&, this](JsonValue event) {
        publishEvent(campaign, std::move(event), queue);
        ++progress_results;
        if (progress_stride != 0 &&
            (progress_results % progress_stride == 0 ||
             progress_results == progress_total)) {
            JsonValue tick = JsonValue::object();
            tick.set("type", JsonValue("progress"));
            tick.set("campaign", JsonValue(id));
            tick.set("wave", JsonValue(campaign->waveIndex.load()));
            tick.set("jobs_done", JsonValue(progress_results));
            tick.set("jobs_total", JsonValue(progress_total));
            const std::uint64_t elapsed =
                std::max<std::uint64_t>(1, steadyMs() - run_start_ms);
            tick.set("jobs_per_sec",
                     JsonValue(static_cast<double>(progress_results) *
                               1000.0 / static_cast<double>(elapsed)));
            publishEvent(campaign, std::move(tick), queue);
        }
    };

    try {
        const bool resuming = !campaign->restored.empty() ||
                              fs::exists(ckpt_path);
        std::error_code stage_ec;
        fs::remove_all(staging, stage_ec);
        fs::create_directories(staging, stage_ec);
        if (stage_ec)
            throw CheckpointIoError("cannot create staging dir " +
                                        staging.string() + ": " +
                                        stage_ec.message(),
                                    stage_ec);

        // Sessions first: totals (for `accepted` and status) and
        // checkpoint-restore before any job runs.
        runner::SessionOptions session_options;
        session_options.seed = campaign->header.seed;
        session_options.repeat = campaign->header.repeat;
        session_options.overrides = campaign->header.overrides;
        std::vector<std::unique_ptr<runner::CampaignSession>> sessions;
        sessions.reserve(campaign->specs.size());
        for (const runner::ExperimentSpec *spec : campaign->specs)
            sessions.push_back(std::make_unique<runner::CampaignSession>(
                *spec, session_options));
        std::size_t total = 0;
        std::size_t restored = 0;
        for (const CheckpointRecord &record : campaign->restored) {
            if (record.experiment < sessions.size() &&
                sessions[record.experiment]->restore(record.job,
                                                     record.line))
                ++restored;
        }
        campaign->restored.clear();
        for (const auto &session : sessions)
            total += session->totalJobs();
        campaign->totalJobs = total;
        campaign->completedJobs.store(restored);
        campaign->lastProgressMs.store(steadyMs());
        progress_total = total;
        progress_stride = std::max<std::size_t>(1, total / 64);

        if (queue != nullptr) {
            JsonValue accepted = JsonValue::object();
            accepted.set("type", JsonValue("accepted"));
            accepted.set("campaign", JsonValue(id));
            accepted.set("total_jobs", JsonValue(total));
            accepted.set("restored_jobs", JsonValue(restored));
            queue->push(wireLine(accepted));
        }

        CheckpointWriter checkpoint =
            resuming ? CheckpointWriter(ckpt_path, plan,
                                        config_.fsyncCheckpoints)
                     : CheckpointWriter(ckpt_path, campaign->header,
                                        plan, config_.fsyncCheckpoints);

        runner::CampaignSummary summary;
        summary.seed = campaign->header.seed;
        summary.threads = poolThreads_;
        summary.repeat = campaign->header.repeat;
        bool cancelled = false;
        std::optional<SinkFailure> io_failure;
        std::size_t completed_base = 0;

        // Enroll with the fair governor for the compute phase: waves
        // are granted stride-fairly across tenants, slots hand back
        // per finished job. Scope-bound so every exit path leaves.
        struct FairEnrollment
        {
            common::FairScheduler *fair = nullptr;
            std::uint64_t entity = 0;
            ~FairEnrollment()
            {
                if (fair != nullptr)
                    fair->leave(entity);
            }
        } enrollment;
        std::optional<FairWaveScheduler> fair_waves;
        if (fair_ != nullptr) {
            enrollment.fair = fair_.get();
            enrollment.entity = fair_->enroll(
                campaign->header.tenant,
                tenantWeight(campaign->header.tenant),
                campaign->header.priority);
            fair_waves.emplace(*fair_, enrollment.entity,
                               campaign->waveIndex, campaign->cancel);
        }

        for (std::size_t i = 0; i < sessions.size(); ++i) {
            runner::CampaignSession &session = *sessions[i];
            const std::string &name = session.spec().name;
            const std::string jsonl_path =
                (staging / (name + ".jsonl")).string();
            io::File file;
            if (std::error_code ec =
                    file.open(jsonl_path, /*truncate=*/true, plan))
                throw CheckpointIoError("cannot open " + jsonl_path +
                                            ": " + ec.message(),
                                        ec);
            ServedSink sink(file, &checkpoint, i, name, id, emitResult,
                            &campaign->cancel);
            const std::size_t base = completed_base;
            const runner::CampaignSession::Outcome outcome = session.run(
                pool_.get(), poolThreads_, sink, &campaign->cancel,
                [campaign, base](std::size_t done) {
                    campaign->completedJobs.store(base + done);
                    campaign->lastProgressMs.store(steadyMs());
                },
                fair_waves.has_value() ? &*fair_waves : nullptr);
            if (sink.failure().has_value()) {
                io_failure = sink.failure();
                break;
            }
            // Staged results durable before the experiment is declared
            // finished (and before the next one starts).
            if (std::error_code ec = file.sync())
                throw CheckpointIoError("cannot fsync " + jsonl_path +
                                            ": " + ec.message(),
                                        ec);
            if (std::error_code ec = file.close())
                throw CheckpointIoError("cannot close " + jsonl_path +
                                            ": " + ec.message(),
                                        ec);
            completed_base += session.totalJobs();
            if (!outcome.cancelled)
                campaign->completedJobs.store(completed_base);
            if (outcome.cancelled) {
                cancelled = true;
                break;
            }

            runner::ExperimentRunSummary exp;
            exp.name = name;
            exp.points = session.points().size();
            exp.repeats = session.repeats();
            exp.jsonlPath =
                (fs::path(resultsDir(id)) / (name + ".jsonl")).string();
            exp.resultHash = outcome.resultHash;
            summary.experiments.push_back(exp);

            JsonValue event = JsonValue::object();
            event.set("type", JsonValue("experiment_done"));
            event.set("experiment", JsonValue(name));
            event.set("points", JsonValue(exp.points));
            event.set("repeats", JsonValue(exp.repeats));
            event.set("result_hash", JsonValue(runner::formatResultHash(
                                         exp.resultHash)));
            emit(std::move(event));
        }

        if (io_failure.has_value()) {
            finishDegraded(io_failure->ec, io_failure->where);
        } else if (cancelled) {
            if (stopping_.load()) {
                // Shutdown drain, not user intent: keep the checkpoint
                // so the next start resumes right here.
                finish(CampaignState::Running, "");
            } else if (campaign->deadlineExpired.load()) {
                // Deadline, not user intent either: every completed
                // job is already in the checkpoint, so the campaign
                // parks as resumable `deadline_exceeded` with no torn
                // output — `resume` picks up exactly here.
                finish(CampaignState::DeadlineExceeded,
                       "deadline_ms expired at a wave boundary");
                if (queue != nullptr) {
                    JsonValue event = JsonValue::object();
                    event.set("type", JsonValue("deadline_exceeded"));
                    event.set("campaign", JsonValue(id));
                    event.set("completed_jobs",
                              JsonValue(campaign->completedJobs.load()));
                    event.set("total_jobs",
                              JsonValue(campaign->totalJobs));
                    event.set("resumable", JsonValue(true));
                    queue->push(wireLine(event));
                }
            } else {
                std::error_code cleanup;
                fs::remove(ckpt_path, cleanup);
                finish(CampaignState::Cancelled, "");
                if (queue != nullptr) {
                    JsonValue event = JsonValue::object();
                    event.set("type", JsonValue("cancelled"));
                    event.set("campaign", JsonValue(id));
                    queue->push(wireLine(event));
                }
            }
            std::error_code cleanup;
            fs::remove_all(staging, cleanup);
        } else {
            // Deterministic summary (no timings), then an atomic
            // publish through the seam: write + fsync the summary,
            // rename the staging dir, fsync the parent so the rename
            // itself is durable. Results appear only as a complete
            // set; any failure along the way degrades with the
            // checkpoint intact.
            const std::string summary_path =
                (staging / "summary.json").string();
            const std::string summary_text =
                summary.toJson(/*include_timings=*/false).dump(2) + "\n";
            io::File out;
            if (std::error_code ec =
                    out.open(summary_path, /*truncate=*/true, plan))
                throw CheckpointIoError("cannot open " + summary_path +
                                            ": " + ec.message(),
                                        ec);
            if (std::error_code ec = out.writeAll(summary_text))
                throw CheckpointIoError("cannot write " + summary_path +
                                            ": " + ec.message(),
                                        ec);
            if (std::error_code ec = out.sync())
                throw CheckpointIoError("cannot fsync " + summary_path +
                                            ": " + ec.message(),
                                        ec);
            if (std::error_code ec = out.close())
                throw CheckpointIoError("cannot close " + summary_path +
                                            ": " + ec.message(),
                                        ec);
            // A results dir that already exists means a previous run
            // published and died before removing the checkpoint: the
            // work is done, don't rename over it.
            if (!fs::exists(resultsDir(id))) {
                if (std::error_code ec = io::renamePath(
                        staging.string(), resultsDir(id), plan))
                    throw CheckpointIoError(
                        "cannot publish " + resultsDir(id) + ": " +
                            ec.message(),
                        ec);
            }
            if (std::error_code ec = io::syncDir(
                    (fs::path(config_.dataDir) / "results").string(),
                    plan))
                throw CheckpointIoError("cannot fsync results dir: " +
                                            ec.message(),
                                        ec);
            std::error_code cleanup;
            fs::remove(ckpt_path, cleanup);
            finish(CampaignState::Done, "");
            JsonValue event = JsonValue::object();
            event.set("type", JsonValue("summary"));
            event.set("summary",
                      summary.toJson(/*include_timings=*/false));
            emit(std::move(event));
            JsonValue done = JsonValue::object();
            done.set("type", JsonValue("done"));
            done.set("campaign", JsonValue(id));
            emit(std::move(done));
        }
    } catch (const CheckpointIoError &e) {
        finishDegraded(e.code, e.what());
    } catch (const std::exception &e) {
        // A genuine computation failure (job error, bad spec): the
        // campaign is not resumable, so the checkpoint goes too.
        std::error_code cleanup;
        fs::remove_all(staging, cleanup);
        fs::remove(ckpt_path, cleanup);
        finish(CampaignState::Failed, e.what());
        if (queue != nullptr)
            queue->push(wireLine(errorReply(errc::campaignFailed,
                                            e.what())));
    }
    {
        std::lock_guard<std::mutex> lock(campaign->mutex);
        campaign->logComplete = true;
    }
    campaign->logCv.notify_all();
    if (queue != nullptr)
        queue->close();
    // Backstop: terminal paths released at the state transition (so
    // quota frees before terminal events are visible); this catches
    // only exits that never reached one.
    if (campaign->chargedAdmission.exchange(false))
        releaseAdmission(*campaign);
}

} // namespace harp::harpd
