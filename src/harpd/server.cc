#include "harpd/server.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "runner/campaign.hh"
#include "runner/session.hh"

namespace harp::harpd {

namespace fs = std::filesystem;
using runner::JsonValue;

namespace {

/** Batch-CLI parity: every override must be an axis or tunable of at
 *  least one selected experiment. Returns an error message or "". */
std::string
validateOverrides(const std::vector<const runner::ExperimentSpec *> &specs,
                  const std::map<std::string, std::string> &overrides)
{
    for (const auto &[name, text] : overrides) {
        (void)text;
        const bool known = std::any_of(
            specs.begin(), specs.end(),
            [&name](const runner::ExperimentSpec *spec) {
                return spec->grid.findAxis(name) != nullptr ||
                       std::any_of(spec->tunables.begin(),
                                   spec->tunables.end(),
                                   [&name](const runner::TunableSpec &t) {
                                       return t.name == name;
                                   });
            });
        if (!known)
            return "unknown override '" + name +
                   "' (not an axis or tunable of the selected "
                   "experiments)";
    }
    return "";
}

/**
 * Per-experiment sink of one served campaign: every line goes to the
 * staged results file; fresh lines additionally reach the checkpoint
 * (before any client sees them — the durable record leads the
 * volatile stream) and the client queue, whose bounded push is the
 * backpressure on a slow consumer. A closed queue (disconnected
 * client) degrades pushes to no-ops; the campaign itself never stops.
 */
class ServedSink : public runner::ResultSink
{
  public:
    ServedSink(std::ofstream &file, CheckpointWriter *checkpoint,
               std::size_t experiment_index,
               const std::string &experiment_name,
               const std::string &campaign_id,
               const std::shared_ptr<common::BoundedQueue<std::string>>
                   &queue)
        : file_(file), checkpoint_(checkpoint),
          experimentIndex_(experiment_index),
          experimentName_(experiment_name), campaignId_(campaign_id),
          queue_(queue)
    {
    }

    void onResult(std::size_t job, const std::string &line,
                  bool fresh) override
    {
        file_ << line << '\n';
        // Empty lines mark errored jobs (reported after the stream);
        // they must never be persisted as completed work.
        if (fresh && !line.empty() && checkpoint_ != nullptr)
            checkpoint_->add({experimentIndex_, job, line});
        if (queue_ != nullptr) {
            JsonValue event = JsonValue::object();
            event.set("type", JsonValue("result"));
            event.set("campaign", JsonValue(campaignId_));
            event.set("experiment", JsonValue(experimentName_));
            event.set("job", JsonValue(job));
            event.set("line", JsonValue(line));
            queue_->push(wireLine(event));
        }
    }

  private:
    std::ofstream &file_;
    CheckpointWriter *checkpoint_;
    std::size_t experimentIndex_;
    const std::string &experimentName_;
    const std::string &campaignId_;
    std::shared_ptr<common::BoundedQueue<std::string>> queue_;
};

} // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      registry_(config_.registry != nullptr ? config_.registry
                                            : &runner::builtinRegistry())
{
    poolThreads_ = config_.threads != 0
                       ? config_.threads
                       : std::max<std::size_t>(
                             1, std::thread::hardware_concurrency());
}

Server::~Server()
{
    requestStop();
    // serve() joins everything; if serve() never ran (start() threw or
    // the caller stopped early), reap what exists.
    std::vector<std::thread> connections;
    std::vector<std::shared_ptr<Campaign>> campaigns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        connections.swap(connections_);
        for (auto &[id, campaign] : campaigns_) {
            campaign->cancel.store(true);
            campaigns.push_back(campaign);
        }
        for (const int fd : connectionFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &thread : connections)
        if (thread.joinable())
            thread.join();
    for (const auto &campaign : campaigns)
        if (campaign->worker.joinable())
            campaign->worker.join();
}

std::string
Server::checkpointPath(const std::string &id) const
{
    return (fs::path(config_.dataDir) / "checkpoints" / (id + ".ckpt"))
        .string();
}

std::string
Server::resultsDir(const std::string &id) const
{
    return (fs::path(config_.dataDir) / "results" / id).string();
}

const char *
Server::stateName(CampaignState state)
{
    switch (state) {
    case CampaignState::Running:
        return "running";
    case CampaignState::Done:
        return "done";
    case CampaignState::Failed:
        return "failed";
    case CampaignState::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

void
Server::start()
{
    fs::create_directories(fs::path(config_.dataDir) / "checkpoints");
    fs::create_directories(fs::path(config_.dataDir) / "results");

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
        throw std::runtime_error("harpd: cannot create stop pipe");
    stopPipeRead_ = Fd(pipe_fds[0]);
    stopPipeWrite_ = Fd(pipe_fds[1]);

    listenFd_ = listenUnix(config_.socketPath);
    pool_ = std::make_unique<common::ThreadPool>(poolThreads_);

    // Resume every campaign with a surviving checkpoint, detached from
    // any client. Unreadable checkpoints are set aside as .bad — a
    // corrupted *tail* is not unreadable (loadCheckpoint already
    // truncate-recovered it); only a destroyed header lands here.
    for (const auto &entry :
         fs::directory_iterator(fs::path(config_.dataDir) /
                                "checkpoints")) {
        if (entry.path().extension() != ".ckpt")
            continue;
        const std::string id = entry.path().stem().string();
        std::optional<LoadedCheckpoint> loaded =
            loadCheckpoint(entry.path().string());
        std::shared_ptr<Campaign> campaign;
        if (loaded.has_value() && loaded->header.campaign == id) {
            campaign = std::make_shared<Campaign>();
            campaign->header = std::move(loaded->header);
            campaign->restored = std::move(loaded->records);
            try {
                campaign->specs =
                    registry_->select(campaign->header.experiments);
            } catch (const std::exception &) {
                campaign.reset();
            }
        }
        if (campaign == nullptr) {
            fs::rename(entry.path(),
                       entry.path().string() + ".bad");
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            campaigns_[id] = campaign;
        }
        campaign->worker =
            std::thread([this, campaign] { runCampaign(campaign); });
        ++resumed_;
    }
}

void
Server::requestStop()
{
    stopping_.store(true);
    if (stopPipeWrite_.valid()) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(stopPipeWrite_.get(), &byte, 1);
    }
}

void
Server::serve()
{
    while (!stopping_.load()) {
        pollfd fds[2] = {{listenFd_.get(), POLLIN, 0},
                         {stopPipeRead_.get(), POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if ((fds[1].revents & POLLIN) != 0 || stopping_.load())
            break;
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        Fd client(::accept(listenFd_.get(), nullptr, nullptr));
        if (!client.valid())
            continue;
        std::lock_guard<std::mutex> lock(mutex_);
        connectionFds_.push_back(client.get());
        connectionCount_.fetch_add(1);
        const int raw = client.release();
        connections_.emplace_back(
            [this, raw] { connectionLoop(Fd(raw)); });
    }

    // Drain: stop accepting, wind down clients, let in-flight jobs
    // finish at the next wave boundary (their results are already
    // checkpointed), leave unfinished campaigns for the next start.
    listenFd_.reset();
    ::unlink(config_.socketPath.c_str());

    std::vector<std::shared_ptr<Campaign>> campaigns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &[id, campaign] : campaigns_) {
            (void)id;
            campaign->cancel.store(true);
            campaigns.push_back(campaign);
        }
        for (const int fd : connectionFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (;;) {
        std::thread connection;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (connections_.empty())
                break;
            connection = std::move(connections_.back());
            connections_.pop_back();
        }
        if (connection.joinable())
            connection.join();
    }
    for (const auto &campaign : campaigns)
        if (campaign->worker.joinable())
            campaign->worker.join();
}

void
Server::connectionLoop(Fd fd)
{
    LineReader reader(fd.get());
    std::string line;
    bool keep_open = true;
    while (keep_open) {
        const LineReader::Result result =
            reader.readLine(line, maxLineBytes);
        if (result == LineReader::Result::Line) {
            keep_open = handleRequest(fd.get(), line);
            continue;
        }
        if (result == LineReader::Result::Oversized) {
            sendAll(fd.get(),
                    wireLine(errorReply(
                        errc::oversizedLine,
                        "request line exceeds " +
                            std::to_string(maxLineBytes) + " bytes")));
        } else if (result == LineReader::Result::EofPartial) {
            // Half-closed mid-line: best-effort structured reply (the
            // write side may still be open on the peer).
            sendAll(fd.get(),
                    wireLine(errorReply(errc::badRequest,
                                        "connection half-closed mid-"
                                        "line")));
        }
        keep_open = false;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        connectionFds_.erase(std::remove(connectionFds_.begin(),
                                         connectionFds_.end(), fd.get()),
                             connectionFds_.end());
    }
    fd.reset();
    connectionCount_.fetch_sub(1);
}

std::string
Server::campaignStatusLine(const std::string &id, const Campaign &campaign)
{
    JsonValue status = JsonValue::object();
    status.set("id", JsonValue(id));
    status.set("state", JsonValue(stateName(campaign.state)));
    status.set("completed_jobs", JsonValue(campaign.completedJobs.load()));
    status.set("total_jobs", JsonValue(campaign.totalJobs));
    if (!campaign.error.empty())
        status.set("error", JsonValue(campaign.error));
    return status.dump();
}

bool
Server::handleRequest(int fd, const std::string &line)
{
    JsonValue error;
    const std::optional<Request> request = parseRequest(line, error);
    if (!request.has_value())
        return sendAll(fd, wireLine(error));

    switch (request->verb) {
    case Verb::Ping: {
        JsonValue reply = JsonValue::object();
        reply.set("type", JsonValue("pong"));
        return sendAll(fd, wireLine(reply));
    }
    case Verb::List: {
        JsonValue reply = JsonValue::object();
        reply.set("type", JsonValue("list"));
        reply.set("registry", runner::registryToJson(*registry_));
        JsonValue list = JsonValue::array();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const auto &[id, campaign] : campaigns_) {
                std::lock_guard<std::mutex> state_lock(campaign->mutex);
                list.push(JsonValue::parse(
                    campaignStatusLine(id, *campaign)));
            }
        }
        reply.set("campaigns", list);
        reply.set("connections", JsonValue(connectionCount_.load()));
        return sendAll(fd, wireLine(reply));
    }
    case Verb::Status: {
        std::shared_ptr<Campaign> campaign;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = campaigns_.find(request->campaign);
            if (it != campaigns_.end())
                campaign = it->second;
        }
        if (campaign == nullptr)
            return sendAll(fd, wireLine(errorReply(
                                   errc::unknownCampaign,
                                   "no campaign '" + request->campaign +
                                       "'")));
        JsonValue reply;
        {
            std::lock_guard<std::mutex> state_lock(campaign->mutex);
            reply = JsonValue::parse(
                campaignStatusLine(request->campaign, *campaign));
        }
        reply.set("type", JsonValue("status"));
        return sendAll(fd, wireLine(reply));
    }
    case Verb::Cancel: {
        std::shared_ptr<Campaign> campaign;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = campaigns_.find(request->campaign);
            if (it != campaigns_.end())
                campaign = it->second;
        }
        if (campaign == nullptr)
            return sendAll(fd, wireLine(errorReply(
                                   errc::unknownCampaign,
                                   "no campaign '" + request->campaign +
                                       "'")));
        campaign->cancel.store(true);
        JsonValue reply = JsonValue::object();
        reply.set("type", JsonValue("ok"));
        reply.set("campaign", JsonValue(request->campaign));
        reply.set("cancelling", JsonValue(true));
        return sendAll(fd, wireLine(reply));
    }
    case Verb::Submit:
        handleSubmit(fd, *request);
        return true;
    case Verb::Shutdown: {
        JsonValue reply = JsonValue::object();
        reply.set("type", JsonValue("ok"));
        reply.set("shutting_down", JsonValue(true));
        sendAll(fd, wireLine(reply));
        requestStop();
        return false;
    }
    }
    return false;
}

void
Server::handleSubmit(int fd, const Request &request)
{
    std::vector<const runner::ExperimentSpec *> specs;
    try {
        specs = registry_->select(request.experiments);
    } catch (const std::exception &e) {
        sendAll(fd,
                wireLine(errorReply(errc::unknownExperiment, e.what())));
        return;
    }
    if (const std::string bad = validateOverrides(specs,
                                                  request.overrides);
        !bad.empty()) {
        sendAll(fd, wireLine(errorReply(errc::badRequest, bad)));
        return;
    }

    auto campaign = std::make_shared<Campaign>();
    campaign->header.campaign = request.campaign;
    campaign->header.experiments = request.experiments;
    campaign->header.seed = request.seed;
    campaign->header.repeat = request.repeat;
    campaign->header.overrides = request.overrides;
    campaign->specs = std::move(specs);
    campaign->clientQueue = std::make_shared<EventQueue>(
        config_.clientQueueCapacity);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_.load()) {
            sendAll(fd, wireLine(errorReply(errc::shuttingDown,
                                            "harpd is shutting down")));
            return;
        }
        // Double-submit protection spans restarts: a live table entry
        // (running or terminal) or completed results on disk both
        // make the id taken.
        if (campaigns_.count(request.campaign) > 0 ||
            fs::exists(resultsDir(request.campaign))) {
            sendAll(fd, wireLine(errorReply(
                            errc::duplicateCampaign,
                            "campaign '" + request.campaign +
                                "' already exists")));
            return;
        }
        campaigns_[request.campaign] = campaign;
    }
    const std::shared_ptr<EventQueue> queue = campaign->clientQueue;
    campaign->worker =
        std::thread([this, campaign] { runCampaign(campaign); });

    // Stream events until the campaign closes the queue. A failed
    // write means the client vanished: close the queue so producers
    // stop paying for it, then keep draining so nothing blocks; the
    // campaign itself continues to completion on disk.
    bool client_alive = true;
    for (;;) {
        std::optional<std::string> event = queue->pop();
        if (!event.has_value())
            break;
        if (client_alive && !sendAll(fd, *event)) {
            client_alive = false;
            queue->close();
        }
    }
}

void
Server::runCampaign(const std::shared_ptr<Campaign> &campaign)
{
    const std::string &id = campaign->header.campaign;
    const std::shared_ptr<EventQueue> queue = campaign->clientQueue;
    const std::string ckpt_path = checkpointPath(id);
    const fs::path staging =
        fs::path(config_.dataDir) / "results" / (".tmp-" + id);
    const auto finish = [&](CampaignState state,
                            const std::string &error) {
        std::lock_guard<std::mutex> lock(campaign->mutex);
        campaign->state = state;
        campaign->error = error;
    };

    try {
        const bool resuming = !campaign->restored.empty() ||
                              fs::exists(ckpt_path);
        std::error_code ec;
        fs::remove_all(staging, ec);
        fs::create_directories(staging);

        // Sessions first: totals (for `accepted` and status) and
        // checkpoint-restore before any job runs.
        runner::SessionOptions session_options;
        session_options.seed = campaign->header.seed;
        session_options.repeat = campaign->header.repeat;
        session_options.overrides = campaign->header.overrides;
        std::vector<std::unique_ptr<runner::CampaignSession>> sessions;
        sessions.reserve(campaign->specs.size());
        for (const runner::ExperimentSpec *spec : campaign->specs)
            sessions.push_back(std::make_unique<runner::CampaignSession>(
                *spec, session_options));
        std::size_t total = 0;
        std::size_t restored = 0;
        for (const CheckpointRecord &record : campaign->restored) {
            if (record.experiment < sessions.size() &&
                sessions[record.experiment]->restore(record.job,
                                                     record.line))
                ++restored;
        }
        campaign->restored.clear();
        for (const auto &session : sessions)
            total += session->totalJobs();
        campaign->totalJobs = total;
        campaign->completedJobs.store(restored);

        if (queue != nullptr) {
            JsonValue accepted = JsonValue::object();
            accepted.set("type", JsonValue("accepted"));
            accepted.set("campaign", JsonValue(id));
            accepted.set("total_jobs", JsonValue(total));
            accepted.set("restored_jobs", JsonValue(restored));
            queue->push(wireLine(accepted));
        }

        CheckpointWriter checkpoint =
            resuming ? CheckpointWriter(ckpt_path)
                     : CheckpointWriter(ckpt_path, campaign->header);

        runner::CampaignSummary summary;
        summary.seed = campaign->header.seed;
        summary.threads = poolThreads_;
        summary.repeat = campaign->header.repeat;
        bool cancelled = false;
        std::size_t completed_base = 0;
        for (std::size_t i = 0; i < sessions.size(); ++i) {
            runner::CampaignSession &session = *sessions[i];
            const std::string &name = session.spec().name;
            const std::string jsonl_path =
                (staging / (name + ".jsonl")).string();
            std::ofstream file(jsonl_path,
                               std::ios::binary | std::ios::trunc);
            if (!file)
                throw std::runtime_error("cannot write " + jsonl_path);
            ServedSink sink(file, &checkpoint, i, name, id, queue);
            const std::size_t base = completed_base;
            const runner::CampaignSession::Outcome outcome = session.run(
                pool_.get(), poolThreads_, sink, &campaign->cancel,
                [campaign, base](std::size_t done) {
                    campaign->completedJobs.store(base + done);
                });
            file.flush();
            if (!file)
                throw std::runtime_error("cannot write " + jsonl_path);
            completed_base += session.totalJobs();
            if (!outcome.cancelled)
                campaign->completedJobs.store(completed_base);
            if (outcome.cancelled) {
                cancelled = true;
                break;
            }

            runner::ExperimentRunSummary exp;
            exp.name = name;
            exp.points = session.points().size();
            exp.repeats = session.repeats();
            exp.jsonlPath =
                (fs::path(resultsDir(id)) / (name + ".jsonl")).string();
            exp.resultHash = outcome.resultHash;
            summary.experiments.push_back(exp);

            if (queue != nullptr) {
                JsonValue event = JsonValue::object();
                event.set("type", JsonValue("experiment_done"));
                event.set("experiment", JsonValue(name));
                event.set("points", JsonValue(exp.points));
                event.set("repeats", JsonValue(exp.repeats));
                event.set("result_hash",
                          JsonValue(runner::formatResultHash(
                              exp.resultHash)));
                queue->push(wireLine(event));
            }
        }

        if (cancelled) {
            if (stopping_.load()) {
                // Shutdown drain, not user intent: keep the checkpoint
                // so the next start resumes right here.
                finish(CampaignState::Running, "");
            } else {
                std::error_code cleanup;
                fs::remove(ckpt_path, cleanup);
                finish(CampaignState::Cancelled, "");
                if (queue != nullptr) {
                    JsonValue event = JsonValue::object();
                    event.set("type", JsonValue("cancelled"));
                    event.set("campaign", JsonValue(id));
                    queue->push(wireLine(event));
                }
            }
            std::error_code cleanup;
            fs::remove_all(staging, cleanup);
        } else {
            // Deterministic summary (no timings), then an atomic-ish
            // publish: results appear only as a complete set.
            const std::string summary_path =
                (staging / "summary.json").string();
            std::ofstream out(summary_path,
                              std::ios::binary | std::ios::trunc);
            if (!out)
                throw std::runtime_error("cannot write " + summary_path);
            out << summary.toJson(/*include_timings=*/false).dump(2)
                << '\n';
            out.flush();
            if (!out)
                throw std::runtime_error("cannot write " + summary_path);
            out.close();
            fs::rename(staging, resultsDir(id));
            std::error_code cleanup;
            fs::remove(ckpt_path, cleanup);
            finish(CampaignState::Done, "");
            if (queue != nullptr) {
                JsonValue event = JsonValue::object();
                event.set("type", JsonValue("summary"));
                event.set("summary",
                          summary.toJson(/*include_timings=*/false));
                queue->push(wireLine(event));
                JsonValue done = JsonValue::object();
                done.set("type", JsonValue("done"));
                done.set("campaign", JsonValue(id));
                queue->push(wireLine(done));
            }
        }
    } catch (const std::exception &e) {
        std::error_code cleanup;
        fs::remove_all(staging, cleanup);
        fs::remove(ckpt_path, cleanup);
        finish(CampaignState::Failed, e.what());
        if (queue != nullptr)
            queue->push(wireLine(errorReply(errc::campaignFailed,
                                            e.what())));
    }
    if (queue != nullptr)
        queue->close();
}

} // namespace harp::harpd
