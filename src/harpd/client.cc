#include "harpd/client.hh"

#include <stdexcept>

#include <sys/socket.h>

#include "harpd/protocol.hh"

namespace harp::harpd {

namespace {

Fd
connectWithDeadline(const std::string &socket_path,
                    const ClientOptions &options)
{
    bool timed_out = false;
    Fd fd = connectUnix(socket_path, options.connectTimeoutMs,
                        &timed_out);
    if (!fd.valid() && timed_out)
        throw TimeoutError("cannot connect to harpd at " + socket_path +
                           " within " +
                           std::to_string(options.connectTimeoutMs) +
                           "ms");
    return fd;
}

} // namespace

Client::Client(const std::string &socket_path,
               const ClientOptions &options)
    : fd_(connectWithDeadline(socket_path, options)), reader_(fd_.get())
{
    if (!fd_.valid())
        throw std::runtime_error("cannot connect to harpd at " +
                                 socket_path);
    if (options.ioTimeoutMs > 0 &&
        !setIoTimeout(fd_.get(), options.ioTimeoutMs))
        throw std::runtime_error("cannot arm io deadline on harpd "
                                 "connection");
}

bool
Client::sendLine(const std::string &line)
{
    return sendAll(fd_.get(), line);
}

bool
Client::send(const runner::JsonValue &request)
{
    return sendLine(wireLine(request));
}

std::optional<runner::JsonValue>
Client::read(std::string *raw)
{
    std::string line;
    const LineReader::Result result = reader_.readLine(line, maxLineBytes);
    if (result == LineReader::Result::Timeout)
        throw TimeoutError("harpd reply deadline expired");
    if (result != LineReader::Result::Line)
        return std::nullopt;
    if (raw != nullptr)
        *raw = line;
    try {
        return runner::JsonValue::parse(line);
    } catch (const std::exception &e) {
        throw std::runtime_error("harpd sent invalid JSON: " +
                                 std::string(e.what()));
    }
}

runner::JsonValue
Client::request(const runner::JsonValue &request)
{
    if (!send(request))
        throw std::runtime_error("harpd connection lost while sending");
    std::optional<runner::JsonValue> reply = read();
    if (!reply.has_value())
        throw std::runtime_error("harpd closed the connection without "
                                 "replying");
    return std::move(*reply);
}

void
Client::halfClose()
{
    ::shutdown(fd_.get(), SHUT_WR);
}

} // namespace harp::harpd
