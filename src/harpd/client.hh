/**
 * @file
 * harpd client: connect, send request lines, read reply lines — with
 * optional connect/request deadlines so a wedged daemon produces a
 * TimeoutError instead of a hung client, plus the retry/backoff
 * primitives the CLI builds on (decorrelated-jitter Backoff).
 *
 * Used by the `harpd_client` CLI and by the integration/fault-injection
 * tests, which additionally need raw socket control (halfClose,
 * abortive close) to exercise the server's failure paths.
 */

#ifndef HARP_HARPD_CLIENT_HH
#define HARP_HARPD_CLIENT_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/rng.hh"
#include "harpd/net.hh"
#include "runner/json.hh"

namespace harp::harpd {

/** Deadlines for one client connection. Zero = unbounded (the classic
 *  blocking behavior the in-process tests rely on). */
struct ClientOptions
{
    /** Bound on establishing the connection. */
    int connectTimeoutMs = 5000;
    /** Bound on each recv/send once connected; a campaign stream sees
     *  heartbeat traffic well inside any sane deadline, so a silent
     *  daemon is a fault, not patience. */
    int ioTimeoutMs = 0;
};

/** A bounded operation ran out its deadline — the daemon may be
 *  wedged. Distinct from a lost connection: retrying may still work. */
class TimeoutError : public std::runtime_error
{
  public:
    explicit TimeoutError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Exponential backoff with decorrelated jitter: each delay is drawn
 * uniformly from [base, prev*3), capped. Deterministic given the seed,
 * so retry schedules are testable; seeded from the PID-derived default
 * in the CLI so concurrent clients decorrelate.
 */
class Backoff
{
  public:
    Backoff(int base_ms, int cap_ms, std::uint64_t seed)
        : base_(base_ms), cap_(cap_ms), prev_(base_ms), rng_(seed)
    {
    }

    /** The next delay in ms (also advances the schedule). */
    int nextDelayMs()
    {
        const std::uint64_t span =
            static_cast<std::uint64_t>(prev_) * 3 >
                    static_cast<std::uint64_t>(base_)
                ? static_cast<std::uint64_t>(prev_) * 3 -
                      static_cast<std::uint64_t>(base_)
                : 1;
        const int delay = static_cast<int>(
            std::min<std::uint64_t>(static_cast<std::uint64_t>(cap_),
                                    static_cast<std::uint64_t>(base_) +
                                        rng_.nextBelow(span)));
        prev_ = delay;
        return delay;
    }

    /** Reset to the initial delay (after a success). */
    void reset() { prev_ = base_; }

  private:
    int base_;
    int cap_;
    int prev_;
    common::Xoshiro256 rng_;
};

class Client
{
  public:
    /** Connect to the daemon at @p socket_path.
     *  @throws std::runtime_error when the connection fails,
     *          TimeoutError when the connect deadline expires. */
    explicit Client(const std::string &socket_path,
                    const ClientOptions &options = {});

    /** Send one raw line (caller includes the trailing '\n').
     *  Returns false when the peer is gone. */
    bool sendLine(const std::string &line);

    /** Send @p request as one wire line. */
    bool send(const runner::JsonValue &request);

    /**
     * Read the next reply document. std::nullopt on EOF/error;
     * @p raw (when non-null) receives the undecoded line.
     * @throws std::runtime_error when the reply is not valid JSON,
     *         TimeoutError when the io deadline expires.
     */
    std::optional<runner::JsonValue> read(std::string *raw = nullptr);

    /** One-shot request/reply convenience.
     *  @throws std::runtime_error when the daemon hangs up early. */
    runner::JsonValue request(const runner::JsonValue &request);

    /** Half-close the write side (server sees EOF after buffered
     *  bytes) while keeping the read side open. */
    void halfClose();

    /** The raw socket (fault-injection tests only). */
    int fd() const { return fd_.get(); }

  private:
    Fd fd_;
    LineReader reader_;
};

} // namespace harp::harpd

#endif // HARP_HARPD_CLIENT_HH
