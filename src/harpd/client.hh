/**
 * @file
 * Minimal harpd client: connect, send request lines, read reply lines.
 *
 * Used by the `harpd_client` CLI and by the integration/fault-injection
 * tests, which additionally need raw socket control (halfClose,
 * abortive close) to exercise the server's failure paths.
 */

#ifndef HARP_HARPD_CLIENT_HH
#define HARP_HARPD_CLIENT_HH

#include <optional>
#include <string>

#include "harpd/net.hh"
#include "runner/json.hh"

namespace harp::harpd {

class Client
{
  public:
    /** Connect to the daemon at @p socket_path.
     *  @throws std::runtime_error when the connection fails. */
    explicit Client(const std::string &socket_path);

    /** Send one raw line (caller includes the trailing '\n').
     *  Returns false when the peer is gone. */
    bool sendLine(const std::string &line);

    /** Send @p request as one wire line. */
    bool send(const runner::JsonValue &request);

    /**
     * Read the next reply document. std::nullopt on EOF/error;
     * @p raw (when non-null) receives the undecoded line.
     * @throws std::runtime_error when the reply is not valid JSON.
     */
    std::optional<runner::JsonValue> read(std::string *raw = nullptr);

    /** One-shot request/reply convenience.
     *  @throws std::runtime_error when the daemon hangs up early. */
    runner::JsonValue request(const runner::JsonValue &request);

    /** Half-close the write side (server sees EOF after buffered
     *  bytes) while keeping the read side open. */
    void halfClose();

    /** The raw socket (fault-injection tests only). */
    int fd() const { return fd_.get(); }

  private:
    Fd fd_;
    LineReader reader_;
};

} // namespace harp::harpd

#endif // HARP_HARPD_CLIENT_HH
