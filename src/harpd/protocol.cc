#include "harpd/protocol.hh"

#include <stdexcept>

namespace harp::harpd {

using runner::JsonType;
using runner::JsonValue;

bool
validCampaignId(const std::string &id)
{
    if (id.empty() || id.size() > 64 || id.front() == '.')
        return false;
    for (const char c : id) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        if (!ok)
            return false;
    }
    return true;
}

JsonValue
errorReply(const std::string &code, const std::string &message)
{
    JsonValue reply = JsonValue::object();
    reply.set("type", JsonValue("error"));
    reply.set("code", JsonValue(code));
    reply.set("message", JsonValue(message));
    return reply;
}

std::string
wireLine(const JsonValue &reply)
{
    return reply.dump() + "\n";
}

namespace {

/** Fails with a bad_request error via exception for terse validation. */
struct RequestError : std::runtime_error
{
    explicit RequestError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

std::uint64_t
parseSeed(const JsonValue &value)
{
    if (value.type() == JsonType::Int) {
        const std::int64_t seed = value.asInt();
        if (seed < 0)
            throw RequestError("seed must be non-negative");
        return static_cast<std::uint64_t>(seed);
    }
    if (value.type() == JsonType::String) {
        const std::string &text = value.asString();
        if (text.empty() ||
            text.find_first_not_of("0123456789") != std::string::npos)
            throw RequestError("seed string must be a decimal integer");
        try {
            return std::stoull(text);
        } catch (const std::exception &) {
            throw RequestError("seed string out of range");
        }
    }
    throw RequestError("seed must be an integer or a decimal string");
}

std::string
overrideText(const JsonValue &value)
{
    switch (value.type()) {
    case JsonType::String:
        return value.asString();
    case JsonType::Int:
        return std::to_string(value.asInt());
    case JsonType::Double:
        return runner::jsonNumberToString(value.asDouble());
    case JsonType::Bool:
        return value.asBool() ? "true" : "false";
    default:
        throw RequestError("override values must be scalars");
    }
}

Request
parseValidated(const JsonValue &doc)
{
    if (doc.type() != JsonType::Object)
        throw RequestError("request must be a JSON object");
    const JsonValue *verb = doc.find("verb");
    if (verb == nullptr || verb->type() != JsonType::String)
        throw RequestError("missing string member 'verb'");

    Request request;
    const std::string &name = verb->asString();
    if (name == "ping")
        request.verb = Verb::Ping;
    else if (name == "list")
        request.verb = Verb::List;
    else if (name == "status")
        request.verb = Verb::Status;
    else if (name == "cancel")
        request.verb = Verb::Cancel;
    else if (name == "submit")
        request.verb = Verb::Submit;
    else if (name == "shutdown")
        request.verb = Verb::Shutdown;
    else if (name == "subscribe")
        request.verb = Verb::Subscribe;
    else if (name == "resume")
        request.verb = Verb::Resume;
    else
        throw RequestError("unknown verb '" + name + "'");

    const bool needsCampaign = request.verb == Verb::Status ||
                               request.verb == Verb::Cancel ||
                               request.verb == Verb::Submit ||
                               request.verb == Verb::Subscribe ||
                               request.verb == Verb::Resume;
    if (needsCampaign) {
        const JsonValue *campaign = doc.find("campaign");
        if (campaign == nullptr || campaign->type() != JsonType::String)
            throw RequestError("missing string member 'campaign'");
        if (!validCampaignId(campaign->asString()))
            throw RequestError(
                "invalid campaign id (want [A-Za-z0-9._-]{1,64}, no "
                "leading dot)");
        request.campaign = campaign->asString();
    }

    if (request.verb == Verb::Submit) {
        const JsonValue *experiments = doc.find("experiments");
        if (experiments == nullptr ||
            experiments->type() != JsonType::Array ||
            experiments->size() == 0)
            throw RequestError(
                "missing non-empty array member 'experiments'");
        for (std::size_t i = 0; i < experiments->size(); ++i) {
            const JsonValue &entry = experiments->at(i);
            if (entry.type() != JsonType::String)
                throw RequestError("'experiments' entries must be "
                                   "strings");
            request.experiments.push_back(entry.asString());
        }
        if (const JsonValue *seed = doc.find("seed"))
            request.seed = parseSeed(*seed);
        if (const JsonValue *repeat = doc.find("repeat")) {
            if (repeat->type() != JsonType::Int || repeat->asInt() < 1 ||
                repeat->asInt() > 1'000'000)
                throw RequestError("repeat must be an integer in "
                                   "[1, 1000000]");
            request.repeat = static_cast<std::size_t>(repeat->asInt());
        }
        if (const JsonValue *overrides = doc.find("overrides")) {
            if (overrides->type() != JsonType::Object)
                throw RequestError("'overrides' must be an object");
            for (const auto &[key, value] : overrides->members())
                request.overrides[key] = overrideText(value);
        }
        if (const JsonValue *tenant = doc.find("tenant")) {
            if (tenant->type() != JsonType::String ||
                !validCampaignId(tenant->asString()))
                throw RequestError(
                    "invalid tenant (want [A-Za-z0-9._-]{1,64}, no "
                    "leading dot)");
            request.tenant = tenant->asString();
        }
        if (const JsonValue *priority = doc.find("priority")) {
            if (priority->type() != JsonType::String)
                throw RequestError("'priority' must be a string");
            const auto cls =
                common::parsePriorityClass(priority->asString());
            if (!cls)
                throw RequestError("priority must be one of "
                                   "interactive|normal|background");
            request.priority = *cls;
        }
    }

    if (request.verb == Verb::Submit || request.verb == Verb::Resume) {
        if (const JsonValue *deadline = doc.find("deadline_ms")) {
            if (deadline->type() != JsonType::Int ||
                deadline->asInt() < 1 ||
                deadline->asInt() > 1'000'000'000)
                throw RequestError("deadline_ms must be an integer in "
                                   "[1, 1000000000]");
            request.deadlineMs =
                static_cast<std::uint64_t>(deadline->asInt());
        }
    }

    if (request.verb == Verb::Subscribe) {
        if (const JsonValue *from = doc.find("from")) {
            if (from->type() != JsonType::Int || from->asInt() < 0)
                throw RequestError(
                    "'from' must be a non-negative integer");
            request.from = static_cast<std::uint64_t>(from->asInt());
        }
    }
    return request;
}

} // namespace

std::optional<Request>
parseRequest(const std::string &line, JsonValue &error)
{
    JsonValue doc;
    try {
        doc = JsonValue::parse(line);
    } catch (const std::exception &e) {
        error = errorReply(errc::badJson, e.what());
        return std::nullopt;
    }
    try {
        return parseValidated(doc);
    } catch (const RequestError &e) {
        const JsonValue *verb =
            doc.type() == JsonType::Object ? doc.find("verb") : nullptr;
        const bool unknown_verb =
            verb != nullptr && verb->type() == JsonType::String &&
            std::string(e.what()).rfind("unknown verb", 0) == 0;
        error = errorReply(unknown_verb ? errc::unknownVerb
                                        : errc::badRequest,
                           e.what());
        return std::nullopt;
    }
}

} // namespace harp::harpd
