/**
 * @file
 * `harpd_client` — command-line front end for a running harpd.
 *
 *   harpd_client --socket PATH ping
 *   harpd_client --socket PATH list
 *   harpd_client --socket PATH status CAMPAIGN
 *   harpd_client --socket PATH cancel CAMPAIGN
 *   harpd_client --socket PATH resume CAMPAIGN
 *   harpd_client --socket PATH shutdown
 *   harpd_client --socket PATH subscribe CAMPAIGN [--from N] [--out DIR]
 *   harpd_client --socket PATH submit CAMPAIGN EXPERIMENT...
 *                [--out DIR] [--seed N] [--repeat N]
 *                [--set NAME VALUE]... [--tenant NAME]
 *                [--priority CLASS] [--deadline-ms N]
 *
 * Shared resilience flags:
 *   --timeout-ms N   connect + per-reply deadline (default: 5000
 *                    connect, unbounded replies)
 *   --retries N      reconnect attempts after a lost connection or
 *                    timeout (default 0)
 *   --backoff-ms N   base retry delay; actual delays use exponential
 *                    backoff with decorrelated jitter (default 100)
 *
 * `submit` streams the campaign and, when --out is given, materializes
 * the streamed results exactly as a batch `harp_run --no-timings` would
 * have: one `<experiment>.jsonl` per experiment plus `summary.json`,
 * byte-identical for the same specs/seed/repeat. With --retries, a
 * connection lost mid-stream re-attaches via `subscribe from=<seq>`
 * using the per-event sequence numbers, so the mirrored output loses
 * and duplicates nothing; a submit whose connection died before the
 * daemon registered it is resubmitted idempotently (duplicate_campaign
 * downgrades to a subscribe). Quota sheds honor `retry_after_ms`.
 *
 * Forward compatibility: event types this build does not know are
 * skipped silently (the daemon may be newer), so adding stream event
 * kinds never breaks deployed clients. --verbose renders the advisory
 * kinds (`progress`, `queued`) and notes skipped unknowns on stderr.
 *
 * Exit codes: 0 done, 1 error, 2 usage, 3 cancelled, 4 degraded,
 * 5 deadline exceeded (checkpoint kept; `resume` continues it).
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "harpd/client.hh"
#include "harpd/protocol.hh"

namespace {

namespace fs = std::filesystem;
using harp::harpd::Backoff;
using harp::harpd::Client;
using harp::harpd::ClientOptions;
using harp::harpd::TimeoutError;
using harp::runner::JsonType;
using harp::runner::JsonValue;

struct RetryOptions
{
    int retries = 0;
    int backoffBaseMs = 100;
    int timeoutMs = 0; ///< 0 = library defaults
};

int
usage(std::ostream &out, int code)
{
    out << "usage: harpd_client --socket PATH VERB [args]\n"
           "  ping | list | shutdown\n"
           "  status CAMPAIGN\n"
           "  cancel CAMPAIGN\n"
           "  resume CAMPAIGN\n"
           "  subscribe CAMPAIGN [--from N] [--out DIR]\n"
           "  submit CAMPAIGN EXPERIMENT... [--out DIR] [--seed N]\n"
           "         [--repeat N] [--set NAME VALUE]... "
           "[--tenant NAME]\n"
           "         [--priority interactive|normal|background] "
           "[--deadline-ms N]\n"
           "  resume CAMPAIGN [--deadline-ms N]\n"
           "flags: [--timeout-ms N] [--retries N] [--backoff-ms N] "
           "[--verbose]\n";
    return code;
}

int
fail(const JsonValue &reply)
{
    std::cerr << "harpd_client: error: " << reply.dump() << "\n";
    return 1;
}

ClientOptions
clientOptions(const RetryOptions &retry)
{
    ClientOptions options;
    if (retry.timeoutMs > 0) {
        options.connectTimeoutMs = retry.timeoutMs;
        options.ioTimeoutMs = retry.timeoutMs;
    }
    return options;
}

void
sleepMs(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/** Simple request/reply with reconnect-and-retry. */
JsonValue
requestWithRetries(const std::string &socket_path,
                   const RetryOptions &retry, const JsonValue &request)
{
    Backoff backoff(retry.backoffBaseMs, retry.backoffBaseMs * 64,
                    static_cast<std::uint64_t>(::getpid()));
    for (int attempt = 0;; ++attempt) {
        try {
            Client client(socket_path, clientOptions(retry));
            return client.request(request);
        } catch (const std::exception &e) {
            if (attempt >= retry.retries)
                throw;
            const int delay = backoff.nextDelayMs();
            std::cerr << "harpd_client: " << e.what() << "; retrying in "
                      << delay << "ms (" << (retry.retries - attempt)
                      << " left)\n";
            sleepMs(delay);
        }
    }
}

/** Why one attempt at consuming a campaign stream ended. */
enum class StreamEnd
{
    Done,          ///< `done` event or terminal status "done"
    Cancelled,     ///< campaign cancelled
    Failed,        ///< terminal error event / status "failed"
    Degraded,      ///< structured degraded status — resumable
    DeadlinePast,  ///< deadline_exceeded — checkpoint kept, resumable
    Lost,          ///< connection died mid-stream: re-attach
    NeedResubmit,  ///< subscribe said unknown_campaign: submit again
    NeedSubscribe, ///< submit said duplicate_campaign: re-attach
    QuotaShed,     ///< quota_exceeded: honor retry_after_ms
};

/** Mirror/stream state that must survive reconnects. */
struct StreamState
{
    std::string outDir;
    std::map<std::string, std::unique_ptr<std::ofstream>> files;
    /** Highest seq consumed; re-attach with from = lastSeq + 1. */
    std::int64_t lastSeq = -1;
    int retryAfterMs = 0;
    bool sawDegraded = false;
    bool verbose = false;

    std::ofstream *fileFor(const std::string &experiment)
    {
        auto &file = files[experiment];
        if (file == nullptr) {
            const std::string path =
                (fs::path(outDir) / (experiment + ".jsonl")).string();
            // Truncate on first open only: a re-attach continues the
            // same file (the seq cursor guarantees no duplicates).
            file = std::make_unique<std::ofstream>(
                path, std::ios::binary | std::ios::trunc);
            if (!*file) {
                std::cerr << "harpd_client: cannot write " << path
                          << "\n";
                return nullptr;
            }
        }
        return file.get();
    }
};

/** Consume stream events until a terminal condition. */
StreamEnd
consumeStream(Client &client, StreamState &state)
{
    for (;;) {
        std::optional<JsonValue> event;
        try {
            event = client.read();
        } catch (const TimeoutError &e) {
            std::cerr << "harpd_client: " << e.what() << "\n";
            return StreamEnd::Lost;
        }
        if (!event.has_value())
            return state.sawDegraded ? StreamEnd::Degraded
                                     : StreamEnd::Lost;
        const JsonValue *type = event->find("type");
        const std::string kind =
            type != nullptr && type->type() == JsonType::String
                ? type->asString()
                : "";
        if (const JsonValue *seq = event->find("seq");
            seq != nullptr && seq->type() == JsonType::Int)
            state.lastSeq = std::max(state.lastSeq, seq->asInt());

        if (kind == "accepted" || kind == "subscribed") {
            std::cerr << kind << ": " << event->dump() << "\n";
        } else if (kind == "result") {
            const JsonValue *experiment = event->find("experiment");
            const JsonValue *line = event->find("line");
            if (experiment == nullptr || line == nullptr) {
                std::cerr << "harpd_client: malformed result event\n";
                return StreamEnd::Failed;
            }
            if (state.outDir.empty()) {
                std::cout << line->asString() << "\n";
            } else {
                std::ofstream *file =
                    state.fileFor(experiment->asString());
                if (file == nullptr)
                    return StreamEnd::Failed;
                *file << line->asString() << '\n';
            }
        } else if (kind == "experiment_done") {
            std::cerr << "experiment_done: " << event->dump() << "\n";
        } else if (kind == "summary") {
            if (const JsonValue *summary = event->find("summary");
                summary != nullptr && !state.outDir.empty()) {
                const std::string path =
                    (fs::path(state.outDir) / "summary.json").string();
                std::ofstream out(path,
                                  std::ios::binary | std::ios::trunc);
                out << summary->dump(2) << '\n';
                if (!out) {
                    std::cerr << "harpd_client: cannot write " << path
                              << "\n";
                    return StreamEnd::Failed;
                }
            }
        } else if (kind == "done") {
            return StreamEnd::Done;
        } else if (kind == "progress" || kind == "queued") {
            // Advisory, never terminal; rendered only on request.
            if (state.verbose)
                std::cerr << kind << ": " << event->dump() << "\n";
        } else if (kind == "deadline_exceeded") {
            // Out-of-band terminal event: the daemon cancelled the
            // campaign at a wave boundary, keeping its checkpoint;
            // `resume` (optionally with a fresh --deadline-ms)
            // continues it without recomputing finished jobs.
            std::cerr << "deadline_exceeded: " << event->dump() << "\n";
            return StreamEnd::DeadlinePast;
        } else if (kind == "cancelled") {
            std::cerr << "cancelled: " << event->dump() << "\n";
            return StreamEnd::Cancelled;
        } else if (kind == "degraded") {
            // Out-of-band terminal event: nothing follows it on this
            // stream; the campaign keeps its checkpoint and can be
            // resumed.
            std::cerr << "degraded: " << event->dump() << "\n";
            state.sawDegraded = true;
            return StreamEnd::Degraded;
        } else if (kind == "status") {
            // Terminal snapshot closing a subscribe stream.
            const JsonValue *campaign_state = event->find("state");
            const std::string name =
                campaign_state != nullptr &&
                        campaign_state->type() == JsonType::String
                    ? campaign_state->asString()
                    : "";
            std::cerr << "status: " << event->dump() << "\n";
            if (name == "done")
                return StreamEnd::Done;
            if (name == "degraded")
                return StreamEnd::Degraded;
            if (name == "cancelled")
                return StreamEnd::Cancelled;
            if (name == "deadline_exceeded")
                return StreamEnd::DeadlinePast;
            if (name == "failed")
                return StreamEnd::Failed;
            return StreamEnd::Lost; // still running: re-attach
        } else if (kind == "error") {
            const JsonValue *code = event->find("code");
            const std::string code_name =
                code != nullptr && code->type() == JsonType::String
                    ? code->asString()
                    : "";
            if (code_name == harp::harpd::errc::unknownCampaign)
                return StreamEnd::NeedResubmit;
            if (code_name == harp::harpd::errc::duplicateCampaign)
                return StreamEnd::NeedSubscribe;
            if (code_name == harp::harpd::errc::quotaExceeded) {
                state.retryAfterMs = 0;
                if (const JsonValue *hint =
                        event->find("retry_after_ms");
                    hint != nullptr && hint->type() == JsonType::Int)
                    state.retryAfterMs =
                        static_cast<int>(hint->asInt());
                std::cerr << "shed: " << event->dump() << "\n";
                return StreamEnd::QuotaShed;
            }
            fail(*event);
            return StreamEnd::Failed;
        } else {
            // Unknown kind: a newer daemon talking. Skipping keeps old
            // clients working against new servers.
            if (state.verbose)
                std::cerr << "harpd_client: skipping unknown event: "
                          << event->dump() << "\n";
        }
    }
}

int
flushFiles(StreamState &state)
{
    for (auto &[name, file] : state.files) {
        file->flush();
        if (!*file) {
            std::cerr << "harpd_client: cannot finish writing " << name
                      << ".jsonl\n";
            return 1;
        }
    }
    return 0;
}

/**
 * Drive a campaign stream to a terminal state, reconnecting through
 * `subscribe from=` as long as retry budget remains. @p submit is the
 * original submit request, or null for a plain subscribe.
 */
int
runStream(const std::string &socket_path, const RetryOptions &retry,
          const std::string &campaign, const JsonValue *submit,
          std::int64_t subscribe_from, const std::string &out_dir,
          bool verbose)
{
    StreamState state;
    state.outDir = out_dir;
    state.lastSeq = subscribe_from - 1;
    state.verbose = verbose;
    Backoff backoff(retry.backoffBaseMs, retry.backoffBaseMs * 64,
                    static_cast<std::uint64_t>(::getpid()));
    bool subscribing = submit == nullptr;
    int attempts_left = retry.retries;
    const auto spend_retry = [&](const char *why, int delay) {
        if (attempts_left <= 0)
            return false;
        --attempts_left;
        std::cerr << "harpd_client: " << why << "; retrying in " << delay
                  << "ms (" << attempts_left + 1 << " attempt(s) were "
                  << "left)\n";
        sleepMs(delay);
        return true;
    };

    for (;;) {
        StreamEnd end;
        try {
            Client client(socket_path, clientOptions(retry));
            JsonValue request;
            if (subscribing) {
                request = JsonValue::object();
                request.set("verb", JsonValue("subscribe"));
                request.set("campaign", JsonValue(campaign));
                request.set("from",
                            JsonValue(static_cast<std::int64_t>(
                                state.lastSeq + 1)));
            } else {
                request = *submit;
            }
            if (!client.send(request)) {
                end = StreamEnd::Lost;
            } else {
                end = consumeStream(client, state);
            }
        } catch (const std::exception &e) {
            if (!spend_retry(e.what(), backoff.nextDelayMs()))
                return state.sawDegraded ? 4 : 1;
            continue;
        }

        switch (end) {
        case StreamEnd::Done:
            return flushFiles(state);
        case StreamEnd::Cancelled:
            flushFiles(state);
            return 3;
        case StreamEnd::Failed:
            flushFiles(state);
            return 1;
        case StreamEnd::Degraded:
            // Structured degradation: durable work survived on the
            // daemon; `resume CAMPAIGN` continues it once the fault
            // clears.
            flushFiles(state);
            return 4;
        case StreamEnd::DeadlinePast:
            // Not an error in the degraded sense: the work done so far
            // is durable and byte-exact; the caller decides whether to
            // resume with a fresh deadline.
            flushFiles(state);
            return 5;
        case StreamEnd::Lost:
            if (!spend_retry("connection lost mid-stream",
                             backoff.nextDelayMs())) {
                flushFiles(state);
                return 1;
            }
            // Re-attach from the cursor: the daemon either registered
            // the campaign (subscribe succeeds, no loss/duplication)
            // or never saw it (unknown_campaign → resubmit).
            subscribing = true;
            continue;
        case StreamEnd::NeedResubmit:
            if (submit == nullptr) {
                std::cerr << "harpd_client: campaign '" << campaign
                          << "' is unknown to the daemon\n";
                return 1;
            }
            subscribing = false;
            if (!spend_retry("campaign not registered, resubmitting",
                             backoff.nextDelayMs()))
                return 1;
            continue;
        case StreamEnd::NeedSubscribe:
            // The submit raced an earlier registration of the same
            // campaign (idempotent resubmit): downgrade to subscribe.
            subscribing = true;
            continue;
        case StreamEnd::QuotaShed: {
            const int delay = state.retryAfterMs > 0
                                  ? state.retryAfterMs
                                  : backoff.nextDelayMs();
            if (!spend_retry("quota exceeded", delay))
                return 1;
            continue;
        }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::vector<std::string> words;
    std::string out_dir;
    JsonValue overrides = JsonValue::object();
    std::string seed;
    std::string repeat;
    std::string tenant;
    std::string priority;
    std::int64_t deadline_ms = 0;
    std::int64_t from = 0;
    bool verbose = false;
    RetryOptions retry;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--socket" && i + 1 < argc) {
            socket_path = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = argv[++i];
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = argv[++i];
        } else if (arg == "--tenant" && i + 1 < argc) {
            tenant = argv[++i];
        } else if (arg == "--priority" && i + 1 < argc) {
            priority = argv[++i];
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            deadline_ms = std::stoll(argv[++i]);
            if (deadline_ms < 1) {
                std::cerr << "harpd_client: --deadline-ms wants a "
                             "positive integer\n";
                return usage(std::cerr, 2);
            }
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--from" && i + 1 < argc) {
            from = std::stoll(argv[++i]);
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            retry.timeoutMs = static_cast<int>(std::stoll(argv[++i]));
        } else if (arg == "--retries" && i + 1 < argc) {
            retry.retries = static_cast<int>(std::stoll(argv[++i]));
        } else if (arg == "--backoff-ms" && i + 1 < argc) {
            retry.backoffBaseMs =
                std::max(1, static_cast<int>(std::stoll(argv[++i])));
        } else if (arg == "--set" && i + 2 < argc) {
            const std::string name = argv[++i];
            overrides.set(name, JsonValue(std::string(argv[++i])));
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "harpd_client: unknown or incomplete flag '"
                      << arg << "'\n";
            return usage(std::cerr, 2);
        } else {
            words.push_back(arg);
        }
    }
    if (socket_path.empty() || words.empty()) {
        std::cerr << "harpd_client: --socket and a verb are required\n";
        return usage(std::cerr, 2);
    }

    const std::string verb = words[0];
    try {
        if (verb == "ping" || verb == "list" || verb == "shutdown") {
            if (words.size() != 1)
                return usage(std::cerr, 2);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue(verb));
            const JsonValue reply =
                requestWithRetries(socket_path, retry, request);
            const JsonValue *type = reply.find("type");
            if (type != nullptr && type->type() == JsonType::String &&
                type->asString() == "error")
                return fail(reply);
            std::cout << reply.dump(2) << "\n";
            return 0;
        }
        if (verb == "status" || verb == "cancel" || verb == "resume") {
            if (words.size() != 2)
                return usage(std::cerr, 2);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue(verb));
            request.set("campaign", JsonValue(words[1]));
            if (verb == "resume" && deadline_ms > 0)
                request.set("deadline_ms", JsonValue(deadline_ms));
            const JsonValue reply =
                requestWithRetries(socket_path, retry, request);
            const JsonValue *type = reply.find("type");
            if (type != nullptr && type->type() == JsonType::String &&
                type->asString() == "error")
                return fail(reply);
            std::cout << reply.dump(2) << "\n";
            return 0;
        }
        if (verb == "subscribe") {
            if (words.size() != 2)
                return usage(std::cerr, 2);
            if (!out_dir.empty())
                fs::create_directories(out_dir);
            return runStream(socket_path, retry, words[1],
                             /*submit=*/nullptr, from, out_dir,
                             verbose);
        }
        if (verb == "submit") {
            if (words.size() < 3)
                return usage(std::cerr, 2);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue("submit"));
            request.set("campaign", JsonValue(words[1]));
            JsonValue experiments = JsonValue::array();
            for (std::size_t i = 2; i < words.size(); ++i)
                experiments.push(JsonValue(words[i]));
            request.set("experiments", experiments);
            if (!seed.empty())
                request.set("seed", JsonValue(seed));
            if (!repeat.empty())
                request.set("repeat",
                            JsonValue(static_cast<std::int64_t>(
                                std::stoll(repeat))));
            if (!overrides.members().empty())
                request.set("overrides", overrides);
            if (!tenant.empty())
                request.set("tenant", JsonValue(tenant));
            if (!priority.empty())
                request.set("priority", JsonValue(priority));
            if (deadline_ms > 0)
                request.set("deadline_ms", JsonValue(deadline_ms));
            if (!out_dir.empty())
                fs::create_directories(out_dir);
            return runStream(socket_path, retry, words[1], &request,
                             /*subscribe_from=*/0, out_dir, verbose);
        }
        std::cerr << "harpd_client: unknown verb '" << verb << "'\n";
        return usage(std::cerr, 2);
    } catch (const std::exception &e) {
        std::cerr << "harpd_client: " << e.what() << "\n";
        return 1;
    }
}
