/**
 * @file
 * `harpd_client` — command-line front end for a running harpd.
 *
 *   harpd_client --socket PATH ping
 *   harpd_client --socket PATH list
 *   harpd_client --socket PATH status CAMPAIGN
 *   harpd_client --socket PATH cancel CAMPAIGN
 *   harpd_client --socket PATH shutdown
 *   harpd_client --socket PATH submit CAMPAIGN EXPERIMENT...
 *                [--out DIR] [--seed N] [--repeat N]
 *                [--set NAME VALUE]...
 *
 * `submit` streams the campaign and, when --out is given, materializes
 * the streamed results exactly as a batch `harp_run --no-timings` would
 * have: one `<experiment>.jsonl` per experiment plus `summary.json`,
 * byte-identical for the same specs/seed/repeat.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harpd/client.hh"
#include "harpd/protocol.hh"

namespace {

namespace fs = std::filesystem;
using harp::harpd::Client;
using harp::runner::JsonType;
using harp::runner::JsonValue;

int
usage(std::ostream &out, int code)
{
    out << "usage: harpd_client --socket PATH VERB [args]\n"
           "  ping | list | shutdown\n"
           "  status CAMPAIGN\n"
           "  cancel CAMPAIGN\n"
           "  submit CAMPAIGN EXPERIMENT... [--out DIR] [--seed N]\n"
           "         [--repeat N] [--set NAME VALUE]...\n";
    return code;
}

int
fail(const JsonValue &reply)
{
    std::cerr << "harpd_client: error: " << reply.dump() << "\n";
    return 1;
}

/** Stream one submit; mirrors results into @p out_dir when set. */
int
runSubmit(Client &client, const JsonValue &request,
          const std::string &out_dir)
{
    if (!client.send(request)) {
        std::cerr << "harpd_client: connection lost while sending\n";
        return 1;
    }
    std::map<std::string, std::unique_ptr<std::ofstream>> files;
    bool done = false;
    int code = 1;
    while (!done) {
        std::optional<JsonValue> event = client.read();
        if (!event.has_value()) {
            std::cerr << "harpd_client: connection closed before the "
                         "campaign finished\n";
            return 1;
        }
        const JsonValue *type = event->find("type");
        const std::string kind =
            type != nullptr && type->type() == JsonType::String
                ? type->asString()
                : "";
        if (kind == "accepted") {
            std::cerr << "accepted: " << event->dump() << "\n";
        } else if (kind == "result") {
            const JsonValue *experiment = event->find("experiment");
            const JsonValue *line = event->find("line");
            if (experiment == nullptr || line == nullptr) {
                std::cerr << "harpd_client: malformed result event\n";
                return 1;
            }
            if (out_dir.empty()) {
                std::cout << line->asString() << "\n";
            } else {
                auto &file = files[experiment->asString()];
                if (file == nullptr) {
                    const std::string path =
                        (fs::path(out_dir) /
                         (experiment->asString() + ".jsonl"))
                            .string();
                    file = std::make_unique<std::ofstream>(
                        path, std::ios::binary | std::ios::trunc);
                    if (!*file) {
                        std::cerr << "harpd_client: cannot write "
                                  << path << "\n";
                        return 1;
                    }
                }
                *file << line->asString() << '\n';
            }
        } else if (kind == "experiment_done") {
            std::cerr << "experiment_done: " << event->dump() << "\n";
        } else if (kind == "summary") {
            if (const JsonValue *summary = event->find("summary");
                summary != nullptr && !out_dir.empty()) {
                const std::string path =
                    (fs::path(out_dir) / "summary.json").string();
                std::ofstream out(path,
                                  std::ios::binary | std::ios::trunc);
                out << summary->dump(2) << '\n';
                if (!out) {
                    std::cerr << "harpd_client: cannot write " << path
                              << "\n";
                    return 1;
                }
            }
        } else if (kind == "done") {
            code = 0;
            done = true;
        } else if (kind == "cancelled") {
            std::cerr << "cancelled: " << event->dump() << "\n";
            code = 3;
            done = true;
        } else if (kind == "error") {
            fail(*event);
            done = true;
        } else {
            std::cerr << "harpd_client: unexpected event: "
                      << event->dump() << "\n";
        }
    }
    for (auto &[name, file] : files) {
        file->flush();
        if (!*file) {
            std::cerr << "harpd_client: cannot finish writing " << name
                      << ".jsonl\n";
            return 1;
        }
    }
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::vector<std::string> words;
    std::string out_dir;
    JsonValue overrides = JsonValue::object();
    std::string seed;
    std::string repeat;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--socket" && i + 1 < argc) {
            socket_path = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = argv[++i];
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = argv[++i];
        } else if (arg == "--set" && i + 2 < argc) {
            const std::string name = argv[++i];
            overrides.set(name, JsonValue(std::string(argv[++i])));
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "harpd_client: unknown or incomplete flag '"
                      << arg << "'\n";
            return usage(std::cerr, 2);
        } else {
            words.push_back(arg);
        }
    }
    if (socket_path.empty() || words.empty()) {
        std::cerr << "harpd_client: --socket and a verb are required\n";
        return usage(std::cerr, 2);
    }

    const std::string verb = words[0];
    try {
        Client client(socket_path);
        if (verb == "ping" || verb == "list" || verb == "shutdown") {
            if (words.size() != 1)
                return usage(std::cerr, 2);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue(verb));
            const JsonValue reply = client.request(request);
            const JsonValue *type = reply.find("type");
            if (type != nullptr && type->type() == JsonType::String &&
                type->asString() == "error")
                return fail(reply);
            std::cout << reply.dump(2) << "\n";
            return 0;
        }
        if (verb == "status" || verb == "cancel") {
            if (words.size() != 2)
                return usage(std::cerr, 2);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue(verb));
            request.set("campaign", JsonValue(words[1]));
            const JsonValue reply = client.request(request);
            const JsonValue *type = reply.find("type");
            if (type != nullptr && type->type() == JsonType::String &&
                type->asString() == "error")
                return fail(reply);
            std::cout << reply.dump(2) << "\n";
            return 0;
        }
        if (verb == "submit") {
            if (words.size() < 3)
                return usage(std::cerr, 2);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue("submit"));
            request.set("campaign", JsonValue(words[1]));
            JsonValue experiments = JsonValue::array();
            for (std::size_t i = 2; i < words.size(); ++i)
                experiments.push(JsonValue(words[i]));
            request.set("experiments", experiments);
            if (!seed.empty())
                request.set("seed", JsonValue(seed));
            if (!repeat.empty())
                request.set("repeat",
                            JsonValue(static_cast<std::int64_t>(
                                std::stoll(repeat))));
            if (!overrides.members().empty())
                request.set("overrides", overrides);
            if (!out_dir.empty())
                fs::create_directories(out_dir);
            return runSubmit(client, request, out_dir);
        }
        std::cerr << "harpd_client: unknown verb '" << verb << "'\n";
        return usage(std::cerr, 2);
    } catch (const std::exception &e) {
        std::cerr << "harpd_client: " << e.what() << "\n";
        return 1;
    }
}
