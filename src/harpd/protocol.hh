/**
 * @file
 * harpd wire protocol: newline-delimited JSON over a local stream
 * socket.
 *
 * Requests (client -> server), one JSON object per line:
 *
 *   {"verb":"ping"}
 *   {"verb":"list"}
 *   {"verb":"status","campaign":"<id>"}
 *   {"verb":"cancel","campaign":"<id>"}
 *   {"verb":"shutdown"}
 *   {"verb":"submit","campaign":"<id>","experiments":["quickstart"],
 *    "seed":"7","repeat":2,"overrides":{"words":"70"},
 *    "tenant":"teamA","priority":"interactive","deadline_ms":30000}
 *   {"verb":"subscribe","campaign":"<id>","from":42}
 *   {"verb":"resume","campaign":"<id>","deadline_ms":30000}
 *
 * Replies (server -> client) carry a "type" member. Every submit
 * streams, in order: one `accepted`, then one `result` per (point,
 * repeat) job in job order (the embedded "line" string is the exact
 * JSONL line a batch `harp_run` would write), one `experiment_done`
 * per experiment, one `summary` (the deterministic summary.json
 * document), and finally `done`. Any failure — at parse time or
 * mid-campaign — is a single `error` reply with a stable `code`.
 *
 * Every deterministic streamed event (`result`, `experiment_done`,
 * `summary`, `done`) additionally carries a monotonically increasing
 * `seq` member, stable across daemon restarts and degraded→resume
 * cycles: `subscribe` with `from=<seq>` replays the stream starting at
 * that sequence number, so a disconnected client re-attaches without
 * loss or duplication. Out-of-band events (`degraded`, `error`,
 * `cancelled`) carry no `seq` — they are not part of the replayable
 * stream. A `degraded` event and `degraded` status carry the errno
 * (`errno_name`), message, and a `retriable` flag; a degraded
 * campaign's checkpoint survives and `resume` restarts it in place.
 * Overload sheds submits with `code=quota_exceeded`, `retriable=true`,
 * and a `retry_after_ms` hint. With an admission queue configured, a
 * submit over quota is instead parked and streams an out-of-band
 * `queued` event (`position`, `retry_after_ms` estimate) before its
 * `accepted`; only a full queue sheds. A campaign whose `deadline_ms`
 * expires mid-run stops at the next wave boundary with an out-of-band
 * `deadline_exceeded` event; its checkpoint survives and `resume`
 * restarts it (optionally with a fresh deadline). `progress` events
 * ({wave, jobs_done, jobs_total, jobs_per_sec}) are deterministic
 * stream members: they carry `seq` and replay like results.
 *
 * Faulty input never kills the server: malformed JSON, oversized
 * lines, unknown verbs and invalid fields each map to a structured
 * `error` reply (parseRequest below is pure and unit-tested directly).
 */

#ifndef HARP_HARPD_PROTOCOL_HH
#define HARP_HARPD_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/fair_scheduler.hh"
#include "runner/json.hh"

namespace harp::harpd {

/** Hard cap on one request/reply line; longer lines are a framing
 *  fault (the connection cannot resynchronize and is closed). */
inline constexpr std::size_t maxLineBytes = 1 << 20;

/** Campaign ids become checkpoint/result file names, so they are
 *  restricted to [A-Za-z0-9._-], length 1..64, not starting with '.'. */
bool validCampaignId(const std::string &id);

enum class Verb
{
    Ping,
    List,
    Status,
    Cancel,
    Submit,
    Shutdown,
    Subscribe,
    Resume,
};

/** One parsed request. Submit-only fields are empty otherwise. */
struct Request
{
    Verb verb = Verb::Ping;
    /** Campaign id (status / cancel / submit / subscribe / resume). */
    std::string campaign;
    /** Submit: experiment selectors, forwarded to Registry::select. */
    std::vector<std::string> experiments;
    /** Submit: campaign seed (accepts JSON int or decimal string). */
    std::uint64_t seed = 1;
    /** Submit: repetitions per grid point. */
    std::size_t repeat = 1;
    /** Submit: tunable/axis overrides. */
    std::map<std::string, std::string> overrides;
    /** Submit: owning tenant for admission accounting (same character
     *  set as campaign ids). */
    std::string tenant = "default";
    /** Submit: service class for the fair scheduler. */
    common::PriorityClass priority = common::PriorityClass::Normal;
    /** Submit / resume: soft wall-clock budget in ms; 0 = none. The
     *  campaign cancels cooperatively at the next wave boundary after
     *  expiry, keeps its checkpoint, and stays resumable. */
    std::uint64_t deadlineMs = 0;
    /** Subscribe: first sequence number to deliver (0 = from the
     *  start). */
    std::uint64_t from = 0;
};

/** Stable machine-readable error codes. */
namespace errc {
inline constexpr const char *badJson = "bad_json";
inline constexpr const char *badRequest = "bad_request";
inline constexpr const char *oversizedLine = "oversized_line";
inline constexpr const char *unknownVerb = "unknown_verb";
inline constexpr const char *unknownCampaign = "unknown_campaign";
inline constexpr const char *duplicateCampaign = "duplicate_campaign";
inline constexpr const char *unknownExperiment = "unknown_experiment";
inline constexpr const char *campaignFailed = "campaign_failed";
inline constexpr const char *shuttingDown = "shutting_down";
inline constexpr const char *quotaExceeded = "quota_exceeded";
inline constexpr const char *notDegraded = "not_degraded";
inline constexpr const char *deadlineExceeded = "deadline_exceeded";
} // namespace errc

/** `{"type":"error","code":code,"message":message}` */
runner::JsonValue errorReply(const std::string &code,
                             const std::string &message);

/**
 * Parse and validate one request line.
 *
 * @return The request, or std::nullopt with @p error set to the
 *         ready-to-send structured error reply.
 */
std::optional<Request> parseRequest(const std::string &line,
                                    runner::JsonValue &error);

/** Serialize @p reply to one wire line (single-line dump + '\n'). */
std::string wireLine(const runner::JsonValue &reply);

} // namespace harp::harpd

#endif // HARP_HARPD_PROTOCOL_HH
