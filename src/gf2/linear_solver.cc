#include "gf2/linear_solver.hh"

#include <cassert>

namespace harp::gf2 {

std::optional<LinearSolution>
solve(const BitMatrix &a, const BitVector &b)
{
    assert(a.rows() == b.size());
    const std::size_t rows = a.rows();
    const std::size_t cols = a.cols();

    // Augmented matrix [A | b], eliminated in place.
    BitMatrix aug(rows, cols + 1);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c)
            aug.set(r, c, a.get(r, c));
        aug.set(r, cols, b.get(r));
    }

    std::vector<std::size_t> pivots;
    std::size_t next_row = 0;
    for (std::size_t col = 0; col < cols && next_row < rows; ++col) {
        std::size_t pivot = next_row;
        while (pivot < rows && !aug.get(pivot, col))
            ++pivot;
        if (pivot == rows)
            continue;
        std::swap(aug.row(next_row), aug.row(pivot));
        for (std::size_t r = 0; r < rows; ++r) {
            if (r != next_row && aug.get(r, col))
                aug.row(r) ^= aug.row(next_row);
        }
        pivots.push_back(col);
        ++next_row;
    }

    // Inconsistent iff a zero row has rhs 1.
    for (std::size_t r = next_row; r < rows; ++r)
        if (aug.get(r, cols))
            return std::nullopt;

    LinearSolution sol;
    sol.particular = BitVector(cols);
    for (std::size_t i = 0; i < pivots.size(); ++i)
        sol.particular.set(pivots[i], aug.get(i, cols));

    // One nullspace basis vector per free column: set the free variable to
    // 1 and read each pivot variable off its reduced row.
    std::vector<bool> is_pivot(cols, false);
    for (std::size_t col : pivots)
        is_pivot[col] = true;
    for (std::size_t col = 0; col < cols; ++col) {
        if (is_pivot[col])
            continue;
        BitVector basis(cols);
        basis.set(col, true);
        for (std::size_t i = 0; i < pivots.size(); ++i)
            if (aug.get(i, col))
                basis.set(pivots[i], true);
        sol.nullspace.push_back(std::move(basis));
    }
    return sol;
}

ConstraintSystem::ConstraintSystem(std::size_t num_vars)
    : numVars_(num_vars)
{
}

void
ConstraintSystem::addConstraint(const BitVector &row, bool rhs)
{
    assert(row.size() == numVars_);
    rows_.push_back(row);
    rhs_.push_back(rhs);
}

void
ConstraintSystem::pinVariable(std::size_t var, bool value)
{
    BitVector row(numVars_);
    row.set(var, true);
    addConstraint(row, value);
}

bool
ConstraintSystem::consistent() const
{
    return solveAny().has_value();
}

std::optional<BitVector>
ConstraintSystem::solveAny() const
{
    BitMatrix a(rows_.size(), numVars_);
    BitVector b(rows_.size());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        a.row(r) = rows_[r];
        b.set(r, rhs_[r]);
    }
    auto sol = solve(a, b);
    if (!sol)
        return std::nullopt;
    return sol->particular;
}

std::optional<BitVector>
ConstraintSystem::solveRandom(common::Xoshiro256 &rng) const
{
    BitMatrix a(rows_.size(), numVars_);
    BitVector b(rows_.size());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        a.row(r) = rows_[r];
        b.set(r, rhs_[r]);
    }
    auto sol = solve(a, b);
    if (!sol)
        return std::nullopt;
    BitVector x = sol->particular;
    for (const BitVector &basis : sol->nullspace)
        if (rng.nextBernoulli(0.5))
            x ^= basis;
    return x;
}

} // namespace harp::gf2
