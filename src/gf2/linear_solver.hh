/**
 * @file
 * Solving linear systems A·x = b over GF(2).
 *
 * The HARP reproduction uses this for (a) data-pattern feasibility in the
 * at-risk ground-truth analysis — "does a dataword exist that charges this
 * set of cells?" — and (b) BEEP's pattern crafting, where target cell charge
 * states are affine functions of the dataword.
 */

#ifndef HARP_GF2_LINEAR_SOLVER_HH
#define HARP_GF2_LINEAR_SOLVER_HH

#include <optional>

#include "gf2/bit_matrix.hh"

namespace harp::gf2 {

/** Solution of a GF(2) linear system. */
struct LinearSolution
{
    /** One particular solution x with A·x = b. */
    BitVector particular;
    /** Basis of the nullspace of A; the full solution set is
     *  particular + span(nullspace). */
    std::vector<BitVector> nullspace;

    /** Number of distinct solutions is 2^nullspace.size() (may overflow
     *  for large nullspaces; callers only use small systems). */
    std::size_t solutionCountLog2() const { return nullspace.size(); }
};

/**
 * Solve A·x = b over GF(2).
 *
 * @return std::nullopt when the system is inconsistent; otherwise a
 *         particular solution plus a nullspace basis describing all
 *         solutions.
 */
std::optional<LinearSolution> solve(const BitMatrix &a, const BitVector &b);

/**
 * Incremental affine-constraint system over GF(2).
 *
 * Collects constraints of the form row · x = rhs and answers consistency /
 * sampling queries. Used to build data patterns subject to per-cell charge
 * requirements.
 */
class ConstraintSystem
{
  public:
    /** @param num_vars Number of unknowns (dataword length). */
    explicit ConstraintSystem(std::size_t num_vars);

    std::size_t numVars() const { return numVars_; }
    std::size_t numConstraints() const { return rows_.size(); }

    /** Add constraint row · x = rhs. */
    void addConstraint(const BitVector &row, bool rhs);

    /** Convenience: force variable @p var to @p value. */
    void pinVariable(std::size_t var, bool value);

    /** True iff at least one assignment satisfies every constraint. */
    bool consistent() const;

    /** One satisfying assignment, if any. */
    std::optional<BitVector> solveAny() const;

    /**
     * A uniformly random satisfying assignment (random nullspace
     * combination on top of a particular solution), if any.
     */
    std::optional<BitVector> solveRandom(common::Xoshiro256 &rng) const;

  private:
    std::size_t numVars_;
    std::vector<BitVector> rows_;
    std::vector<bool> rhs_;
};

} // namespace harp::gf2

#endif // HARP_GF2_LINEAR_SOLVER_HH
