/**
 * @file
 * Dense matrix over GF(2), stored row-major as BitVectors.
 *
 * Backs the ECC generator/parity-check matrices and the feasibility solves
 * of the at-risk-bit analysis.
 */

#ifndef HARP_GF2_BIT_MATRIX_HH
#define HARP_GF2_BIT_MATRIX_HH

#include <cstddef>

#include "gf2/bit_vector.hh"

namespace harp::gf2 {

/**
 * Dense rows × cols matrix over GF(2).
 */
class BitMatrix
{
  public:
    BitMatrix() = default;

    /** All-zero matrix. */
    BitMatrix(std::size_t rows, std::size_t cols);

    /** n × n identity. */
    static BitMatrix identity(std::size_t n);

    /** Uniform random matrix. */
    static BitMatrix random(std::size_t rows, std::size_t cols,
                            common::Xoshiro256 &rng);

    /** Number of rows. */
    std::size_t rows() const { return rows_; }
    /** Number of columns. */
    std::size_t cols() const { return cols_; }

    /** Element at row @p r, column @p c. */
    bool get(std::size_t r, std::size_t c) const;
    /** Set the element at row @p r, column @p c to @p value. */
    void set(std::size_t r, std::size_t c, bool value);

    /** Row @p r as a length-cols() vector. */
    const BitVector &row(std::size_t r) const;
    /** Mutable row @p r; callers must preserve its length. */
    BitVector &row(std::size_t r);

    /** Column @p c as a vector of length rows(). */
    BitVector column(std::size_t c) const;

    /** Matrix-vector product: (*this) · v, v of length cols(). */
    BitVector multiply(const BitVector &v) const;

    /** Matrix-matrix product: (*this) · other. */
    BitMatrix multiply(const BitMatrix &other) const;

    /** The cols() × rows() transpose. */
    BitMatrix transposed() const;

    /** Rank via Gaussian elimination (does not modify *this). */
    std::size_t rank() const;

    /**
     * In-place reduction to reduced row-echelon form.
     * @return Column index of the pivot in each reduced row, in order.
     */
    std::vector<std::size_t> rowReduce();

    bool operator==(const BitMatrix &other) const;
    bool operator!=(const BitMatrix &other) const
    {
        return !(*this == other);
    }

    /** Multi-line "0"/"1" rendering for diagnostics. */
    std::string toString() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<BitVector> data_;
};

} // namespace harp::gf2

#endif // HARP_GF2_BIT_MATRIX_HH
