#include "gf2/bit_slice.hh"

#include <algorithm>
#include <cassert>

#include "common/bits.hh"

namespace harp::gf2 {

void
transpose64x64(std::uint64_t m[64])
{
    // Recursive quadrant swap (Hacker's Delight 7-3, adapted to
    // LSB-first columns): at step j, element (r, c+j) trades places
    // with (r+j, c) for every r, c whose j-bit is clear.
    for (std::size_t j = 32; j != 0; j >>= 1) {
        // Bits c with (c & j) == 0, e.g. 0x00000000FFFFFFFF for j=32.
        const std::uint64_t mask =
            ~std::uint64_t{0} / ((std::uint64_t{1} << j) + 1);
        for (std::size_t r = 0; r < 64; ++r) {
            if ((r & j) != 0)
                continue;
            const std::uint64_t t = ((m[r] >> j) ^ m[r | j]) & mask;
            m[r] ^= t << j;
            m[r | j] ^= t;
        }
    }
}

BitSlice64::BitSlice64(std::size_t positions)
    : lanes_(positions, 0)
{
}

void
BitSlice64::clear()
{
    lanes_.assign(lanes_.size(), 0);
}

bool
BitSlice64::get(std::size_t pos, std::size_t word) const
{
    assert(pos < lanes_.size() && word < laneCount);
    return (lanes_[pos] >> word) & 1;
}

void
BitSlice64::set(std::size_t pos, std::size_t word, bool value)
{
    assert(pos < lanes_.size() && word < laneCount);
    const std::uint64_t mask = std::uint64_t{1} << word;
    if (value)
        lanes_[pos] |= mask;
    else
        lanes_[pos] &= ~mask;
}

std::uint64_t
BitSlice64::orXorPrefix(const BitSlice64 &a, const BitSlice64 &b,
                        std::size_t count)
{
    assert(count <= lanes_.size() && count <= a.lanes_.size() &&
           count <= b.lanes_.size());
    std::uint64_t any = 0;
    for (std::size_t pos = 0; pos < count; ++pos) {
        const std::uint64_t mismatch = a.lanes_[pos] ^ b.lanes_[pos];
        lanes_[pos] |= mismatch;
        any |= mismatch;
    }
    return any;
}

std::uint64_t
BitSlice64::diffLanesPrefix(const BitSlice64 &other,
                            std::size_t count) const
{
    assert(count <= lanes_.size() && count <= other.lanes_.size());
    std::uint64_t diff = 0;
    for (std::size_t pos = 0; pos < count; ++pos)
        diff |= lanes_[pos] ^ other.lanes_[pos];
    return diff;
}

void
BitSlice64::gather(const std::vector<BitVector> &words)
{
    assert(words.size() <= laneCount);
    const BitVector *ptrs[laneCount];
    for (std::size_t w = 0; w < words.size(); ++w)
        ptrs[w] = &words[w];
    gather(ptrs, words.size());
}

void
BitSlice64::gather(const BitVector *const *words, std::size_t count)
{
    assert(count <= laneCount);
    const std::size_t positions = lanes_.size();
    const std::size_t blocks = common::wordsFor(positions);
    std::uint64_t block[64];
    for (std::size_t b = 0; b < blocks; ++b) {
        for (std::size_t w = 0; w < laneCount; ++w) {
            if (w < count) {
                assert(words[w] != nullptr &&
                       words[w]->size() == positions);
                block[w] = words[w]->words()[b];
            } else {
                block[w] = 0;
            }
        }
        transpose64x64(block);
        const std::size_t base = b * common::wordBits;
        const std::size_t valid =
            std::min(common::wordBits, positions - base);
        for (std::size_t i = 0; i < valid; ++i)
            lanes_[base + i] = block[i];
    }
}

void
BitSlice64::scatterPrefix(std::size_t count,
                          std::vector<BitVector> &words) const
{
    assert(count <= lanes_.size());
    assert(words.size() <= laneCount);
    const std::size_t blocks = common::wordsFor(count);
    std::uint64_t block[64];
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t base = b * common::wordBits;
        const std::size_t valid = std::min(common::wordBits, count - base);
        for (std::size_t i = 0; i < valid; ++i)
            block[i] = lanes_[base + i];
        for (std::size_t i = valid; i < common::wordBits; ++i)
            block[i] = 0;
        transpose64x64(block);
        for (std::size_t w = 0; w < words.size(); ++w) {
            assert(words[w].size() == count);
            words[w].setWord(b, block[w]);
        }
    }
}

BitVector
BitSlice64::extractWord(std::size_t word) const
{
    assert(word < laneCount);
    BitVector out(lanes_.size());
    for (std::size_t pos = 0; pos < lanes_.size(); ++pos)
        out.set(pos, get(pos, word));
    return out;
}

} // namespace harp::gf2
