#include "gf2/bit_slice.hh"

#include <algorithm>
#include <cassert>

#include "common/bits.hh"

namespace harp::gf2 {

void
transpose64x64(std::uint64_t m[64])
{
    // Recursive quadrant swap (Hacker's Delight 7-3, adapted to
    // LSB-first columns): at step j, element (r, c+j) trades places
    // with (r+j, c) for every r, c whose j-bit is clear.
    for (std::size_t j = 32; j != 0; j >>= 1) {
        // Bits c with (c & j) == 0, e.g. 0x00000000FFFFFFFF for j=32.
        const std::uint64_t mask =
            ~std::uint64_t{0} / ((std::uint64_t{1} << j) + 1);
        for (std::size_t r = 0; r < 64; ++r) {
            if ((r & j) != 0)
                continue;
            const std::uint64_t t = ((m[r] >> j) ^ m[r | j]) & mask;
            m[r] ^= t << j;
            m[r | j] ^= t;
        }
    }
}

template <std::size_t W>
BitSliceW<W>::BitSliceW(std::size_t positions)
    : lanes_(positions, Lane{})
{
}

template <std::size_t W>
void
BitSliceW<W>::clear()
{
    lanes_.assign(lanes_.size(), Lane{});
}

template <std::size_t W>
bool
BitSliceW<W>::get(std::size_t pos, std::size_t word) const
{
    assert(pos < lanes_.size() && word < laneCount);
    return laneTestBit(lanes_[pos], word);
}

template <std::size_t W>
void
BitSliceW<W>::set(std::size_t pos, std::size_t word, bool value)
{
    assert(pos < lanes_.size() && word < laneCount);
    if (value)
        laneSetBit(lanes_[pos], word);
    else
        laneClearBit(lanes_[pos], word);
}

template <std::size_t W>
typename BitSliceW<W>::Lane
BitSliceW<W>::orXorPrefix(const BitSliceW &a, const BitSliceW &b,
                          std::size_t count)
{
    assert(count <= lanes_.size() && count <= a.lanes_.size() &&
           count <= b.lanes_.size());
    Lane any{};
    for (std::size_t pos = 0; pos < count; ++pos) {
        const Lane mismatch = a.lanes_[pos] ^ b.lanes_[pos];
        lanes_[pos] |= mismatch;
        any |= mismatch;
    }
    return any;
}

template <std::size_t W>
typename BitSliceW<W>::Lane
BitSliceW<W>::diffLanesPrefix(const BitSliceW &other,
                              std::size_t count) const
{
    assert(count <= lanes_.size() && count <= other.lanes_.size());
    Lane diff{};
    for (std::size_t pos = 0; pos < count; ++pos)
        diff |= lanes_[pos] ^ other.lanes_[pos];
    return diff;
}

template <std::size_t W>
void
BitSliceW<W>::gather(const std::vector<BitVector> &words)
{
    assert(words.size() <= laneCount);
    const BitVector *ptrs[laneCount];
    for (std::size_t w = 0; w < words.size(); ++w)
        ptrs[w] = &words[w];
    gather(ptrs, words.size());
}

template <std::size_t W>
void
BitSliceW<W>::gather(const BitVector *const *words, std::size_t count)
{
    assert(count <= laneCount);
    const std::size_t positions = lanes_.size();
    const std::size_t blocks = common::wordsFor(positions);
    std::uint64_t block[64];
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t base = b * common::wordBits;
        const std::size_t valid =
            std::min(common::wordBits, positions - base);
        // One 64x64 transpose per 64-lane sub-word: sub-word s of the
        // lane words carries bit b*64..b*64+63 of words s*64..s*64+63.
        for (std::size_t s = 0; s < laneWords; ++s) {
            const std::size_t wordBase = s * 64;
            for (std::size_t i = 0; i < 64; ++i) {
                const std::size_t w = wordBase + i;
                if (w < count) {
                    assert(words[w] != nullptr &&
                           words[w]->size() == positions);
                    block[i] = words[w]->words()[b];
                } else {
                    block[i] = 0;
                }
            }
            transpose64x64(block);
            for (std::size_t i = 0; i < valid; ++i)
                laneWordRef(lanes_[base + i], s) = block[i];
        }
    }
}

template <std::size_t W>
void
BitSliceW<W>::scatterPrefix(std::size_t count,
                            std::vector<BitVector> &words) const
{
    assert(count <= lanes_.size());
    assert(words.size() <= laneCount);
    const std::size_t blocks = common::wordsFor(count);
    const std::size_t liveSubWords = common::wordsFor(words.size());
    std::uint64_t block[64];
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t base = b * common::wordBits;
        const std::size_t valid = std::min(common::wordBits, count - base);
        for (std::size_t s = 0; s < liveSubWords; ++s) {
            const std::size_t wordBase = s * 64;
            for (std::size_t i = 0; i < valid; ++i)
                block[i] = laneWord(lanes_[base + i], s);
            for (std::size_t i = valid; i < common::wordBits; ++i)
                block[i] = 0;
            transpose64x64(block);
            const std::size_t live =
                std::min<std::size_t>(64, words.size() - wordBase);
            for (std::size_t i = 0; i < live; ++i) {
                assert(words[wordBase + i].size() == count);
                words[wordBase + i].setWord(b, block[i]);
            }
        }
    }
}

template <std::size_t W>
BitVector
BitSliceW<W>::extractWord(std::size_t word) const
{
    assert(word < laneCount);
    BitVector out(lanes_.size());
    for (std::size_t pos = 0; pos < lanes_.size(); ++pos)
        out.set(pos, get(pos, word));
    return out;
}

template class BitSliceW<1>;
template class BitSliceW<4>;

} // namespace harp::gf2
