#include "gf2/bit_matrix.hh"

#include <cassert>

namespace harp::gf2 {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows, BitVector(cols))
{
}

BitMatrix
BitMatrix::identity(std::size_t n)
{
    BitMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.set(i, i, true);
    return m;
}

BitMatrix
BitMatrix::random(std::size_t rows, std::size_t cols,
                  common::Xoshiro256 &rng)
{
    BitMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        m.data_[r] = BitVector::random(cols, rng);
    return m;
}

bool
BitMatrix::get(std::size_t r, std::size_t c) const
{
    assert(r < rows_);
    return data_[r].get(c);
}

void
BitMatrix::set(std::size_t r, std::size_t c, bool value)
{
    assert(r < rows_);
    data_[r].set(c, value);
}

const BitVector &
BitMatrix::row(std::size_t r) const
{
    assert(r < rows_);
    return data_[r];
}

BitVector &
BitMatrix::row(std::size_t r)
{
    assert(r < rows_);
    return data_[r];
}

BitVector
BitMatrix::column(std::size_t c) const
{
    assert(c < cols_);
    BitVector col(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        col.set(r, data_[r].get(c));
    return col;
}

BitVector
BitMatrix::multiply(const BitVector &v) const
{
    assert(v.size() == cols_);
    BitVector out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out.set(r, data_[r].dot(v));
    return out;
}

BitMatrix
BitMatrix::multiply(const BitMatrix &other) const
{
    assert(cols_ == other.rows_);
    BitMatrix out(rows_, other.cols_);
    // Accumulate rows of `other` selected by set bits of each of our rows;
    // this is the word-parallel formulation of the row-times-matrix product.
    for (std::size_t r = 0; r < rows_; ++r) {
        BitVector acc(other.cols_);
        data_[r].forEachSetBit([&](std::size_t k) {
            acc ^= other.data_[k];
        });
        out.data_[r] = std::move(acc);
    }
    return out;
}

BitMatrix
BitMatrix::transposed() const
{
    BitMatrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        data_[r].forEachSetBit([&](std::size_t c) {
            out.set(c, r, true);
        });
    }
    return out;
}

std::size_t
BitMatrix::rank() const
{
    BitMatrix copy = *this;
    return copy.rowReduce().size();
}

std::vector<std::size_t>
BitMatrix::rowReduce()
{
    std::vector<std::size_t> pivots;
    std::size_t next_row = 0;
    for (std::size_t col = 0; col < cols_ && next_row < rows_; ++col) {
        // Find a pivot row for this column.
        std::size_t pivot = next_row;
        while (pivot < rows_ && !data_[pivot].get(col))
            ++pivot;
        if (pivot == rows_)
            continue;
        std::swap(data_[next_row], data_[pivot]);
        // Eliminate the column from every other row (reduced form).
        for (std::size_t r = 0; r < rows_; ++r) {
            if (r != next_row && data_[r].get(col))
                data_[r] ^= data_[next_row];
        }
        pivots.push_back(col);
        ++next_row;
    }
    return pivots;
}

bool
BitMatrix::operator==(const BitMatrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
}

std::string
BitMatrix::toString() const
{
    std::string out;
    for (std::size_t r = 0; r < rows_; ++r) {
        out += data_[r].toString();
        out.push_back('\n');
    }
    return out;
}

} // namespace harp::gf2
