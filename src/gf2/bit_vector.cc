#include "gf2/bit_vector.hh"

#include <bit>
#include <cassert>

#include "common/bits.hh"

namespace harp::gf2 {

using common::bitOffset;
using common::tailMask;
using common::wordIndex;
using common::wordsFor;

BitVector::BitVector(std::size_t size)
    : size_(size), words_(wordsFor(size), 0)
{
}

BitVector
BitVector::fromUint(std::uint64_t value, std::size_t size)
{
    BitVector v(size);
    if (!v.words_.empty()) {
        v.words_[0] = value;
        v.maskTail();
    }
    return v;
}

BitVector
BitVector::fromIndices(std::size_t size,
                       const std::vector<std::size_t> &indices)
{
    BitVector v(size);
    for (std::size_t i : indices)
        v.set(i, true);
    return v;
}

BitVector
BitVector::random(std::size_t size, common::Xoshiro256 &rng)
{
    BitVector v(size);
    v.randomize(rng);
    return v;
}

void
BitVector::randomize(common::Xoshiro256 &rng)
{
    for (auto &word : words_)
        word = rng();
    maskTail();
}

void
BitVector::flip(std::size_t i)
{
    assert(i < size_);
    words_[wordIndex(i)] ^= std::uint64_t{1} << bitOffset(i);
}

void
BitVector::fill(bool value)
{
    const std::uint64_t pattern = value ? ~std::uint64_t{0} : 0;
    for (auto &word : words_)
        word = pattern;
    maskTail();
}

std::size_t
BitVector::popcount() const
{
    std::size_t count = 0;
    for (std::uint64_t word : words_)
        count += static_cast<std::size_t>(std::popcount(word));
    return count;
}

bool
BitVector::isZero() const
{
    for (std::uint64_t word : words_)
        if (word != 0)
            return false;
    return true;
}

bool
BitVector::dot(const BitVector &other) const
{
    assert(size_ == other.size_);
    std::uint64_t acc = 0;
    for (std::size_t w = 0; w < words_.size(); ++w)
        acc ^= words_[w] & other.words_[w];
    return common::parity64(acc) != 0;
}

BitVector &
BitVector::operator^=(const BitVector &other)
{
    assert(size_ == other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        words_[w] ^= other.words_[w];
    return *this;
}

BitVector &
BitVector::operator&=(const BitVector &other)
{
    assert(size_ == other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        words_[w] &= other.words_[w];
    return *this;
}

BitVector &
BitVector::operator|=(const BitVector &other)
{
    assert(size_ == other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        words_[w] |= other.words_[w];
    return *this;
}

BitVector &
BitVector::andNot(const BitVector &other)
{
    assert(size_ == other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        words_[w] &= ~other.words_[w];
    return *this;
}

bool
BitVector::operator<(const BitVector &other) const
{
    if (size_ != other.size_)
        return size_ < other.size_;
    return words_ < other.words_;
}

std::vector<std::size_t>
BitVector::setBits() const
{
    std::vector<std::size_t> indices;
    forEachSetBit([&](std::size_t i) { indices.push_back(i); });
    return indices;
}

std::uint64_t
BitVector::toUint() const
{
    return words_.empty() ? 0 : words_[0];
}

std::string
BitVector::toString() const
{
    std::string out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(get(i) ? '1' : '0');
    return out;
}

BitVector
BitVector::slice(std::size_t begin, std::size_t end) const
{
    assert(begin <= end && end <= size_);
    BitVector out(end - begin);
    for (std::size_t i = begin; i < end; ++i)
        out.set(i - begin, get(i));
    return out;
}

void
BitVector::assignPrefix(const BitVector &src)
{
    assert(src.size_ >= size_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        words_[w] = src.words_[w];
    maskTail();
}

void
BitVector::maskTail()
{
    if (!words_.empty())
        words_.back() &= tailMask(size_);
}

} // namespace harp::gf2
