/**
 * @file
 * Bit-sliced (transposed) block of equal-length bit vectors, templated
 * over the lane width.
 *
 * A BitSliceW<W> stores one *lane word* of W*64 bits per vector
 * position: lane bit `w` of `lane(pos)` is bit `pos` of word `w`. In
 * this layout a single lane-op (XOR, AND, ...) applies one GF(2)
 * operation to the same position of W*64 independent words at once,
 * which is what the sliced profiling engine exploits to retire 64
 * (W=1) or 256 (W=4, one AVX2 register) profiling rounds per machine
 * operation on the ECC hot path. BitSlice64 and BitSlice256 name the
 * two instantiated widths; W=1 lanes are plain std::uint64_t, so all
 * historical BitSlice64 call sites compile unchanged.
 *
 * Conversion between the two layouts (row-major gf2::BitVector "words"
 * <-> position-major lanes) is one 64x64 bit-matrix transpose per
 * 64-lane sub-word, implemented blockwise with the classic recursive
 * quadrant swap.
 */

#ifndef HARP_GF2_BIT_SLICE_HH
#define HARP_GF2_BIT_SLICE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gf2/bit_vector.hh"
#include "gf2/lane.hh"

namespace harp::gf2 {

/**
 * Transposed block of W*64 lanes over a fixed number of bit positions.
 *
 * Lanes whose index is >= the number of live words gathered into the
 * slice hold unspecified bits; consumers must only extract the lanes
 * they populated (ragged tails where live words < W*64 are expected).
 */
template <std::size_t W>
class BitSliceW
{
  public:
    /** Lane word: uint64_t at W=1, LaneVec<W> beyond. */
    using Lane = LaneOf<W>;

    /** Number of 64-lane sub-words per lane word. */
    static constexpr std::size_t laneWords = W;
    /** Number of lanes a slice can carry. */
    static constexpr std::size_t laneCount = W * 64;

    /** Construct a slice over @p positions bit positions, all zero. */
    explicit BitSliceW(std::size_t positions = 0);

    /** Number of bit positions (the length of each sliced word). */
    std::size_t positions() const { return lanes_.size(); }

    /** Zero every lane word. */
    void clear();

    /** Lane word of @p pos: lane bit w == bit @p pos of word w. */
    const Lane &lane(std::size_t pos) const { return lanes_[pos]; }
    /** Mutable lane word of @p pos. */
    Lane &lane(std::size_t pos) { return lanes_[pos]; }

    /** Bit @p pos of word @p word. */
    bool get(std::size_t pos, std::size_t word) const;
    /** Set bit @p pos of word @p word to @p value. */
    void set(std::size_t pos, std::size_t word, bool value);

    /**
     * Lane-native mismatch accumulation over the first @p count
     * positions: `lane(p) |= a.lane(p) ^ b.lane(p)`. One XOR + one OR
     * retires the GF(2) difference of the same position of W*64 word
     * pairs — the core reduction of the lane-native observation path
     * (core/sliced_profiler_group.hh). @p count must not exceed the
     * positions of any operand; bits of dead lanes accumulate garbage
     * and must be masked or ignored by the consumer.
     *
     * @return The OR of every per-position mismatch mask — lanes with
     *         any difference between @p a and @p b (dead-lane bits
     *         garbage); an all-zero mask means the call changed nothing.
     */
    Lane orXorPrefix(const BitSliceW &a, const BitSliceW &b,
                     std::size_t count);

    /**
     * Lane mask of words that differ from @p other anywhere in the
     * first @p count positions (lane bit w set iff word w's prefixes
     * mismatch). Dead-lane bits are garbage, as with orXorPrefix();
     * mask them before use. The engines use this to prove whole slots
     * observed clean reads without ever scattering them.
     */
    Lane diffLanesPrefix(const BitSliceW &other, std::size_t count) const;

    /**
     * Transpose @p words (each of length positions()) into the lanes:
     * word w lands in lane bit w. At most laneCount words; lanes
     * beyond `words.size()` are zeroed.
     */
    void gather(const std::vector<BitVector> &words);

    /** gather() over @p count borrowed words — the zero-copy form the
     *  sliced engine feeds pattern-generator views into. */
    void gather(const BitVector *const *words, std::size_t count);

    /**
     * Inverse of gather() for the first @p count positions: writes bit
     * @p pos of word w (pos < count) into @p words[w], which must each
     * be sized to exactly @p count bits. Only `words.size()` lanes are
     * extracted.
     */
    void scatterPrefix(std::size_t count,
                       std::vector<BitVector> &words) const;

    /** scatterPrefix() over every position. */
    void scatter(std::vector<BitVector> &words) const
    {
        scatterPrefix(positions(), words);
    }

    /** Word @p word materialized as a BitVector (for tests/debugging;
     *  the scatter APIs are the fast path). */
    BitVector extractWord(std::size_t word) const;

  private:
    std::vector<Lane> lanes_;
};

/** The historical 64-lane slice: one uint64 lane word per position. */
using BitSlice64 = BitSliceW<1>;
/** The wide 256-lane slice: one uint64x4 lane word per position. */
using BitSlice256 = BitSliceW<4>;

extern template class BitSliceW<1>;
extern template class BitSliceW<4>;

/**
 * In-place 64x64 bit-matrix transpose: afterwards, bit c of m[r] is
 * the former bit r of m[c]. Both axes are LSB-first.
 */
void transpose64x64(std::uint64_t m[64]);

} // namespace harp::gf2

#endif // HARP_GF2_BIT_SLICE_HH
