/**
 * @file
 * Generic lane-word arithmetic shared by every width of the bit-sliced
 * datapath.
 *
 * A *lane word* carries one bit per independent ECC word for a single
 * codeword position. The W=1 instantiation is a plain std::uint64_t —
 * the historical BitSlice64 layout, kept as a raw integer so all
 * existing call sites (mask arithmetic, shifts, `(mask >> w) & 1`)
 * compile unchanged. Wider instantiations use LaneVec<W>, an aligned
 * array of W uint64 sub-words with element-wise GF(2) operators that
 * the compiler auto-vectorizes (W=4 is one AVX2 ymm register).
 *
 * The free-function helpers below (laneAny, laneTestBit, laneMaskOf,
 * forEachSetLane, laneWord, ...) are overloaded for both
 * representations, so code templated over the lane type reads
 * identically at every width.
 */

#ifndef HARP_GF2_LANE_HH
#define HARP_GF2_LANE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/bits.hh"

namespace harp::gf2 {

namespace detail {

/**
 * Storage behind LaneVec<W>: a GNU vector-extension type where the
 * compiler supports one (single-register loads, stores and bitwise
 * ops — a plain uint64 array member forces GCC to shuttle every
 * 32-byte temporary through the stack in the hot decode loops), a
 * uint64 array otherwise. `may_alias` keeps the scalar sub-word
 * accesses of laneWord/laneWordRef ordered against whole-vector
 * loads under strict aliasing. vector_size() needs a literal, so the
 * widths are enumerated instead of computed from W.
 */
template <std::size_t W>
struct LaneStorage
{
    using type = std::uint64_t[W];
    static constexpr bool native = false;
};

#if defined(__GNUC__) || defined(__clang__)
template <>
struct LaneStorage<2>
{
    using type
        = std::uint64_t __attribute__((vector_size(16), may_alias));
    static constexpr bool native = true;
};
template <>
struct LaneStorage<4>
{
    using type
        = std::uint64_t __attribute__((vector_size(32), may_alias));
    static constexpr bool native = true;
};
#endif

} // namespace detail

/**
 * W uint64 sub-words treated as one (W*64)-lane GF(2) word. Aligned to
 * its full size (32 bytes for W=4) so element-wise access compiles to
 * whole-register loads/stores; on GNU-compatible compilers the storage
 * is a native vector type, so the GF(2) operators below are single
 * AVX2 register ops after inlining.
 */
template <std::size_t W>
struct alignas(W * 8 > 32 ? 32 : W * 8) LaneVec
{
    static_assert(W >= 2, "W=1 lanes are plain std::uint64_t");
    typename detail::LaneStorage<W>::type w = {};

    friend LaneVec operator^(LaneVec a, const LaneVec &b)
    {
        if constexpr (detail::LaneStorage<W>::native) {
            a.w ^= b.w;
        } else {
            for (std::size_t i = 0; i < W; ++i)
                a.w[i] ^= b.w[i];
        }
        return a;
    }
    friend LaneVec operator&(LaneVec a, const LaneVec &b)
    {
        if constexpr (detail::LaneStorage<W>::native) {
            a.w &= b.w;
        } else {
            for (std::size_t i = 0; i < W; ++i)
                a.w[i] &= b.w[i];
        }
        return a;
    }
    friend LaneVec operator|(LaneVec a, const LaneVec &b)
    {
        if constexpr (detail::LaneStorage<W>::native) {
            a.w |= b.w;
        } else {
            for (std::size_t i = 0; i < W; ++i)
                a.w[i] |= b.w[i];
        }
        return a;
    }
    friend LaneVec operator~(LaneVec a)
    {
        if constexpr (detail::LaneStorage<W>::native) {
            a.w = ~a.w;
        } else {
            for (std::size_t i = 0; i < W; ++i)
                a.w[i] = ~a.w[i];
        }
        return a;
    }
    LaneVec &operator^=(const LaneVec &b)
    {
        if constexpr (detail::LaneStorage<W>::native) {
            w ^= b.w;
        } else {
            for (std::size_t i = 0; i < W; ++i)
                w[i] ^= b.w[i];
        }
        return *this;
    }
    LaneVec &operator&=(const LaneVec &b)
    {
        if constexpr (detail::LaneStorage<W>::native) {
            w &= b.w;
        } else {
            for (std::size_t i = 0; i < W; ++i)
                w[i] &= b.w[i];
        }
        return *this;
    }
    LaneVec &operator|=(const LaneVec &b)
    {
        if constexpr (detail::LaneStorage<W>::native) {
            w |= b.w;
        } else {
            for (std::size_t i = 0; i < W; ++i)
                w[i] |= b.w[i];
        }
        return *this;
    }
    friend bool operator==(const LaneVec &a, const LaneVec &b)
    {
        std::uint64_t diff = 0;
        for (std::size_t i = 0; i < W; ++i)
            diff |= a.w[i] ^ b.w[i];
        return diff == 0;
    }
};

/** The lane-word type of a W-wide slice: uint64_t at W=1 (the legacy
 *  BitSlice64 representation), LaneVec<W> beyond. */
template <std::size_t W>
using LaneOf = std::conditional_t<W == 1, std::uint64_t, LaneVec<W>>;

/** @name Lane helpers, overloaded for both representations.
 * @{ */

/** True iff any lane bit is set. */
constexpr bool
laneAny(std::uint64_t lane)
{
    return lane != 0;
}

template <std::size_t W>
constexpr bool
laneAny(const LaneVec<W> &lane)
{
    std::uint64_t any = 0;
    for (std::size_t i = 0; i < W; ++i)
        any |= lane.w[i];
    return any != 0;
}

/** Bit @p i of the lane word. */
constexpr bool
laneTestBit(std::uint64_t lane, std::size_t i)
{
    return (lane >> i) & 1;
}

template <std::size_t W>
constexpr bool
laneTestBit(const LaneVec<W> &lane, std::size_t i)
{
    return (lane.w[i / 64] >> (i % 64)) & 1;
}

/** Set bit @p i of the lane word. */
constexpr void
laneSetBit(std::uint64_t &lane, std::size_t i)
{
    lane |= std::uint64_t{1} << i;
}

template <std::size_t W>
constexpr void
laneSetBit(LaneVec<W> &lane, std::size_t i)
{
    lane.w[i / 64] |= std::uint64_t{1} << (i % 64);
}

/** Clear bit @p i of the lane word. */
constexpr void
laneClearBit(std::uint64_t &lane, std::size_t i)
{
    lane &= ~(std::uint64_t{1} << i);
}

template <std::size_t W>
constexpr void
laneClearBit(LaneVec<W> &lane, std::size_t i)
{
    lane.w[i / 64] &= ~(std::uint64_t{1} << (i % 64));
}

/** Number of set lane bits. */
constexpr std::size_t
lanePopcount(std::uint64_t lane)
{
    return static_cast<std::size_t>(std::popcount(lane));
}

template <std::size_t W>
constexpr std::size_t
lanePopcount(const LaneVec<W> &lane)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < W; ++i)
        n += static_cast<std::size_t>(std::popcount(lane.w[i]));
    return n;
}

/** Sub-word @p sub (64 lanes each) of the lane word, by value. */
constexpr std::uint64_t
laneWord(std::uint64_t lane, std::size_t sub)
{
    (void)sub;
    return lane;
}

template <std::size_t W>
constexpr std::uint64_t
laneWord(const LaneVec<W> &lane, std::size_t sub)
{
    return lane.w[sub];
}

/** Mutable sub-word @p sub of the lane word. */
constexpr std::uint64_t &
laneWordRef(std::uint64_t &lane, std::size_t sub)
{
    (void)sub;
    return lane;
}

template <std::size_t W>
constexpr std::uint64_t &
laneWordRef(LaneVec<W> &lane, std::size_t sub)
{
    return lane.w[sub];
}

/** @} */

/** All-ones lane word (every lane selected). */
template <typename Lane>
constexpr Lane
laneOnes()
{
    if constexpr (std::is_same_v<Lane, std::uint64_t>) {
        return ~std::uint64_t{0};
    } else {
        Lane out{};
        for (std::size_t i = 0; i < sizeof(out.w) / 8; ++i)
            out.w[i] = ~std::uint64_t{0};
        return out;
    }
}

/** Lane word with exactly bit @p i set. */
template <typename Lane>
constexpr Lane
laneBit(std::size_t i)
{
    Lane out{};
    laneSetBit(out, i);
    return out;
}

/** Live-lane mask: the low @p lanes bits set (the generic form of
 *  common::laneMask; dead-lane slice bits hold garbage everywhere). */
template <typename Lane>
constexpr Lane
laneMaskOf(std::size_t lanes)
{
    if constexpr (std::is_same_v<Lane, std::uint64_t>) {
        return common::laneMask(lanes);
    } else {
        Lane out{};
        for (std::size_t i = 0; i < sizeof(out.w) / 8; ++i) {
            const std::size_t base = i * 64;
            if (lanes > base)
                out.w[i] = common::laneMask(lanes - base);
        }
        return out;
    }
}

/** Invoke @p fn(index) for every set bit of the lane word, in
 *  ascending index order. */
template <typename Fn>
void
forEachSetLane(std::uint64_t lane, Fn &&fn)
{
    while (lane != 0) {
        fn(static_cast<std::size_t>(std::countr_zero(lane)));
        lane &= lane - 1;
    }
}

template <std::size_t W, typename Fn>
void
forEachSetLane(const LaneVec<W> &lane, Fn &&fn)
{
    for (std::size_t i = 0; i < W; ++i) {
        std::uint64_t word = lane.w[i];
        const std::size_t base = i * 64;
        while (word != 0) {
            fn(base + static_cast<std::size_t>(std::countr_zero(word)));
            word &= word - 1;
        }
    }
}

} // namespace harp::gf2

#endif // HARP_GF2_LANE_HH
