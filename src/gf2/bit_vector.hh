/**
 * @file
 * Dense bit vector over GF(2), word-packed for fast XOR/AND/parity.
 *
 * This is the element type for datawords, codewords, error patterns, and
 * parity-check matrix rows throughout the HARP reproduction.
 */

#ifndef HARP_GF2_BIT_VECTOR_HH
#define HARP_GF2_BIT_VECTOR_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace harp::gf2 {

/**
 * Fixed-length vector over GF(2).
 *
 * Arithmetic is elementwise mod 2: operator^ is vector addition, dot() is
 * the inner product. All binary operations require equal lengths.
 */
class BitVector
{
  public:
    /** Construct an all-zero vector of @p size bits. */
    explicit BitVector(std::size_t size = 0);

    /** Construct from the low @p size bits of @p value (bit 0 first). */
    static BitVector fromUint(std::uint64_t value, std::size_t size);

    /** Construct a vector of @p size bits with the listed positions set. */
    static BitVector fromIndices(std::size_t size,
                                 const std::vector<std::size_t> &indices);

    /** Uniform random vector of @p size bits. */
    static BitVector random(std::size_t size, common::Xoshiro256 &rng);

    /** Refill this vector with uniform random bits in place, consuming
     *  the same RNG stream as random() of equal size. */
    void randomize(common::Xoshiro256 &rng);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    bool get(std::size_t i) const;
    void set(std::size_t i, bool value);
    void flip(std::size_t i);

    /** Set every bit to @p value. */
    void fill(bool value);

    /** Number of set bits. */
    std::size_t popcount() const;

    bool isZero() const;

    /** Inner product mod 2. */
    bool dot(const BitVector &other) const;

    /** In-place XOR (vector addition over GF(2)). */
    BitVector &operator^=(const BitVector &other);
    /** In-place AND (elementwise product). */
    BitVector &operator&=(const BitVector &other);
    /** In-place OR (set union; not a GF(2) operation but handy for masks). */
    BitVector &operator|=(const BitVector &other);

    friend BitVector operator^(BitVector lhs, const BitVector &rhs)
    {
        lhs ^= rhs;
        return lhs;
    }

    friend BitVector operator&(BitVector lhs, const BitVector &rhs)
    {
        lhs &= rhs;
        return lhs;
    }

    bool operator==(const BitVector &other) const;
    bool operator!=(const BitVector &other) const { return !(*this == other); }

    /** Lexicographic order on (size, words); usable as a map key. */
    bool operator<(const BitVector &other) const;

    /** Indices of set bits in ascending order. */
    std::vector<std::size_t> setBits() const;

    /** Invoke @p fn for every set bit index in ascending order. */
    void forEachSetBit(const std::function<void(std::size_t)> &fn) const;

    /** Low 64 bits as an integer (vector may be any length). */
    std::uint64_t toUint() const;

    /** "0"/"1" string, index 0 first; for diagnostics and tests. */
    std::string toString() const;

    /** Extract bits [begin, end) as a new vector. */
    BitVector slice(std::size_t begin, std::size_t end) const;

    /**
     * Overwrite this vector with the first size() bits of @p src
     * (@p src must be at least as long). The allocation-free
     * counterpart of `dst = src.slice(0, dst.size())` used on the
     * round-engine hot paths.
     */
    void assignPrefix(const BitVector &src);

    /** Direct word access for performance-critical consumers. */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /**
     * Overwrite storage word @p w with @p value (bits beyond size() are
     * masked off). The allocation-free store used by bit-sliced
     * scatter paths; semantically equivalent to 64 set() calls.
     */
    void setWord(std::size_t w, std::uint64_t value);

  private:
    void maskTail();

    std::size_t size_;
    std::vector<std::uint64_t> words_;
};

} // namespace harp::gf2

#endif // HARP_GF2_BIT_VECTOR_HH
