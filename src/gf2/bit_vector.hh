/**
 * @file
 * Dense bit vector over GF(2), word-packed for fast XOR/AND/parity.
 *
 * This is the element type for datawords, codewords, error patterns, and
 * parity-check matrix rows throughout the HARP reproduction.
 */

#ifndef HARP_GF2_BIT_VECTOR_HH
#define HARP_GF2_BIT_VECTOR_HH

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.hh"
#include "common/rng.hh"

namespace harp::gf2 {

/**
 * Fixed-length vector over GF(2).
 *
 * Arithmetic is elementwise mod 2: operator^ is vector addition, dot() is
 * the inner product. All binary operations require equal lengths.
 */
class BitVector
{
  public:
    /** Construct an all-zero vector of @p size bits. */
    explicit BitVector(std::size_t size = 0);

    /** Construct from the low @p size bits of @p value (bit 0 first). */
    static BitVector fromUint(std::uint64_t value, std::size_t size);

    /** Construct a vector of @p size bits with the listed positions set. */
    static BitVector fromIndices(std::size_t size,
                                 const std::vector<std::size_t> &indices);

    /** Uniform random vector of @p size bits. */
    static BitVector random(std::size_t size, common::Xoshiro256 &rng);

    /** Refill this vector with uniform random bits in place, consuming
     *  the same RNG stream as random() of equal size. */
    void randomize(common::Xoshiro256 &rng);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    // Single-bit accessors are inline: the profiling engines and the
    // lane-native observation path call them in per-position loops.
    bool get(std::size_t i) const
    {
        assert(i < size_);
        return (words_[common::wordIndex(i)] >> common::bitOffset(i)) & 1;
    }

    void set(std::size_t i, bool value)
    {
        assert(i < size_);
        const std::uint64_t mask = std::uint64_t{1}
                                   << common::bitOffset(i);
        if (value)
            words_[common::wordIndex(i)] |= mask;
        else
            words_[common::wordIndex(i)] &= ~mask;
    }

    void flip(std::size_t i);

    /** Set every bit to @p value. */
    void fill(bool value);

    /** Number of set bits. */
    std::size_t popcount() const;

    bool isZero() const;

    /** Inner product mod 2. */
    bool dot(const BitVector &other) const;

    /** In-place XOR (vector addition over GF(2)). */
    BitVector &operator^=(const BitVector &other);
    /** In-place AND (elementwise product). */
    BitVector &operator&=(const BitVector &other);
    /** In-place OR (set union; not a GF(2) operation but handy for masks). */
    BitVector &operator|=(const BitVector &other);

    /** In-place AND-NOT (set difference): this &= ~other. */
    BitVector &andNot(const BitVector &other);

    /**
     * this = a ^ b in one pass; returns true iff the result is
     * nonzero. Fuses the copy + XOR + isZero() sequence of the
     * profiler observe hot paths (a and b must share this vector's
     * size; this is resized to match when default-constructed).
     */
    bool assignXor(const BitVector &a, const BitVector &b)
    {
        assert(a.size_ == b.size_);
        if (size_ != a.size_) {
            size_ = a.size_;
            words_.resize(a.words_.size());
        }
        std::uint64_t any = 0;
        for (std::size_t w = 0; w < words_.size(); ++w) {
            words_[w] = a.words_[w] ^ b.words_[w];
            any |= words_[w];
        }
        return any != 0;
    }

    friend BitVector operator^(BitVector lhs, const BitVector &rhs)
    {
        lhs ^= rhs;
        return lhs;
    }

    friend BitVector operator&(BitVector lhs, const BitVector &rhs)
    {
        lhs &= rhs;
        return lhs;
    }

    bool operator==(const BitVector &other) const
    {
        return size_ == other.size_ && words_ == other.words_;
    }
    bool operator!=(const BitVector &other) const { return !(*this == other); }

    /** Lexicographic order on (size, words); usable as a map key. */
    bool operator<(const BitVector &other) const;

    /** Indices of set bits in ascending order. */
    std::vector<std::size_t> setBits() const;

    /** Invoke @p fn for every set bit index in ascending order.
     *  Templated so hot callers pay no std::function indirection. */
    template <typename Fn>
    void forEachSetBit(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t word = words_[w];
            while (word != 0) {
                const int bit = std::countr_zero(word);
                fn(w * 64 + static_cast<std::size_t>(bit));
                word &= word - 1;
            }
        }
    }

    /** Low 64 bits as an integer (vector may be any length). */
    std::uint64_t toUint() const;

    /** "0"/"1" string, index 0 first; for diagnostics and tests. */
    std::string toString() const;

    /** Extract bits [begin, end) as a new vector. */
    BitVector slice(std::size_t begin, std::size_t end) const;

    /**
     * Overwrite this vector with the first size() bits of @p src
     * (@p src must be at least as long). The allocation-free
     * counterpart of `dst = src.slice(0, dst.size())` used on the
     * round-engine hot paths.
     */
    void assignPrefix(const BitVector &src);

    /** Direct word access for performance-critical consumers. */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /**
     * Overwrite storage word @p w with @p value (bits beyond size() are
     * masked off). The allocation-free store used by bit-sliced
     * scatter paths; semantically equivalent to 64 set() calls.
     */
    void setWord(std::size_t w, std::uint64_t value)
    {
        assert(w < words_.size());
        words_[w] = value;
        if (w + 1 == words_.size())
            words_[w] &= common::tailMask(size_);
    }

  private:
    void maskTail();

    std::size_t size_;
    std::vector<std::uint64_t> words_;
};

} // namespace harp::gf2

#endif // HARP_GF2_BIT_VECTOR_HH
