/**
 * @file
 * Statistics accumulators used to aggregate Monte-Carlo results: running
 * moments, exact percentiles over retained samples, and integer histograms.
 */

#ifndef HARP_COMMON_STATS_HH
#define HARP_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace harp::common {

/**
 * Numerically-stable running mean/variance (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Merge another accumulator (parallel reduction). */
    void merge(const RunningStat &other);

    std::size_t count() const { return count_; }
    double mean() const { return count_ == 0 ? 0.0 : mean_; }

    /** Sample variance (n-1 denominator); 0 when fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Retains all samples to answer exact quantile queries.
 *
 * Sample counts in this project are small (tens of thousands), so exact
 * retention is cheaper and simpler than a sketch.
 */
class PercentileTracker
{
  public:
    void add(double x) { samples_.push_back(x); sorted_ = false; }
    void merge(const PercentileTracker &other);

    std::size_t count() const { return samples_.size(); }

    /**
     * Quantile by linear interpolation between closest ranks.
     *
     * @param q Quantile in [0, 1]; e.g.\ 0.99 for the paper's 99th
     *          percentile coverage metric.
     */
    double quantile(double q) const;

    double median() const { return quantile(0.5); }
    double mean() const;

    /**
     * Sorted copy of every sample. Order-independent, so two trackers
     * filled by differently-scheduled threads compare bit-identical
     * iff they saw the same multiset of samples.
     */
    std::vector<double> sortedSamples() const;

  private:
    /** Establish the sorted-samples_ invariant shared by quantile()
     *  and sortedSamples(). */
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/**
 * Histogram over the integers [0, numBins); out-of-range values are clamped
 * into the first/last bin. Used e.g.\ for Fig. 9a's distribution of the
 * maximum number of simultaneous post-correction errors.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t num_bins) : bins_(num_bins, 0) {}

    void add(std::int64_t value, std::uint64_t weight = 1);
    void merge(const Histogram &other);

    std::size_t numBins() const { return bins_.size(); }
    std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
    std::uint64_t total() const;

    /** Fraction of mass in bin @p i; 0 when the histogram is empty. */
    double fraction(std::size_t i) const;

    /**
     * Smallest value v such that at least @p q of the mass lies in bins
     * [0, v]. Returns numBins()-1 for an empty histogram.
     */
    std::size_t quantileBin(double q) const;

  private:
    std::vector<std::uint64_t> bins_;
};

} // namespace harp::common

#endif // HARP_COMMON_STATS_HH
