#include "common/thread_pool.hh"

#include <atomic>

namespace harp::common {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskAvailable_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
        ++inFlight_;
    }
    taskAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

std::size_t
ThreadPool::backlog() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inFlight_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskAvailable_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            if (stopping_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(std::size_t count,
            const std::function<void(std::size_t)> &body,
            std::size_t num_threads)
{
    if (count == 0)
        return;
    if (count == 1 || num_threads == 1) {
        // A single lane gains nothing from a transient pool; this is
        // the common case under brownout (inner_threads narrowed to 1).
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    ThreadPool pool(num_threads);
    // Chunk iterations so tiny bodies do not drown in queue overhead.
    const std::size_t chunks = std::min(count, pool.numThreads() * 8);
    std::atomic<std::size_t> next{0};
    const std::size_t chunk_size = (count + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
        pool.submit([&, chunk_size] {
            for (;;) {
                const std::size_t start =
                    next.fetch_add(chunk_size, std::memory_order_relaxed);
                if (start >= count)
                    return;
                const std::size_t end = std::min(start + chunk_size, count);
                for (std::size_t i = start; i < end; ++i)
                    body(i);
            }
        });
    }
    pool.wait();
}

} // namespace harp::common
