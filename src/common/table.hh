/**
 * @file
 * Plaintext table rendering for the benchmark binaries. Each bench prints
 * the rows/series of one paper table or figure; this keeps the formatting
 * consistent and machine-greppable (aligned text plus optional CSV).
 */

#ifndef HARP_COMMON_TABLE_HH
#define HARP_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace harp::common {

/**
 * Column-aligned plaintext table.
 *
 * Usage:
 * @code
 *   Table t({"profiler", "rounds", "coverage"});
 *   t.addRow({"HARP-U", "4", "1.000"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /** Render as CSV (no escaping needed for this project's cell content). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits significant decimal digits. */
std::string formatDouble(double value, int digits = 4);

/** Format a double in scientific notation (e.g.\ 1.23e-05). */
std::string formatSci(double value, int digits = 2);

} // namespace harp::common

#endif // HARP_COMMON_TABLE_HH
