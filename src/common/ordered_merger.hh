/**
 * @file
 * Deterministic index-ordered reduction for parallel task fan-outs.
 *
 * Experiments fan (point, repeat, block) tasks across the thread pool
 * and then fold each task's payload into shared aggregates. Folding in
 * completion order would make float accumulation (and any
 * order-sensitive reduction) depend on scheduling, so output bytes
 * would vary with --threads. OrderedMerger restores the sequential
 * merge order: workers deposit finished payloads keyed by task index,
 * and the depositing worker drains the contiguous ready prefix under
 * the lock, invoking the merge callback in strict index order. The
 * memory high-water mark is bounded by the scheduling skew (how far
 * completion order runs ahead of index order), not the task count.
 */

#ifndef HARP_COMMON_ORDERED_MERGER_HH
#define HARP_COMMON_ORDERED_MERGER_HH

#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace harp::common {

/**
 * Merges task payloads in strict task-index order regardless of the
 * order tasks complete in. Thread-safe: deposit() may be called
 * concurrently from pool workers; merge callbacks run serialized under
 * the internal lock, so they may touch shared aggregates freely.
 */
template <typename Payload>
class OrderedMerger
{
  public:
    explicit OrderedMerger(std::size_t tasks)
        : pending_(tasks)
    {
    }

    /** Deposit @p payload for @p task and merge every contiguous ready
     *  payload through @p merge (called in task index order). */
    template <typename MergeFn>
    void deposit(std::size_t task, Payload payload, MergeFn &&merge)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_[task] = std::move(payload);
        while (next_ < pending_.size() && pending_[next_].has_value()) {
            merge(*pending_[next_]);
            pending_[next_].reset();
            ++next_;
        }
    }

  private:
    std::mutex mutex_;
    std::vector<std::optional<Payload>> pending_;
    std::size_t next_ = 0;
};

} // namespace harp::common

#endif // HARP_COMMON_ORDERED_MERGER_HH
