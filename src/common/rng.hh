/**
 * @file
 * Deterministic pseudo-random number generation for Monte-Carlo simulation.
 *
 * Experiments derive independent child streams from (seed, code index, word
 * index, ...) so that every simulated ECC word sees reproducible randomness
 * regardless of thread scheduling, mirroring the "same ECC words, error
 * patterns, and data patterns for every profiler" requirement of the paper
 * (HARP, MICRO'21, section 7.1.2).
 */

#ifndef HARP_COMMON_RNG_HH
#define HARP_COMMON_RNG_HH

#include <cstdint>
#include <initializer_list>

namespace harp::common {

/**
 * SplitMix64 mixing step. Used both as a standalone generator for seeding
 * and as the hash that combines stream-derivation keys.
 *
 * @param state Mutable generator state; advanced by the golden-gamma step.
 * @return Next 64-bit output.
 */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * Xoshiro256** pseudo-random generator.
 *
 * Small, fast, and high quality; sufficient for fault-injection sampling.
 * Satisfies the C++ UniformRandomBitGenerator concept so it can be used
 * with standard distributions where convenient.
 */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed expanded through SplitMix64. */
    explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. Inline: the profiling engines draw one
     *  variate per at-risk cell per simulated word per round, so the
     *  generator step must not cost a function call. */
    result_type operator()()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble()
    {
        // 53 high-quality bits -> [0, 1).
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p (clamped to [0,1]). */
    bool nextBernoulli(double p);

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

/**
 * Derive an independent child seed from a parent seed and a list of keys.
 *
 * The derivation hashes each key into the running state with SplitMix64,
 * so derive(s, {a, b}) and derive(s, {b, a}) differ and collisions between
 * distinct key paths are no more likely than random 64-bit collisions.
 */
std::uint64_t deriveSeed(std::uint64_t parent,
                         std::initializer_list<std::uint64_t> keys);

} // namespace harp::common

#endif // HARP_COMMON_RNG_HH
