#include "common/io.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

namespace harp::common::io {

namespace {

struct ErrnoEntry
{
    const char *name;
    int value;
};

/** The errnos the fault grammar names; anything else round-trips as
 *  "errno_<n>". */
constexpr ErrnoEntry knownErrnos[] = {
    {"ENOSPC", ENOSPC}, {"EIO", EIO},       {"EDQUOT", EDQUOT},
    {"EACCES", EACCES}, {"EINTR", EINTR},   {"EAGAIN", EAGAIN},
    {"EBADF", EBADF},   {"EROFS", EROFS},   {"ENOENT", ENOENT},
    {"EMFILE", EMFILE}, {"ENOTDIR", ENOTDIR},
};

std::optional<int>
parseErrno(std::string_view name)
{
    for (const ErrnoEntry &entry : knownErrnos)
        if (name == entry.name)
            return entry.value;
    // Numeric fallback, bare ("28") or in errnoName() form
    // ("errno_28"), so describe() output always re-parses.
    if (name.rfind("errno_", 0) == 0)
        name.remove_prefix(6);
    if (!name.empty() &&
        name.find_first_not_of("0123456789") == std::string_view::npos)
        return std::atoi(std::string(name).c_str());
    return std::nullopt;
}

std::error_code
fromErrno(int value)
{
    return std::error_code(value, std::generic_category());
}

std::error_code
lastErrno()
{
    return fromErrno(errno);
}

} // namespace

const char *
opName(Op op)
{
    switch (op) {
    case Op::Open:
        return "open";
    case Op::Write:
        return "write";
    case Op::Fsync:
        return "fsync";
    case Op::Rename:
        return "rename";
    case Op::Close:
        return "close";
    }
    return "unknown";
}

std::optional<Op>
parseOp(std::string_view name)
{
    for (const Op op :
         {Op::Open, Op::Write, Op::Fsync, Op::Rename, Op::Close})
        if (name == opName(op))
            return op;
    return std::nullopt;
}

std::string
errnoName(int value)
{
    for (const ErrnoEntry &entry : knownErrnos)
        if (value == entry.value)
            return entry.name;
    return "errno_" + std::to_string(value);
}

FaultPlan::FaultPlan(FaultPlan &&other) noexcept
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    counters_ = other.counters_;
    oneShot_ = std::move(other.oneShot_);
    sticky_ = other.sticky_;
    stickyFrom_ = other.stickyFrom_;
}

FaultPlan &
FaultPlan::operator=(FaultPlan &&other) noexcept
{
    if (this != &other) {
        std::scoped_lock lock(mutex_, other.mutex_);
        counters_ = other.counters_;
        oneShot_ = std::move(other.oneShot_);
        sticky_ = other.sticky_;
        stickyFrom_ = other.stickyFrom_;
    }
    return *this;
}

void
FaultPlan::injectAt(Op op, std::size_t index, Fault fault)
{
    std::lock_guard<std::mutex> lock(mutex_);
    oneShot_[{static_cast<int>(op), index}] = fault;
}

void
FaultPlan::injectFrom(Op op, std::size_t index, Fault fault)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sticky_[static_cast<std::size_t>(op)] = fault;
    stickyFrom_[static_cast<std::size_t>(op)] = index;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;

        const auto bad = [&entry](const std::string &why) {
            throw std::runtime_error("bad fault entry '" + entry +
                                     "': " + why);
        };
        const std::size_t hash = entry.find('#');
        const std::size_t eq = entry.find('=');
        if (hash == std::string::npos || eq == std::string::npos ||
            eq < hash)
            bad("want <op>#<index>[+]=<ERRNO>[/short=<bytes>]");
        const std::optional<Op> op = parseOp(entry.substr(0, hash));
        if (!op.has_value())
            bad("unknown op (want open|write|fsync|rename|close)");

        std::string index_text = entry.substr(hash + 1, eq - hash - 1);
        bool sticky = false;
        if (!index_text.empty() && index_text.back() == '+') {
            sticky = true;
            index_text.pop_back();
        }
        if (index_text.empty() || index_text.find_first_not_of(
                                      "0123456789") != std::string::npos)
            bad("index must be a non-negative integer");
        const std::size_t index = std::stoull(index_text);

        std::string errno_text = entry.substr(eq + 1);
        Fault fault;
        if (const std::size_t slash = errno_text.find('/');
            slash != std::string::npos) {
            const std::string modifier = errno_text.substr(slash + 1);
            errno_text.resize(slash);
            if (modifier.rfind("short=", 0) != 0)
                bad("unknown modifier (want short=<bytes>)");
            const std::string bytes = modifier.substr(6);
            if (bytes.empty() || bytes.find_first_not_of("0123456789") !=
                                     std::string::npos)
                bad("short= wants a byte count");
            if (*op != Op::Write)
                bad("short= applies to write only");
            fault.shortBytes = std::stoull(bytes);
        }
        const std::optional<int> value = parseErrno(errno_text);
        if (!value.has_value())
            bad("unknown errno '" + errno_text + "'");
        fault.ec = fromErrno(*value);

        if (sticky)
            plan.injectFrom(*op, index, fault);
        else
            plan.injectAt(*op, index, fault);
    }
    return plan;
}

std::optional<Fault>
FaultPlan::next(Op op)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t slot = static_cast<std::size_t>(op);
    const std::size_t index = counters_[slot]++;
    if (sticky_[slot].has_value() && index >= stickyFrom_[slot])
        return sticky_[slot];
    const auto it = oneShot_.find({static_cast<int>(op), index});
    if (it == oneShot_.end())
        return std::nullopt;
    return it->second;
}

std::size_t
FaultPlan::consumed(Op op) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_[static_cast<std::size_t>(op)];
}

std::string
FaultPlan::describe() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> entries;
    const auto format = [](Op op, std::size_t index, bool sticky,
                           const Fault &fault) {
        std::string text = std::string(opName(op)) + "#" +
                           std::to_string(index) + (sticky ? "+" : "") +
                           "=" + errnoName(fault.ec.value());
        if (fault.shortBytes != std::string::npos)
            text += "/short=" + std::to_string(fault.shortBytes);
        return text;
    };
    for (const auto &[key, fault] : oneShot_)
        entries.push_back(format(static_cast<Op>(key.first), key.second,
                                 false, fault));
    for (std::size_t slot = 0; slot < opCount; ++slot)
        if (sticky_[slot].has_value())
            entries.push_back(format(static_cast<Op>(slot),
                                     stickyFrom_[slot], true,
                                     *sticky_[slot]));
    std::string spec;
    for (const std::string &entry : entries)
        spec += (spec.empty() ? "" : ",") + entry;
    return spec;
}

File::~File()
{
    (void)close();
}

File::File(File &&other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)), plan_(other.plan_)
{
    other.fd_ = -1;
    other.plan_ = nullptr;
}

File &
File::operator=(File &&other) noexcept
{
    if (this != &other) {
        (void)close();
        fd_ = other.fd_;
        path_ = std::move(other.path_);
        plan_ = other.plan_;
        other.fd_ = -1;
        other.plan_ = nullptr;
    }
    return *this;
}

std::error_code
File::open(const std::string &path, bool truncate, FaultPlan *plan)
{
    (void)close();
    path_ = path;
    plan_ = plan;
    if (plan_ != nullptr) {
        if (const std::optional<Fault> fault = plan_->next(Op::Open))
            return fault->ec;
    }
    const int flags =
        O_WRONLY | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
    int fd;
    do {
        fd = ::open(path.c_str(), flags, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        return lastErrno();
    fd_ = fd;
    return {};
}

std::error_code
File::writeAll(std::string_view data)
{
    if (fd_ < 0)
        return fromErrno(EBADF);
    if (plan_ != nullptr) {
        for (;;) {
            const std::optional<Fault> fault = plan_->next(Op::Write);
            if (!fault.has_value())
                break;
            // Injected EINTR exercises the retry loop: consume it and
            // go around, exactly as a real interrupted write would.
            if (fault->ec.value() == EINTR)
                continue;
            if (fault->shortBytes != std::string::npos) {
                // A torn tail, for real: persist the prefix so the
                // on-disk state is exactly what a crashed short write
                // leaves behind, then report the failure.
                const std::string_view prefix =
                    data.substr(0, std::min(fault->shortBytes,
                                            data.size()));
                std::size_t done = 0;
                while (done < prefix.size()) {
                    const ssize_t n = ::write(fd_, prefix.data() + done,
                                              prefix.size() - done);
                    if (n < 0) {
                        if (errno == EINTR)
                            continue;
                        break;
                    }
                    done += static_cast<std::size_t>(n);
                }
            }
            return fault->ec;
        }
    }
    std::size_t done = 0;
    while (done < data.size()) {
        const ssize_t n =
            ::write(fd_, data.data() + done, data.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return lastErrno();
        }
        done += static_cast<std::size_t>(n);
    }
    return {};
}

std::error_code
File::sync()
{
    if (fd_ < 0)
        return fromErrno(EBADF);
    if (plan_ != nullptr) {
        if (const std::optional<Fault> fault = plan_->next(Op::Fsync))
            return fault->ec;
    }
    int rc;
    do {
        rc = ::fsync(fd_);
    } while (rc != 0 && errno == EINTR);
    return rc == 0 ? std::error_code() : lastErrno();
}

std::error_code
File::close()
{
    if (fd_ < 0)
        return {};
    const int fd = fd_;
    fd_ = -1;
    std::error_code injected;
    if (plan_ != nullptr) {
        if (const std::optional<Fault> fault = plan_->next(Op::Close))
            injected = fault->ec;
    }
    // Close the descriptor regardless: an injected close failure must
    // not leak the fd (EINTR-after-close is unspecified; POSIX says
    // the fd is gone either way, so never retry close).
    const int rc = ::close(fd);
    if (injected)
        return injected;
    return rc == 0 ? std::error_code() : lastErrno();
}

std::error_code
renamePath(const std::string &from, const std::string &to, FaultPlan *plan)
{
    if (plan != nullptr) {
        if (const std::optional<Fault> fault = plan->next(Op::Rename))
            return fault->ec;
    }
    return ::rename(from.c_str(), to.c_str()) == 0 ? std::error_code()
                                                   : lastErrno();
}

std::error_code
syncDir(const std::string &dir, FaultPlan *plan)
{
    if (plan != nullptr) {
        if (const std::optional<Fault> fault = plan->next(Op::Fsync))
            return fault->ec;
    }
    int fd;
    do {
        fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        return lastErrno();
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    const std::error_code ec =
        rc == 0 ? std::error_code() : lastErrno();
    ::close(fd);
    return ec;
}

bool
isRetriable(std::error_code ec)
{
    return ec.value() == ENOSPC || ec.value() == EDQUOT ||
           ec.value() == EAGAIN;
}

} // namespace harp::common::io
