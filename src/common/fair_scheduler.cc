#include "common/fair_scheduler.hh"

#include <algorithm>
#include <chrono>
#include <tuple>

namespace harp::common {

namespace {

/** Virtual-time quantum; one slot costs stride1 / effective weight. */
constexpr std::uint64_t stride1 = 1ull << 20;

/** Lower rank is served first on a virtual-time tie. */
std::size_t
classRank(PriorityClass cls)
{
    switch (cls) {
    case PriorityClass::Interactive: return 0;
    case PriorityClass::Normal: return 1;
    case PriorityClass::Background: return 2;
    }
    return 1;
}

} // namespace

const char *
priorityClassName(PriorityClass cls)
{
    switch (cls) {
    case PriorityClass::Interactive: return "interactive";
    case PriorityClass::Normal: return "normal";
    case PriorityClass::Background: return "background";
    }
    return "normal";
}

std::optional<PriorityClass>
parsePriorityClass(const std::string &name)
{
    if (name == "interactive")
        return PriorityClass::Interactive;
    if (name == "normal")
        return PriorityClass::Normal;
    if (name == "background")
        return PriorityClass::Background;
    return std::nullopt;
}

FairScheduler::FairScheduler(Config config) : config_(config)
{
    if (config_.slots == 0)
        config_.slots = 1;
    if (config_.interactiveBoost == 0)
        config_.interactiveBoost = 1;
    if (config_.normalBoost == 0)
        config_.normalBoost = 1;
    if (config_.backgroundBoost == 0)
        config_.backgroundBoost = 1;
    freeSlots_ = config_.slots;
}

std::size_t
FairScheduler::classBoost(PriorityClass cls) const
{
    switch (cls) {
    case PriorityClass::Interactive: return config_.interactiveBoost;
    case PriorityClass::Normal: return config_.normalBoost;
    case PriorityClass::Background: return config_.backgroundBoost;
    }
    return config_.normalBoost;
}

std::uint64_t
FairScheduler::enroll(const std::string &tenant, std::size_t weight,
                      PriorityClass cls)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Tenant &t = tenants_[tenant];
    if (t.entities == 0)
        t.weight = std::max<std::size_t>(1, weight);
    ++t.entities;
    const std::uint64_t id = nextId_++;
    Entity entity;
    entity.tenant = tenant;
    entity.cls = cls;
    entities_.emplace(id, std::move(entity));
    return id;
}

void
FairScheduler::leave(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entities_.find(id);
    if (it == entities_.end())
        return;
    Entity &e = it->second;
    const auto tit = tenants_.find(e.tenant);
    if (tit != tenants_.end()) {
        Tenant &t = tit->second;
        if (e.waiting && t.waiting > 0)
            --t.waiting;
        t.slotsHeld -= std::min(t.slotsHeld, e.outstanding);
        if (t.entities > 0)
            --t.entities;
        if (t.entities == 0)
            tenants_.erase(tit);
    }
    freeSlots_ = std::min(config_.slots, freeSlots_ + e.outstanding);
    entities_.erase(it);
    slotFreed_.notify_all();
}

std::uint64_t
FairScheduler::chooseLocked() const
{
    std::uint64_t best = 0;
    std::tuple<std::uint64_t, std::size_t, std::uint64_t> bestKey{};
    for (const auto &[id, e] : entities_) {
        if (!e.waiting)
            continue;
        const auto tit = tenants_.find(e.tenant);
        const std::uint64_t pass =
            tit == tenants_.end() ? 0 : tit->second.pass;
        // Min virtual time wins; ties fall to the better service class,
        // then to global arrival order — all deterministic.
        const auto key = std::make_tuple(pass, classRank(e.cls), e.ticket);
        if (best == 0 || key < bestKey) {
            best = id;
            bestKey = key;
        }
    }
    return best;
}

FairScheduler::Grant
FairScheduler::acquire(std::uint64_t id, std::size_t want,
                       const std::atomic<bool> *abort)
{
    Grant grant;
    if (want == 0)
        return grant;
    // A cancelled waver must never be granted fresh slots, even when
    // the pool is idle and the grant would be immediate.
    if (abort != nullptr && abort->load(std::memory_order_relaxed))
        return grant;
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = entities_.find(id);
    if (it == entities_.end())
        return grant;
    Entity &e = it->second;
    Tenant &t = tenants_[e.tenant];

    // A tenant coming back from idle starts at the current virtual
    // time: it neither owes history (unbounded wait) nor banks credit
    // from its idle period (unbounded burst).
    if (t.waiting == 0 && t.slotsHeld == 0)
        t.pass = std::max(t.pass, virtualTime_);
    e.waiting = true;
    e.ticket = nextTicket_++;
    ++t.waiting;

    while (freeSlots_ == 0 || chooseLocked() != id) {
        if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
            e.waiting = false;
            if (t.waiting > 0)
                --t.waiting;
            return grant;
        }
        // Timed wait: abort flags flip without a notification, and a
        // bounded poll keeps the governor livelock-free by design.
        slotFreed_.wait_for(lock, std::chrono::milliseconds(25));
    }
    e.waiting = false;
    if (t.waiting > 0)
        --t.waiting;

    // Contended iff any *other* tenant is active right now.
    std::size_t activeWeight = t.weight;
    bool contended = false;
    for (const auto &[name, other] : tenants_) {
        if (name == e.tenant)
            continue;
        if (other.waiting > 0 || other.slotsHeld > 0) {
            contended = true;
            activeWeight += other.weight;
        }
    }

    if (!contended) {
        // Solo tenant: whole pool, batch-style trailing-wave widening.
        grant.width = std::min(want, freeSlots_);
        grant.innerThreads =
            std::max<std::size_t>(1, config_.slots / grant.width);
    } else {
        // Brownout rung 1: cap at the weighted fair share; Background
        // campaigns are squeezed to half of it and lose intra-job
        // sharding entirely, so interactive tenants feel overload last.
        const std::size_t share = std::max<std::size_t>(
            1, config_.slots * t.weight / activeWeight);
        const std::size_t cap = e.cls == PriorityClass::Background
                                    ? std::max<std::size_t>(1, share / 2)
                                    : share;
        grant.width = std::min({want, freeSlots_, cap});
        grant.innerThreads =
            e.cls == PriorityClass::Background
                ? 1
                : std::max<std::size_t>(1, share / grant.width);
    }
    grant.contended = contended;

    freeSlots_ -= grant.width;
    t.slotsHeld += grant.width;
    e.outstanding += grant.width;
    const std::uint64_t stride = std::max<std::uint64_t>(
        1, stride1 / (static_cast<std::uint64_t>(t.weight) *
                      classBoost(e.cls)));
    t.pass += grant.width * stride;
    // Virtual time is the minimum pass over *active* tenants — NOT the
    // pass of whoever was just granted. A low-share tenant's grant
    // advances its own pass by a huge stride; letting that define the
    // clock would catapult virtual time forward, and the idle-arrival
    // clamp would then charge every returning tenant for the laggard's
    // banked debt (a priority inversion for fresh interactive work).
    std::uint64_t minActive = ~0ull;
    for (const auto &[name, other] : tenants_)
        if (other.waiting > 0 || other.slotsHeld > 0)
            minActive = std::min(minActive, other.pass);
    if (minActive != ~0ull)
        virtualTime_ = minActive;
    ++grants_;
    // The head changed; re-evaluate every waiter's predicate.
    slotFreed_.notify_all();
    return grant;
}

void
FairScheduler::releaseOne(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entities_.find(id);
    if (it == entities_.end())
        return;
    Entity &e = it->second;
    if (e.outstanding == 0)
        return;
    --e.outstanding;
    const auto tit = tenants_.find(e.tenant);
    if (tit != tenants_.end() && tit->second.slotsHeld > 0)
        --tit->second.slotsHeld;
    if (freeSlots_ < config_.slots)
        ++freeSlots_;
    slotFreed_.notify_all();
}

std::size_t
FairScheduler::slotsInUse() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return config_.slots - freeSlots_;
}

std::uint64_t
FairScheduler::grantCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return grants_;
}

} // namespace harp::common
