/**
 * @file
 * Injectable I/O seam for durability-critical writers.
 *
 * Every operation that can lose or corrupt persistent state — write,
 * fsync, rename, close, open — goes through this layer and reports a
 * `std::error_code` instead of throwing out of server threads. The
 * seam exists for two reasons:
 *
 *  1. **Containment.** Callers (harpd's checkpoint and staging→publish
 *     paths) handle every failure explicitly: degrade, never corrupt.
 *  2. **Injection.** A `FaultPlan` deterministically fails the Nth
 *     occurrence of an operation with a chosen errno — including short
 *     writes that leave a genuinely torn tail on disk and sticky
 *     failures that persist (ENOSPC) until the plan is removed. Chaos
 *     tests schedule faults by operation index, so every run is
 *     reproducible from its schedule string alone.
 *
 * Plan spec grammar (one entry per fault, comma separated):
 *
 *     <op>#<index>[+]=<ERRNO>[/short=<bytes>]
 *
 *     op     ::= open | write | fsync | rename | close
 *     index  ::= 0-based count of that operation within the plan
 *     +      ::= sticky: every occurrence >= index fails (ENOSPC-style)
 *     ERRNO  ::= ENOSPC | EIO | EDQUOT | EACCES | EINTR | ... | <int>
 *     short  ::= write only: persist that many bytes, then fail (a
 *                torn tail the reader must truncate-recover)
 *
 * Example: `write#4+=ENOSPC/short=10` — the 5th write persists 10
 * bytes then fails with ENOSPC, as does every write after it.
 * Injected EINTR is consumed by the retry loop inside writeAll — it
 * witnesses the retry, never surfaces to the caller.
 */

#ifndef HARP_COMMON_IO_HH
#define HARP_COMMON_IO_HH

#include <array>
#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <system_error>

namespace harp::common::io {

/** Operations a FaultPlan can schedule faults for. */
enum class Op
{
    Open,
    Write,
    Fsync,
    Rename,
    Close,
};
inline constexpr std::size_t opCount = 5;

const char *opName(Op op);
std::optional<Op> parseOp(std::string_view name);

/** Symbolic name for the errnos the fault grammar supports
 *  ("ENOSPC", ...); "errno_<n>" for anything else. */
std::string errnoName(int value);

/** One scheduled fault. */
struct Fault
{
    std::error_code ec;
    /** Write only: bytes genuinely persisted before the failure
     *  (npos = none; the write fails atomically). */
    std::size_t shortBytes = std::string::npos;
};

/**
 * A deterministic schedule of I/O faults, consulted (and consumed) by
 * File / renamePath / syncDir on every operation. Thread-safe: the
 * per-op occurrence counters are advanced under a mutex, so a plan can
 * be shared by every writer in a process. Determinism is up to the
 * caller: with one campaign in flight, harpd's durable writes happen
 * in a fixed order, so "the Nth write" names the same write each run.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;
    FaultPlan(FaultPlan &&other) noexcept;
    FaultPlan &operator=(FaultPlan &&other) noexcept;
    FaultPlan(const FaultPlan &) = delete;
    FaultPlan &operator=(const FaultPlan &) = delete;

    /** Fail the @p index-th occurrence of @p op (0-based). */
    void injectAt(Op op, std::size_t index, Fault fault);

    /** Fail every occurrence of @p op from @p index on (sticky —
     *  ENOSPC does not clear by itself). */
    void injectFrom(Op op, std::size_t index, Fault fault);

    /**
     * Parse the documented spec grammar.
     * @throws std::runtime_error naming the offending entry.
     */
    static FaultPlan parse(const std::string &spec);

    /** Consume one occurrence of @p op; the fault to inject, if any. */
    std::optional<Fault> next(Op op);

    /** Occurrences of @p op consumed so far. */
    std::size_t consumed(Op op) const;

    /** The schedule, re-serialized in the spec grammar (for logs: a
     *  chaos failure is reproducible from this line). */
    std::string describe() const;

  private:
    mutable std::mutex mutex_;
    std::array<std::size_t, opCount> counters_{};
    std::map<std::pair<int, std::size_t>, Fault> oneShot_;
    std::array<std::optional<Fault>, opCount> sticky_;
    std::array<std::size_t, opCount> stickyFrom_{};
};

/**
 * Unbuffered POSIX file handle with error-code results on every
 * operation. One writeAll() call counts as one `write` op against the
 * plan regardless of how many syscalls the kernel needs; EINTR and
 * OS-level partial writes are retried internally.
 */
class File
{
  public:
    File() = default;
    ~File();

    File(File &&other) noexcept;
    File &operator=(File &&other) noexcept;
    File(const File &) = delete;
    File &operator=(const File &) = delete;

    /** Open (create) @p path for writing; truncate or append. */
    std::error_code open(const std::string &path, bool truncate,
                         FaultPlan *plan = nullptr);

    /** Write all of @p data (retrying EINTR / partial syscalls). On an
     *  injected short write, the prefix really reaches the file — the
     *  torn-tail failure mode, on demand. */
    std::error_code writeAll(std::string_view data);

    /** fsync: the bytes reach the device, not just the page cache. */
    std::error_code sync();

    /** Close (idempotent); reports the close error once. */
    std::error_code close();

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
    FaultPlan *plan_ = nullptr;
};

/** ::rename through the seam. */
std::error_code renamePath(const std::string &from, const std::string &to,
                           FaultPlan *plan = nullptr);

/** fsync a directory, making renames/creates inside it durable. */
std::error_code syncDir(const std::string &dir, FaultPlan *plan = nullptr);

/** Transient-resource errors worth retrying once space frees up
 *  (ENOSPC/EDQUOT), as opposed to e.g. EIO (needs an operator). */
bool isRetriable(std::error_code ec);

} // namespace harp::common::io

#endif // HARP_COMMON_IO_HH
