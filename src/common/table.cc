#include "common/table.hh"

#include <cassert>
#include <cstdio>
#include <iomanip>

namespace harp::common {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ")
               << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
        }
        os << " |\n";
    };

    print_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    os << "-|\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c == 0 ? "" : ",") << row[c];
        os << "\n";
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
formatDouble(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
formatSci(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
    return buf;
}

} // namespace harp::common
