/**
 * @file
 * Weighted fair slot governor for campaigns multiplexed onto one
 * shared ThreadPool.
 *
 * The pool itself stays FIFO; fairness lives one level up. Each
 * campaign enrolls under its tenant and must acquire() a grant of
 * 1..want slots before dispatching a wave of jobs, then releaseOne()
 * per finished job. Tenants are picked by stride scheduling: every
 * tenant carries a virtual-time "pass" that advances by
 * stride1 / (weight x class boost) per granted slot, and the pending
 * tenant with the smallest pass is served first. That yields
 * proportional-share throughput (completed-slot shares converge to the
 * weight ratio), bounded latency for freshly arriving tenants (their
 * pass is clamped to the current virtual time, so a saturating
 * background sweep cannot push an interactive request arbitrarily far
 * into the future), and starvation-freedom (a waiting tenant's pass is
 * frozen while everyone else's advances, so it eventually becomes the
 * minimum).
 *
 * Brownout, step one: while more than one tenant is active, grants are
 * capped at the tenant's weighted fair share of the pool, and
 * Background-class campaigns are narrowed harder — at most half their
 * fair share, with intra-job sharding forced to 1 — so interactive
 * work feels contention last. A solo tenant keeps the whole pool and
 * the batch runner's trailing-wave widening (inner = slots / width).
 *
 * Determinism note: the governor decides only *when* and *how wide*
 * each campaign's next wave runs. Per-campaign output bytes are pinned
 * by per-(name, point, repeat) seed derivation and the OrderedMerger,
 * so any interleaving the governor produces yields byte-identical
 * campaign results.
 */

#ifndef HARP_COMMON_FAIR_SCHEDULER_HH
#define HARP_COMMON_FAIR_SCHEDULER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace harp::common {

/** Service class of a campaign; scales the tenant's effective weight
 *  while that campaign runs and selects the brownout ladder rung. */
enum class PriorityClass
{
    Interactive,
    Normal,
    Background,
};

const char *priorityClassName(PriorityClass cls);
std::optional<PriorityClass> parsePriorityClass(const std::string &name);

class FairScheduler
{
  public:
    struct Config
    {
        /** Pool capacity: max slots granted and not yet released. */
        std::size_t slots = 1;
        /** Per-class multipliers applied on top of the tenant weight. */
        std::size_t interactiveBoost = 16;
        std::size_t normalBoost = 4;
        std::size_t backgroundBoost = 1;
    };

    struct Grant
    {
        /** Slots granted; 0 only when acquire() aborted. */
        std::size_t width = 0;
        /** Intra-job sharding allowance per granted job. */
        std::size_t innerThreads = 1;
        /** True when other tenants were active, i.e. the grant was
         *  capped at a fair share instead of the whole pool. */
        bool contended = false;
    };

    explicit FairScheduler(Config config);

    /**
     * Register one campaign under @p tenant (weight >= 1 enforced).
     * Returns the entity id used by acquire/releaseOne/leave. Entities
     * of one tenant are served FIFO among themselves.
     */
    std::uint64_t enroll(const std::string &tenant, std::size_t weight,
                         PriorityClass cls);

    /** Unregister; outstanding slots (if any) are force-released. */
    void leave(std::uint64_t id);

    /**
     * Block until this entity is the stride-chosen head and at least
     * one slot is free, then grant min(want, free, brownout cap)
     * slots. Returns width 0 without granting when @p abort becomes
     * true (checked continuously) or @p want is 0.
     */
    Grant acquire(std::uint64_t id, std::size_t want,
                  const std::atomic<bool> *abort = nullptr);

    /** Return one slot of an outstanding grant to the pool. */
    void releaseOne(std::uint64_t id);

    /** Slots granted and not yet released. */
    std::size_t slotsInUse() const;

    /** Total acquire() grants issued — a logical clock for latency
     *  bounds in tests ("served within K grants of arrival"). */
    std::uint64_t grantCount() const;

  private:
    struct Tenant
    {
        std::size_t weight = 1;
        std::uint64_t pass = 0;
        std::size_t entities = 0;
        std::size_t slotsHeld = 0;
        std::size_t waiting = 0;
    };
    struct Entity
    {
        std::string tenant;
        PriorityClass cls = PriorityClass::Normal;
        std::size_t outstanding = 0;
        bool waiting = false;
        std::uint64_t ticket = 0; // FIFO order within the tenant
    };

    std::size_t classBoost(PriorityClass cls) const;
    /** Entity id the stride rule serves next; 0 when none waiting. */
    std::uint64_t chooseLocked() const;

    Config config_;
    mutable std::mutex mutex_;
    std::condition_variable slotFreed_;
    std::map<std::string, Tenant> tenants_;
    std::map<std::uint64_t, Entity> entities_;
    std::size_t freeSlots_;
    std::uint64_t nextId_ = 1;
    std::uint64_t nextTicket_ = 1;
    std::uint64_t virtualTime_ = 0;
    std::uint64_t grants_ = 0;
};

} // namespace harp::common

#endif // HARP_COMMON_FAIR_SCHEDULER_HH
