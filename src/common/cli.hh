/**
 * @file
 * Minimal command-line flag parsing for bench and example binaries.
 *
 * Supports `--name=value`, `--name value`, and boolean `--name` forms.
 * Unknown flags are collected so binaries can reject typos.
 */

#ifndef HARP_COMMON_CLI_HH
#define HARP_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace harp::common {

/**
 * Parsed command line. Flags are looked up by name (without the leading
 * dashes); typed getters fall back to a caller-supplied default when the
 * flag is absent.
 */
class CommandLine
{
  public:
    CommandLine(int argc, const char *const *argv);

    bool has(const std::string &name) const;

    std::string getString(const std::string &name,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &name, std::int64_t def) const;
    double getDouble(const std::string &name, double def) const;
    bool getBool(const std::string &name, bool def) const;

    /** Positional (non-flag) arguments in order of appearance. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Flag names that were parsed, for unknown-flag validation. */
    std::vector<std::string> flagNames() const;

    /** All parsed name -> raw-text flag pairs (for forwarding flags to
     *  another consumer, e.g.\ campaign tunable overrides). */
    const std::map<std::string, std::string> &entries() const
    {
        return flags_;
    }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace harp::common

#endif // HARP_COMMON_CLI_HH
