/**
 * @file
 * Fixed-size worker pool used to parallelize Monte-Carlo simulation across
 * (ECC code, ECC word) tasks. Tasks are independent by construction (each
 * derives its own RNG stream), so the pool needs no work stealing.
 */

#ifndef HARP_COMMON_THREAD_POOL_HH
#define HARP_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace harp::common {

/**
 * A simple fixed-size thread pool with a blocking wait-for-idle operation.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 selects hardware concurrency.
     */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has completed. */
    void wait();

    std::size_t numThreads() const { return workers_.size(); }

    /**
     * Tasks submitted but not yet completed (queued + running).
     * Instantaneous snapshot — advisory only (overload telemetry),
     * never a synchronization primitive.
     */
    std::size_t backlog() const;

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    mutable std::mutex mutex_;
    std::condition_variable taskAvailable_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
};

/**
 * Completion counter for task batches submitted to a *shared* pool.
 *
 * ThreadPool::wait() waits for every task from every submitter, which
 * is wrong when several campaign sessions multiplex one pool (harpd):
 * each session tracks only its own tasks with a WaitGroup — add()
 * before submitting, done() at the end of the task, wait() for the
 * batch.
 */
class WaitGroup
{
  public:
    /** Register @p n not-yet-done tasks. */
    void add(std::size_t n = 1)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_ += n;
    }

    /** Mark one task done; wakes wait() when the count reaches zero. */
    void done()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (pending_ > 0 && --pending_ == 0)
            idle_.notify_all();
    }

    /** Block until every add()ed task has called done(). */
    void wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return pending_ == 0; });
    }

  private:
    std::mutex mutex_;
    std::condition_variable idle_;
    std::size_t pending_ = 0;
};

/**
 * Run @p body(i) for every i in [0, count) across a transient pool.
 *
 * Each invocation must be independent; @p body is shared across threads so
 * it must be safe to call concurrently.
 *
 * @param count       Number of iterations.
 * @param body        Callable invoked with the iteration index.
 * @param num_threads Worker count; 0 selects hardware concurrency.
 */
void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)> &body,
                 std::size_t num_threads = 0);

} // namespace harp::common

#endif // HARP_COMMON_THREAD_POOL_HH
