/**
 * @file
 * Low-level bit-manipulation helpers shared by all HARP modules.
 */

#ifndef HARP_COMMON_BITS_HH
#define HARP_COMMON_BITS_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace harp::common {

/** Number of bits in one storage word used by packed bit containers. */
inline constexpr std::size_t wordBits = 64;

/** Index of the 64-bit word that holds bit @p bit. */
constexpr std::size_t
wordIndex(std::size_t bit)
{
    return bit / wordBits;
}

/** Offset of bit @p bit within its 64-bit word. */
constexpr std::size_t
bitOffset(std::size_t bit)
{
    return bit % wordBits;
}

/** Number of 64-bit words needed to store @p bits bits. */
constexpr std::size_t
wordsFor(std::size_t bits)
{
    return (bits + wordBits - 1) / wordBits;
}

/**
 * Mask selecting the valid low bits of the final storage word of an
 * @p bits -bit container. Returns all-ones when @p bits is a multiple of 64.
 */
constexpr std::uint64_t
tailMask(std::size_t bits)
{
    const std::size_t rem = bits % wordBits;
    return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
}

/**
 * Mask of the low @p lanes bits (all-ones for 64): the live-lane mask
 * of a bit-sliced block whose dead-lane bits hold garbage. One
 * definition, because the ragged-tail masking rule is load-bearing
 * everywhere transposed lanes are consumed.
 */
constexpr std::uint64_t
laneMask(std::size_t lanes)
{
    return lanes >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << lanes) - 1;
}

/** Parity (XOR-reduction) of a 64-bit word: 1 if an odd number of set bits. */
constexpr int
parity64(std::uint64_t x)
{
    return std::popcount(x) & 1;
}

/** True iff @p x is zero or a power of two. */
constexpr bool
atMostOneBit(std::uint64_t x)
{
    return (x & (x - 1)) == 0;
}

/** FNV-1a offset basis: the initial value for fnv1a64 hash chains. */
inline constexpr std::uint64_t fnv1a64Init = 0xCBF29CE484222325ULL;

/**
 * FNV-1a over a byte string, continuing from @p hash. Platform-stable,
 * so result hashes can be pinned in golden tests and compared across
 * campaign runs.
 */
constexpr std::uint64_t
fnv1a64(std::string_view bytes, std::uint64_t hash = fnv1a64Init)
{
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x00000100000001B3ULL;
    }
    return hash;
}

} // namespace harp::common

#endif // HARP_COMMON_BITS_HH
