/**
 * @file
 * Bounded blocking MPMC queue — the backpressure primitive between the
 * campaign workers producing result lines and a (possibly slow) client
 * consuming them.
 *
 * push() blocks while the queue is full, so a slow consumer throttles
 * its producers instead of growing an unbounded buffer; close() wakes
 * every blocked producer and consumer, making client-disconnect a
 * non-event for the producing side (pushes start returning false and
 * the results are simply dropped — the checkpoint already has them).
 */

#ifndef HARP_COMMON_BOUNDED_QUEUE_HH
#define HARP_COMMON_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace harp::common {

/**
 * Fixed-capacity FIFO safe for any number of producers and consumers.
 *
 * Lifecycle: open on construction; close() is idempotent and
 * irreversible. After close, push() fails fast, and pop() drains the
 * remaining elements before reporting end-of-stream.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /** Block until there is room (or the queue closes). Returns false —
     *  and drops @p value — iff the queue was closed. */
    bool push(T value)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [this] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(value));
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /** Non-blocking push. Returns false when full or closed. */
    bool tryPush(T value)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(value));
        }
        notEmpty_.notify_one();
        return true;
    }

    /** Block until an element is available or the stream ends. Returns
     *  nullopt only when the queue is closed *and* fully drained. */
    std::optional<T> pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T value = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return value;
    }

    /** End the stream: wake all waiters; subsequent pushes fail. */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace harp::common

#endif // HARP_COMMON_BOUNDED_QUEUE_HH
