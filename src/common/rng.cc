#include "common/rng.hh"

#include <algorithm>

namespace harp::common {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed)
{
    // Expand the seed via SplitMix64 per the generator authors' guidance;
    // guarantees the all-zero state (the one invalid state) is unreachable.
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 0x9E3779B97F4A7C15ULL;
}

std::uint64_t
Xoshiro256::nextBelow(std::uint64_t bound)
{
    // Debiased modulo via rejection sampling on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Xoshiro256::nextBernoulli(double p)
{
    p = std::clamp(p, 0.0, 1.0);
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
deriveSeed(std::uint64_t parent, std::initializer_list<std::uint64_t> keys)
{
    std::uint64_t state = parent ^ 0xD1B54A32D192ED03ULL;
    std::uint64_t out = splitMix64(state);
    for (std::uint64_t key : keys) {
        state ^= key + 0x9E3779B97F4A7C15ULL + (out << 6) + (out >> 2);
        out = splitMix64(state);
    }
    return out;
}

} // namespace harp::common
