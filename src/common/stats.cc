#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace harp::common {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
PercentileTracker::merge(const PercentileTracker &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
}

void
PercentileTracker::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
PercentileTracker::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

std::vector<double>
PercentileTracker::sortedSamples() const
{
    ensureSorted();
    return samples_;
}

double
PercentileTracker::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

void
Histogram::add(std::int64_t value, std::uint64_t weight)
{
    if (bins_.empty())
        return;
    std::size_t idx;
    if (value < 0)
        idx = 0;
    else if (static_cast<std::size_t>(value) >= bins_.size())
        idx = bins_.size() - 1;
    else
        idx = static_cast<std::size_t>(value);
    bins_[idx] += weight;
}

void
Histogram::merge(const Histogram &other)
{
    const std::size_t n = std::min(bins_.size(), other.bins_.size());
    for (std::size_t i = 0; i < n; ++i)
        bins_[i] += other.bins_[i];
}

std::uint64_t
Histogram::total() const
{
    return std::accumulate(bins_.begin(), bins_.end(), std::uint64_t{0});
}

double
Histogram::fraction(std::size_t i) const
{
    const std::uint64_t t = total();
    if (t == 0)
        return 0.0;
    return static_cast<double>(bin(i)) / static_cast<double>(t);
}

std::size_t
Histogram::quantileBin(double q) const
{
    const std::uint64_t t = total();
    if (t == 0)
        return bins_.empty() ? 0 : bins_.size() - 1;
    const double target = std::clamp(q, 0.0, 1.0) *
                          static_cast<double>(t);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        cumulative += bins_[i];
        if (static_cast<double>(cumulative) >= target)
            return i;
    }
    return bins_.size() - 1;
}

} // namespace harp::common
