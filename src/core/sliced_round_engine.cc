#include "core/sliced_round_engine.hh"

#include <cassert>
#include <stdexcept>

#include "common/bits.hh"
#include "ecc/sliced_bch.hh"
#include "ecc/sliced_hamming.hh"

namespace harp::core {

namespace {

/** Reject a null datapath before the delegating ctor dereferences it. */
template <std::size_t W>
const ecc::SlicedCodeW<W> &
requireCode(const std::unique_ptr<const ecc::SlicedCodeW<W>> &code)
{
    if (code == nullptr)
        throw std::invalid_argument("SlicedRoundEngine: null sliced code");
    return *code;
}

} // namespace

template <std::size_t W>
SlicedRoundEngineW<W>::SlicedRoundEngineW(
    const ecc::SlicedCodeW<W> &code,
    const std::vector<const fault::WordFaultModel *> &faults,
    PatternKind pattern, const std::vector<std::uint64_t> &seeds)
    : code_(&code),
      lanes_(faults.size()),
      k_(code.k()),
      injector_(faults),
      written_(k_),
      stored_(code.n()),
      received_(code.n()),
      post_(k_),
      sWritten_(k_),
      sReceived_(code.n()),
      sPost_(k_)
{
    if (seeds.size() != lanes_ || lanes_ > code.lanes())
        throw std::invalid_argument(
            "SlicedRoundEngine: codes/faults/seeds lane counts differ");
    if (injector_.wordBits() != code.n())
        throw std::invalid_argument(
            "SlicedRoundEngine: fault models must cover n cells");

    patterns_.reserve(lanes_);
    crnRngs_.reserve(lanes_);
    profilerRngs_.reserve(lanes_);
    for (std::size_t w = 0; w < lanes_; ++w) {
        // Identical child-stream derivation to RoundEngine's members.
        patterns_.emplace_back(pattern, k_,
                               common::deriveSeed(seeds[w], {0x9A77E2u}));
        crnRngs_.emplace_back(common::deriveSeed(seeds[w], {0xC28Bu}));
        profilerRngs_.emplace_back(
            common::deriveSeed(seeds[w], {0x9120F1u}));
    }
    liveMask_ = gf2::laneMaskOf<Lane>(lanes_);
    suggestedViews_.assign(lanes_, nullptr);
    writtenVec_.resize(lanes_);
    postVec_.assign(lanes_, gf2::BitVector(k_));
    rawVec_.assign(lanes_, gf2::BitVector(k_));
    postSuggestedVec_.assign(lanes_, gf2::BitVector(k_));
    rawSuggestedVec_.assign(lanes_, gf2::BitVector(k_));
}

template <std::size_t W>
SlicedRoundEngineW<W>::SlicedRoundEngineW(
    std::unique_ptr<const ecc::SlicedCodeW<W>> code,
    const std::vector<const fault::WordFaultModel *> &faults,
    PatternKind pattern, const std::vector<std::uint64_t> &seeds)
    : SlicedRoundEngineW(requireCode(code), faults, pattern, seeds)
{
    if (faults.size() != code->lanes())
        throw std::invalid_argument(
            "SlicedRoundEngine: codes/faults/seeds lane counts differ");
    owned_ = std::move(code);
}

template <std::size_t W>
SlicedRoundEngineW<W>::SlicedRoundEngineW(
    const std::vector<const ecc::HammingCode *> &codes,
    const std::vector<const fault::WordFaultModel *> &faults,
    PatternKind pattern, const std::vector<std::uint64_t> &seeds)
    : SlicedRoundEngineW(std::make_unique<ecc::SlicedHammingCodeW<W>>(codes),
                         faults, pattern, seeds)
{
}

template <std::size_t W>
SlicedRoundEngineW<W>::SlicedRoundEngineW(
    const std::vector<const ecc::BchCode *> &codes,
    const std::vector<const fault::WordFaultModel *> &faults,
    PatternKind pattern, const std::vector<std::uint64_t> &seeds)
    : SlicedRoundEngineW(std::make_unique<ecc::SlicedBchCodeW<W>>(codes),
                         faults, pattern, seeds)
{
}

template <std::size_t W>
void
SlicedRoundEngineW<W>::flushObservers()
{
    for (auto &group : groups_)
        if (group != nullptr)
            group->flushIfDirty();
}

template <std::size_t W>
void
SlicedRoundEngineW<W>::ensureGroups(
    const std::vector<std::vector<Profiler *>> &profilers)
{
    if (profilers == groupedFor_) {
        // Pointer identity alone is not proof of the same profiler
        // generation: a destroyed set reallocated at the same heap
        // addresses compares equal. Grouped slots detect this through
        // abandoned() (a destroyed profiler marks its group); scalar
        // slots revalidate their profilers' instance ids, which the
        // cached slotNeedsRaw_/slotCleanNoOp_ flags were computed for.
        bool stale = false;
        std::size_t id_idx = 0;
        for (std::size_t s = 0; s < groups_.size() && !stale; ++s) {
            if (groups_[s] != nullptr) {
                stale = groups_[s]->abandoned();
                continue;
            }
            for (std::size_t w = 0; w < lanes_ && !stale; ++w)
                stale = profilers[w][s]->instanceId() !=
                        scalarSlotIds_[id_idx++];
        }
        if (!stale)
            return;
    }
    // Group destruction flushes any pending lane state of a previous
    // profiler generation before the rebuild.
    groups_.clear();
    groupedFor_ = profilers;
    const std::size_t slots = profilers.empty() ? 0 : profilers[0].size();
    groups_.resize(slots);
    slotCleanNoOp_.assign(slots, 1);
    slotNeedsRaw_.assign(slots, 0);
    scalarSlotIds_.clear();
    std::vector<Profiler *> slot_profilers(lanes_);
    for (std::size_t s = 0; s < slots; ++s) {
        for (std::size_t w = 0; w < lanes_; ++w) {
            assert(profilers[w].size() == slots);
            slot_profilers[w] = profilers[w][s];
            if (!profilers[w][s]->cleanObserveIsNoOp())
                slotCleanNoOp_[s] = 0;
            if (profilers[w][s]->usesBypassPath())
                slotNeedsRaw_[s] = 1;
        }
        groups_[s] = SlicedProfilerGroupW<W>::tryMake(slot_profilers, k_);
        if (groups_[s] == nullptr)
            for (std::size_t w = 0; w < lanes_; ++w)
                scalarSlotIds_.push_back(
                    profilers[w][s]->instanceId());
    }
}

template <std::size_t W>
void
SlicedRoundEngineW<W>::runDatapath(const std::vector<gf2::BitVector> &written)
{
    written_.gather(written);
    code_->encode(written_, stored_);
    received_ = stored_;
    injector_.apply(stored_, received_);
    code_->decodeData(received_, post_);
    ++stats_.mixedDatapathRuns;
}

template <std::size_t W>
void
SlicedRoundEngineW<W>::runSuggestedDatapath()
{
    sWritten_.gather(suggestedViews_.data(), lanes_);
    code_->encode(sWritten_, stored_);
    sReceived_ = stored_;
    injector_.apply(stored_, sReceived_);
    code_->decodeData(sReceived_, sPost_);
    ++stats_.suggestedDatapathRuns;
}

template <std::size_t W>
void
SlicedRoundEngineW<W>::runRound(
    const std::vector<std::vector<Profiler *>> &profilers)
{
    assert(profilers.size() == lanes_);
    const std::size_t slots = profilers.empty() ? 0 : profilers[0].size();
    ensureGroups(profilers);

    double *const ph_setup = phases_ ? &phases_->setup : nullptr;
    double *const ph_datapath = phases_ ? &phases_->datapath : nullptr;
    double *const ph_observe = phases_ ? &phases_->observe : nullptr;

    // Per-lane pattern generation and common-random-number draws, in
    // the same per-lane stream order as the scalar engine.
    {
        PhaseScope t(ph_setup);
        for (std::size_t w = 0; w < lanes_; ++w)
            suggestedViews_[w] = &patterns_[w].patternView(round_);
        injector_.drawRound(crnRngs_);
    }

    bool suggested_ready = false; // suggested slices valid
    bool suggested_post_scattered = false;
    bool suggested_raw_scattered = false;
    bool lane_verbatim[gf2::BitSliceW<W>::laneCount];
    for (std::size_t s = 0; s < slots; ++s) {
        if (SlicedProfilerGroupW<W> *group = groups_[s].get()) {
            // Lane-native slot: its profilers program the suggested
            // pattern verbatim and never draw profiler randomness (the
            // LaneObserveKind contract), so the choose calls are
            // skipped and the observation never leaves transposed
            // form — no scatter, no virtual observe calls.
            if (!suggested_ready) {
                PhaseScope t(ph_datapath);
                runSuggestedDatapath();
                suggested_ready = true;
            }
            PhaseScope t(ph_observe);
            group->observeLanes(
                {round_, sWritten_, sPost_, sReceived_});
            ++stats_.laneObserveSlotRounds;
            continue;
        }

        bool verbatim = true;
        {
            PhaseScope t(ph_setup);
            for (std::size_t w = 0; w < lanes_; ++w) {
                assert(profilers[w].size() == slots);
                lane_verbatim[w] = profilers[w][s]->chooseDatawordInto(
                    round_, *suggestedViews_[w], profilerRngs_[w],
                    writtenVec_[w]);
                verbatim = verbatim && lane_verbatim[w];
            }
        }

        // Scalar slots that programmed the suggested pattern verbatim
        // in every lane see identical observations (common random
        // numbers fix the trials within a round): run their datapath
        // once per round and materialize the scalar post/raw views at
        // most once per round.
        if (verbatim) {
            if (!suggested_ready) {
                PhaseScope t(ph_datapath);
                runSuggestedDatapath();
                suggested_ready = true;
            }
            PhaseScope t(ph_observe);
            const bool need_raw = slotNeedsRaw_[s] != 0;
            // Lanes whose read was clean observe nothing a
            // clean-no-op profiler would act on: when the whole slot
            // is clean the scatters are skipped outright.
            Lane dirty = liveMask_;
            if (slotCleanNoOp_[s] != 0) {
                dirty = sWritten_.diffLanesPrefix(sPost_, k_);
                if (need_raw)
                    dirty |= sWritten_.diffLanesPrefix(sReceived_, k_);
                dirty &= liveMask_;
            }
            if (gf2::laneAny(dirty)) {
                if (!suggested_post_scattered) {
                    sPost_.scatter(postSuggestedVec_);
                    ++stats_.postScatters;
                    suggested_post_scattered = true;
                }
                if (need_raw && !suggested_raw_scattered) {
                    sReceived_.scatterPrefix(k_, rawSuggestedVec_);
                    ++stats_.rawScatters;
                    suggested_raw_scattered = true;
                }
            }
            for (std::size_t w = 0; w < lanes_; ++w) {
                if (!gf2::laneTestBit(dirty, w)) {
                    ++stats_.cleanObserveSkips;
                    continue;
                }
                const RoundObservation obs{round_, *suggestedViews_[w],
                                           postSuggestedVec_[w],
                                           rawSuggestedVec_[w]};
                profilers[w][s]->observe(obs);
                ++stats_.scalarObserveCalls;
            }
        } else {
            // Mixed slot: materialize the suggested word into the
            // lanes whose profiler left the output buffer untouched.
            const bool need_raw = slotNeedsRaw_[s] != 0;
            for (std::size_t w = 0; w < lanes_; ++w)
                if (lane_verbatim[w])
                    writtenVec_[w] = *suggestedViews_[w];
            // The sliced datapath: W*64 words per lane-op.
            {
                PhaseScope t(ph_datapath);
                runDatapath(writtenVec_);
            }
            PhaseScope t(ph_observe);
            Lane dirty = liveMask_;
            if (slotCleanNoOp_[s] != 0) {
                dirty = written_.diffLanesPrefix(post_, k_);
                if (need_raw)
                    dirty |= written_.diffLanesPrefix(received_, k_);
                dirty &= liveMask_;
            }
            if (gf2::laneAny(dirty)) {
                post_.scatter(postVec_);
                ++stats_.postScatters;
                if (need_raw) {
                    received_.scatterPrefix(k_, rawVec_);
                    ++stats_.rawScatters;
                }
            }
            for (std::size_t w = 0; w < lanes_; ++w) {
                if (!gf2::laneTestBit(dirty, w)) {
                    ++stats_.cleanObserveSkips;
                    continue;
                }
                const RoundObservation obs{round_, writtenVec_[w],
                                           postVec_[w], rawVec_[w]};
                profilers[w][s]->observe(obs);
                ++stats_.scalarObserveCalls;
            }
        }
    }
    ++round_;
}

template class SlicedRoundEngineW<1>;
template class SlicedRoundEngineW<4>;

} // namespace harp::core
