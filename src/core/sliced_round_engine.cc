#include "core/sliced_round_engine.hh"

#include <cassert>
#include <stdexcept>

#include "ecc/sliced_bch.hh"
#include "ecc/sliced_hamming.hh"

namespace harp::core {

namespace {

/** Reject a null datapath before the delegating ctor dereferences it. */
const ecc::SlicedCode &
requireCode(const std::unique_ptr<const ecc::SlicedCode> &code)
{
    if (code == nullptr)
        throw std::invalid_argument("SlicedRoundEngine: null sliced code");
    return *code;
}

} // namespace

SlicedRoundEngine::SlicedRoundEngine(
    const ecc::SlicedCode &code,
    const std::vector<const fault::WordFaultModel *> &faults,
    PatternKind pattern, const std::vector<std::uint64_t> &seeds)
    : code_(&code),
      lanes_(faults.size()),
      k_(code.k()),
      injector_(faults),
      written_(k_),
      stored_(code.n()),
      received_(code.n()),
      post_(k_)
{
    if (seeds.size() != lanes_ || lanes_ > code.lanes())
        throw std::invalid_argument(
            "SlicedRoundEngine: codes/faults/seeds lane counts differ");
    if (injector_.wordBits() != code.n())
        throw std::invalid_argument(
            "SlicedRoundEngine: fault models must cover n cells");

    patterns_.reserve(lanes_);
    crnRngs_.reserve(lanes_);
    profilerRngs_.reserve(lanes_);
    for (std::size_t w = 0; w < lanes_; ++w) {
        // Identical child-stream derivation to RoundEngine's members.
        patterns_.emplace_back(pattern, k_,
                               common::deriveSeed(seeds[w], {0x9A77E2u}));
        crnRngs_.emplace_back(common::deriveSeed(seeds[w], {0xC28Bu}));
        profilerRngs_.emplace_back(
            common::deriveSeed(seeds[w], {0x9120F1u}));
    }
    suggestedVec_.resize(lanes_);
    writtenVec_.resize(lanes_);
    postVec_.assign(lanes_, gf2::BitVector(k_));
    rawVec_.assign(lanes_, gf2::BitVector(k_));
    postSuggestedVec_.assign(lanes_, gf2::BitVector(k_));
    rawSuggestedVec_.assign(lanes_, gf2::BitVector(k_));
}

SlicedRoundEngine::SlicedRoundEngine(
    std::unique_ptr<const ecc::SlicedCode> code,
    const std::vector<const fault::WordFaultModel *> &faults,
    PatternKind pattern, const std::vector<std::uint64_t> &seeds)
    : SlicedRoundEngine(requireCode(code), faults, pattern, seeds)
{
    if (faults.size() != code->lanes())
        throw std::invalid_argument(
            "SlicedRoundEngine: codes/faults/seeds lane counts differ");
    owned_ = std::move(code);
}

SlicedRoundEngine::SlicedRoundEngine(
    const std::vector<const ecc::HammingCode *> &codes,
    const std::vector<const fault::WordFaultModel *> &faults,
    PatternKind pattern, const std::vector<std::uint64_t> &seeds)
    : SlicedRoundEngine(std::make_unique<ecc::SlicedHammingCode>(codes),
                        faults, pattern, seeds)
{
}

SlicedRoundEngine::SlicedRoundEngine(
    const std::vector<const ecc::BchCode *> &codes,
    const std::vector<const fault::WordFaultModel *> &faults,
    PatternKind pattern, const std::vector<std::uint64_t> &seeds)
    : SlicedRoundEngine(std::make_unique<ecc::SlicedBchCode>(codes),
                        faults, pattern, seeds)
{
}

void
SlicedRoundEngine::runDatapath(const std::vector<gf2::BitVector> &written,
                               std::vector<gf2::BitVector> &post,
                               std::vector<gf2::BitVector> &raw,
                               bool need_raw)
{
    written_.gather(written);
    code_->encode(written_, stored_);
    received_ = stored_;
    injector_.apply(stored_, received_);
    code_->decodeData(received_, post_);
    post_.scatter(post);
    if (need_raw)
        received_.scatterPrefix(k_, raw);
}

void
SlicedRoundEngine::runRound(
    const std::vector<std::vector<Profiler *>> &profilers)
{
    assert(profilers.size() == lanes_);
    const std::size_t slots = profilers.empty() ? 0 : profilers[0].size();

    // Per-lane pattern generation and common-random-number draws, in
    // the same per-lane stream order as the scalar engine.
    for (std::size_t w = 0; w < lanes_; ++w)
        patterns_[w].patternInto(round_, suggestedVec_[w]);
    injector_.drawRound(crnRngs_);

    bool suggested_ready = false;
    bool lane_verbatim[gf2::BitSlice64::laneCount];
    for (std::size_t s = 0; s < slots; ++s) {
        bool verbatim = true;
        for (std::size_t w = 0; w < lanes_; ++w) {
            assert(profilers[w].size() == slots);
            lane_verbatim[w] = profilers[w][s]->chooseDatawordInto(
                round_, suggestedVec_[w], profilerRngs_[w],
                writtenVec_[w]);
            verbatim = verbatim && lane_verbatim[w];
        }

        // Slots that programmed the suggested pattern verbatim in every
        // lane see identical observations (common random numbers fix
        // the trials within a round): run their datapath once per round.
        if (verbatim) {
            if (!suggested_ready) {
                runDatapath(suggestedVec_, postSuggestedVec_,
                            rawSuggestedVec_, true);
                suggested_ready = true;
            }
            for (std::size_t w = 0; w < lanes_; ++w) {
                const RoundObservation obs{round_, suggestedVec_[w],
                                           postSuggestedVec_[w],
                                           rawSuggestedVec_[w]};
                profilers[w][s]->observe(obs);
            }
        } else {
            // Mixed slot: materialize the suggested word into the
            // lanes whose profiler left the output buffer untouched.
            bool need_raw = false;
            for (std::size_t w = 0; w < lanes_; ++w) {
                if (lane_verbatim[w])
                    writtenVec_[w] = suggestedVec_[w];
                need_raw = need_raw || profilers[w][s]->usesBypassPath();
            }
            // The sliced datapath: 64 words per lane-op.
            runDatapath(writtenVec_, postVec_, rawVec_, need_raw);
            for (std::size_t w = 0; w < lanes_; ++w) {
                const RoundObservation obs{round_, writtenVec_[w],
                                           postVec_[w], rawVec_[w]};
                profilers[w][s]->observe(obs);
            }
        }
    }
    ++round_;
}

} // namespace harp::core
