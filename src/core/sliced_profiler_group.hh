/**
 * @file
 * Lane-native observation accumulator for one profiler slot of the
 * bit-sliced round engine, templated over the lane width.
 *
 * PR 3/4 bit-sliced the encode -> inject -> decode datapath, but every
 * round still ended with a 64x64 bit-transpose scatter of the post (and
 * raw) slices plus one scalar virtual observe() call per lane per
 * profiler slot — the observation side capped the measured speedup well
 * below the lane ceiling. This class removes that cap for the profilers
 * whose observe() is itself GF(2)-positionwise (LaneObserveKind):
 *
 *  - Naive:  identified |= written ^ post        (one XOR+OR per
 *            position retires W*64 words at once);
 *  - HARP-U: identified = direct |= written ^ raw (same, over the
 *            decode-bypass lanes);
 *  - HARP-A: HARP-U's accumulation plus per-lane indirect-error
 *            prediction, recomputed only for the (rare) lanes whose
 *            direct set actually grew this round.
 *
 * The group wraps the up-to-W*64 same-kind profilers of one engine slot
 * and consumes RoundLaneObservationW — BitSliceW references straight
 * out of the engine's datapath — so profiling rounds never leave
 * transposed form for these slots. Profile extraction transposes once
 * on demand instead of once per round: reading any wrapped profiler's
 * identified() (or identifiedDirect()) triggers flushIfDirty() through
 * the width-erased LaneObserverGroup base, which scatters the
 * accumulated lane state into the wrapped profilers' members.
 * Experiments that inspect profiles every round therefore stay
 * bit-identical to the scalar engine, while throughput-bound runs pay a
 * single transpose at the end.
 *
 * Lifetime: the engine owns its groups; attach/detach is symmetric
 * (group destruction flushes and detaches every profiler, profiler
 * destruction unregisters from its group), so either side may die
 * first.
 */

#ifndef HARP_CORE_SLICED_PROFILER_GROUP_HH
#define HARP_CORE_SLICED_PROFILER_GROUP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/profiler.hh"
#include "gf2/bit_slice.hh"
#include "gf2/bit_vector.hh"
#include "gf2/lane.hh"

namespace harp::core {

/**
 * One profiling round's outcome in transposed lane form: the slices
 * the engine's datapath already produced, never scattered.
 */
template <std::size_t W>
struct RoundLaneObservationW
{
    std::size_t round = 0;
    /** Programmed datawords, k positions. */
    const gf2::BitSliceW<W> &written;
    /** Post-correction datawords, k positions. */
    const gf2::BitSliceW<W> &post;
    /** Received codewords, n positions; the decode-bypass raw data is
     *  the k-position prefix. */
    const gf2::BitSliceW<W> &received;
};

/** The historical 64-lane name. */
using RoundLaneObservation = RoundLaneObservationW<1>;

/**
 * Accumulates one slot's observations across up to W*64 lanes without
 * leaving transposed form.
 */
template <std::size_t W>
class SlicedProfilerGroupW final : public LaneObserverGroup
{
  public:
    using Lane = gf2::LaneOf<W>;

    /**
     * Form a group over one slot's per-lane profilers (index = lane),
     * or return null when the slot cannot be driven lane-natively —
     * any lane reporting LaneObserveKind::None, mixed kinds across
     * lanes, or a dataword length disagreeing with @p k. The returned
     * group seeds its lane state from the profilers' current profiles,
     * so pre-warmed profilers keep their bits.
     */
    static std::unique_ptr<SlicedProfilerGroupW>
    tryMake(const std::vector<Profiler *> &lane_profilers, std::size_t k);

    ~SlicedProfilerGroupW() override;

    SlicedProfilerGroupW(const SlicedProfilerGroupW &) = delete;
    SlicedProfilerGroupW &operator=(const SlicedProfilerGroupW &) = delete;

    /** The slot's shared observation kind (never None). */
    LaneObserveKind kind() const { return kind_; }

    /** True iff lane state has accumulated since the last flush. */
    bool dirty() const { return dirty_; }

    /** True iff any wrapped profiler has been destroyed (forgotten):
     *  the group no longer covers its full slot and must not be
     *  reused for a new profiler generation — even one that happens
     *  to land on the same heap addresses. */
    bool abandoned() const { return abandoned_; }

    /**
     * Observe one round for every lane at once. BypassAware groups may
     * call back into lanes whose direct set grew
     * (Profiler::laneDirectGrew); everything else is pure lane
     * arithmetic.
     */
    void observeLanes(const RoundLaneObservationW<W> &obs);

    /** Transpose the accumulated lane state into the wrapped
     *  profilers' identified (and direct) members; no-op when clean. */
    void flushIfDirty() override;

  private:
    SlicedProfilerGroupW(const std::vector<Profiler *> &lane_profilers,
                         LaneObserveKind kind, std::size_t k);

    /** Drop @p profiler from the group (it is being destroyed); the
     *  pending lane state is flushed first. */
    void forget(const Profiler *profiler) override;

    /** Extract lane @p lane of @p slice's first k positions into
     *  laneScratch_. */
    void extractLane(const gf2::BitSliceW<W> &slice, std::size_t lane);

    LaneObserveKind kind_;
    std::size_t k_;
    /** Mask of live lanes (bit w set iff lane w wraps a profiler). */
    Lane liveMask_{};
    std::vector<Profiler *> profilers_;
    /** Accumulated identified lane masks, k positions. */
    gf2::BitSliceW<W> atRisk_;
    /** BypassAware only: accumulated direct-error lane masks (a subset
     *  of atRisk_; Bypass kinds reuse atRisk_, where the two sets
     *  coincide). */
    gf2::BitSliceW<W> direct_;
    bool dirty_ = false;
    bool abandoned_ = false;

    // Flush/extraction scratch (no allocations after construction).
    std::vector<gf2::BitVector> flushScratch_;
    gf2::BitVector laneScratch_;
};

/** The historical 64-lane name. */
using SlicedProfilerGroup = SlicedProfilerGroupW<1>;
/** The wide 256-lane variant. */
using SlicedProfilerGroup256 = SlicedProfilerGroupW<4>;

extern template class SlicedProfilerGroupW<1>;
extern template class SlicedProfilerGroupW<4>;

} // namespace harp::core

#endif // HARP_CORE_SLICED_PROFILER_GROUP_HH
