#include "core/fig4_experiment.hh"

#include <mutex>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/at_risk_analyzer.hh"
#include "ecc/hamming_code.hh"
#include "fault/fault_model.hh"

namespace harp::core {

Fig4Result
runFig4Experiment(const Fig4Config &config)
{
    Fig4Result result;
    result.config = config;
    for (std::size_t n = config.minPreCorrectionErrors;
         n <= config.maxPreCorrectionErrors; ++n) {
        Fig4Row row;
        row.numPreCorrectionErrors = n;
        result.rows.push_back(std::move(row));
    }

    const std::size_t num_counts = result.rows.size();
    std::mutex merge_mutex;
    const std::size_t total_tasks = config.numCodes * num_counts;

    common::parallelFor(total_tasks, [&](std::size_t task) {
        const std::size_t code_idx = task / num_counts;
        const std::size_t row_idx = task % num_counts;
        const std::size_t n =
            config.minPreCorrectionErrors + row_idx;

        common::Xoshiro256 code_rng(
            common::deriveSeed(config.seed, {0xC0DEu, code_idx}));
        const ecc::HammingCode code =
            ecc::HammingCode::randomSec(config.k, code_rng);

        // Charged pattern: all data bits '1' (the paper's 0xFF).
        gf2::BitVector charged(code.k());
        charged.fill(true);

        common::PercentileTracker local_post;
        common::PercentileTracker local_pre;
        for (std::size_t w = 0; w < config.wordsPerCode; ++w) {
            common::Xoshiro256 fault_rng(common::deriveSeed(
                config.seed, {0xFA17u, code_idx, n, w}));
            const fault::WordFaultModel faults =
                fault::WordFaultModel::makeUniformFixedCount(
                    code.n(), n, config.perBitProbability, fault_rng);
            const AtRiskAnalyzer analyzer(code, faults);
            const std::vector<double> probs =
                analyzer.perBitErrorProbability(charged);
            for (const double p : probs)
                if (p > 0.0)
                    local_post.add(p);
            for (const fault::CellFault &f : faults.faults())
                local_pre.add(f.probability);
        }

        std::lock_guard<std::mutex> lock(merge_mutex);
        result.rows[row_idx].postCorrection.merge(local_post);
        result.rows[row_idx].preCorrection.merge(local_pre);
    }, config.threads);

    return result;
}

} // namespace harp::core
