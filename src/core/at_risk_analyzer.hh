/**
 * @file
 * Exact ground-truth analysis of at-risk bits for one ECC word
 * (HARP sections 3.2, 4.1 and 7.1.2).
 *
 * Given the on-die ECC code and the word's fault model, the analyzer
 * enumerates every feasible pre-correction error pattern (every subset of
 * at-risk cells that some dataword can charge simultaneously) and pushes
 * it through syndrome decoding. From the resulting outcomes it derives:
 *
 *  - the set of bits at risk of direct error,
 *  - the set of bits at risk of indirect error (miscorrection targets),
 *  - per-bit post-correction error probabilities for a fixed data pattern
 *    (Fig. 4),
 *  - the maximum number of simultaneous post-correction errors possible
 *    given a repair profile (Fig. 9),
 *  - the bits that remain unsafe under a single-error-correcting
 *    secondary ECC (Fig. 10's "after reactive profiling" metric).
 *
 * The original artifact computed these quantities with the Z3 SAT solver;
 * enumeration with GF(2) feasibility solving is exact for the evaluated
 * regime (<= ~16 at-risk cells per word) — see DESIGN.md, substitution 1.
 */

#ifndef HARP_CORE_AT_RISK_ANALYZER_HH
#define HARP_CORE_AT_RISK_ANALYZER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/hamming_code.hh"
#include "fault/fault_model.hh"
#include "gf2/bit_vector.hh"

namespace harp::core {

/** One feasible pre-correction error pattern and its decode outcome. */
struct ErrorPatternOutcome
{
    /** Bitmask over the word's at-risk cell list: which cells fail. */
    std::uint32_t failingMask = 0;
    /** Raw syndrome of the failing pattern. */
    std::uint32_t syndrome = 0;
    /** Position the decoder flips, if the syndrome matches a column. */
    std::optional<std::size_t> correctedPosition;
    /** Data positions in error after decoding (sorted). */
    std::vector<std::uint16_t> postErrors;
};

/**
 * Ground-truth at-risk analysis for a single (code, fault model) pair.
 */
class AtRiskAnalyzer
{
  public:
    /**
     * @param code      The word's on-die ECC code.
     * @param faults    The word's fault model.
     * @param max_cells Enumeration guard; throws std::invalid_argument if
     *                  the fault model has more at-risk cells than this
     *                  (2^cells patterns are enumerated).
     */
    AtRiskAnalyzer(const ecc::HammingCode &code,
                   const fault::WordFaultModel &faults,
                   std::size_t max_cells = 16);

    /** Every feasible failing pattern with its decode outcome. */
    const std::vector<ErrorPatternOutcome> &outcomes() const
    {
        return outcomes_;
    }

    /** Data cells at risk of pre-correction (direct) error. */
    const gf2::BitVector &directAtRisk() const { return directAtRisk_; }

    /** Data bits at risk of indirect error (possible miscorrection
     *  targets), which may overlap directAtRisk(). */
    const gf2::BitVector &indirectAtRisk() const { return indirectAtRisk_; }

    /** Union of all data bits that can appear erroneous post-correction. */
    const gf2::BitVector &postCorrectionAtRisk() const
    {
        return postCorrectionAtRisk_;
    }

    /**
     * Maximum number of simultaneous post-correction errors possible in
     * bits *not* covered by @p profile (Fig. 9's secondary-ECC sizing
     * metric). @p profile is a k-bit bitmap of repaired positions.
     */
    std::size_t
    maxSimultaneousErrors(const gf2::BitVector &profile) const;

    /**
     * Number of unprofiled bits that can appear in a pattern with >= 2
     * simultaneous unprofiled post-correction errors — the bits a
     * single-error-correcting secondary ECC cannot guarantee to mitigate
     * during reactive profiling (Fig. 10, "after" metric).
     */
    std::size_t unsafeBitsAfterReactive(const gf2::BitVector &profile) const;

    /** Count of post-correction-at-risk bits missing from @p profile. */
    std::size_t unidentifiedAtRisk(const gf2::BitVector &profile) const;

    /**
     * Exact per-bit post-correction error probability for data pattern
     * @p dataword (Fig. 4): index i holds P[post-correction error at data
     * bit i] under independent Bernoulli cell failures.
     */
    std::vector<double>
    perBitErrorProbability(const gf2::BitVector &dataword) const;

    /** Number of at-risk cells in the underlying fault model. */
    std::size_t numAtRiskCells() const { return cells_.size(); }

  private:
    /** Decode outcome of an arbitrary failing-cell mask (no feasibility
     *  check). */
    ErrorPatternOutcome computeOutcome(std::uint32_t mask) const;

    /** True iff some dataword charges exactly the cells that must fail
     *  (members of @p mask) while discharging at-risk cells that would
     *  otherwise fail deterministically (probability-1 cells outside
     *  @p mask). */
    bool feasible(std::uint32_t mask) const;

    const ecc::HammingCode &code_;
    const fault::WordFaultModel &faults_;
    std::vector<fault::CellFault> cells_;

    std::vector<ErrorPatternOutcome> outcomes_;
    gf2::BitVector directAtRisk_;
    gf2::BitVector indirectAtRisk_;
    gf2::BitVector postCorrectionAtRisk_;
};

} // namespace harp::core

#endif // HARP_CORE_AT_RISK_ANALYZER_HH
