/**
 * @file
 * Selection between the scalar and bit-sliced profiling-round engines.
 *
 * Both engines execute the exact same simulation — identical seed
 * derivation, RNG stream consumption and GF(2) arithmetic — so a
 * seed-fixed experiment produces byte-identical results under either.
 * The sliced engine simply retires 64 ECC words per word-op on the
 * encode/inject/decode hot path (see core/sliced_round_engine.hh).
 */

#ifndef HARP_CORE_ENGINE_KIND_HH
#define HARP_CORE_ENGINE_KIND_HH

#include <string>

namespace harp::core {

/** Profiling-round engine implementation. */
enum class EngineKind
{
    Scalar,   ///< One ECC word at a time (core/round_engine.hh).
    Sliced64, ///< 64 ECC words per lane-op (core/sliced_round_engine.hh).
};

/** Human-readable engine name ("scalar", "sliced64"). */
std::string engineKindName(EngineKind kind);

/** Parse an engine name; throws std::invalid_argument on bad input. */
EngineKind engineKindFromName(const std::string &name);

} // namespace harp::core

#endif // HARP_CORE_ENGINE_KIND_HH
