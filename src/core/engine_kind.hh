/**
 * @file
 * Selection between the scalar and bit-sliced profiling-round engines.
 *
 * All engines execute the exact same simulation — identical seed
 * derivation, RNG stream consumption and GF(2) arithmetic — so a
 * seed-fixed experiment produces byte-identical results under any of
 * them. The sliced engines simply retire 64 (sliced64) or 256
 * (sliced256, one AVX2 register per lane word) ECC words per word-op
 * on the encode/inject/decode hot path (core/sliced_round_engine.hh).
 */

#ifndef HARP_CORE_ENGINE_KIND_HH
#define HARP_CORE_ENGINE_KIND_HH

#include <string>

namespace harp::core {

/** Profiling-round engine implementation. */
enum class EngineKind
{
    Scalar,    ///< One ECC word at a time (core/round_engine.hh).
    Sliced64,  ///< 64 ECC words per lane-op (core/sliced_round_engine.hh).
    Sliced256, ///< 256 ECC words per lane-op (SlicedRoundEngineW<4>).
};

/** Human-readable engine name ("scalar", "sliced64", "sliced256"). */
std::string engineKindName(EngineKind kind);

/** Parse an engine name; throws std::invalid_argument on bad input. */
EngineKind engineKindFromName(const std::string &name);

} // namespace harp::core

#endif // HARP_CORE_ENGINE_KIND_HH
