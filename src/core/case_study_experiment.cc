#include "core/case_study_experiment.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/ordered_merger.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/at_risk_analyzer.hh"
#include "core/beep_profiler.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "core/sliced_round_engine.hh"
#include "ecc/hamming_code.hh"

namespace harp::core {

namespace {

/**
 * One Monte-Carlo sample of the case study: its own random code, fault
 * model, profiler set and per-round residual counters. Observation
 * logic is shared by both engines, so results are engine-independent.
 */
struct SampleSim
{
    SampleSim(const CaseStudyConfig &config, std::size_t n,
              std::size_t sample)
        : code([&] {
              common::Xoshiro256 code_rng(common::deriveSeed(
                  config.seed, {0xC0DEu, n, sample}));
              return ecc::HammingCode::randomSec(config.k, code_rng);
          }()),
          faults([&] {
              common::Xoshiro256 fault_rng(common::deriveSeed(
                  config.seed, {0xFA17u, n, sample}));
              return fault::WordFaultModel::makeUniformFixedCount(
                  code.n(), n, config.perBitProbability, fault_rng);
          }()),
          analyzer(code, faults),
          engineSeed(
              common::deriveSeed(config.seed, {0xE221u, n, sample}))
    {
        profilers.push_back(std::make_unique<NaiveProfiler>(code.k()));
        profilers.push_back(std::make_unique<BeepProfiler>(code));
        profilers.push_back(std::make_unique<HarpUProfiler>(code.k()));
        profilers.push_back(std::make_unique<HarpAProfiler>(code));
        for (auto &p : profilers)
            raw.push_back(p.get());
        localBefore.assign(profilers.size(),
                           std::vector<std::uint64_t>(config.rounds, 0));
        localAfter = localBefore;
    }

    /** Record residuals for all profilers after round index @p r. */
    void accumulateRound(std::size_t r)
    {
        for (std::size_t pi = 0; pi < raw.size(); ++pi) {
            const gf2::BitVector &ident = raw[pi]->identified();
            localBefore[pi][r] = analyzer.unidentifiedAtRisk(ident);
            localAfter[pi][r] = analyzer.unsafeBitsAfterReactive(ident);
        }
    }

    ecc::HammingCode code;
    fault::WordFaultModel faults;
    AtRiskAnalyzer analyzer;
    std::uint64_t engineSeed;
    std::vector<std::unique_ptr<Profiler>> profilers;
    std::vector<Profiler *> raw;
    std::vector<std::vector<std::uint64_t>> localBefore;
    std::vector<std::vector<std::uint64_t>> localAfter;
};

/** One finished task's samples plus their conditioned cell counts,
 *  deposited into the OrderedMerger for index-ordered aggregation. */
struct SampleBatch
{
    std::vector<std::unique_ptr<SampleSim>> sims;
    std::vector<std::size_t> simN;
};

/**
 * The sliced case-study path at lane width W: one task per block of up
 * to W*64 samples, batched straight across conditioned cell counts —
 * every sample has its own random code anyway; lanes only share k.
 * Per-sample seeds and outcomes are identical to the scalar path (and
 * across widths); only the batching differs.
 */
template <std::size_t W, typename MergeBatchFn>
void
runSlicedCaseStudy(const CaseStudyConfig &config, std::size_t max_n,
                   const MergeBatchFn &mergeBatch)
{
    constexpr std::size_t lanes = gf2::BitSliceW<W>::laneCount;
    const std::size_t total_samples = max_n * config.samplesPerCellCount;
    const std::size_t num_blocks = (total_samples + lanes - 1) / lanes;
    common::OrderedMerger<SampleBatch> merger(num_blocks);
    common::parallelFor(num_blocks, [&](std::size_t block) {
        const std::size_t begin = block * lanes;
        const std::size_t end = std::min(begin + lanes, total_samples);

        SampleBatch batch;
        std::vector<const ecc::HammingCode *> code_ptrs;
        std::vector<const fault::WordFaultModel *> fault_ptrs;
        std::vector<std::uint64_t> seeds;
        std::vector<std::vector<Profiler *>> lane_profilers;
        for (std::size_t g = begin; g < end; ++g) {
            const std::size_t n = 1 + g / config.samplesPerCellCount;
            const std::size_t sample = g % config.samplesPerCellCount;
            batch.sims.push_back(
                std::make_unique<SampleSim>(config, n, sample));
            batch.simN.push_back(n);
            code_ptrs.push_back(&batch.sims.back()->code);
            fault_ptrs.push_back(&batch.sims.back()->faults);
            seeds.push_back(batch.sims.back()->engineSeed);
            lane_profilers.push_back(batch.sims.back()->raw);
        }

        {
            // The engine's destructor flushes and detaches its lane
            // observer groups through raw Profiler pointers, so it
            // must die before deposit() hands the batch (and its
            // profilers) to a merger peer that may free them on
            // another thread.
            SlicedRoundEngineW<W> engine(code_ptrs, fault_ptrs,
                                         config.pattern, seeds);
            for (std::size_t r = 0; r < config.rounds; ++r) {
                engine.runRound(lane_profilers);
                for (auto &sim : batch.sims)
                    sim->accumulateRound(r);
            }
        }

        merger.deposit(block, std::move(batch), mergeBatch);
    }, config.threads);
}

} // namespace

double
binomialPmf(std::size_t n, std::size_t trials, double p)
{
    if (n > trials)
        return 0.0;
    // Log-space for numerical robustness at tiny p.
    double log_choose = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        log_choose += std::log(static_cast<double>(trials - i)) -
                      std::log(static_cast<double>(i + 1));
    }
    const double log_pmf =
        log_choose + static_cast<double>(n) * std::log(p) +
        static_cast<double>(trials - n) * std::log1p(-p);
    return std::exp(log_pmf);
}

CaseStudyResult
runCaseStudyExperiment(const CaseStudyConfig &config)
{
    CaseStudyResult result;
    result.config = config;
    result.profilerNames = {"Naive", "BEEP", "HARP-U", "HARP-A"};
    const std::size_t num_profilers = result.profilerNames.size();

    // Conditional sums: [profiler][cell count n][round] of (a) unidentified
    // post-correction at-risk bits and (b) unsafe bits after reactive
    // profiling, summed over Monte-Carlo samples.
    const std::size_t max_n = config.maxConditionedCells;
    std::vector<std::vector<std::vector<std::uint64_t>>> before_sum(
        num_profilers,
        std::vector<std::vector<std::uint64_t>>(
            max_n + 1, std::vector<std::uint64_t>(config.rounds, 0)));
    auto after_sum = before_sum;

    // Per-sample integer sums are order-insensitive, but the merges
    // still run through OrderedMerger in task index order so every
    // engine and thread count walks the aggregates identically.
    const auto mergeSample = [&](std::size_t n, const SampleSim &sim) {
        for (std::size_t pi = 0; pi < num_profilers; ++pi) {
            for (std::size_t r = 0; r < config.rounds; ++r) {
                before_sum[pi][n][r] += sim.localBefore[pi][r];
                after_sum[pi][n][r] += sim.localAfter[pi][r];
            }
        }
    };
    const auto mergeBatch = [&](const SampleBatch &batch) {
        for (std::size_t i = 0; i < batch.sims.size(); ++i)
            mergeSample(batch.simN[i], *batch.sims[i]);
    };

    if (config.engine == EngineKind::Scalar) {
        const std::size_t total_tasks =
            max_n * config.samplesPerCellCount;
        // The payload carries its own cell count: deposit() may drain
        // payloads from *other* tasks than the depositing one.
        using DonePair = std::pair<std::size_t, std::unique_ptr<SampleSim>>;
        common::OrderedMerger<DonePair> merger(total_tasks);
        common::parallelFor(total_tasks, [&](std::size_t task) {
            const std::size_t n = 1 + task / config.samplesPerCellCount;
            const std::size_t sample = task % config.samplesPerCellCount;

            auto sim = std::make_unique<SampleSim>(config, n, sample);
            {
                // Scoped like the sliced engines: the engine holds
                // references into *sim, which a merger peer may free
                // once deposited.
                RoundEngine engine(sim->code, sim->faults,
                                   config.pattern, sim->engineSeed);
                for (std::size_t r = 0; r < config.rounds; ++r) {
                    engine.runRound(sim->raw);
                    sim->accumulateRound(r);
                }
            }

            merger.deposit(task, DonePair(n, std::move(sim)),
                           [&](DonePair &done) {
                               mergeSample(done.first, *done.second);
                           });
        }, config.threads);
    } else if (config.engine == EngineKind::Sliced256) {
        runSlicedCaseStudy<4>(config, max_n, mergeBatch);
    } else {
        runSlicedCaseStudy<1>(config, max_n, mergeBatch);
    }

    // Mix the conditional expectations with Binomial weights.
    const std::size_t codeword_bits =
        config.k + ecc::HammingCode::minParityBits(config.k);
    const double samples =
        static_cast<double>(config.samplesPerCellCount);
    for (std::size_t pi = 0; pi < num_profilers; ++pi) {
        for (const double rber : config.rbers) {
            CaseStudySeries series;
            series.profiler = result.profilerNames[pi];
            series.rber = rber;
            series.berBefore.assign(config.rounds, 0.0);
            series.berAfter.assign(config.rounds, 0.0);
            for (std::size_t n = 1; n <= max_n; ++n) {
                const double weight =
                    binomialPmf(n, codeword_bits, rber);
                for (std::size_t r = 0; r < config.rounds; ++r) {
                    series.berBefore[r] +=
                        weight *
                        (static_cast<double>(before_sum[pi][n][r]) /
                         samples) /
                        static_cast<double>(config.k);
                    series.berAfter[r] +=
                        weight *
                        (static_cast<double>(after_sum[pi][n][r]) /
                         samples) /
                        static_cast<double>(config.k);
                }
            }
            result.series.push_back(std::move(series));
        }

        // First round with zero post-reactive residual across every
        // conditioned cell count (equivalently: mixture exactly zero).
        std::size_t first_zero = config.rounds + 1;
        for (std::size_t r = 0; r < config.rounds; ++r) {
            bool all_zero = true;
            for (std::size_t n = 1; n <= max_n && all_zero; ++n)
                all_zero = (after_sum[pi][n][r] == 0);
            if (all_zero) {
                first_zero = r + 1;
                break;
            }
        }
        result.roundsToZeroAfter.push_back(first_zero);
    }

    return result;
}

} // namespace harp::core
