/**
 * @file
 * Bit-sliced profiling-round engine: W*64 independent ECC words per
 * lane-operation.
 *
 * Drop-in sibling of core/round_engine.hh. Each lane simulates one ECC
 * word with its own fault model, data patterns and RNG streams —
 * derived from per-lane seeds with the *same* derivation constants as
 * the scalar RoundEngine, so every per-word outcome (written /
 * post-correction / raw data, and therefore every profiler's
 * identified set) is bit-identical to running W*64 scalar engines, at
 * any width. What changes is the cost: the encode -> inject ->
 * syndrome-decode datapath runs on transposed gf2::BitSliceW lanes,
 * retiring 64 (W=1) or 256 (W=4, one AVX2 register per lane word)
 * profiling rounds per word-op instead of one.
 *
 * The engine is code-agnostic: it drives any ecc::SlicedCodeW
 * implementation — sliced SEC Hamming (per-lane column arrangements
 * may differ) or sliced t-error BCH (memoized syndrome decoding) —
 * with convenience constructors for both families.
 *
 * Observation dispatch is per slot (slot s of every lane is driven
 * together):
 *
 *  - Slots whose profilers share a lane-native observe form
 *    (core/sliced_profiler_group.hh) never leave transposed layout —
 *    the slot consumes the suggested-pattern datapath slices directly,
 *    one XOR+OR per bit position for all W*64 words, and the post/raw
 *    scatters are elided entirely. Profile extraction transposes once
 *    on demand (reading identified() flushes), not once per round.
 *  - Crafting slots (BEEP, HARP-A+BEEP) keep the scalar path: per-lane
 *    dataword choice, a sliced datapath over the gathered lanes, one
 *    scatter pair, and per-lane virtual observe() calls.
 *  - Scalar slots that programmed the suggested pattern verbatim in
 *    every lane share a single suggested-datapath evaluation per round
 *    (common random numbers fix the trials within a round), with the
 *    post/raw scatters materialized lazily at most once per round.
 *
 * The Stats counters witness the elision (tests assert that pure
 * lane-native rounds perform zero scatters and zero scalar observes),
 * and an optional EnginePhaseSeconds sink splits wall time into
 * setup / datapath / observe phases for the perf experiments.
 */

#ifndef HARP_CORE_SLICED_ROUND_ENGINE_HH
#define HARP_CORE_SLICED_ROUND_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "core/data_pattern.hh"
#include "core/engine_phase.hh"
#include "core/profiler.hh"
#include "core/sliced_profiler_group.hh"
#include "ecc/bch_general.hh"
#include "ecc/hamming_code.hh"
#include "ecc/sliced_code.hh"
#include "fault/sliced_injector.hh"
#include "gf2/bit_slice.hh"
#include "gf2/lane.hh"

namespace harp::core {

/**
 * Executes profiling rounds for up to W*64 simulated ECC words at once.
 */
template <std::size_t W>
class SlicedRoundEngineW
{
  public:
    using Lane = gf2::LaneOf<W>;

    /**
     * Generic non-owning form over any sliced code block: @p code must
     * outlive the engine and may be *shared* by several engines (e.g.
     * consecutive blocks of one BCH workload amortizing one
     * syndrome-memo warm-up — but not concurrently; see
     * ecc/sliced_bch.hh, whose copies share the memo thread-safely).
     * The engine drives faults.size() lanes, which may be fewer than
     * code.lanes(): surplus code lanes stay zeroed by gather() and
     * cost nothing.
     *
     * @param code    The lanes' sliced ECC datapath.
     * @param faults  One fault model per live lane (word length n).
     * @param pattern Shared data-pattern policy for non-crafting
     *                profilers.
     * @param seeds   One seed per lane, used exactly as RoundEngine
     *                uses its seed (same child-stream derivation).
     */
    SlicedRoundEngineW(
        const ecc::SlicedCodeW<W> &code,
        const std::vector<const fault::WordFaultModel *> &faults,
        PatternKind pattern, const std::vector<std::uint64_t> &seeds);

    /** Owning form: like above, but the engine keeps the datapath
     *  alive; requires exactly one fault model per code lane. */
    SlicedRoundEngineW(
        std::unique_ptr<const ecc::SlicedCodeW<W>> code,
        const std::vector<const fault::WordFaultModel *> &faults,
        PatternKind pattern, const std::vector<std::uint64_t> &seeds);

    /** Convenience over SEC Hamming lanes (1..W*64, equal k; the
     *  arrangements may differ, so heterogeneous-code workloads like
     *  the Fig. 10 case study slice too). */
    SlicedRoundEngineW(
        const std::vector<const ecc::HammingCode *> &codes,
        const std::vector<const fault::WordFaultModel *> &faults,
        PatternKind pattern, const std::vector<std::uint64_t> &seeds);

    /** Convenience over t-error BCH lanes (1..W*64, all the same code
     *  function; decoded through the memoized sliced BCH datapath). */
    SlicedRoundEngineW(
        const std::vector<const ecc::BchCode *> &codes,
        const std::vector<const fault::WordFaultModel *> &faults,
        PatternKind pattern, const std::vector<std::uint64_t> &seeds);

    /** Destroying the engine flushes and detaches every lane-native
     *  observer group, so profiles read afterwards are complete. */
    ~SlicedRoundEngineW() = default;

    /** Number of live lanes (simulated words). */
    std::size_t lanes() const { return lanes_; }

    /** The sliced datapath driving these lanes (e.g.\ for memo-table
     *  statistics of a SlicedBchCode). */
    const ecc::SlicedCodeW<W> &slicedCode() const { return *code_; }

    /**
     * Run one profiling round for every lane.
     *
     * @param profilers profilers[w] is lane w's profiler set; every
     *                  lane must pass the same number of profilers
     *                  (slot s of every lane is driven together). Pass
     *                  the same sets every round — a change flushes
     *                  and rebuilds the lane-native observer groups.
     */
    void
    runRound(const std::vector<std::vector<Profiler *>> &profilers);

    /** Number of rounds executed so far. */
    std::size_t roundsRun() const { return round_; }

    /**
     * Observation-path instrumentation: witnesses that lane-native
     * slots really elide the per-round transposes and virtual calls.
     */
    struct Stats
    {
        /** Slot-rounds observed lane-natively (no scatter, no virtual
         *  observe). */
        std::uint64_t laneObserveSlotRounds = 0;
        /** Scalar observe() calls (crafting or mixed slots). */
        std::uint64_t scalarObserveCalls = 0;
        /** Scalar observe() calls skipped because the lane's read was
         *  clean and the profiler declared clean observes no-ops. */
        std::uint64_t cleanObserveSkips = 0;
        /** Post-correction slice scatters (k-position transposes). */
        std::uint64_t postScatters = 0;
        /** Raw (decode-bypass) slice scatters. */
        std::uint64_t rawScatters = 0;
        /** Suggested-pattern datapath evaluations (<= 1 per round). */
        std::uint64_t suggestedDatapathRuns = 0;
        /** Per-slot datapath evaluations for non-verbatim slots. */
        std::uint64_t mixedDatapathRuns = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Attach a per-phase wall-time sink (null disables; the default).
     *  See core/engine_phase.hh. */
    void setPhaseSink(EnginePhaseSeconds *sink) { phases_ = sink; }

    /** Flush every lane-native observer group's pending state into its
     *  profilers (reading identified() does this on demand; the engine
     *  destructor does it unconditionally). */
    void flushObservers();

  private:
    const ecc::SlicedCodeW<W> *code_;
    /** Set by the owning constructors; null when the caller shares the
     *  datapath across engines. */
    std::unique_ptr<const ecc::SlicedCodeW<W>> owned_;
    std::size_t lanes_;
    std::size_t k_;
    fault::SlicedCrnInjectorW<W> injector_;
    std::vector<PatternGenerator> patterns_;
    std::vector<common::Xoshiro256> crnRngs_;
    std::vector<common::Xoshiro256> profilerRngs_;

    /** (Re)build groups_ for @p profilers; cached until the passed
     *  profiler sets change identity. */
    void ensureGroups(const std::vector<std::vector<Profiler *>> &profilers);

    /** Run gather -> encode -> inject -> decode for one profiler
     *  slot's chosen datawords into the mixed-slot slices
     *  (written_/post_/received_); the caller scatters whatever the
     *  slot's observers actually read. */
    void runDatapath(const std::vector<gf2::BitVector> &written);

    /** Evaluate the suggested pattern's datapath into the dedicated
     *  suggested slices (sWritten_/sPost_/sReceived_), which stay
     *  valid for the rest of the round while mixed slots reuse the
     *  engine scratch. */
    void runSuggestedDatapath();

    // Round-persistent scratch: no allocations on the hot path.
    gf2::BitSliceW<W> written_;
    gf2::BitSliceW<W> stored_;
    gf2::BitSliceW<W> received_;
    gf2::BitSliceW<W> post_;
    /** Suggested-pattern datapath slices, computed at most once per
     *  round and consumed in transposed form by every lane-native slot
     *  (and scattered lazily for scalar verbatim slots). */
    gf2::BitSliceW<W> sWritten_;
    gf2::BitSliceW<W> sReceived_;
    gf2::BitSliceW<W> sPost_;
    /** Per-lane zero-copy views of the round's suggested pattern
     *  (PatternGenerator::patternView): consumed by the gather, the
     *  choose calls and verbatim observations without materializing
     *  per-round copies. */
    std::vector<const gf2::BitVector *> suggestedViews_;
    std::vector<gf2::BitVector> writtenVec_;
    std::vector<gf2::BitVector> postVec_;
    std::vector<gf2::BitVector> rawVec_;
    /** Scalar materialization of the suggested datapath outcome,
     *  scattered at most once per round and shared by every scalar
     *  slot that programs the suggested word verbatim (the CRN trials
     *  are fixed within a round, so those slots see identical
     *  observations). */
    std::vector<gf2::BitVector> postSuggestedVec_;
    std::vector<gf2::BitVector> rawSuggestedVec_;

    /** Lane-native observer per slot (null = scalar slot), cached for
     *  the profiler sets in groupedFor_. */
    std::vector<std::unique_ptr<SlicedProfilerGroupW<W>>> groups_;
    std::vector<std::vector<Profiler *>> groupedFor_;
    /** Per scalar slot: every lane's profiler declared clean observes
     *  no-ops, enabling the clean-lane elision. */
    std::vector<char> slotCleanNoOp_;
    /** Per slot: any lane's profiler reads the decode-bypass path
     *  (constant per profiler generation, cached off the hot path). */
    std::vector<char> slotNeedsRaw_;
    /** Instance ids of every scalar (group-less) slot's profilers,
     *  slot-major: the cached per-slot flags above are only valid for
     *  these exact instances, not merely these addresses (group slots
     *  detect generation changes via the group's abandoned() flag
     *  instead). */
    std::vector<std::uint64_t> scalarSlotIds_;
    /** Mask of live lanes (dead-lane slice bits are garbage). */
    Lane liveMask_{};

    Stats stats_;
    EnginePhaseSeconds *phases_ = nullptr;

    std::size_t round_ = 0;
};

/** The historical 64-lane name. */
using SlicedRoundEngine = SlicedRoundEngineW<1>;
/** The wide 256-lane variant. */
using SlicedRoundEngine256 = SlicedRoundEngineW<4>;

extern template class SlicedRoundEngineW<1>;
extern template class SlicedRoundEngineW<4>;

} // namespace harp::core

#endif // HARP_CORE_SLICED_ROUND_ENGINE_HH
