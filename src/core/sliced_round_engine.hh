/**
 * @file
 * Bit-sliced profiling-round engine: 64 independent ECC words per
 * lane-operation.
 *
 * Drop-in sibling of core/round_engine.hh. Each lane simulates one ECC
 * word with its own fault model, data patterns and RNG streams —
 * derived from per-lane seeds with the *same* derivation constants as
 * the scalar RoundEngine, so every per-word outcome (written /
 * post-correction / raw data, and therefore every profiler's
 * identified set) is bit-identical to running 64 scalar engines. What
 * changes is the cost: the encode -> inject -> syndrome-decode
 * datapath runs on transposed gf2::BitSlice64 lanes, retiring 64
 * profiling rounds per word-op instead of one.
 *
 * The engine is code-agnostic: it drives any ecc::SlicedCode
 * implementation — sliced SEC Hamming (per-lane column arrangements
 * may differ) or sliced t-error BCH (memoized syndrome decoding) —
 * with convenience constructors for both families.
 *
 * Profilers stay the ordinary per-word objects; the engine gathers
 * their chosen datawords into lanes, runs the sliced datapath, and
 * scatters the observations back (a pair of 64x64 bit transposes per
 * profiler slot per round).
 */

#ifndef HARP_CORE_SLICED_ROUND_ENGINE_HH
#define HARP_CORE_SLICED_ROUND_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "core/data_pattern.hh"
#include "core/profiler.hh"
#include "ecc/bch_general.hh"
#include "ecc/hamming_code.hh"
#include "ecc/sliced_code.hh"
#include "fault/sliced_injector.hh"
#include "gf2/bit_slice.hh"

namespace harp::core {

/**
 * Executes profiling rounds for up to 64 simulated ECC words at once.
 */
class SlicedRoundEngine
{
  public:
    /**
     * Generic non-owning form over any sliced code block: @p code must
     * outlive the engine and may be *shared* by several engines (e.g.
     * consecutive 64-word blocks of one BCH workload amortizing one
     * syndrome-memo warm-up — but not concurrently; see
     * ecc/sliced_bch.hh). The engine drives faults.size() lanes, which
     * may be fewer than code.lanes(): surplus code lanes stay zeroed
     * by gather() and cost nothing.
     *
     * @param code    The lanes' sliced ECC datapath.
     * @param faults  One fault model per live lane (word length n).
     * @param pattern Shared data-pattern policy for non-crafting
     *                profilers.
     * @param seeds   One seed per lane, used exactly as RoundEngine
     *                uses its seed (same child-stream derivation).
     */
    SlicedRoundEngine(const ecc::SlicedCode &code,
                      const std::vector<const fault::WordFaultModel *> &faults,
                      PatternKind pattern,
                      const std::vector<std::uint64_t> &seeds);

    /** Owning form: like above, but the engine keeps the datapath
     *  alive; requires exactly one fault model per code lane. */
    SlicedRoundEngine(std::unique_ptr<const ecc::SlicedCode> code,
                      const std::vector<const fault::WordFaultModel *> &faults,
                      PatternKind pattern,
                      const std::vector<std::uint64_t> &seeds);

    /** Convenience over SEC Hamming lanes (1..64, equal k; the
     *  arrangements may differ, so heterogeneous-code workloads like
     *  the Fig. 10 case study slice too). */
    SlicedRoundEngine(const std::vector<const ecc::HammingCode *> &codes,
                      const std::vector<const fault::WordFaultModel *> &faults,
                      PatternKind pattern,
                      const std::vector<std::uint64_t> &seeds);

    /** Convenience over t-error BCH lanes (1..64, all the same code
     *  function; decoded through the memoized sliced BCH datapath). */
    SlicedRoundEngine(const std::vector<const ecc::BchCode *> &codes,
                      const std::vector<const fault::WordFaultModel *> &faults,
                      PatternKind pattern,
                      const std::vector<std::uint64_t> &seeds);

    /** Number of live lanes (simulated words). */
    std::size_t lanes() const { return lanes_; }

    /** The sliced datapath driving these lanes (e.g.\ for memo-table
     *  statistics of a SlicedBchCode). */
    const ecc::SlicedCode &slicedCode() const { return *code_; }

    /**
     * Run one profiling round for every lane.
     *
     * @param profilers profilers[w] is lane w's profiler set; every
     *                  lane must pass the same number of profilers
     *                  (slot s of every lane is driven together).
     */
    void
    runRound(const std::vector<std::vector<Profiler *>> &profilers);

    /** Number of rounds executed so far. */
    std::size_t roundsRun() const { return round_; }

  private:
    const ecc::SlicedCode *code_;
    /** Set by the owning constructors; null when the caller shares the
     *  datapath across engines. */
    std::unique_ptr<const ecc::SlicedCode> owned_;
    std::size_t lanes_;
    std::size_t k_;
    fault::SlicedCrnInjector injector_;
    std::vector<PatternGenerator> patterns_;
    std::vector<common::Xoshiro256> crnRngs_;
    std::vector<common::Xoshiro256> profilerRngs_;

    /** Run gather -> encode -> inject -> decode -> scatter for one
     *  profiler slot's chosen datawords. @p need_raw skips the
     *  decode-bypass scatter when no observer of this datapath reads
     *  rawData (it then keeps its previous contents). */
    void runDatapath(const std::vector<gf2::BitVector> &written,
                     std::vector<gf2::BitVector> &post,
                     std::vector<gf2::BitVector> &raw, bool need_raw);

    // Round-persistent scratch: no allocations on the hot path.
    gf2::BitSlice64 written_;
    gf2::BitSlice64 stored_;
    gf2::BitSlice64 received_;
    gf2::BitSlice64 post_;
    std::vector<gf2::BitVector> suggestedVec_;
    std::vector<gf2::BitVector> writtenVec_;
    std::vector<gf2::BitVector> postVec_;
    std::vector<gf2::BitVector> rawVec_;
    /** Datapath outcome of the *suggested* pattern, computed at most
     *  once per round and shared by every profiler slot that programs
     *  the suggested word verbatim (the CRN trials are fixed within a
     *  round, so those slots see identical observations). */
    std::vector<gf2::BitVector> postSuggestedVec_;
    std::vector<gf2::BitVector> rawSuggestedVec_;

    std::size_t round_ = 0;
};

} // namespace harp::core

#endif // HARP_CORE_SLICED_ROUND_ENGINE_HH
