/**
 * @file
 * Repair-granularity storage-waste model (HARP Fig. 2).
 *
 * When single-bit errors are repaired at granularity g (a whole g-bit
 * block is sacrificed whenever it contains at least one erroneous bit),
 * the expected fraction of total capacity wasted on non-erroneous bits is
 *
 *     E[waste] = (1 - (1 - p)^g) - p
 *
 * where p is the raw bit error rate: the first term is the probability a
 * block is repaired at all, the second subtracts the truly erroneous bits
 * (which are not "wasted"). Bit-granularity repair (g = 1) wastes nothing.
 */

#ifndef HARP_CORE_WASTE_MODEL_HH
#define HARP_CORE_WASTE_MODEL_HH

#include <cstddef>

#include "common/rng.hh"

namespace harp::core {

/** Closed-form expected wasted-capacity fraction. */
double expectedWastedFraction(std::size_t granularity, double rber);

/**
 * Monte-Carlo estimate of the wasted-capacity fraction, for cross-checking
 * the closed form: simulates @p blocks independent g-bit blocks with
 * uniform-random single-bit errors.
 */
double simulateWastedFraction(std::size_t granularity, double rber,
                              std::size_t blocks, common::Xoshiro256 &rng);

} // namespace harp::core

#endif // HARP_CORE_WASTE_MODEL_HH
