/**
 * @file
 * Optional per-phase wall-time accounting shared by the scalar and
 * bit-sliced profiling-round engines.
 *
 * A profiling round decomposes into three phases:
 *  - setup:    data-pattern generation, common-random-number draws and
 *              profiler dataword choice;
 *  - datapath: encode -> inject -> decode (gathers included on the
 *              sliced engine);
 *  - observe:  everything that feeds profiler state — lane-observation
 *              passes, post/raw scatters and scalar observe() calls.
 *
 * Engines accumulate into an EnginePhaseSeconds sink only when one is
 * attached (setPhaseSink); the default null sink keeps the hot path
 * free of clock reads, so headline throughput numbers are never
 * contaminated by the instrumentation (runner/specs_perf.cc measures
 * the phase split in a separate instrumented repetition).
 */

#ifndef HARP_CORE_ENGINE_PHASE_HH
#define HARP_CORE_ENGINE_PHASE_HH

#include <chrono>

namespace harp::core {

/** Accumulated wall seconds per profiling-round phase. */
struct EnginePhaseSeconds
{
    double setup = 0.0;
    double datapath = 0.0;
    double observe = 0.0;

    double total() const { return setup + datapath + observe; }

    EnginePhaseSeconds &operator+=(const EnginePhaseSeconds &o)
    {
        setup += o.setup;
        datapath += o.datapath;
        observe += o.observe;
        return *this;
    }
};

/**
 * Scoped accumulator: adds the elapsed wall time between construction
 * and destruction to @p *field, or does nothing (and reads no clock)
 * when @p field is null.
 */
class PhaseScope
{
  public:
    explicit PhaseScope(double *field)
        : field_(field)
    {
        if (field_ != nullptr)
            start_ = std::chrono::steady_clock::now();
    }

    ~PhaseScope()
    {
        if (field_ != nullptr)
            *field_ += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    double *field_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace harp::core

#endif // HARP_CORE_ENGINE_PHASE_HH
