#include "core/data_pattern.hh"

#include <stdexcept>

namespace harp::core {

std::string
patternKindName(PatternKind kind)
{
    switch (kind) {
      case PatternKind::Random:
        return "random";
      case PatternKind::Charged:
        return "charged";
      case PatternKind::Checkered:
        return "checkered";
    }
    return "unknown";
}

PatternKind
patternKindFromName(const std::string &name)
{
    if (name == "random")
        return PatternKind::Random;
    if (name == "charged")
        return PatternKind::Charged;
    if (name == "checkered")
        return PatternKind::Checkered;
    throw std::invalid_argument("unknown pattern kind: " + name);
}

PatternGenerator::PatternGenerator(PatternKind kind, std::size_t k,
                                   std::uint64_t seed)
    : kind_(kind), k_(k), rng_(seed), base_(k)
{
    switch (kind_) {
      case PatternKind::Random:
        // Base refreshed lazily in pattern().
        break;
      case PatternKind::Charged:
        base_.fill(true);
        break;
      case PatternKind::Checkered:
        for (std::size_t i = 0; i < k_; ++i)
            base_.set(i, (i % 2) == 0);
        break;
    }
}

gf2::BitVector
PatternGenerator::pattern(std::size_t round)
{
    gf2::BitVector out;
    patternInto(round, out);
    return out;
}

} // namespace harp::core
