#include "core/naive_profiler.hh"

namespace harp::core {

NaiveProfiler::NaiveProfiler(std::size_t k)
    : Profiler(k)
{
}

void
NaiveProfiler::observe(const RoundObservation &obs)
{
    // Every mismatch between the programmed and post-correction data is a
    // post-correction error at that bit: mark it at-risk.
    scratchA_ = obs.writtenData;
    scratchA_ ^= obs.postCorrectionData;
    identified_ |= scratchA_;
}

} // namespace harp::core
