/**
 * @file
 * Post-correction error-probability distribution experiment (HARP
 * Fig. 4): for a fixed charged data pattern (0xFF), how the per-bit
 * probability of post-correction error is distributed across at-risk bits
 * as the number of injected pre-correction at-risk cells grows from 2 to
 * 8, over many randomly generated parity-check matrices.
 */

#ifndef HARP_CORE_FIG4_EXPERIMENT_HH
#define HARP_CORE_FIG4_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace harp::core {

/** Configuration of the Fig. 4 sweep. */
struct Fig4Config
{
    std::size_t k = 64;
    std::size_t numCodes = 40;
    std::size_t wordsPerCode = 40;
    std::size_t minPreCorrectionErrors = 2;
    std::size_t maxPreCorrectionErrors = 8;
    /** Per-bit failure probability of the injected at-risk cells. */
    double perBitProbability = 0.5;
    std::uint64_t seed = 1;
    std::size_t threads = 0;
};

/** Distribution summary for one pre-correction error count. */
struct Fig4Row
{
    std::size_t numPreCorrectionErrors = 0;
    /** Per-bit post-correction error probabilities of every at-risk bit
     *  with nonzero probability under the charged pattern. */
    common::PercentileTracker postCorrection;
    /** Per-bit pre-correction probabilities (all equal by construction;
     *  the Fig. 4 reference series). */
    common::PercentileTracker preCorrection;
};

/** Full result of the sweep. */
struct Fig4Result
{
    Fig4Config config;
    std::vector<Fig4Row> rows;
};

/** Run the sweep. */
Fig4Result runFig4Experiment(const Fig4Config &config);

} // namespace harp::core

#endif // HARP_CORE_FIG4_EXPERIMENT_HH
