#include "core/round_engine.hh"

#include <stdexcept>

namespace harp::core {

namespace {

/** Reject a null codec before the member initializers dereference it. */
std::unique_ptr<const ecc::WordCodec>
requireCodec(std::unique_ptr<const ecc::WordCodec> codec)
{
    if (codec == nullptr)
        throw std::invalid_argument("RoundEngine: null codec");
    return codec;
}

} // namespace

RoundEngine::RoundEngine(std::unique_ptr<const ecc::WordCodec> codec,
                         const fault::WordFaultModel &faults,
                         PatternKind pattern, std::uint64_t seed)
    : codec_(requireCodec(std::move(codec))),
      faults_(faults),
      patterns_(pattern, codec_->k(),
                common::deriveSeed(seed, {0x9A77E2u})),
      crnRng_(common::deriveSeed(seed, {0xC28Bu})),
      profilerRng_(common::deriveSeed(seed, {0x9120F1u})),
      stored_(codec_->n()),
      received_(codec_->n()),
      post_(codec_->k()),
      raw_(codec_->k())
{
}

RoundEngine::RoundEngine(const ecc::HammingCode &code,
                         const fault::WordFaultModel &faults,
                         PatternKind pattern, std::uint64_t seed)
    : RoundEngine(std::make_unique<ecc::HammingWordCodec>(code), faults,
                  pattern, seed)
{
}

RoundEngine::RoundEngine(const ecc::BchCode &code,
                         const fault::WordFaultModel &faults,
                         PatternKind pattern, std::uint64_t seed)
    : RoundEngine(std::make_unique<ecc::BchWordCodec>(code), faults,
                  pattern, seed)
{
}

void
RoundEngine::runRound(const std::vector<Profiler *> &profilers)
{
    double *const ph_setup = phases_ ? &phases_->setup : nullptr;
    double *const ph_datapath = phases_ ? &phases_->datapath : nullptr;
    double *const ph_observe = phases_ ? &phases_->observe : nullptr;

    {
        PhaseScope t(ph_setup);
        patterns_.patternInto(round_, suggested_);
        // One shared uniform variate per at-risk cell (common random
        // numbers).
        uniforms_.resize(faults_.numFaults());
        for (double &u : uniforms_)
            u = crnRng_.nextDouble();
    }

    for (Profiler *profiler : profilers) {
        bool verbatim;
        {
            PhaseScope t(ph_setup);
            verbatim = profiler->chooseDatawordInto(
                round_, suggested_, profilerRng_, written_);
        }
        const gf2::BitVector &written = verbatim ? suggested_ : written_;
        {
            PhaseScope t(ph_datapath);
            codec_->encodeInto(written, stored_);
            received_.assignPrefix(stored_);
            received_ ^= faults_.injectErrorsCrn(stored_, uniforms_);

            codec_->decodeDataInto(received_, post_);
            raw_.assignPrefix(received_);
        }

        PhaseScope t(ph_observe);
        const RoundObservation obs{round_, written, post_, raw_};
        profiler->observe(obs);
    }
    ++round_;
}

} // namespace harp::core
