#include "core/round_engine.hh"

namespace harp::core {

RoundEngine::RoundEngine(const ecc::HammingCode &code,
                         const fault::WordFaultModel &faults,
                         PatternKind pattern, std::uint64_t seed)
    : code_(code),
      faults_(faults),
      patterns_(pattern, code.k(),
                common::deriveSeed(seed, {0x9A77E2u})),
      crnRng_(common::deriveSeed(seed, {0xC28Bu})),
      profilerRng_(common::deriveSeed(seed, {0x9120F1u}))
{
}

void
RoundEngine::runRound(const std::vector<Profiler *> &profilers)
{
    patterns_.patternInto(round_, suggested_);

    // One shared uniform variate per at-risk cell (common random numbers).
    uniforms_.resize(faults_.numFaults());
    for (double &u : uniforms_)
        u = crnRng_.nextDouble();

    for (Profiler *profiler : profilers) {
        const bool verbatim = profiler->chooseDatawordInto(
            round_, suggested_, profilerRng_, written_);
        const gf2::BitVector &written = verbatim ? suggested_ : written_;
        const gf2::BitVector stored = code_.encode(written);
        gf2::BitVector received = stored;
        received ^= faults_.injectErrorsCrn(stored, uniforms_);

        const ecc::DecodeResult decoded = code_.decode(received);
        const gf2::BitVector raw = received.slice(0, code_.k());

        const RoundObservation obs{round_, written, decoded.dataword, raw};
        profiler->observe(obs);
    }
    ++round_;
}

} // namespace harp::core
