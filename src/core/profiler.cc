#include "core/profiler.hh"

#include <atomic>

namespace harp::core {

namespace {

/** Monotonic instance-id source; profilers of concurrent experiment
 *  tasks construct in parallel, hence atomic. */
std::atomic<std::uint64_t> nextProfilerId{1};

} // namespace

Profiler::Profiler(std::size_t k)
    : k_(k),
      identified_(k),
      instanceId_(nextProfilerId.fetch_add(1, std::memory_order_relaxed))
{
}

Profiler::~Profiler()
{
    // Unregister from a still-attached group so it never flushes into a
    // dead object (the group flushes the pending lane state first, which
    // keeps the surviving sibling lanes consistent).
    if (laneGroup_ != nullptr) {
        laneGroup_->forget(this);
        laneGroup_ = nullptr;
    }
}

void
Profiler::syncLaneState() const
{
    laneGroup_->flushIfDirty();
}

gf2::BitVector
Profiler::chooseDataword(std::size_t round, const gf2::BitVector &suggested,
                         common::Xoshiro256 &rng)
{
    (void)round;
    (void)rng;
    return suggested;
}

bool
Profiler::chooseDatawordInto(std::size_t round,
                             const gf2::BitVector &suggested,
                             common::Xoshiro256 &rng, gf2::BitVector &out)
{
    out = chooseDataword(round, suggested, rng);
    return false;
}

} // namespace harp::core
