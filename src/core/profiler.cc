#include "core/profiler.hh"

namespace harp::core {

Profiler::Profiler(std::size_t k)
    : k_(k), identified_(k)
{
}

gf2::BitVector
Profiler::chooseDataword(std::size_t round, const gf2::BitVector &suggested,
                         common::Xoshiro256 &rng)
{
    (void)round;
    (void)rng;
    return suggested;
}

bool
Profiler::chooseDatawordInto(std::size_t round,
                             const gf2::BitVector &suggested,
                             common::Xoshiro256 &rng, gf2::BitVector &out)
{
    out = chooseDataword(round, suggested, rng);
    return false;
}

} // namespace harp::core
