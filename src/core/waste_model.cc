#include "core/waste_model.hh"

#include <cmath>

namespace harp::core {

double
expectedWastedFraction(std::size_t granularity, double rber)
{
    // Bit-granularity repair sacrifices only truly erroneous bits: zero
    // waste by definition (avoids pow() rounding near p).
    if (granularity <= 1)
        return 0.0;
    const double g = static_cast<double>(granularity);
    const double p_repair = 1.0 - std::pow(1.0 - rber, g);
    return p_repair - rber;
}

double
simulateWastedFraction(std::size_t granularity, double rber,
                       std::size_t blocks, common::Xoshiro256 &rng)
{
    std::size_t wasted_bits = 0;
    const std::size_t total_bits = granularity * blocks;
    for (std::size_t b = 0; b < blocks; ++b) {
        std::size_t errors = 0;
        for (std::size_t i = 0; i < granularity; ++i)
            if (rng.nextBernoulli(rber))
                ++errors;
        if (errors > 0)
            wasted_bits += granularity - errors;
    }
    return static_cast<double>(wasted_bits) /
           static_cast<double>(total_bits);
}

} // namespace harp::core
