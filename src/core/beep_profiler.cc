#include "core/beep_profiler.hh"

#include <bit>

#include "gf2/linear_solver.hh"

namespace harp::core {

BeepProfiler::BeepProfiler(const ecc::HammingCode &code)
    : Profiler(code.k()), code_(code)
{
}

void
BeepProfiler::addSuspectedCell(std::size_t codeword_position)
{
    suspected_.insert(codeword_position);
    observedAnyError_ = true;
}

std::optional<gf2::BitVector>
BeepProfiler::craftPattern(std::size_t probe) const
{
    gf2::ConstraintSystem cs(k_);
    std::vector<bool> targeted(code_.n(), false);
    auto charge = [&](std::size_t cell) {
        targeted[cell] = true;
        if (code_.isDataPosition(cell)) {
            cs.pinVariable(cell, true);
        } else {
            cs.addConstraint(code_.parityRow(cell - k_), true);
        }
    };
    for (const std::size_t cell : suspected_)
        charge(cell);
    charge(probe);
    // Discharge all remaining data cells so that any direct error observed
    // this round is attributable to the targeted set. Parity cells outside
    // the target set float (their charge is whatever the solve implies).
    for (std::size_t i = 0; i < k_; ++i)
        if (!targeted[i])
            cs.pinVariable(i, false);
    return cs.solveAny();
}

gf2::BitVector
BeepProfiler::chooseDataword(std::size_t round,
                             const gf2::BitVector &suggested,
                             common::Xoshiro256 &rng)
{
    (void)rng;
    (void)round;
    // Bootstrap phase: random patterns until the first confirmed error.
    if (!observedAnyError_ || suspected_.empty())
        return suggested;

    // Probe phase: cycle through non-suspected codeword positions and
    // craft a pattern for the first feasible probe target.
    const std::size_t n = code_.n();
    for (std::size_t attempt = 0; attempt < n; ++attempt) {
        const std::size_t probe = probeCursor_;
        probeCursor_ = (probeCursor_ + 1) % n;
        if (suspected_.count(probe) > 0)
            continue;
        if (auto crafted = craftPattern(probe))
            return *crafted;
    }
    return suggested;
}

void
BeepProfiler::observe(const RoundObservation &obs)
{
    gf2::BitVector diff = obs.writtenData;
    diff ^= obs.postCorrectionData;
    if (diff.isZero())
        return;
    observedAnyError_ = true;
    identified_ |= diff;
    // Every observed post-correction error position becomes a suspected
    // pre-correction at-risk cell. Some of these are actually indirect
    // errors (miscorrections); charging them in later patterns is merely
    // wasteful, not harmful.
    diff.forEachSetBit([&](std::size_t pos) { suspected_.insert(pos); });
    precomputeFromSuspects();
}

void
BeepProfiler::precomputeFromSuspects()
{
    // BEEP knows H, so (like HARP-A) it can compute the miscorrection
    // target of every uncorrectable combination of suspected cells and
    // pre-add those bits to its profile.
    const std::vector<std::size_t> cells(suspected_.begin(),
                                         suspected_.end());
    const std::size_t m = cells.size();
    constexpr std::size_t enum_limit = 16;
    auto consider = [&](std::uint32_t syndrome) {
        const auto target = code_.syndromeToPosition(syndrome);
        if (target && code_.isDataPosition(*target))
            identified_.set(*target, true);
    };
    if (m <= enum_limit) {
        for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << m);
             ++mask) {
            if (std::popcount(mask) < 2)
                continue;
            std::uint32_t syndrome = 0;
            for (std::size_t i = 0; i < m; ++i)
                if ((mask >> i) & 1)
                    syndrome ^= code_.codewordColumn(cells[i]);
            consider(syndrome);
        }
        return;
    }
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = i + 1; j < m; ++j)
            consider(code_.codewordColumn(cells[i]) ^
                     code_.codewordColumn(cells[j]));
}

} // namespace harp::core
