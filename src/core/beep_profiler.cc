#include "core/beep_profiler.hh"

#include <bit>

#include "common/bits.hh"

namespace harp::core {

BeepProfiler::BeepProfiler(const ecc::HammingCode &code)
    : Profiler(code.k()), code_(code), suspectedMask_(code.n()),
      reach1_(common::wordsFor(std::size_t{1} << code.p()), 0),
      reach2_(common::wordsFor(std::size_t{1} << code.p()), 0)
{
}

void
BeepProfiler::addSuspectedCell(std::size_t codeword_position)
{
    if (!suspectedMask_.get(codeword_position)) {
        suspectedMask_.set(codeword_position, true);
        suspected_.insert(codeword_position);
        ++suspectsVersion_;
        pendingColumns_.push_back(code_.codewordColumn(codeword_position));
    }
    observedAnyError_ = true;
}

gf2::BitVector
BeepProfiler::chooseDataword(std::size_t round,
                             const gf2::BitVector &suggested,
                             common::Xoshiro256 &rng)
{
    gf2::BitVector out;
    if (chooseDatawordInto(round, suggested, rng, out))
        return suggested;
    return out;
}

bool
BeepProfiler::chooseDatawordInto(std::size_t round,
                                 const gf2::BitVector &suggested,
                                 common::Xoshiro256 &rng,
                                 gf2::BitVector &out)
{
    (void)rng;
    (void)round;
    (void)suggested;
    // Bootstrap phase: random patterns until the first confirmed error.
    if (!observedAnyError_ || suspected_.empty())
        return true;

    // Probe phase: cycle through non-suspected codeword positions and
    // craft a pattern for the first feasible probe target. Crafts are
    // pure functions of (suspect set, probe) — the shared base word
    // plus precomputed per-probe feasibility masks, rebuilt only when
    // the suspect set grows.
    const std::size_t n = code_.n();
    if (craftCacheVersion_ != suspectsVersion_ ||
        craftBase_.size() != k_) {
        rebuildCraftMasks();
        craftCacheVersion_ = suspectsVersion_;
    }
    for (std::size_t attempt = 0; attempt < n; ++attempt) {
        const std::size_t probe = probeCursor_;
        probeCursor_ = (probeCursor_ + 1) % n;
        if (suspectedMask_.get(probe))
            continue;
        if (probe < k_) {
            if (!craftFeasData_.get(probe))
                continue;
            out = craftBase_;
            out.set(probe, true);
            return false;
        }
        if (!craftFeasParity_.get(probe - k_))
            continue;
        out = craftBase_;
        return false;
    }
    return true;
}

void
BeepProfiler::rebuildCraftMasks()
{
    const std::size_t p = code_.n() - k_;
    if (craftBase_.size() != k_) {
        craftBase_ = gf2::BitVector(k_);
        craftFeasData_ = gf2::BitVector(k_);
        craftFeasParity_ = gf2::BitVector(p);
    } else {
        craftBase_.fill(false);
    }
    for (const std::size_t cell : suspected_)
        if (code_.isDataPosition(cell))
            craftBase_.set(cell, true);

    // Data probe i is feasible iff every parity suspect c stays
    // charged: parityRow(c-k) . (base ^ e_i) = dot(base) ^ row[i]
    // must be 1, so each parity suspect ANDs row or its complement.
    craftFeasData_.fill(true);
    bool all_parity_ok = true;
    for (const std::size_t cell : suspected_) {
        if (code_.isDataPosition(cell))
            continue;
        const gf2::BitVector &row = code_.parityRow(cell - k_);
        if (row.dot(craftBase_)) {
            craftFeasData_.andNot(row);
        } else {
            all_parity_ok = false;
            craftFeasData_ &= row;
        }
    }

    // Parity probe k+j programs the base word itself; it is feasible
    // iff the base already charges every parity suspect and cell k+j.
    craftFeasParity_.fill(false);
    if (all_parity_ok)
        for (std::size_t j = 0; j < p; ++j)
            if (code_.parityRow(j).dot(craftBase_))
                craftFeasParity_.set(j, true);
}

void
BeepProfiler::observe(const RoundObservation &obs)
{
    // One fused pass computes the mismatch and detects the clean-read
    // common case (nothing to learn).
    if (!scratchA_.assignXor(obs.writtenData, obs.postCorrectionData))
        return;
    observedAnyError_ = true;
    identified_ |= scratchA_;
    // Every observed post-correction error position becomes a suspected
    // pre-correction at-risk cell. Some of these are actually indirect
    // errors (miscorrections); charging them in later patterns is merely
    // wasteful, not harmful.
    scratchA_.forEachSetBit(
        [&](std::size_t pos) { addSuspectedCell(pos); });
    precomputeIfSuspectsChanged();
}

void
BeepProfiler::precomputeIfSuspectsChanged()
{
    if (precomputedVersion_ == suspectsVersion_)
        return;
    precomputedVersion_ = suspectsVersion_;
    precomputeFromSuspects();
}

void
BeepProfiler::precomputeFromSuspects()
{
    // BEEP knows H, so (like HARP-A) it can compute the miscorrection
    // target of every uncorrectable combination of suspected cells and
    // pre-add those bits to its profile. The XORs of all suspect
    // subsets of size >= 2 live in the 2^p syndrome space and are
    // maintained incrementally: folding in a new column v adds v to
    // every size>=2 subset (reach2 ^ v) and forms new pairs from every
    // single column (reach1 ^ v).
    const auto shiftXorInto = [](const std::vector<std::uint64_t> &from,
                                 std::uint32_t v,
                                 std::vector<std::uint64_t> &into) {
        for (std::size_t w = 0; w < from.size(); ++w) {
            std::uint64_t word = from[w];
            while (word != 0) {
                const std::uint32_t t = static_cast<std::uint32_t>(
                    w * common::wordBits +
                    static_cast<std::size_t>(std::countr_zero(word)));
                word &= word - 1;
                const std::uint32_t shifted = t ^ v;
                into[common::wordIndex(shifted)] |=
                    std::uint64_t{1} << common::bitOffset(shifted);
            }
        }
    };
    std::vector<std::uint64_t> snapshot;
    for (const std::uint32_t v : pendingColumns_) {
        snapshot = reach2_;
        shiftXorInto(snapshot, v, reach2_);
        shiftXorInto(reach1_, v, reach2_);
        reach1_[common::wordIndex(v)] |= std::uint64_t{1}
                                         << common::bitOffset(v);
    }
    pendingColumns_.clear();

    // Mark the data-position decode target of every achievable
    // uncorrectable syndrome.
    for (std::size_t w = 0; w < reach2_.size(); ++w) {
        std::uint64_t word = reach2_[w];
        while (word != 0) {
            const std::uint32_t syndrome = static_cast<std::uint32_t>(
                w * common::wordBits +
                static_cast<std::size_t>(std::countr_zero(word)));
            word &= word - 1;
            const auto target = code_.syndromeToPosition(syndrome);
            if (target && code_.isDataPosition(*target))
                identified_.set(*target, true);
        }
    }
}

} // namespace harp::core
