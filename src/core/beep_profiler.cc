#include "core/beep_profiler.hh"

#include <bit>

#include "common/bits.hh"

namespace harp::core {

BeepProfiler::BeepProfiler(const ecc::HammingCode &code)
    : Profiler(code.k()), code_(code), suspectedMask_(code.n()),
      reach1_(common::wordsFor(std::size_t{1} << code.p()), 0),
      reach2_(common::wordsFor(std::size_t{1} << code.p()), 0)
{
}

void
BeepProfiler::addSuspectedCell(std::size_t codeword_position)
{
    if (!suspectedMask_.get(codeword_position)) {
        suspectedMask_.set(codeword_position, true);
        suspected_.insert(codeword_position);
        ++suspectsVersion_;
        pendingColumns_.push_back(code_.codewordColumn(codeword_position));
    }
    observedAnyError_ = true;
}

std::optional<gf2::BitVector>
BeepProfiler::craftPattern(std::size_t probe) const
{
    // Every data cell's charge is pinned — suspects and a data probe
    // are charged, all other data cells discharged — so the crafted
    // word is fully determined and "solving" reduces to evaluating the
    // feasibility of the targeted parity cells: parity cell j stores
    // parityRow(j) . d, which must be 1 (charged) for parity-region
    // targets. (Parity cells outside the target set float.)
    gf2::BitVector dataword(k_);
    for (const std::size_t cell : suspected_)
        if (code_.isDataPosition(cell))
            dataword.set(cell, true);
    if (code_.isDataPosition(probe))
        dataword.set(probe, true);

    for (const std::size_t cell : suspected_)
        if (!code_.isDataPosition(cell) &&
            !code_.parityRow(cell - k_).dot(dataword))
            return std::nullopt;
    if (!code_.isDataPosition(probe) &&
        !code_.parityRow(probe - k_).dot(dataword))
        return std::nullopt;
    return dataword;
}

gf2::BitVector
BeepProfiler::chooseDataword(std::size_t round,
                             const gf2::BitVector &suggested,
                             common::Xoshiro256 &rng)
{
    gf2::BitVector out;
    if (chooseDatawordInto(round, suggested, rng, out))
        return suggested;
    return out;
}

bool
BeepProfiler::chooseDatawordInto(std::size_t round,
                                 const gf2::BitVector &suggested,
                                 common::Xoshiro256 &rng,
                                 gf2::BitVector &out)
{
    (void)rng;
    (void)round;
    (void)suggested;
    // Bootstrap phase: random patterns until the first confirmed error.
    if (!observedAnyError_ || suspected_.empty())
        return true;

    // Probe phase: cycle through non-suspected codeword positions and
    // craft a pattern for the first feasible probe target. Crafts are
    // pure functions of (suspect set, probe), so they are cached until
    // the suspect set grows.
    const std::size_t n = code_.n();
    if (craftCacheVersion_ != suspectsVersion_ || craftCache_.size() != n) {
        craftCache_.assign(n, std::nullopt);
        craftCacheVersion_ = suspectsVersion_;
    }
    for (std::size_t attempt = 0; attempt < n; ++attempt) {
        const std::size_t probe = probeCursor_;
        probeCursor_ = (probeCursor_ + 1) % n;
        if (suspectedMask_.get(probe))
            continue;
        if (!craftCache_[probe].has_value())
            craftCache_[probe] = craftPattern(probe);
        if (const auto &crafted = *craftCache_[probe]) {
            out = *crafted;
            return false;
        }
    }
    return true;
}

void
BeepProfiler::observe(const RoundObservation &obs)
{
    scratchA_ = obs.writtenData;
    scratchA_ ^= obs.postCorrectionData;
    if (scratchA_.isZero())
        return;
    observedAnyError_ = true;
    identified_ |= scratchA_;
    // Every observed post-correction error position becomes a suspected
    // pre-correction at-risk cell. Some of these are actually indirect
    // errors (miscorrections); charging them in later patterns is merely
    // wasteful, not harmful.
    scratchA_.forEachSetBit(
        [&](std::size_t pos) { addSuspectedCell(pos); });
    precomputeIfSuspectsChanged();
}

void
BeepProfiler::precomputeIfSuspectsChanged()
{
    if (precomputedVersion_ == suspectsVersion_)
        return;
    precomputedVersion_ = suspectsVersion_;
    precomputeFromSuspects();
}

void
BeepProfiler::precomputeFromSuspects()
{
    // BEEP knows H, so (like HARP-A) it can compute the miscorrection
    // target of every uncorrectable combination of suspected cells and
    // pre-add those bits to its profile. The XORs of all suspect
    // subsets of size >= 2 live in the 2^p syndrome space and are
    // maintained incrementally: folding in a new column v adds v to
    // every size>=2 subset (reach2 ^ v) and forms new pairs from every
    // single column (reach1 ^ v).
    const auto shiftXorInto = [](const std::vector<std::uint64_t> &from,
                                 std::uint32_t v,
                                 std::vector<std::uint64_t> &into) {
        for (std::size_t w = 0; w < from.size(); ++w) {
            std::uint64_t word = from[w];
            while (word != 0) {
                const std::uint32_t t = static_cast<std::uint32_t>(
                    w * common::wordBits +
                    static_cast<std::size_t>(std::countr_zero(word)));
                word &= word - 1;
                const std::uint32_t shifted = t ^ v;
                into[common::wordIndex(shifted)] |=
                    std::uint64_t{1} << common::bitOffset(shifted);
            }
        }
    };
    std::vector<std::uint64_t> snapshot;
    for (const std::uint32_t v : pendingColumns_) {
        snapshot = reach2_;
        shiftXorInto(snapshot, v, reach2_);
        shiftXorInto(reach1_, v, reach2_);
        reach1_[common::wordIndex(v)] |= std::uint64_t{1}
                                         << common::bitOffset(v);
    }
    pendingColumns_.clear();

    // Mark the data-position decode target of every achievable
    // uncorrectable syndrome.
    for (std::size_t w = 0; w < reach2_.size(); ++w) {
        std::uint64_t word = reach2_[w];
        while (word != 0) {
            const std::uint32_t syndrome = static_cast<std::uint32_t>(
                w * common::wordBits +
                static_cast<std::size_t>(std::countr_zero(word)));
            word &= word - 1;
            const auto target = code_.syndromeToPosition(syndrome);
            if (target && code_.isDataPosition(*target))
                identified_.set(*target, true);
        }
    }
}

} // namespace harp::core
