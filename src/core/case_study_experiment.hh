/**
 * @file
 * DRAM data-retention case study (HARP section 7.4, Fig. 10): bit error
 * rate of a system with an ideal bit-repair mechanism, before and after
 * reactive profiling with a single-error-correcting secondary ECC.
 *
 * BERs at realistic retention RBERs (1e-4..1e-8) are far below what direct
 * sampling can resolve, so the experiment is semi-analytic: it conditions
 * on the number of at-risk cells per word n ~ Binomial(k+p, RBER),
 * Monte-Carlo-simulates profiling for each n, and mixes the conditional
 * expectations with the Binomial weights (DESIGN.md, substitution 5).
 */

#ifndef HARP_CORE_CASE_STUDY_EXPERIMENT_HH
#define HARP_CORE_CASE_STUDY_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/data_pattern.hh"
#include "core/engine_kind.hh"

namespace harp::core {

/** Configuration of one case-study facet (one per-bit probability). */
struct CaseStudyConfig
{
    std::size_t k = 64;
    /** Per-bit failure probability of at-risk cells (facet). */
    double perBitProbability = 0.5;
    /** Raw bit error rates to report (line series in Fig. 10). */
    std::vector<double> rbers = {1e-4, 1e-6, 1e-8};
    /** Largest conditioned at-risk-cell count; Binomial tail beyond this
     *  is negligible for the evaluated RBERs. */
    std::size_t maxConditionedCells = 5;
    /** Monte-Carlo samples (code, word) per conditioned cell count. */
    std::size_t samplesPerCellCount = 24;
    std::size_t rounds = 128;
    PatternKind pattern = PatternKind::Random;
    std::uint64_t seed = 1;
    std::size_t threads = 0;
    /**
     * Profiling-round engine; bit-identical results either way. The
     * sliced engine batches samples of one conditioned cell count into
     * 64-lane blocks even though every sample has its own random code
     * (lanes need only share the dataword length k).
     */
    EngineKind engine = EngineKind::Sliced64;
};

/** One profiler's BER curves for one RBER. */
struct CaseStudySeries
{
    std::string profiler;
    double rber = 0.0;
    /** Per round: expected BER before reactive profiling (Fig. 10 left). */
    std::vector<double> berBefore;
    /** Per round: expected BER after reactive profiling (Fig. 10 right). */
    std::vector<double> berAfter;
};

/** Full case-study result for one facet. */
struct CaseStudyResult
{
    CaseStudyConfig config;
    std::vector<CaseStudySeries> series;
    /**
     * Per profiler (Naive, BEEP, HARP-U, HARP-A): 1-based first round at
     * which the post-reactive BER reaches exactly zero, or rounds+1 when
     * it never does. RBER-independent (the Binomial mixture is zero iff
     * every conditional expectation is zero). The paper's headline "3.7x
     * faster than Naive at p=0.75" is Naive's value divided by HARP's.
     */
    std::vector<std::string> profilerNames;
    std::vector<std::size_t> roundsToZeroAfter;
};

/** Binomial(n; trials, p) probability mass. */
double binomialPmf(std::size_t n, std::size_t trials, double p);

/** Run one case-study facet. */
CaseStudyResult runCaseStudyExperiment(const CaseStudyConfig &config);

} // namespace harp::core

#endif // HARP_CORE_CASE_STUDY_EXPERIMENT_HH
