/**
 * @file
 * Round-based profiling engine for one ECC word.
 *
 * Drives any number of profilers through identical profiling rounds with
 * common random numbers: each round draws one uniform variate per at-risk
 * cell, and a cell fails for a given profiler iff it is charged under that
 * profiler's pattern and the shared variate is below the cell's failure
 * probability. This realizes the paper's fairness requirement (section
 * 7.1.2: "the exact same set of ECC words, pre-correction error patterns,
 * and data patterns") even though profilers may write different patterns.
 */

#ifndef HARP_CORE_ROUND_ENGINE_HH
#define HARP_CORE_ROUND_ENGINE_HH

#include <vector>

#include "common/rng.hh"
#include "core/data_pattern.hh"
#include "core/profiler.hh"
#include "ecc/hamming_code.hh"
#include "fault/fault_model.hh"

namespace harp::core {

/**
 * Executes profiling rounds for a set of profilers over one simulated
 * ECC word.
 */
class RoundEngine
{
  public:
    /**
     * @param code    The word's on-die ECC code.
     * @param faults  The word's fault model.
     * @param pattern Shared data-pattern policy for non-crafting profilers.
     * @param seed    Seed for patterns, common random numbers, and
     *                profiler-private randomness.
     */
    RoundEngine(const ecc::HammingCode &code,
                const fault::WordFaultModel &faults, PatternKind pattern,
                std::uint64_t seed);

    /** Run one profiling round for every profiler in @p profilers. */
    void runRound(const std::vector<Profiler *> &profilers);

    /** Number of rounds executed so far. */
    std::size_t roundsRun() const { return round_; }

  private:
    const ecc::HammingCode &code_;
    const fault::WordFaultModel &faults_;
    PatternGenerator patterns_;
    common::Xoshiro256 crnRng_;
    common::Xoshiro256 profilerRng_;
    // Round-persistent scratch (capacity reused across rounds).
    gf2::BitVector suggested_;
    gf2::BitVector written_;
    std::vector<double> uniforms_;
    std::size_t round_ = 0;
};

} // namespace harp::core

#endif // HARP_CORE_ROUND_ENGINE_HH
