/**
 * @file
 * Round-based profiling engine for one ECC word.
 *
 * Drives any number of profilers through identical profiling rounds with
 * common random numbers: each round draws one uniform variate per at-risk
 * cell, and a cell fails for a given profiler iff it is charged under that
 * profiler's pattern and the shared variate is below the cell's failure
 * probability. This realizes the paper's fairness requirement (section
 * 7.1.2: "the exact same set of ECC words, pre-correction error patterns,
 * and data patterns") even though profilers may write different patterns.
 *
 * The engine is code-agnostic: it drives any ecc::WordCodec (SEC
 * Hamming or general t-error BCH out of the box), with convenience
 * constructors for the concrete code classes. The encode/decode hot
 * path runs on reused member scratch — no per-round allocation beyond
 * the fault model's error-mask sample.
 */

#ifndef HARP_CORE_ROUND_ENGINE_HH
#define HARP_CORE_ROUND_ENGINE_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "core/data_pattern.hh"
#include "core/engine_phase.hh"
#include "core/profiler.hh"
#include "ecc/bch_general.hh"
#include "ecc/hamming_code.hh"
#include "ecc/word_codec.hh"
#include "fault/fault_model.hh"

namespace harp::core {

/**
 * Executes profiling rounds for a set of profilers over one simulated
 * ECC word.
 */
class RoundEngine
{
  public:
    /**
     * @param codec   The word's on-die ECC code, behind the scalar
     *                codec interface (the engine takes ownership of
     *                the adapter; the underlying code must outlive the
     *                engine).
     * @param faults  The word's fault model.
     * @param pattern Shared data-pattern policy for non-crafting profilers.
     * @param seed    Seed for patterns, common random numbers, and
     *                profiler-private randomness.
     */
    RoundEngine(std::unique_ptr<const ecc::WordCodec> codec,
                const fault::WordFaultModel &faults, PatternKind pattern,
                std::uint64_t seed);

    /** Convenience over a SEC Hamming word. */
    RoundEngine(const ecc::HammingCode &code,
                const fault::WordFaultModel &faults, PatternKind pattern,
                std::uint64_t seed);

    /** Convenience over a general t-error BCH word. */
    RoundEngine(const ecc::BchCode &code,
                const fault::WordFaultModel &faults, PatternKind pattern,
                std::uint64_t seed);

    /** Run one profiling round for every profiler in @p profilers. */
    void runRound(const std::vector<Profiler *> &profilers);

    /** Number of rounds executed so far. */
    std::size_t roundsRun() const { return round_; }

    /** Attach a per-phase wall-time sink (null disables; the default).
     *  See core/engine_phase.hh. */
    void setPhaseSink(EnginePhaseSeconds *sink) { phases_ = sink; }

  private:
    std::unique_ptr<const ecc::WordCodec> codec_;
    const fault::WordFaultModel &faults_;
    PatternGenerator patterns_;
    common::Xoshiro256 crnRng_;
    common::Xoshiro256 profilerRng_;
    // Round-persistent scratch (capacity reused across rounds).
    gf2::BitVector suggested_;
    gf2::BitVector written_;
    gf2::BitVector stored_;
    gf2::BitVector received_;
    gf2::BitVector post_;
    gf2::BitVector raw_;
    std::vector<double> uniforms_;
    EnginePhaseSeconds *phases_ = nullptr;
    std::size_t round_ = 0;
};

} // namespace harp::core

#endif // HARP_CORE_ROUND_ENGINE_HH
