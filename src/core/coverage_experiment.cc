#include "core/coverage_experiment.hh"

#include <algorithm>
#include <memory>

#include "common/ordered_merger.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/at_risk_analyzer.hh"
#include "core/beep_profiler.hh"
#include "core/harp_a_beep_profiler.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "core/sliced_round_engine.hh"
#include "ecc/hamming_code.hh"

namespace harp::core {

namespace {

/** Per-word scratch results for one profiler, merged under a mutex. */
struct WordStats
{
    std::vector<std::uint64_t> directIdentified;
    std::vector<std::uint64_t> indirectMissed;
    std::vector<std::uint64_t> falsePositives;
    double bootstrapRound = 0.0;
    std::int64_t maxSimulFinal = 0;
    std::array<double, maxTrackedBound> roundsToBound{};
};

std::size_t
countIntersection(const gf2::BitVector &a, const gf2::BitVector &b)
{
    gf2::BitVector tmp = a;
    tmp &= b;
    return tmp.popcount();
}

/**
 * Everything one simulated ECC word carries through a coverage run:
 * ground truth, profiler set, and per-round statistics. Both engines
 * drive words through the identical observation code, so their merged
 * aggregates are byte-identical for a fixed seed.
 */
struct WordSim
{
    WordSim(const CoverageConfig &config, const ecc::HammingCode &code,
            std::uint64_t fault_seed)
        : faults(makeFaults(config, code, fault_seed)),
          analyzer(code, faults)
    {
        profilers.push_back(std::make_unique<NaiveProfiler>(code.k()));
        profilers.push_back(std::make_unique<BeepProfiler>(code));
        profilers.push_back(std::make_unique<HarpUProfiler>(code.k()));
        profilers.push_back(std::make_unique<HarpAProfiler>(code));
        if (config.includeHarpABeep)
            profilers.push_back(std::make_unique<HarpABeepProfiler>(code));
        raw.reserve(profilers.size());
        for (auto &p : profilers)
            raw.push_back(p.get());

        directTotal = analyzer.directAtRisk().popcount();
        indirectTotal = analyzer.indirectAtRisk().popcount();
        anyGt = analyzer.directAtRisk();
        anyGt |= analyzer.indirectAtRisk();

        stats.resize(profilers.size());
        for (auto &s : stats) {
            s.directIdentified.assign(config.rounds, 0);
            s.indirectMissed.assign(config.rounds, 0);
            s.falsePositives.assign(config.rounds, 0);
            s.bootstrapRound = static_cast<double>(config.rounds + 1);
            for (auto &r : s.roundsToBound)
                r = static_cast<double>(config.rounds + 1);
        }

        // Check the "0 rounds of profiling" bound state first.
        const gf2::BitVector empty_profile(code.k());
        const std::size_t initial_max =
            analyzer.maxSimultaneousErrors(empty_profile);
        for (auto &s : stats)
            for (std::size_t x = 1; x <= maxTrackedBound; ++x)
                if (initial_max <= x)
                    s.roundsToBound[x - 1] = 0.0;
    }

    static fault::WordFaultModel makeFaults(const CoverageConfig &config,
                                            const ecc::HammingCode &code,
                                            std::uint64_t fault_seed)
    {
        common::Xoshiro256 fault_rng(fault_seed);
        return fault::WordFaultModel::makeUniformFixedCount(
            code.n(), config.numPreCorrectionErrors,
            config.perBitProbability, fault_rng);
    }

    /** Record every profiler's state after round index @p r. */
    void accumulateRound(const CoverageConfig &config, std::size_t r)
    {
        const gf2::BitVector &direct_gt = analyzer.directAtRisk();
        const gf2::BitVector &indirect_gt = analyzer.indirectAtRisk();
        for (std::size_t pi = 0; pi < raw.size(); ++pi) {
            const gf2::BitVector &ident = raw[pi]->identified();
            const std::size_t direct_found =
                countIntersection(ident, direct_gt);
            const std::size_t indirect_found =
                countIntersection(ident, indirect_gt);
            stats[pi].directIdentified[r] = direct_found;
            stats[pi].indirectMissed[r] = indirectTotal - indirect_found;
            stats[pi].falsePositives[r] =
                ident.popcount() - countIntersection(ident, anyGt);
            if (direct_found > 0 &&
                stats[pi].bootstrapRound >
                    static_cast<double>(config.rounds)) {
                stats[pi].bootstrapRound = static_cast<double>(r + 1);
            }
            const std::size_t max_simul =
                analyzer.maxSimultaneousErrors(ident);
            for (std::size_t x = 1; x <= maxTrackedBound; ++x) {
                if (max_simul <= x &&
                    stats[pi].roundsToBound[x - 1] >
                        static_cast<double>(config.rounds)) {
                    stats[pi].roundsToBound[x - 1] =
                        static_cast<double>(r + 1);
                }
            }
            if (r + 1 == config.rounds) {
                stats[pi].maxSimulFinal =
                    static_cast<std::int64_t>(max_simul);
            }
        }
    }

    /** Merge into the experiment aggregates; caller holds the mutex. */
    void merge(const CoverageConfig &config, CoverageResult &result) const
    {
        result.totalDirectAtRisk += directTotal;
        result.totalIndirectAtRisk += indirectTotal;
        result.numWords += 1;
        for (std::size_t pi = 0; pi < stats.size(); ++pi) {
            ProfilerAggregate &agg = result.profilers[pi];
            for (std::size_t r = 0; r < config.rounds; ++r) {
                agg.directIdentifiedSum[r] +=
                    stats[pi].directIdentified[r];
                agg.indirectMissedSum[r] += stats[pi].indirectMissed[r];
                agg.falsePositiveSum[r] += stats[pi].falsePositives[r];
            }
            agg.bootstrapRounds.add(stats[pi].bootstrapRound);
            agg.maxSimultaneousFinal.add(stats[pi].maxSimulFinal);
            for (std::size_t x = 0; x < maxTrackedBound; ++x)
                agg.roundsToBound[x].add(stats[pi].roundsToBound[x]);
        }
    }

    fault::WordFaultModel faults;
    AtRiskAnalyzer analyzer;
    std::vector<std::unique_ptr<Profiler>> profilers;
    std::vector<Profiler *> raw;
    gf2::BitVector anyGt;
    std::size_t directTotal = 0;
    std::size_t indirectTotal = 0;
    std::vector<WordStats> stats;
};

using common::OrderedMerger;

/**
 * The sliced coverage path at lane width W: one task per block of up
 * to W*64 words, batched straight across code boundaries — lanes
 * carry their own code, so blocks stay full even when wordsPerCode is
 * small. Word-level seeds and outcomes are identical to the scalar
 * path (and across widths); only the batching differs.
 */
template <std::size_t W>
void
runSlicedCoverage(const CoverageConfig &config, CoverageResult &result)
{
    const auto codeSeed = [&](std::size_t code_idx) {
        return common::deriveSeed(config.seed, {0xC0DEu, code_idx});
    };
    const auto faultSeed = [&](std::size_t code_idx, std::size_t word_idx) {
        return common::deriveSeed(config.seed,
                                  {0xFA17u, code_idx, word_idx});
    };
    const auto engineSeed = [&](std::size_t code_idx,
                                std::size_t word_idx) {
        return common::deriveSeed(config.seed,
                                  {0xE221u, code_idx, word_idx});
    };

    constexpr std::size_t sliceLanes = gf2::BitSliceW<W>::laneCount;
    const std::size_t total_words = config.numCodes * config.wordsPerCode;
    const std::size_t num_blocks =
        (total_words + sliceLanes - 1) / sliceLanes;
    using BlockSims = std::vector<std::unique_ptr<WordSim>>;
    OrderedMerger<BlockSims> merger(num_blocks);
    common::parallelFor(num_blocks, [&](std::size_t block) {
        const std::size_t begin = block * sliceLanes;
        const std::size_t end =
            std::min(begin + sliceLanes, total_words);

        // Materialize each code once per block (global word indices are
        // consecutive, so words of one code are contiguous).
        std::vector<std::unique_ptr<ecc::HammingCode>> codes;
        std::size_t built_code_idx = config.numCodes; // sentinel
        BlockSims words;
        std::vector<const ecc::HammingCode *> code_ptrs;
        std::vector<const fault::WordFaultModel *> fault_ptrs;
        std::vector<std::uint64_t> seeds;
        std::vector<std::vector<Profiler *>> lane_profilers;
        for (std::size_t g = begin; g < end; ++g) {
            const std::size_t code_idx = g / config.wordsPerCode;
            const std::size_t word_idx = g % config.wordsPerCode;
            if (code_idx != built_code_idx) {
                common::Xoshiro256 code_rng(codeSeed(code_idx));
                codes.push_back(std::make_unique<ecc::HammingCode>(
                    ecc::HammingCode::randomSec(config.k, code_rng)));
                built_code_idx = code_idx;
            }
            const ecc::HammingCode &code = *codes.back();
            words.push_back(std::make_unique<WordSim>(
                config, code, faultSeed(code_idx, word_idx)));
            code_ptrs.push_back(&code);
            fault_ptrs.push_back(&words.back()->faults);
            seeds.push_back(engineSeed(code_idx, word_idx));
            lane_profilers.push_back(words.back()->raw);
        }

        {
            // The engine's destructor flushes and detaches its lane
            // observer groups through raw Profiler pointers, so it
            // must die before deposit() hands the words (and their
            // profilers) to a merger peer that may free them on
            // another thread.
            SlicedRoundEngineW<W> engine(code_ptrs, fault_ptrs,
                                         config.pattern, seeds);
            for (std::size_t r = 0; r < config.rounds; ++r) {
                engine.runRound(lane_profilers);
                for (auto &word : words)
                    word->accumulateRound(config, r);
            }
        }

        merger.deposit(block, std::move(words), [&](BlockSims &sims) {
            for (const auto &word : sims)
                word->merge(config, result);
        });
    }, config.threads);
}

} // namespace

double
CoverageResult::directCoverage(std::size_t profiler, std::size_t r) const
{
    if (totalDirectAtRisk == 0)
        return 1.0;
    return static_cast<double>(
               profilers[profiler].directIdentifiedSum[r]) /
           static_cast<double>(totalDirectAtRisk);
}

double
CoverageResult::missedIndirectPerWord(std::size_t profiler,
                                      std::size_t r) const
{
    if (numWords == 0)
        return 0.0;
    return static_cast<double>(profilers[profiler].indirectMissedSum[r]) /
           static_cast<double>(numWords);
}

CoverageResult
runCoverageExperiment(const CoverageConfig &config)
{
    CoverageResult result;
    result.config = config;

    std::vector<std::string> names = {"Naive", "BEEP", "HARP-U", "HARP-A"};
    if (config.includeHarpABeep)
        names.push_back("HARP-A+BEEP");

    for (const std::string &name : names) {
        ProfilerAggregate agg;
        agg.name = name;
        agg.directIdentifiedSum.assign(config.rounds, 0);
        agg.indirectMissedSum.assign(config.rounds, 0);
        agg.falsePositiveSum.assign(config.rounds, 0);
        result.profilers.push_back(std::move(agg));
    }

    // Deterministic per-word streams, independent of scheduling and of
    // the engine: the sliced paths derive the exact same code, fault
    // and engine seeds per (code_idx, word_idx) as the scalar path,
    // and every path merges task results in task index order (see
    // OrderedMerger), so output bytes are fixed by the seed alone —
    // not by thread count, engine, or completion order.
    const auto codeSeed = [&](std::size_t code_idx) {
        return common::deriveSeed(config.seed, {0xC0DEu, code_idx});
    };
    const auto faultSeed = [&](std::size_t code_idx, std::size_t word_idx) {
        return common::deriveSeed(config.seed,
                                  {0xFA17u, code_idx, word_idx});
    };
    const auto engineSeed = [&](std::size_t code_idx,
                                std::size_t word_idx) {
        return common::deriveSeed(config.seed,
                                  {0xE221u, code_idx, word_idx});
    };

    if (config.engine == EngineKind::Scalar) {
        const std::size_t total_tasks =
            config.numCodes * config.wordsPerCode;
        OrderedMerger<std::unique_ptr<WordSim>> merger(total_tasks);
        common::parallelFor(total_tasks, [&](std::size_t task) {
            const std::size_t code_idx = task / config.wordsPerCode;
            const std::size_t word_idx = task % config.wordsPerCode;

            common::Xoshiro256 code_rng(codeSeed(code_idx));
            const ecc::HammingCode code =
                ecc::HammingCode::randomSec(config.k, code_rng);
            auto word = std::make_unique<WordSim>(
                config, code, faultSeed(code_idx, word_idx));

            {
                // Scoped like the sliced engines: the engine holds a
                // reference into *word, which a merger peer may free
                // once deposited.
                RoundEngine engine(code, word->faults, config.pattern,
                                   engineSeed(code_idx, word_idx));
                for (std::size_t r = 0; r < config.rounds; ++r) {
                    engine.runRound(word->raw);
                    word->accumulateRound(config, r);
                }
            }

            merger.deposit(task, std::move(word),
                           [&](std::unique_ptr<WordSim> &sim) {
                               sim->merge(config, result);
                           });
        }, config.threads);
        return result;
    }

    if (config.engine == EngineKind::Sliced256)
        runSlicedCoverage<4>(config, result);
    else
        runSlicedCoverage<1>(config, result);

    return result;
}

} // namespace harp::core
