#include "core/coverage_experiment.hh"

#include <memory>
#include <mutex>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/at_risk_analyzer.hh"
#include "core/beep_profiler.hh"
#include "core/harp_a_beep_profiler.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "ecc/hamming_code.hh"

namespace harp::core {

namespace {

/** Per-word scratch results for one profiler, merged under a mutex. */
struct WordStats
{
    std::vector<std::uint64_t> directIdentified;
    std::vector<std::uint64_t> indirectMissed;
    std::vector<std::uint64_t> falsePositives;
    double bootstrapRound = 0.0;
    std::int64_t maxSimulFinal = 0;
    std::array<double, maxTrackedBound> roundsToBound{};
};

std::size_t
countIntersection(const gf2::BitVector &a, const gf2::BitVector &b)
{
    gf2::BitVector tmp = a;
    tmp &= b;
    return tmp.popcount();
}

} // namespace

double
CoverageResult::directCoverage(std::size_t profiler, std::size_t r) const
{
    if (totalDirectAtRisk == 0)
        return 1.0;
    return static_cast<double>(
               profilers[profiler].directIdentifiedSum[r]) /
           static_cast<double>(totalDirectAtRisk);
}

double
CoverageResult::missedIndirectPerWord(std::size_t profiler,
                                      std::size_t r) const
{
    if (numWords == 0)
        return 0.0;
    return static_cast<double>(profilers[profiler].indirectMissedSum[r]) /
           static_cast<double>(numWords);
}

CoverageResult
runCoverageExperiment(const CoverageConfig &config)
{
    CoverageResult result;
    result.config = config;

    std::vector<std::string> names = {"Naive", "BEEP", "HARP-U", "HARP-A"};
    if (config.includeHarpABeep)
        names.push_back("HARP-A+BEEP");

    for (const std::string &name : names) {
        ProfilerAggregate agg;
        agg.name = name;
        agg.directIdentifiedSum.assign(config.rounds, 0);
        agg.indirectMissedSum.assign(config.rounds, 0);
        agg.falsePositiveSum.assign(config.rounds, 0);
        result.profilers.push_back(std::move(agg));
    }

    std::mutex merge_mutex;
    const std::size_t total_tasks = config.numCodes * config.wordsPerCode;

    common::parallelFor(total_tasks, [&](std::size_t task) {
        const std::size_t code_idx = task / config.wordsPerCode;
        const std::size_t word_idx = task % config.wordsPerCode;

        // Deterministic per-task streams, independent of scheduling.
        common::Xoshiro256 code_rng(
            common::deriveSeed(config.seed, {0xC0DEu, code_idx}));
        const ecc::HammingCode code =
            ecc::HammingCode::randomSec(config.k, code_rng);

        common::Xoshiro256 fault_rng(common::deriveSeed(
            config.seed, {0xFA17u, code_idx, word_idx}));
        const fault::WordFaultModel faults =
            fault::WordFaultModel::makeUniformFixedCount(
                code.n(), config.numPreCorrectionErrors,
                config.perBitProbability, fault_rng);

        const AtRiskAnalyzer analyzer(code, faults);
        const gf2::BitVector &direct_gt = analyzer.directAtRisk();
        const gf2::BitVector &indirect_gt = analyzer.indirectAtRisk();
        gf2::BitVector any_gt = direct_gt;
        any_gt |= indirect_gt;
        const std::size_t direct_total = direct_gt.popcount();
        const std::size_t indirect_total = indirect_gt.popcount();

        // Instantiate the profiler set (order matches `names`).
        std::vector<std::unique_ptr<Profiler>> profilers;
        profilers.push_back(std::make_unique<NaiveProfiler>(code.k()));
        profilers.push_back(std::make_unique<BeepProfiler>(code));
        profilers.push_back(std::make_unique<HarpUProfiler>(code.k()));
        profilers.push_back(std::make_unique<HarpAProfiler>(code));
        if (config.includeHarpABeep)
            profilers.push_back(
                std::make_unique<HarpABeepProfiler>(code));

        std::vector<Profiler *> raw;
        raw.reserve(profilers.size());
        for (auto &p : profilers)
            raw.push_back(p.get());

        RoundEngine engine(code, faults, config.pattern,
                           common::deriveSeed(config.seed,
                                              {0xE221u, code_idx,
                                               word_idx}));

        std::vector<WordStats> stats(profilers.size());
        for (auto &s : stats) {
            s.directIdentified.assign(config.rounds, 0);
            s.indirectMissed.assign(config.rounds, 0);
            s.falsePositives.assign(config.rounds, 0);
            s.bootstrapRound =
                static_cast<double>(config.rounds + 1);
            for (auto &r : s.roundsToBound)
                r = static_cast<double>(config.rounds + 1);
        }

        // Check the "0 rounds of profiling" bound state first.
        const gf2::BitVector empty_profile(code.k());
        const std::size_t initial_max =
            analyzer.maxSimultaneousErrors(empty_profile);
        for (auto &s : stats)
            for (std::size_t x = 1; x <= maxTrackedBound; ++x)
                if (initial_max <= x)
                    s.roundsToBound[x - 1] = 0.0;

        for (std::size_t r = 0; r < config.rounds; ++r) {
            engine.runRound(raw);
            for (std::size_t pi = 0; pi < raw.size(); ++pi) {
                const gf2::BitVector &ident = raw[pi]->identified();
                const std::size_t direct_found =
                    countIntersection(ident, direct_gt);
                const std::size_t indirect_found =
                    countIntersection(ident, indirect_gt);
                stats[pi].directIdentified[r] = direct_found;
                stats[pi].indirectMissed[r] =
                    indirect_total - indirect_found;
                stats[pi].falsePositives[r] =
                    ident.popcount() - countIntersection(ident, any_gt);
                if (direct_found > 0 &&
                    stats[pi].bootstrapRound >
                        static_cast<double>(config.rounds)) {
                    stats[pi].bootstrapRound =
                        static_cast<double>(r + 1);
                }
                const std::size_t max_simul =
                    analyzer.maxSimultaneousErrors(ident);
                for (std::size_t x = 1; x <= maxTrackedBound; ++x) {
                    if (max_simul <= x &&
                        stats[pi].roundsToBound[x - 1] >
                            static_cast<double>(config.rounds)) {
                        stats[pi].roundsToBound[x - 1] =
                            static_cast<double>(r + 1);
                    }
                }
                if (r + 1 == config.rounds) {
                    stats[pi].maxSimulFinal =
                        static_cast<std::int64_t>(max_simul);
                }
            }
        }

        std::lock_guard<std::mutex> lock(merge_mutex);
        result.totalDirectAtRisk += direct_total;
        result.totalIndirectAtRisk += indirect_total;
        result.numWords += 1;
        for (std::size_t pi = 0; pi < stats.size(); ++pi) {
            ProfilerAggregate &agg = result.profilers[pi];
            for (std::size_t r = 0; r < config.rounds; ++r) {
                agg.directIdentifiedSum[r] +=
                    stats[pi].directIdentified[r];
                agg.indirectMissedSum[r] += stats[pi].indirectMissed[r];
                agg.falsePositiveSum[r] += stats[pi].falsePositives[r];
            }
            agg.bootstrapRounds.add(stats[pi].bootstrapRound);
            agg.maxSimultaneousFinal.add(stats[pi].maxSimulFinal);
            for (std::size_t x = 0; x < maxTrackedBound; ++x)
                agg.roundsToBound[x].add(stats[pi].roundsToBound[x]);
        }
    }, config.threads);

    return result;
}

} // namespace harp::core
