#include "core/engine_kind.hh"

#include <stdexcept>

namespace harp::core {

std::string
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Scalar:
        return "scalar";
      case EngineKind::Sliced64:
        return "sliced64";
      case EngineKind::Sliced256:
        return "sliced256";
    }
    return "unknown";
}

EngineKind
engineKindFromName(const std::string &name)
{
    if (name == "scalar")
        return EngineKind::Scalar;
    if (name == "sliced64")
        return EngineKind::Sliced64;
    if (name == "sliced256")
        return EngineKind::Sliced256;
    throw std::invalid_argument("unknown engine kind: " + name);
}

} // namespace harp::core
