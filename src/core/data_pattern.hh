/**
 * @file
 * Memory data patterns used by active profiling rounds (HARP sections 6.2
 * and 7.1.2).
 *
 * The paper evaluates three patterns:
 *  - random:    a fresh random dataword every two rounds, inverted on the
 *               second round of each pair;
 *  - charged:   all '1's (0xFF), every cell of the data region charged;
 *  - checkered: alternating 0/1, inverted every other round.
 */

#ifndef HARP_CORE_DATA_PATTERN_HH
#define HARP_CORE_DATA_PATTERN_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "gf2/bit_vector.hh"

namespace harp::core {

/** Data-pattern policy for active profiling. */
enum class PatternKind
{
    Random,    ///< Random base pattern, inverted on odd rounds.
    Charged,   ///< All ones (0xFF...), every round.
    Checkered, ///< 0101... base pattern, inverted on odd rounds.
};

/** Human-readable pattern name ("random", "charged", "checkered"). */
std::string patternKindName(PatternKind kind);

/** Parse a pattern name; throws std::invalid_argument on bad input. */
PatternKind patternKindFromName(const std::string &name);

/**
 * Deterministic per-round dataword generator implementing the paper's
 * pattern schedule. Round indices are 0-based.
 */
class PatternGenerator
{
  public:
    /**
     * @param kind Pattern policy.
     * @param k    Dataword length.
     * @param seed Seed for the random policy's base patterns.
     */
    PatternGenerator(PatternKind kind, std::size_t k, std::uint64_t seed);

    PatternKind kind() const { return kind_; }

    /** Dataword for round @p round. Must be called with non-decreasing
     *  round numbers (the random policy advances its stream). */
    gf2::BitVector pattern(std::size_t round);

    /**
     * Allocation-free variant of pattern(): writes the round's
     * dataword into @p out (assigned/resized as needed), consuming the
     * same RNG stream. Inline: both engines call it once per simulated
     * word per round.
     */
    void patternInto(std::size_t round, gf2::BitVector &out)
    {
        advance(round);
        out = base_;
        // Charged stays all-ones; random/checkered invert on odd
        // rounds.
        if (kind_ != PatternKind::Charged && round % 2 == 1)
            for (std::size_t w = 0; w < base_.words().size(); ++w)
                out.setWord(w, ~base_.words()[w]);
    }

    /**
     * Zero-copy variant: advances the identical RNG stream and returns
     * a reference to the round's dataword — the base for even rounds,
     * its cached inverse for odd rounds — valid until the next call.
     * The sliced engine reads these straight into its gather, so
     * suggested patterns cost one randomize per two rounds plus one
     * cached inversion, with no per-round copies.
     */
    const gf2::BitVector &patternView(std::size_t round)
    {
        advance(round);
        if (kind_ == PatternKind::Charged || round % 2 == 0)
            return base_;
        if (invertedGeneration_ != baseGeneration_) {
            // One inversion per base generation (refreshed every two
            // rounds for Random; never for Checkered), reusing the
            // member's storage.
            if (inverted_.size() != base_.size())
                inverted_ = gf2::BitVector(base_.size());
            for (std::size_t w = 0; w < base_.words().size(); ++w)
                inverted_.setWord(w, ~base_.words()[w]);
            invertedGeneration_ = baseGeneration_;
        }
        return inverted_;
    }

  private:
    /** Refresh the random base when the round schedule demands it. */
    void advance(std::size_t round)
    {
        if (kind_ == PatternKind::Random && round >= nextFreshRound_) {
            // New random base every two rounds (pattern + inverse
            // pairs).
            base_.randomize(rng_);
            nextFreshRound_ = round + 2 - (round % 2);
            ++baseGeneration_;
        }
    }

    PatternKind kind_;
    std::size_t k_;
    common::Xoshiro256 rng_;
    gf2::BitVector base_;
    gf2::BitVector inverted_;
    std::size_t nextFreshRound_ = 0;
    /** Bumped on every base refresh; tags the inverse cache. */
    std::size_t baseGeneration_ = 1;
    /** baseGeneration_ the cached inverse was computed for; 0 = never. */
    std::size_t invertedGeneration_ = 0;
};

} // namespace harp::core

#endif // HARP_CORE_DATA_PATTERN_HH
