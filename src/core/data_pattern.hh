/**
 * @file
 * Memory data patterns used by active profiling rounds (HARP sections 6.2
 * and 7.1.2).
 *
 * The paper evaluates three patterns:
 *  - random:    a fresh random dataword every two rounds, inverted on the
 *               second round of each pair;
 *  - charged:   all '1's (0xFF), every cell of the data region charged;
 *  - checkered: alternating 0/1, inverted every other round.
 */

#ifndef HARP_CORE_DATA_PATTERN_HH
#define HARP_CORE_DATA_PATTERN_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "gf2/bit_vector.hh"

namespace harp::core {

/** Data-pattern policy for active profiling. */
enum class PatternKind
{
    Random,    ///< Random base pattern, inverted on odd rounds.
    Charged,   ///< All ones (0xFF...), every round.
    Checkered, ///< 0101... base pattern, inverted on odd rounds.
};

/** Human-readable pattern name ("random", "charged", "checkered"). */
std::string patternKindName(PatternKind kind);

/** Parse a pattern name; throws std::invalid_argument on bad input. */
PatternKind patternKindFromName(const std::string &name);

/**
 * Deterministic per-round dataword generator implementing the paper's
 * pattern schedule. Round indices are 0-based.
 */
class PatternGenerator
{
  public:
    /**
     * @param kind Pattern policy.
     * @param k    Dataword length.
     * @param seed Seed for the random policy's base patterns.
     */
    PatternGenerator(PatternKind kind, std::size_t k, std::uint64_t seed);

    PatternKind kind() const { return kind_; }

    /** Dataword for round @p round. Must be called with non-decreasing
     *  round numbers (the random policy advances its stream). */
    gf2::BitVector pattern(std::size_t round);

    /**
     * Allocation-free variant of pattern(): writes the round's
     * dataword into @p out (assigned/resized as needed), consuming the
     * same RNG stream. Used by the sliced engine's hot path.
     */
    void patternInto(std::size_t round, gf2::BitVector &out);

  private:
    PatternKind kind_;
    std::size_t k_;
    common::Xoshiro256 rng_;
    gf2::BitVector base_;
    std::size_t nextFreshRound_ = 0;
};

} // namespace harp::core

#endif // HARP_CORE_DATA_PATTERN_HH
