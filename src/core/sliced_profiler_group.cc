#include "core/sliced_profiler_group.hh"

#include <bit>
#include <cassert>

#include "common/bits.hh"

namespace harp::core {

template <std::size_t W>
std::unique_ptr<SlicedProfilerGroupW<W>>
SlicedProfilerGroupW<W>::tryMake(const std::vector<Profiler *> &lane_profilers,
                                 std::size_t k)
{
    if (lane_profilers.empty() ||
        lane_profilers.size() > gf2::BitSliceW<W>::laneCount)
        return nullptr;
    const LaneObserveKind kind = lane_profilers[0]->laneObserveKind();
    if (kind == LaneObserveKind::None)
        return nullptr;
    for (const Profiler *p : lane_profilers)
        if (p->laneObserveKind() != kind || p->k() != k)
            return nullptr;
    return std::unique_ptr<SlicedProfilerGroupW>(
        new SlicedProfilerGroupW(lane_profilers, kind, k));
}

template <std::size_t W>
SlicedProfilerGroupW<W>::SlicedProfilerGroupW(
    const std::vector<Profiler *> &lane_profilers, LaneObserveKind kind,
    std::size_t k)
    : kind_(kind),
      k_(k),
      profilers_(lane_profilers),
      atRisk_(k),
      direct_(kind == LaneObserveKind::BypassAware ? k : 0),
      laneScratch_(k)
{
    const std::size_t lanes = profilers_.size();
    liveMask_ = gf2::laneMaskOf<Lane>(lanes);
    flushScratch_.assign(lanes, gf2::BitVector(k));

    // Seed the lane state from the profilers' current profiles, so a
    // group formed over non-fresh profilers extends them rather than
    // restarting from zero. identified()/identifiedDirect() still read
    // the raw members here: attachment happens below.
    std::vector<gf2::BitVector> seed;
    seed.reserve(lanes);
    for (const Profiler *p : profilers_)
        seed.push_back(p->identified());
    atRisk_.gather(seed);
    if (kind_ == LaneObserveKind::BypassAware) {
        seed.clear();
        for (const Profiler *p : profilers_) {
            const gf2::BitVector *d = p->laneDirectState();
            assert(d != nullptr);
            seed.push_back(*d);
        }
        direct_.gather(seed);
    }

    for (Profiler *p : profilers_) {
        // A profiler can only feed one group at a time; hand-offs
        // between engines flush the previous group's pending state.
        if (p->laneGroup_ != nullptr)
            p->laneGroup_->forget(p);
        p->laneGroup_ = this;
    }
}

template <std::size_t W>
SlicedProfilerGroupW<W>::~SlicedProfilerGroupW()
{
    flushIfDirty();
    for (Profiler *p : profilers_)
        if (p != nullptr && p->laneGroup_ == this)
            p->laneGroup_ = nullptr;
}

template <std::size_t W>
void
SlicedProfilerGroupW<W>::forget(const Profiler *profiler)
{
    flushIfDirty();
    for (Profiler *&p : profilers_)
        if (p == profiler) {
            p = nullptr;
            abandoned_ = true;
        }
}

template <std::size_t W>
void
SlicedProfilerGroupW<W>::extractLane(const gf2::BitSliceW<W> &slice,
                                     std::size_t lane)
{
    for (std::size_t pos = 0; pos < k_; ++pos)
        laneScratch_.set(pos, slice.get(pos, lane));
}

template <std::size_t W>
void
SlicedProfilerGroupW<W>::observeLanes(const RoundLaneObservationW<W> &obs)
{
    assert(obs.written.positions() == k_ && obs.post.positions() == k_ &&
           obs.received.positions() >= k_);
    // dirty_ is raised only when a round actually mismatched
    // somewhere: clean rounds must not force a flush transpose on the
    // next profile read (per-round readers would otherwise pay the
    // very per-round cost this class elides).
    switch (kind_) {
    case LaneObserveKind::PostCorrection:
        // identified |= written ^ post, W*64 lanes per position.
        if (gf2::laneAny(atRisk_.orXorPrefix(obs.written, obs.post, k_) &
                         liveMask_))
            dirty_ = true;
        return;
    case LaneObserveKind::Bypass:
        // identified = direct |= written ^ raw (bypass prefix).
        if (gf2::laneAny(
                atRisk_.orXorPrefix(obs.written, obs.received, k_) &
                liveMask_))
            dirty_ = true;
        return;
    case LaneObserveKind::BypassAware:
        break;
    case LaneObserveKind::None:
        assert(false && "group formed over kind None");
        return;
    }

    // HARP-A: accumulate direct mismatches and find the lanes whose
    // direct set grew — only those recompute indirect predictions,
    // exactly when the scalar profiler's popcount check would fire.
    Lane changed{};
    Lane any{};
    for (std::size_t pos = 0; pos < k_; ++pos) {
        const Lane mismatch =
            obs.written.lane(pos) ^ obs.received.lane(pos);
        changed |= mismatch & ~direct_.lane(pos);
        direct_.lane(pos) |= mismatch;
        atRisk_.lane(pos) |= mismatch;
        any |= mismatch;
    }
    if (gf2::laneAny(any & liveMask_))
        dirty_ = true;
    changed &= liveMask_;
    gf2::forEachSetLane(changed, [&](std::size_t lane) {
        Profiler *profiler = profilers_[lane];
        if (profiler == nullptr)
            return;
        extractLane(direct_, lane);
        if (const gf2::BitVector *predicted =
                profiler->laneDirectGrew(laneScratch_)) {
            // Fold the refreshed predictions into the lane's identified
            // state; the flush unions them with everything else, which
            // matches the scalar profiler's identified_ |= predicted.
            predicted->forEachSetBit([&](std::size_t pos) {
                gf2::laneSetBit(atRisk_.lane(pos), lane);
            });
        }
    });
}

template <std::size_t W>
void
SlicedProfilerGroupW<W>::flushIfDirty()
{
    if (!dirty_)
        return;
    dirty_ = false;
    atRisk_.scatterPrefix(k_, flushScratch_);
    for (std::size_t w = 0; w < profilers_.size(); ++w)
        if (profilers_[w] != nullptr)
            profilers_[w]->absorbLaneIdentified(flushScratch_[w]);
    if (kind_ == LaneObserveKind::PostCorrection)
        return;
    // Bypass: the direct set coincides with the identified set, so the
    // same scatter feeds both members. BypassAware keeps its own
    // direct_ slice (identified is a strict superset there).
    if (kind_ == LaneObserveKind::BypassAware)
        direct_.scatterPrefix(k_, flushScratch_);
    for (std::size_t w = 0; w < profilers_.size(); ++w)
        if (profilers_[w] != nullptr)
            profilers_[w]->absorbLaneDirect(flushScratch_[w]);
}

template class SlicedProfilerGroupW<1>;
template class SlicedProfilerGroupW<4>;

} // namespace harp::core
