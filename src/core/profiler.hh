/**
 * @file
 * Profiler interface shared by Naive, BEEP, HARP-U, HARP-A and
 * HARP-A+BEEP (HARP sections 6 and 7.1.1).
 *
 * A profiler participates in round-based active profiling: each round it
 * (1) chooses a dataword to program, and (2) observes the outcome of
 * reading the word back. Its output is the set of data-bit positions it
 * has identified as at risk of post-correction error — the error profile
 * a repair mechanism would consume.
 */

#ifndef HARP_CORE_PROFILER_HH
#define HARP_CORE_PROFILER_HH

#include <memory>
#include <string>

#include "common/rng.hh"
#include "ecc/hamming_code.hh"
#include "gf2/bit_vector.hh"

namespace harp::core {

class Profiler;
template <std::size_t W>
class SlicedProfilerGroupW;

/**
 * Width-erased handle on a lane-native observation accumulator
 * (core/sliced_profiler_group.hh). Profiler carries a plain pointer to
 * whatever group — of any lane width — is currently accumulating its
 * observations in transposed form; the two virtuals are exactly the
 * operations the profiler needs without knowing the width: flush
 * pending lane state on profile reads, and detach on destruction.
 */
class LaneObserverGroup
{
  public:
    virtual ~LaneObserverGroup() = default;

    /** Transpose the accumulated lane state into the wrapped
     *  profilers' members; no-op when clean. */
    virtual void flushIfDirty() = 0;

  protected:
    friend class Profiler;
    template <std::size_t W>
    friend class SlicedProfilerGroupW;

    /** Drop @p profiler from the group (it is being destroyed); the
     *  pending lane state is flushed first. */
    virtual void forget(const Profiler *profiler) = 0;
};

/**
 * How a profiler's observe() step can be replayed in transposed lane
 * form by a SlicedProfilerGroup (core/sliced_profiler_group.hh).
 *
 * A non-None kind is a contract with the sliced engine: the profiler
 * (a) always programs the suggested pattern verbatim, (b) never draws
 * from the profiler RNG in chooseDataword(Into), and (c) its observe()
 * reduces to the position-wise accumulation named by the kind. The
 * engine then skips the per-lane choose calls, feeds the whole slot
 * one lane observation per round, and elides the post/raw scatters.
 */
enum class LaneObserveKind
{
    /** No lane-native form: drive through scalar observe() (BEEP and
     *  BEEP hybrids — crafted patterns and non-linear suspect state). */
    None,
    /** identified |= written ^ postCorrectionData (Naive). */
    PostCorrection,
    /** identified = direct |= written ^ rawData (HARP-U). */
    Bypass,
    /** Bypass plus per-lane indirect-prediction recomputation whenever
     *  the lane's direct set grows (HARP-A). */
    BypassAware,
};

/**
 * Everything a profiler may observe about one profiling round.
 *
 * The rawData field models the on-die ECC decode-bypass read path (HARP
 * section 5.2). Only bypass-capable profilers (HARP variants) may use it;
 * baseline profilers must restrict themselves to postCorrectionData. The
 * pre-correction parity bits are never exposed, matching the paper's
 * transparency limit.
 */
struct RoundObservation
{
    std::size_t round = 0;
    /** Dataword d the profiler programmed. */
    const gf2::BitVector &writtenData;
    /** Post-correction dataword d' from the normal read path. */
    const gf2::BitVector &postCorrectionData;
    /** Raw stored data bits from the decode-bypass path. */
    const gf2::BitVector &rawData;
};

/**
 * Abstract round-based error profiler.
 */
class Profiler
{
  public:
    /** @param k Dataword length of the profiled ECC word. */
    explicit Profiler(std::size_t k);
    virtual ~Profiler();

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** Display name ("Naive", "BEEP", "HARP-U", ...). */
    virtual std::string name() const = 0;

    /** True iff the profiler reads through the decode-bypass path. */
    virtual bool usesBypassPath() const { return false; }

    /**
     * Choose the dataword to program this round.
     *
     * @param round     0-based round index.
     * @param suggested The shared data-pattern-policy word for this round;
     *                  identical across profilers so comparisons use the
     *                  same patterns (section 7.1.2). Crafting profilers
     *                  (BEEP) may override it.
     * @param rng       Profiler-private randomness.
     */
    virtual gf2::BitVector chooseDataword(std::size_t round,
                                          const gf2::BitVector &suggested,
                                          common::Xoshiro256 &rng);

    /**
     * Allocation-free variant of chooseDataword() used by the round
     * engines on the hot path.
     *
     * @return true iff the profiler programs @p suggested verbatim —
     *         in that case @p out may be left untouched and the caller
     *         must use @p suggested (engines exploit this to share one
     *         datapath evaluation between all suggested-verbatim
     *         profilers of a round). On false, the chosen word has
     *         been written into @p out (copy-assignment reuses its
     *         capacity). The default delegates to chooseDataword().
     */
    virtual bool chooseDatawordInto(std::size_t round,
                                    const gf2::BitVector &suggested,
                                    common::Xoshiro256 &rng,
                                    gf2::BitVector &out);

    /** Observe the outcome of the round the profiler just programmed. */
    virtual void observe(const RoundObservation &obs) = 0;

    /**
     * Lane-native observation form of observe(), or None (the
     * default). See LaneObserveKind for the contract a non-None kind
     * asserts.
     */
    virtual LaneObserveKind laneObserveKind() const
    {
        return LaneObserveKind::None;
    }

    /**
     * True iff observe() provably changes no state when the read was
     * clean — postCorrectionData equals writtenData and, for bypass
     * profilers, rawData does too. The sliced engine then skips the
     * call (and, when every lane of a slot is clean, the whole
     * post/raw scatter) for clean lanes. Must stay false for
     * profilers with round-counting state (e.g.\ HARP-A+BEEP's
     * stability window advances on clean reads).
     */
    virtual bool cleanObserveIsNoOp() const { return false; }

    /**
     * Data-bit positions currently identified as at risk of
     * post-correction error (the profiler's error profile).
     *
     * While a SlicedProfilerGroup is accumulating this profiler's
     * observations in lane form, reading the profile transparently
     * flushes the group's pending lane state first — so callers see
     * exactly the state scalar observe() calls would have produced,
     * while rounds that nobody inspects never pay a transpose.
     */
    const gf2::BitVector &identified() const
    {
        if (laneGroup_ != nullptr)
            syncLaneState();
        return identified_;
    }

    /** Dataword length of the profiled ECC word. */
    std::size_t k() const { return k_; }

    /**
     * Process-unique id of this profiler instance. Distinguishes a
     * destroyed-and-reallocated profiler from its predecessor even
     * when the allocator recycles the address — the engines validate
     * cached per-slot state against it.
     */
    std::uint64_t instanceId() const { return instanceId_; }

    /** @name Lane-native observation support
     * Internal interface between a profiler and the
     * SlicedProfilerGroup accumulating its observations; not meant for
     * general callers.
     * @{ */

    /** Fold lane-extracted identified bits into the profile (group
     *  flush). */
    void absorbLaneIdentified(const gf2::BitVector &bits)
    {
        identified_ |= bits;
    }

    /** Fold lane-extracted direct-error bits (Bypass kinds); the
     *  default (no direct state) ignores them. */
    virtual void absorbLaneDirect(const gf2::BitVector &bits)
    {
        (void)bits;
    }

    /** Current direct-error state to seed a group's lane accumulator
     *  with, or null when the profiler keeps none. */
    virtual const gf2::BitVector *laneDirectState() const
    {
        return nullptr;
    }

    /**
     * BypassAware only: this lane's direct set grew to @p direct.
     * Implementations absorb the set, refresh their indirect-error
     * predictions, and return the updated prediction vector for the
     * group to fold into the lane's identified state (null = none).
     */
    virtual const gf2::BitVector *laneDirectGrew(const gf2::BitVector &direct)
    {
        (void)direct;
        return nullptr;
    }

    /** @} */

  protected:
    template <std::size_t W>
    friend class SlicedProfilerGroupW;

    /** Flush the attached group's pending lane observations into this
     *  (and its sibling) profilers' members. */
    void syncLaneState() const;

    /** Group currently accumulating this profiler's observations in
     *  lane form; maintained by the group itself. */
    LaneObserverGroup *laneGroup_ = nullptr;

    /** Dataword length of the profiled ECC word. */
    std::size_t k_;
    /** Data-bit positions identified as at risk so far. */
    gf2::BitVector identified_;
    /**
     * Reusable scratch vectors for allocation-free observe()
     * implementations (profiling runs observe() millions of times;
     * copy-assignment into these reuses their capacity). Valid only
     * within one observe() call.
     */
    gf2::BitVector scratchA_, scratchB_;

  private:
    const std::uint64_t instanceId_;
};

} // namespace harp::core

#endif // HARP_CORE_PROFILER_HH
