/**
 * @file
 * Profiler interface shared by Naive, BEEP, HARP-U, HARP-A and
 * HARP-A+BEEP (HARP sections 6 and 7.1.1).
 *
 * A profiler participates in round-based active profiling: each round it
 * (1) chooses a dataword to program, and (2) observes the outcome of
 * reading the word back. Its output is the set of data-bit positions it
 * has identified as at risk of post-correction error — the error profile
 * a repair mechanism would consume.
 */

#ifndef HARP_CORE_PROFILER_HH
#define HARP_CORE_PROFILER_HH

#include <memory>
#include <string>

#include "common/rng.hh"
#include "ecc/hamming_code.hh"
#include "gf2/bit_vector.hh"

namespace harp::core {

/**
 * Everything a profiler may observe about one profiling round.
 *
 * The rawData field models the on-die ECC decode-bypass read path (HARP
 * section 5.2). Only bypass-capable profilers (HARP variants) may use it;
 * baseline profilers must restrict themselves to postCorrectionData. The
 * pre-correction parity bits are never exposed, matching the paper's
 * transparency limit.
 */
struct RoundObservation
{
    std::size_t round = 0;
    /** Dataword d the profiler programmed. */
    const gf2::BitVector &writtenData;
    /** Post-correction dataword d' from the normal read path. */
    const gf2::BitVector &postCorrectionData;
    /** Raw stored data bits from the decode-bypass path. */
    const gf2::BitVector &rawData;
};

/**
 * Abstract round-based error profiler.
 */
class Profiler
{
  public:
    /** @param k Dataword length of the profiled ECC word. */
    explicit Profiler(std::size_t k);
    virtual ~Profiler() = default;

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** Display name ("Naive", "BEEP", "HARP-U", ...). */
    virtual std::string name() const = 0;

    /** True iff the profiler reads through the decode-bypass path. */
    virtual bool usesBypassPath() const { return false; }

    /**
     * Choose the dataword to program this round.
     *
     * @param round     0-based round index.
     * @param suggested The shared data-pattern-policy word for this round;
     *                  identical across profilers so comparisons use the
     *                  same patterns (section 7.1.2). Crafting profilers
     *                  (BEEP) may override it.
     * @param rng       Profiler-private randomness.
     */
    virtual gf2::BitVector chooseDataword(std::size_t round,
                                          const gf2::BitVector &suggested,
                                          common::Xoshiro256 &rng);

    /**
     * Allocation-free variant of chooseDataword() used by the round
     * engines on the hot path.
     *
     * @return true iff the profiler programs @p suggested verbatim —
     *         in that case @p out may be left untouched and the caller
     *         must use @p suggested (engines exploit this to share one
     *         datapath evaluation between all suggested-verbatim
     *         profilers of a round). On false, the chosen word has
     *         been written into @p out (copy-assignment reuses its
     *         capacity). The default delegates to chooseDataword().
     */
    virtual bool chooseDatawordInto(std::size_t round,
                                    const gf2::BitVector &suggested,
                                    common::Xoshiro256 &rng,
                                    gf2::BitVector &out);

    /** Observe the outcome of the round the profiler just programmed. */
    virtual void observe(const RoundObservation &obs) = 0;

    /**
     * Data-bit positions currently identified as at risk of
     * post-correction error (the profiler's error profile).
     */
    const gf2::BitVector &identified() const { return identified_; }

    /** Dataword length of the profiled ECC word. */
    std::size_t k() const { return k_; }

  protected:
    /** Dataword length of the profiled ECC word. */
    std::size_t k_;
    /** Data-bit positions identified as at risk so far. */
    gf2::BitVector identified_;
    /**
     * Reusable scratch vectors for allocation-free observe()
     * implementations (profiling runs observe() millions of times;
     * copy-assignment into these reuses their capacity). Valid only
     * within one observe() call.
     */
    gf2::BitVector scratchA_, scratchB_;
};

} // namespace harp::core

#endif // HARP_CORE_PROFILER_HH
