/**
 * @file
 * Monte-Carlo coverage experiment driving Figs. 6, 7, 8 and 9 of the
 * paper: per-round direct-error coverage, bootstrapping distribution,
 * missed indirect errors, and secondary-ECC sizing metrics for every
 * evaluated profiler.
 */

#ifndef HARP_CORE_COVERAGE_EXPERIMENT_HH
#define HARP_CORE_COVERAGE_EXPERIMENT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/data_pattern.hh"
#include "core/engine_kind.hh"

namespace harp::core {

/** Configuration of one coverage sweep cell. */
struct CoverageConfig
{
    /** Dataword length of the on-die ECC code (64 or 128 in the paper). */
    std::size_t k = 64;
    /** Number of randomly generated codes. */
    std::size_t numCodes = 8;
    /** Simulated ECC words per code. */
    std::size_t wordsPerCode = 24;
    /** Profiling rounds (the paper uses 128). */
    std::size_t rounds = 128;
    /** At-risk cells injected per ECC word (paper: 2-5, Fig. 4: 2-8). */
    std::size_t numPreCorrectionErrors = 2;
    /** Per-bit failure probability of at-risk cells (0.25/0.5/0.75/1.0). */
    double perBitProbability = 0.5;
    /** Shared data-pattern policy for non-crafting profilers. */
    PatternKind pattern = PatternKind::Random;
    /** Include the HARP-A+BEEP hybrid (Fig. 8). */
    bool includeHarpABeep = false;
    std::uint64_t seed = 1;
    /** Worker threads; 0 = hardware concurrency. */
    std::size_t threads = 0;
    /**
     * Profiling-round engine. Both engines are bit-identical for a
     * fixed seed (asserted by tests/core/test_sliced_round_engine.cc);
     * sliced64 batches up to 64 words of a code per lane-op.
     */
    EngineKind engine = EngineKind::Sliced64;
};

/** Largest simultaneous-error bound tracked for Fig. 9b (x = 1..bound). */
inline constexpr std::size_t maxTrackedBound = 6;

/** Aggregated per-profiler results of a coverage run. */
struct ProfilerAggregate
{
    std::string name;

    /** Per round: identified direct-at-risk bits, summed over words. */
    std::vector<std::uint64_t> directIdentifiedSum;
    /** Per round: missed indirect-at-risk bits, summed over words. */
    std::vector<std::uint64_t> indirectMissedSum;
    /** Per round: identified bits outside the ground-truth at-risk sets
     *  (false positives), summed over words. */
    std::vector<std::uint64_t> falsePositiveSum;

    /** Per word: 1-based round of the first identified direct-at-risk
     *  bit; rounds+1 when never identified (Fig. 7). */
    common::PercentileTracker bootstrapRounds;

    /** Per word: max simultaneous post-correction errors possible after
     *  the final round (Fig. 9a). */
    common::Histogram maxSimultaneousFinal{10};

    /** Per bound x (index x-1): per word, first 0-based-round-count after
     *  which max simultaneous errors <= x; rounds+1 when never (Fig 9b). */
    std::array<common::PercentileTracker, maxTrackedBound> roundsToBound;
};

/** Full result of one coverage sweep cell. */
struct CoverageResult
{
    CoverageConfig config;
    std::vector<ProfilerAggregate> profilers;
    /** Ground-truth totals, summed over all simulated words. */
    std::uint64_t totalDirectAtRisk = 0;
    std::uint64_t totalIndirectAtRisk = 0;
    std::uint64_t numWords = 0;

    /** Direct coverage in [0,1] for @p profiler after round index @p r. */
    double directCoverage(std::size_t profiler, std::size_t r) const;
    /** Mean missed indirect errors per word after round index @p r. */
    double missedIndirectPerWord(std::size_t profiler, std::size_t r) const;
};

/** Run the experiment (parallel over (code, word) tasks; deterministic
 *  for a fixed seed regardless of thread count). */
CoverageResult runCoverageExperiment(const CoverageConfig &config);

} // namespace harp::core

#endif // HARP_CORE_COVERAGE_EXPERIMENT_HH
