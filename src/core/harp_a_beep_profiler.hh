/**
 * @file
 * HARP-A+BEEP hybrid profiler (HARP section 7.3.1).
 *
 * Combines HARP's bypass-based direct-error identification with BEEP's
 * crafted patterns: the direct errors found through the bypass path seed
 * BEEP's suspect set, letting the crafted patterns immediately target
 * known at-risk cells and expose the remaining indirect errors (including
 * those caused by parity-cell errors, which HARP-A alone cannot predict).
 */

#ifndef HARP_CORE_HARP_A_BEEP_PROFILER_HH
#define HARP_CORE_HARP_A_BEEP_PROFILER_HH

#include "core/beep_profiler.hh"

namespace harp::core {

/**
 * BEEP crafting + bypass observation + parity-check-matrix prediction.
 *
 * Per the paper, BEEP takes over "once HARP-A has identified all bits at
 * risk of direct errors". Lacking an oracle for completeness, the hybrid
 * switches to crafted patterns once the direct profile has been stable
 * for a configurable number of rounds, and falls back to the standard
 * pattern whenever a new direct error appears (restarting the window).
 */
class HarpABeepProfiler : public BeepProfiler
{
  public:
    /**
     * @param code             On-die ECC code (parity-check knowledge).
     * @param stability_window Consecutive no-new-direct-error rounds
     *                         before crafted patterns engage.
     */
    explicit HarpABeepProfiler(const ecc::HammingCode &code,
                               std::size_t stability_window = 8);

    std::string name() const override { return "HARP-A+BEEP"; }
    bool usesBypassPath() const override { return true; }

    /** Clean reads are *not* no-ops here: the stability window that
     *  gates the switch to crafted patterns advances on every round
     *  without a new direct error. */
    bool cleanObserveIsNoOp() const override { return false; }

    bool chooseDatawordInto(std::size_t round,
                            const gf2::BitVector &suggested,
                            common::Xoshiro256 &rng,
                            gf2::BitVector &out) override;

    void observe(const RoundObservation &obs) override;

    /** Data cells identified as at risk of direct error (bypass path). */
    const gf2::BitVector &identifiedDirect() const
    {
        return identifiedDirect_;
    }

    /** True once crafted (BEEP) patterns are active. */
    bool craftingActive() const
    {
        return roundsSinceNewDirect_ >= stabilityWindow_;
    }

  private:
    gf2::BitVector identifiedDirect_;
    std::size_t stabilityWindow_;
    std::size_t roundsSinceNewDirect_ = 0;
};

} // namespace harp::core

#endif // HARP_CORE_HARP_A_BEEP_PROFILER_HH
