#include "core/at_risk_analyzer.hh"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "fault/cell.hh"
#include "gf2/linear_solver.hh"

namespace harp::core {

AtRiskAnalyzer::AtRiskAnalyzer(const ecc::HammingCode &code,
                               const fault::WordFaultModel &faults,
                               std::size_t max_cells)
    : code_(code),
      faults_(faults),
      cells_(faults.faults()),
      directAtRisk_(code.k()),
      indirectAtRisk_(code.k()),
      postCorrectionAtRisk_(code.k())
{
    if (faults_.wordBits() != code_.n())
        throw std::invalid_argument("AtRiskAnalyzer: fault model size");
    if (cells_.size() > max_cells)
        throw std::invalid_argument(
            "AtRiskAnalyzer: too many at-risk cells to enumerate");

    for (const fault::CellFault &f : cells_)
        if (code_.isDataPosition(f.position))
            directAtRisk_.set(f.position, true);

    const std::size_t m = cells_.size();
    for (std::uint32_t mask = 1; mask < (std::uint32_t{1} << m); ++mask) {
        if (!feasible(mask))
            continue;
        ErrorPatternOutcome outcome = computeOutcome(mask);
        for (const std::uint16_t pos : outcome.postErrors) {
            postCorrectionAtRisk_.set(pos, true);
            // Indirect error: the decoder itself flipped this bit.
            if (outcome.correctedPosition &&
                *outcome.correctedPosition == pos) {
                indirectAtRisk_.set(pos, true);
            }
        }
        outcomes_.push_back(std::move(outcome));
    }
}

ErrorPatternOutcome
AtRiskAnalyzer::computeOutcome(std::uint32_t mask) const
{
    ErrorPatternOutcome outcome;
    outcome.failingMask = mask;

    // Syndrome of the failing pattern: XOR of member columns.
    std::uint32_t syndrome = 0;
    for (std::size_t i = 0; i < cells_.size(); ++i)
        if ((mask >> i) & 1)
            syndrome ^= code_.codewordColumn(cells_[i].position);
    outcome.syndrome = syndrome;

    // Post-correction data errors: uncorrected direct errors...
    std::set<std::uint16_t> errors;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (((mask >> i) & 1) == 0)
            continue;
        const std::size_t pos = cells_[i].position;
        if (code_.isDataPosition(pos))
            errors.insert(static_cast<std::uint16_t>(pos));
    }
    // ... adjusted by whatever the decoder flips.
    if (syndrome != 0) {
        const auto corrected = code_.syndromeToPosition(syndrome);
        outcome.correctedPosition = corrected;
        if (corrected && code_.isDataPosition(*corrected)) {
            const auto pos = static_cast<std::uint16_t>(*corrected);
            if (errors.count(pos))
                errors.erase(pos); // genuine correction
            else
                errors.insert(pos); // miscorrection (indirect error)
        }
    }
    outcome.postErrors.assign(errors.begin(), errors.end());
    return outcome;
}

bool
AtRiskAnalyzer::feasible(std::uint32_t mask) const
{
    // A failing pattern is realizable iff some dataword charges every
    // failing cell while discharging every *deterministic* (p == 1)
    // at-risk cell outside the pattern — a charged p=1 cell always fails,
    // so it cannot be excluded from the pattern any other way.
    const bool charged_value =
        faults_.technology() == fault::CellTechnology::TrueCell;
    gf2::ConstraintSystem cs(code_.k());
    auto constrain = [&](std::size_t cell, bool charged) {
        const bool stored = charged == charged_value;
        if (code_.isDataPosition(cell)) {
            cs.pinVariable(cell, stored);
        } else {
            cs.addConstraint(code_.parityRow(cell - code_.k()), stored);
        }
    };
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if ((mask >> i) & 1)
            constrain(cells_[i].position, true);
        else if (cells_[i].probability >= 1.0)
            constrain(cells_[i].position, false);
    }
    return cs.consistent();
}

std::size_t
AtRiskAnalyzer::maxSimultaneousErrors(const gf2::BitVector &profile) const
{
    std::size_t max_count = 0;
    for (const ErrorPatternOutcome &outcome : outcomes_) {
        std::size_t count = 0;
        for (const std::uint16_t pos : outcome.postErrors)
            if (!profile.get(pos))
                ++count;
        max_count = std::max(max_count, count);
    }
    return max_count;
}

std::size_t
AtRiskAnalyzer::unsafeBitsAfterReactive(const gf2::BitVector &profile) const
{
    std::set<std::uint16_t> unsafe;
    for (const ErrorPatternOutcome &outcome : outcomes_) {
        std::size_t count = 0;
        for (const std::uint16_t pos : outcome.postErrors)
            if (!profile.get(pos))
                ++count;
        if (count < 2)
            continue; // a single residual error is absorbed by the
                      // secondary SEC and reactively profiled
        for (const std::uint16_t pos : outcome.postErrors)
            if (!profile.get(pos))
                unsafe.insert(pos);
    }
    return unsafe.size();
}

std::size_t
AtRiskAnalyzer::unidentifiedAtRisk(const gf2::BitVector &profile) const
{
    gf2::BitVector missed = postCorrectionAtRisk_;
    gf2::BitVector overlap = missed;
    overlap &= profile;
    return missed.popcount() - overlap.popcount();
}

std::vector<double>
AtRiskAnalyzer::perBitErrorProbability(const gf2::BitVector &dataword) const
{
    const gf2::BitVector codeword = code_.encode(dataword);

    // Charged at-risk cells under this pattern, with their probabilities.
    std::vector<std::size_t> charged_idx;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (fault::isCharged(faults_.technology(),
                             codeword.get(cells_[i].position)))
            charged_idx.push_back(i);
    }

    std::vector<double> prob(code_.k(), 0.0);
    const std::size_t m = charged_idx.size();
    for (std::uint32_t sub = 1; sub < (std::uint32_t{1} << m); ++sub) {
        // Probability that exactly this subset of charged cells fails.
        double weight = 1.0;
        std::uint32_t full_mask = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const fault::CellFault &cell = cells_[charged_idx[i]];
            if ((sub >> i) & 1) {
                weight *= cell.probability;
                full_mask |= std::uint32_t{1} << charged_idx[i];
            } else {
                weight *= 1.0 - cell.probability;
            }
        }
        if (weight == 0.0)
            continue;
        const ErrorPatternOutcome outcome = computeOutcome(full_mask);
        for (const std::uint16_t pos : outcome.postErrors)
            prob[pos] += weight;
    }
    return prob;
}

} // namespace harp::core
