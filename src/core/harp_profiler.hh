/**
 * @file
 * HARP-U and HARP-A active profilers (HARP section 6).
 *
 * Both use the on-die ECC decode-bypass read path to observe raw data-bit
 * values, which reduces profiling a chip with on-die ECC to profiling one
 * without: every at-risk data cell is identified independently the first
 * time it fails, regardless of which other cells fail concurrently.
 *
 * HARP-A ("aware") additionally knows the on-die ECC parity-check matrix
 * and precomputes bits at risk of indirect error from the direct errors
 * identified so far (section 6.3.1). It cannot predict miscorrections
 * caused by parity-cell errors, because the bypass path does not expose
 * parity bits — exactly the limitation the paper notes in section 7.3.1.
 */

#ifndef HARP_CORE_HARP_PROFILER_HH
#define HARP_CORE_HARP_PROFILER_HH

#include <vector>

#include "core/profiler.hh"
#include "ecc/hamming_code.hh"

namespace harp::core {

/**
 * HARP-Unaware: bypass-based direct-error profiler.
 */
class HarpUProfiler : public Profiler
{
  public:
    explicit HarpUProfiler(std::size_t k);

    std::string name() const override { return "HARP-U"; }
    bool usesBypassPath() const override { return true; }

    /** HARP programs the suggested pattern verbatim (HARP-A inherits
     *  this: its awareness changes predictions, not patterns). */
    bool chooseDatawordInto(std::size_t round,
                            const gf2::BitVector &suggested,
                            common::Xoshiro256 &rng,
                            gf2::BitVector &out) override
    {
        (void)round;
        (void)suggested;
        (void)rng;
        (void)out;
        return true;
    }

    void observe(const RoundObservation &obs) override;

    /** HARP-U's observe is pure positionwise accumulation over the
     *  bypass lanes: identified = direct |= written ^ raw. */
    LaneObserveKind laneObserveKind() const override
    {
        return LaneObserveKind::Bypass;
    }

    bool cleanObserveIsNoOp() const override { return true; }

    /** Data cells identified as at risk of *direct* error. Reading it
     *  flushes any pending lane-group state, like identified(). */
    const gf2::BitVector &identifiedDirect() const
    {
        if (laneGroup_ != nullptr)
            syncLaneState();
        return identifiedDirect_;
    }

    void absorbLaneDirect(const gf2::BitVector &bits) override
    {
        identifiedDirect_ |= bits;
    }

    const gf2::BitVector *laneDirectState() const override
    {
        return &identifiedDirect_;
    }

  protected:
    gf2::BitVector identifiedDirect_;
};

/**
 * HARP-Aware: HARP-U plus indirect-error precomputation from the known
 * parity-check matrix.
 */
class HarpAProfiler : public HarpUProfiler
{
  public:
    /**
     * @param code The on-die ECC code (parity-check matrix knowledge,
     *             e.g.\ from manufacturer support or BEER-style reverse
     *             engineering).
     */
    explicit HarpAProfiler(const ecc::HammingCode &code);

    std::string name() const override { return "HARP-A"; }

    void observe(const RoundObservation &obs) override;

    /** HARP-U's accumulation plus per-lane prediction refresh on
     *  direct-set growth (laneDirectGrew). */
    LaneObserveKind laneObserveKind() const override
    {
        return LaneObserveKind::BypassAware;
    }

    const gf2::BitVector *
    laneDirectGrew(const gf2::BitVector &direct) override;

    /** Data bits predicted to be at risk of indirect error. */
    const gf2::BitVector &predictedIndirect() const
    {
        return predictedIndirect_;
    }

  private:
    void recomputePredictions();

    const ecc::HammingCode &code_;
    gf2::BitVector predictedIndirect_;
    std::size_t lastDirectCount_ = 0;
};

} // namespace harp::core

#endif // HARP_CORE_HARP_PROFILER_HH
