#include "core/harp_a_beep_profiler.hh"

namespace harp::core {

HarpABeepProfiler::HarpABeepProfiler(const ecc::HammingCode &code,
                                     std::size_t stability_window)
    : BeepProfiler(code),
      identifiedDirect_(code.k()),
      stabilityWindow_(stability_window)
{
}

bool
HarpABeepProfiler::chooseDatawordInto(std::size_t round,
                                      const gf2::BitVector &suggested,
                                      common::Xoshiro256 &rng,
                                      gf2::BitVector &out)
{
    // Active phase: standard worst-case patterns until the direct profile
    // has been stable long enough to believe it is complete; afterwards
    // BEEP's crafted patterns hunt the remaining indirect errors.
    if (!craftingActive())
        return true;
    return BeepProfiler::chooseDatawordInto(round, suggested, rng, out);
}

void
HarpABeepProfiler::observe(const RoundObservation &obs)
{
    // Direct errors via the decode-bypass path, exactly as HARP-U; the
    // fused pass also detects the clean-bypass-read common case, where
    // only the stability window advances before BEEP's normal-path
    // step.
    if (!scratchA_.assignXor(obs.writtenData, obs.rawData)) {
        ++roundsSinceNewDirect_;
        BeepProfiler::observe(obs);
        return;
    }
    scratchB_ = scratchA_;
    scratchB_ &= identifiedDirect_;
    scratchA_ ^= scratchB_; // newly seen direct errors only
    if (!scratchA_.isZero()) {
        roundsSinceNewDirect_ = 0;
        identifiedDirect_ |= scratchA_;
        identified_ |= scratchA_;
        // Seed BEEP's crafting with the confirmed at-risk cells and
        // refresh the precomputed miscorrection targets (HARP-A's
        // prediction step, using BEEP's machinery).
        scratchA_.forEachSetBit([&](std::size_t pos) {
            addSuspectedCell(pos);
        });
        precomputeIfSuspectsChanged();
    } else {
        ++roundsSinceNewDirect_;
    }
    // Indirect errors via normal-path observation (BEEP's step). This
    // also picks up miscorrections caused by parity-cell errors.
    BeepProfiler::observe(obs);
}

} // namespace harp::core
