#include "core/harp_a_beep_profiler.hh"

namespace harp::core {

HarpABeepProfiler::HarpABeepProfiler(const ecc::HammingCode &code,
                                     std::size_t stability_window)
    : BeepProfiler(code),
      identifiedDirect_(code.k()),
      stabilityWindow_(stability_window)
{
}

gf2::BitVector
HarpABeepProfiler::chooseDataword(std::size_t round,
                                  const gf2::BitVector &suggested,
                                  common::Xoshiro256 &rng)
{
    // Active phase: standard worst-case patterns until the direct profile
    // has been stable long enough to believe it is complete; afterwards
    // BEEP's crafted patterns hunt the remaining indirect errors.
    if (!craftingActive())
        return suggested;
    return BeepProfiler::chooseDataword(round, suggested, rng);
}

void
HarpABeepProfiler::observe(const RoundObservation &obs)
{
    // Direct errors via the decode-bypass path, exactly as HARP-U.
    gf2::BitVector direct = obs.writtenData;
    direct ^= obs.rawData;
    gf2::BitVector fresh = direct;
    gf2::BitVector known = direct;
    known &= identifiedDirect_;
    fresh ^= known; // newly seen direct errors only
    if (!fresh.isZero()) {
        roundsSinceNewDirect_ = 0;
        identifiedDirect_ |= fresh;
        identified_ |= fresh;
        // Seed BEEP's crafting with the confirmed at-risk cells and
        // refresh the precomputed miscorrection targets (HARP-A's
        // prediction step, using BEEP's machinery).
        fresh.forEachSetBit([&](std::size_t pos) {
            addSuspectedCell(pos);
        });
        precomputeFromSuspects();
    } else {
        ++roundsSinceNewDirect_;
    }
    // Indirect errors via normal-path observation (BEEP's step). This
    // also picks up miscorrections caused by parity-cell errors.
    BeepProfiler::observe(obs);
}

} // namespace harp::core
