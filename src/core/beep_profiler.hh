/**
 * @file
 * BEEP baseline profiler (HARP section 7.1.1; algorithm from the BEER
 * paper, Patel et al., MICRO 2020).
 *
 * BEEP knows the on-die ECC parity-check matrix (e.g.\ from BEER reverse
 * engineering) but has no visibility into pre-correction errors. It uses
 * random data patterns until the first post-correction error is confirmed;
 * thereafter it crafts data patterns that charge all currently-suspected
 * at-risk cells plus one probe cell, chosen round-robin, so hypothesized
 * failure combinations produce observable miscorrections. Pattern crafting
 * solves the cell-charge constraints as an affine GF(2) system (the same
 * queries the original artifact posed to a SAT solver).
 */

#ifndef HARP_CORE_BEEP_PROFILER_HH
#define HARP_CORE_BEEP_PROFILER_HH

#include <set>
#include <vector>

#include "core/profiler.hh"
#include "ecc/hamming_code.hh"

namespace harp::core {

/**
 * BEEP: SAT-crafted-pattern profiler with parity-check matrix knowledge.
 */
class BeepProfiler : public Profiler
{
  public:
    explicit BeepProfiler(const ecc::HammingCode &code);

    std::string name() const override { return "BEEP"; }

    gf2::BitVector chooseDataword(std::size_t round,
                                  const gf2::BitVector &suggested,
                                  common::Xoshiro256 &rng) override;

    bool chooseDatawordInto(std::size_t round,
                            const gf2::BitVector &suggested,
                            common::Xoshiro256 &rng,
                            gf2::BitVector &out) override;

    void observe(const RoundObservation &obs) override;

    /** BEEP learns nothing from a clean read: observe() returns
     *  before touching any state when written == post. */
    bool cleanObserveIsNoOp() const override { return true; }

    /** Codeword positions currently believed to be at risk of
     *  pre-correction error (the crafted patterns charge these). */
    const std::set<std::size_t> &suspectedCells() const
    {
        return suspected_;
    }

    /**
     * Seed the suspect set with externally-known at-risk cells (used by
     * HARP-A+BEEP, which feeds BEEP the direct errors found via the
     * bypass path).
     */
    void addSuspectedCell(std::size_t codeword_position);

  protected:
    /** Update the identified set with miscorrection targets computable
     *  from the current suspect set. */
    void precomputeFromSuspects();

    /**
     * precomputeFromSuspects() iff the suspect set grew since the last
     * recompute. Crafted patterns and miscorrection targets are pure
     * functions of the suspect set, so skipping the recompute (and
     * caching craftPattern() results per probe until the set grows) is
     * output-identical — the suspect set stabilizes after the first few
     * error observations, turning BEEP's per-round work into cache
     * lookups.
     */
    void precomputeIfSuspectsChanged();

    const ecc::HammingCode &code_;
    std::set<std::size_t> suspected_;
    /** Bitmask mirror of suspected_ for O(1) membership tests on the
     *  per-round hot path (the set stays the public/API view). */
    gf2::BitVector suspectedMask_;
    std::size_t probeCursor_ = 0;
    bool observedAnyError_ = false;

  private:
    /** Bumped whenever suspected_ actually grows. */
    std::size_t suspectsVersion_ = 0;
    /** suspectsVersion_ at the last precomputeFromSuspects(). */
    std::size_t precomputedVersion_ = 0;
    /** Rebuild the per-version crafting state below; called whenever
     *  the suspect set grew since the last rebuild. */
    void rebuildCraftMasks();

    /** suspectsVersion_ the crafting masks were built for. */
    std::size_t craftCacheVersion_ = 0;
    /**
     * Per-version crafting state. Every crafted pattern of one
     * suspect-set version is the shared base word (all suspected data
     * cells charged) plus at most one probe bit, and its feasibility
     * is a per-probe bit in a precomputed mask: parity suspect c
     * demands parityRow(c-k).word == 1, and for a data probe i,
     * parityRow.(base ^ e_i) = parityRow.base ^ parityRow[i] — so
     * each parity suspect contributes one AND with (row or ~row).
     * This replaces the per-probe craft cache (a vector of cached
     * BitVectors rebuilt on every suspect growth) with O(p) vector ops
     * per version and two word-ops per round, which removed the
     * crafting slot as the sliced engine's dominant cost.
     */
    gf2::BitVector craftBase_;
    /** Bit i: data probe i satisfies every parity-suspect constraint. */
    gf2::BitVector craftFeasData_;
    /** Bit j: parity probe k+j is feasible (base satisfies all parity
     *  suspects and charges parity cell j). */
    gf2::BitVector craftFeasParity_;

    /**
     * Achievable-syndrome sets over the 2^p syndrome space, maintained
     * incrementally as suspects arrive (one bit per syndrome value):
     * reach1_ holds the suspects' own columns (single-cell syndromes),
     * reach2_ the XOR of every suspect subset of size >= 2 — exactly
     * the uncorrectable combinations precomputeFromSuspects() mines
     * for miscorrection targets. Updating on a new column v is three
     * bitset ops (reach2 |= reach2^v | reach1^v; reach1 |= {v}), which
     * replaces the previous O(2^suspects) subset enumeration.
     */
    std::vector<std::uint64_t> reach1_, reach2_;
    /** Columns of suspects not yet folded into reach1_/reach2_. */
    std::vector<std::uint32_t> pendingColumns_;
};

} // namespace harp::core

#endif // HARP_CORE_BEEP_PROFILER_HH
