/**
 * @file
 * BEEP baseline profiler (HARP section 7.1.1; algorithm from the BEER
 * paper, Patel et al., MICRO 2020).
 *
 * BEEP knows the on-die ECC parity-check matrix (e.g.\ from BEER reverse
 * engineering) but has no visibility into pre-correction errors. It uses
 * random data patterns until the first post-correction error is confirmed;
 * thereafter it crafts data patterns that charge all currently-suspected
 * at-risk cells plus one probe cell, chosen round-robin, so hypothesized
 * failure combinations produce observable miscorrections. Pattern crafting
 * solves the cell-charge constraints as an affine GF(2) system (the same
 * queries the original artifact posed to a SAT solver).
 */

#ifndef HARP_CORE_BEEP_PROFILER_HH
#define HARP_CORE_BEEP_PROFILER_HH

#include <set>
#include <vector>

#include "core/profiler.hh"
#include "ecc/hamming_code.hh"

namespace harp::core {

/**
 * BEEP: SAT-crafted-pattern profiler with parity-check matrix knowledge.
 */
class BeepProfiler : public Profiler
{
  public:
    explicit BeepProfiler(const ecc::HammingCode &code);

    std::string name() const override { return "BEEP"; }

    gf2::BitVector chooseDataword(std::size_t round,
                                  const gf2::BitVector &suggested,
                                  common::Xoshiro256 &rng) override;

    void observe(const RoundObservation &obs) override;

    /** Codeword positions currently believed to be at risk of
     *  pre-correction error (the crafted patterns charge these). */
    const std::set<std::size_t> &suspectedCells() const
    {
        return suspected_;
    }

    /**
     * Seed the suspect set with externally-known at-risk cells (used by
     * HARP-A+BEEP, which feeds BEEP the direct errors found via the
     * bypass path).
     */
    void addSuspectedCell(std::size_t codeword_position);

  protected:
    /**
     * Craft a dataword charging all suspects plus @p probe. Data cells
     * outside the target set are left discharged so any observed error is
     * attributable.
     *
     * @return The crafted word, or std::nullopt when the charge
     *         constraints are infeasible (e.g.\ a parity probe whose
     *         charge state conflicts with the pinned data cells).
     */
    std::optional<gf2::BitVector> craftPattern(std::size_t probe) const;

    /** Update the identified set with miscorrection targets computable
     *  from the current suspect set. */
    void precomputeFromSuspects();

    const ecc::HammingCode &code_;
    std::set<std::size_t> suspected_;
    std::size_t probeCursor_ = 0;
    bool observedAnyError_ = false;
};

} // namespace harp::core

#endif // HARP_CORE_BEEP_PROFILER_HH
