#include "core/harp_profiler.hh"

#include <bit>

namespace harp::core {

HarpUProfiler::HarpUProfiler(std::size_t k)
    : Profiler(k), identifiedDirect_(k)
{
}

void
HarpUProfiler::observe(const RoundObservation &obs)
{
    // The bypass path exposes raw (pre-correction) data bits: a mismatch
    // with the written data is a direct error at that cell, identified
    // independently of all other cells.
    scratchA_ = obs.writtenData;
    scratchA_ ^= obs.rawData;
    identifiedDirect_ |= scratchA_;
    identified_ |= scratchA_;
}

HarpAProfiler::HarpAProfiler(const ecc::HammingCode &code)
    : HarpUProfiler(code.k()), code_(code), predictedIndirect_(code.k())
{
}

void
HarpAProfiler::observe(const RoundObservation &obs)
{
    HarpUProfiler::observe(obs);
    if (identifiedDirect_.popcount() != lastDirectCount_) {
        lastDirectCount_ = identifiedDirect_.popcount();
        recomputePredictions();
        identified_ |= predictedIndirect_;
    }
}

const gf2::BitVector *
HarpAProfiler::laneDirectGrew(const gf2::BitVector &direct)
{
    // The lane group detected growth of this lane's direct set — the
    // exact condition the popcount check in observe() fires on.
    // Predictions are a pure function of the direct set, so absorbing
    // it and recomputing reproduces the scalar profiler's state; the
    // group folds the returned predictions into the lane's identified
    // accumulation (the scalar identified_ |= predictedIndirect_).
    identifiedDirect_ = direct;
    lastDirectCount_ = identifiedDirect_.popcount();
    recomputePredictions();
    return &predictedIndirect_;
}

void
HarpAProfiler::recomputePredictions()
{
    // Enumerate uncorrectable combinations of the known direct-at-risk
    // cells and mark the miscorrection target of each (section 6.3.1).
    // Any subset of >= 2 data-cell failures is uncorrectable for a SEC
    // code; its syndrome is the XOR of the member columns.
    const std::vector<std::size_t> cells = identifiedDirect_.setBits();
    const std::size_t m = cells.size();
    // 2^m enumeration; the paper's regime has m <= 8. Guard very large m
    // by falling back to pairs+triples, which dominate in practice.
    constexpr std::size_t enum_limit = 16;
    predictedIndirect_.fill(false);
    auto consider = [&](std::uint32_t syndrome) {
        const auto target = code_.syndromeToPosition(syndrome);
        if (target && code_.isDataPosition(*target) &&
            !identifiedDirect_.get(*target)) {
            predictedIndirect_.set(*target, true);
        }
    };
    if (m <= enum_limit) {
        for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << m);
             ++mask) {
            if (std::popcount(mask) < 2)
                continue;
            std::uint32_t syndrome = 0;
            for (std::size_t i = 0; i < m; ++i)
                if ((mask >> i) & 1)
                    syndrome ^= code_.dataColumn(cells[i]);
            consider(syndrome);
        }
        return;
    }
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = i + 1; j < m; ++j) {
            const std::uint32_t pair = code_.dataColumn(cells[i]) ^
                                       code_.dataColumn(cells[j]);
            consider(pair);
            for (std::size_t l = j + 1; l < m; ++l)
                consider(pair ^ code_.dataColumn(cells[l]));
        }
    }
}

} // namespace harp::core
