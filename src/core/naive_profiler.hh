/**
 * @file
 * Naive baseline profiler (HARP section 7.1.1).
 *
 * Represents the vast majority of prior active-profiling proposals: it
 * programs worst-case data patterns and identifies a bit as at-risk when
 * it observes the bit flip in the post-correction read data. It has no
 * knowledge of (or visibility into) the on-die ECC function.
 */

#ifndef HARP_CORE_NAIVE_PROFILER_HH
#define HARP_CORE_NAIVE_PROFILER_HH

#include "core/profiler.hh"

namespace harp::core {

/**
 * Post-correction-observation profiler without on-die ECC knowledge.
 */
class NaiveProfiler : public Profiler
{
  public:
    explicit NaiveProfiler(std::size_t k);

    std::string name() const override { return "Naive"; }

    /** Naive programs the suggested pattern verbatim. */
    bool chooseDatawordInto(std::size_t round,
                            const gf2::BitVector &suggested,
                            common::Xoshiro256 &rng,
                            gf2::BitVector &out) override
    {
        (void)round;
        (void)suggested;
        (void)rng;
        (void)out;
        return true;
    }

    void observe(const RoundObservation &obs) override;

    /** Naive's observe is pure positionwise accumulation: lane-native
     *  groups replay it as identified |= written ^ post. */
    LaneObserveKind laneObserveKind() const override
    {
        return LaneObserveKind::PostCorrection;
    }

    bool cleanObserveIsNoOp() const override { return true; }
};

} // namespace harp::core

#endif // HARP_CORE_NAIVE_PROFILER_HH
