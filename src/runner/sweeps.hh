/**
 * @file
 * Standard sweep axes and helpers shared by the experiment specs — the
 * paper's canonical parameter values, previously copy-pasted across the
 * bench binaries as bench/bench_common.hh.
 */

#ifndef HARP_RUNNER_SWEEPS_HH
#define HARP_RUNNER_SWEEPS_HH

#include <cstddef>
#include <vector>

#include "core/coverage_experiment.hh"
#include "runner/experiment_spec.hh"
#include "runner/param.hh"

namespace harp::runner {

/** Per-bit pre-correction error probabilities evaluated in the paper. */
inline const std::vector<double> paperProbabilities = {0.25, 0.50, 0.75,
                                                       1.00};

/** Pre-correction error counts evaluated in Figs. 6-10. */
inline const std::vector<std::size_t> paperErrorCounts = {2, 3, 4, 5};

/** Axis over the paper's per-bit probabilities ("prob"). */
inline ParamAxis
probabilityAxis()
{
    ParamAxis axis{"prob", {}};
    for (const double p : paperProbabilities)
        axis.values.emplace_back(p);
    return axis;
}

/** Axis over the paper's pre-correction error counts ("pre_errors"). */
inline ParamAxis
preErrorAxis()
{
    ParamAxis axis{"pre_errors", {}};
    for (const std::size_t n : paperErrorCounts)
        axis.values.emplace_back(n);
    return axis;
}

/** Logarithmically spaced profiling-round checkpoints for curve output. */
inline std::vector<std::size_t>
roundCheckpoints(std::size_t rounds)
{
    std::vector<std::size_t> points;
    for (std::size_t r = 1; r <= rounds; r *= 2)
        points.push_back(r);
    if (points.empty() || points.back() != rounds)
        points.push_back(rounds);
    return points;
}

/** JSON array of checkpoint round numbers. */
inline JsonValue
checkpointsJson(const std::vector<std::size_t> &checkpoints)
{
    JsonValue arr = JsonValue::array();
    for (const std::size_t cp : checkpoints)
        arr.push(JsonValue(cp));
    return arr;
}

/**
 * The profiling-engine selector shared by every spec that drives
 * rounds: `--engine scalar`, `--engine sliced64` or
 * `--engine sliced256`. Results are bit-identical under all three
 * (equal campaign result_hashes); the sliced engines batch 64 or 256
 * ECC words per lane operation on the hot path.
 */
inline TunableSpec
engineTunable()
{
    return {"engine", "sliced64",
            "profiling-round engine: scalar | sliced64 | sliced256 "
            "(bit-identical results)"};
}

/** Engine selection from the standard tunable. */
inline core::EngineKind
engineFromContext(const RunContext &ctx)
{
    return core::engineKindFromName(ctx.getString("engine", "sliced64"));
}

/** The Monte-Carlo scale tunables shared by the coverage-style specs. */
inline std::vector<TunableSpec>
coverageTunables()
{
    return {
        {"k", "64", "dataword length of the on-die ECC code"},
        {"codes", "8", "randomly generated codes per point"},
        {"words", "24", "simulated ECC words per code"},
        {"rounds", "128", "active-profiling rounds"},
        engineTunable(),
    };
}

/** Populate a coverage config from the standard tunables. */
inline core::CoverageConfig
coverageConfigFromContext(const RunContext &ctx)
{
    core::CoverageConfig config;
    config.k = static_cast<std::size_t>(ctx.getInt("k", 64));
    config.numCodes = static_cast<std::size_t>(ctx.getInt("codes", 8));
    config.wordsPerCode =
        static_cast<std::size_t>(ctx.getInt("words", 24));
    config.rounds = static_cast<std::size_t>(ctx.getInt("rounds", 128));
    config.seed = ctx.seed();
    config.threads = ctx.threads();
    config.engine = engineFromContext(ctx);
    return config;
}

} // namespace harp::runner

#endif // HARP_RUNNER_SWEEPS_HH
