/**
 * @file
 * Experiment specs for the example walkthroughs: the quickstart
 * profiling demo, BEER-style ECC reverse engineering, the end-to-end
 * retention case study on the full memory system, and the secondary-ECC
 * sizing walkthrough. The narrative versions of these flows live in
 * docs/ARCHITECTURE.md; here they are campaign experiments with
 * machine-readable results.
 */

#include <optional>
#include <vector>

#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "core/beep_profiler.hh"
#include "core/data_pattern.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "ecc/extended_hamming_code.hh"
#include "ecc/hamming_code.hh"
#include "gf2/linear_solver.hh"
#include "memsys/memory_controller.hh"
#include "runner/registry.hh"
#include "runner/sweeps.hh"
#include "sat/cnf_builder.hh"

namespace harp::runner {

namespace {

using namespace harp;

ExperimentSpec
makeQuickstart()
{
    ExperimentSpec spec;
    spec.name = "quickstart";
    spec.description =
        "HARP-U vs. Naive profiling of one simulated ECC word";
    spec.labels = {"example"};
    spec.grid = ParamGrid();
    spec.tunables = {
        {"rounds", "32", "profiling rounds"},
        {"pre_errors", "4", "at-risk cells in the word"},
        {"prob", "0.5", "per-bit failure probability of at-risk cells"},
    };
    spec.schema = {
        {"direct_at_risk", JsonType::Int, "ground-truth direct bits"},
        {"indirect_at_risk", JsonType::Int, "ground-truth indirect bits"},
        {"harp_direct_coverage", JsonType::Int,
         "direct bits HARP-U identified"},
        {"naive_direct_coverage", JsonType::Int,
         "direct bits Naive identified"},
        {"max_simultaneous_with_harp_profile", JsonType::Int,
         "simultaneous post-correction errors still possible under "
         "HARP-U's profile"},
    };
    spec.run = [](const RunContext &ctx) {
        const auto rounds =
            static_cast<std::size_t>(ctx.getInt("rounds", 32));
        const auto pre_errors =
            static_cast<std::size_t>(ctx.getInt("pre_errors", 4));
        const double prob = ctx.getDouble("prob", 0.5);

        common::Xoshiro256 code_rng(ctx.seed());
        const ecc::HammingCode on_die =
            ecc::HammingCode::randomSec(64, code_rng);
        common::Xoshiro256 fault_rng(ctx.seed() + 1);
        const fault::WordFaultModel faults =
            fault::WordFaultModel::makeUniformFixedCount(
                on_die.n(), pre_errors, prob, fault_rng);

        core::NaiveProfiler naive(on_die.k());
        core::HarpUProfiler harp(on_die.k());
        core::RoundEngine engine(on_die, faults,
                                 core::PatternKind::Random,
                                 ctx.seed() + 2);
        std::vector<core::Profiler *> profilers = {&naive, &harp};
        for (std::size_t r = 0; r < rounds; ++r)
            engine.runRound(profilers);

        const core::AtRiskAnalyzer analyzer(on_die, faults);
        const auto coverage = [&](const core::Profiler &p) {
            gf2::BitVector covered = p.identified();
            covered &= analyzer.directAtRisk();
            return covered.popcount();
        };
        JsonValue metrics = JsonValue::object();
        metrics.set("direct_at_risk",
                    JsonValue(analyzer.directAtRisk().popcount()));
        metrics.set("indirect_at_risk",
                    JsonValue(analyzer.indirectAtRisk().popcount()));
        metrics.set("harp_direct_coverage", JsonValue(coverage(harp)));
        metrics.set("naive_direct_coverage", JsonValue(coverage(naive)));
        metrics.set(
            "max_simultaneous_with_harp_profile",
            JsonValue(analyzer.maxSimultaneousErrors(harp.identified())));
        return metrics;
    };
    return spec;
}

/** Oracle for one BEER retention experiment: exactly cells {i, j} fail;
 *  returns the observed post-correction error positions, or nullopt
 *  when no dataword can charge both cells. */
std::optional<std::vector<std::size_t>>
runPairExperiment(const ecc::HammingCode &code, std::size_t i,
                  std::size_t j)
{
    gf2::ConstraintSystem cs(code.k());
    for (const std::size_t cell : {i, j}) {
        if (cell < code.k())
            cs.pinVariable(cell, true);
        else
            cs.addConstraint(code.parityRow(cell - code.k()), true);
    }
    const auto pattern = cs.solveAny();
    if (!pattern)
        return std::nullopt;
    gf2::BitVector received = code.encode(*pattern);
    received.flip(i);
    received.flip(j);
    const ecc::DecodeResult decoded = code.decode(received);
    gf2::BitVector diff = decoded.dataword;
    diff ^= *pattern;
    return diff.setBits();
}

ExperimentSpec
makeBeerReverseEngineering()
{
    ExperimentSpec spec;
    spec.name = "beer_reverse_engineering";
    spec.description =
        "BEER: recover a hidden on-die SEC code from pair-failure "
        "experiments via SAT";
    spec.labels = {"example"};
    spec.grid = ParamGrid();
    spec.tunables = {
        {"k", "8", "dataword length of the hidden code (<= 16)"},
    };
    spec.schema = {
        {"experiments", JsonType::Int, "pair experiments run"},
        {"miscorrections", JsonType::Int,
         "experiments that exposed a miscorrection"},
        {"cnf_vars", JsonType::Int, "SAT variables"},
        {"cnf_clauses", JsonType::Int, "SAT clauses"},
        {"recovered_exact", JsonType::Bool,
         "recovered parity-check columns are bit-exact"},
        {"solution_unique", JsonType::Bool,
         "UNSAT after blocking the model (BEER's uniqueness check)"},
    };
    spec.run = [](const RunContext &ctx) {
        const auto k = static_cast<std::size_t>(ctx.getInt("k", 8));
        if (k > 16)
            throw std::runtime_error(
                "beer_reverse_engineering supports k <= 16 (SAT "
                "instance size)");

        common::Xoshiro256 rng(ctx.seed());
        const ecc::HammingCode hidden =
            ecc::HammingCode::randomSec(k, rng);
        const std::size_t p = hidden.p();

        sat::CnfBuilder cnf;
        // x[c][b]: bit b of hidden data column c.
        std::vector<std::vector<sat::Var>> x(k);
        for (std::size_t c = 0; c < k; ++c)
            x[c] = cnf.newVars(p);
        const auto lit = [&](std::size_t c, std::size_t b) {
            return sat::Lit::make(x[c][b], true);
        };

        // Structural constraints: weight >= 2 and pairwise-distinct
        // columns (systematic code, no collision with identity parity
        // columns).
        for (std::size_t c = 0; c < k; ++c) {
            sat::Clause nonzero;
            for (std::size_t b = 0; b < p; ++b)
                nonzero.push_back(lit(c, b));
            cnf.addClause(nonzero);
            for (std::size_t b = 0; b < p; ++b) {
                sat::Clause not_weight1;
                not_weight1.push_back(~lit(c, b));
                for (std::size_t b2 = 0; b2 < p; ++b2)
                    if (b2 != b)
                        not_weight1.push_back(lit(c, b2));
                cnf.addClause(not_weight1);
            }
        }
        for (std::size_t c1 = 0; c1 < k; ++c1) {
            for (std::size_t c2 = c1 + 1; c2 < k; ++c2) {
                std::vector<sat::Lit> diffs;
                for (std::size_t b = 0; b < p; ++b) {
                    const sat::Var d = cnf.newVar();
                    cnf.addXor({lit(c1, b), lit(c2, b),
                                sat::Lit::make(d, true)},
                               false);
                    diffs.push_back(sat::Lit::make(d, true));
                }
                cnf.addClause(sat::Clause(diffs.begin(), diffs.end()));
            }
        }

        // Observation constraints from every pair experiment.
        std::size_t experiments = 0, miscorrections = 0;
        const auto column_known = [&](std::size_t cell) {
            return cell >= k; // parity columns are identity
        };
        for (std::size_t i = 0; i < hidden.n(); ++i) {
            for (std::size_t j = i + 1; j < hidden.n(); ++j) {
                const auto observed = runPairExperiment(hidden, i, j);
                if (!observed)
                    continue;
                ++experiments;
                std::vector<std::size_t> extras;
                for (const std::size_t e : *observed)
                    if (e != i && e != j)
                        extras.push_back(e);
                if (!extras.empty())
                    ++miscorrections;

                for (std::size_t b = 0; b < p; ++b) {
                    std::vector<sat::Lit> xor_lits;
                    bool constant = false;
                    for (const std::size_t cell : {i, j}) {
                        if (column_known(cell))
                            constant ^=
                                ((hidden.codewordColumn(cell) >> b) & 1) !=
                                0;
                        else
                            xor_lits.push_back(lit(cell, b));
                    }
                    if (!extras.empty()) {
                        // s == H[m]: per-bit equality.
                        const std::size_t m = extras.front();
                        xor_lits.push_back(lit(m, b));
                        cnf.addXor(xor_lits, constant);
                    }
                }
                if (extras.empty()) {
                    // No miscorrection: s differs from every other data
                    // column.
                    for (std::size_t c = 0; c < k; ++c) {
                        if (c == i || c == j)
                            continue;
                        std::vector<sat::Lit> diffs;
                        for (std::size_t b = 0; b < p; ++b) {
                            const sat::Var d = cnf.newVar();
                            std::vector<sat::Lit> xor_def;
                            bool constant = false;
                            for (const std::size_t cell : {i, j}) {
                                if (column_known(cell))
                                    constant ^=
                                        ((hidden.codewordColumn(cell) >>
                                          b) &
                                         1) != 0;
                                else
                                    xor_def.push_back(lit(cell, b));
                            }
                            xor_def.push_back(lit(c, b));
                            xor_def.push_back(sat::Lit::make(d, true));
                            cnf.addXor(xor_def, constant);
                            diffs.push_back(sat::Lit::make(d, true));
                        }
                        cnf.addClause(
                            sat::Clause(diffs.begin(), diffs.end()));
                    }
                }
            }
        }

        const std::size_t cnf_vars = cnf.solver().numVars();
        const std::size_t cnf_clauses = cnf.solver().numClauses();
        if (cnf.solver().solve() != sat::SolveResult::Sat)
            throw std::runtime_error(
                "BEER constraints UNSAT (should never happen)");
        std::vector<std::uint32_t> recovered(k, 0);
        for (std::size_t c = 0; c < k; ++c)
            for (std::size_t b = 0; b < p; ++b)
                if (cnf.solver().modelValue(x[c][b]))
                    recovered[c] |= std::uint32_t{1} << b;
        bool exact = true;
        for (std::size_t c = 0; c < k; ++c)
            exact = exact && (recovered[c] == hidden.dataColumn(c));

        // Uniqueness: block this model and ask again.
        sat::Clause blocking;
        for (std::size_t c = 0; c < k; ++c)
            for (std::size_t b = 0; b < p; ++b)
                blocking.push_back(sat::Lit::make(
                    x[c][b], !cnf.solver().modelValue(x[c][b])));
        cnf.addClause(blocking);
        const bool unique =
            cnf.solver().solve() == sat::SolveResult::Unsat;

        JsonValue metrics = JsonValue::object();
        metrics.set("experiments", JsonValue(experiments));
        metrics.set("miscorrections", JsonValue(miscorrections));
        metrics.set("cnf_vars", JsonValue(cnf_vars));
        metrics.set("cnf_clauses", JsonValue(cnf_clauses));
        metrics.set("recovered_exact", JsonValue(exact));
        metrics.set("solution_unique", JsonValue(unique));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeRetentionCaseStudy()
{
    ExperimentSpec spec;
    spec.name = "retention_case_study";
    spec.description =
        "End-to-end retention study on the full memory system "
        "(active + reactive phases)";
    spec.labels = {"example"};
    spec.grid = ParamGrid();
    spec.tunables = {
        {"words", "256", "ECC words in the chip"},
        {"rber", "0.01", "raw bit error rate of the retention regime"},
        {"prob", "0.5", "per-bit failure probability of at-risk cells"},
        {"active_rounds", "64", "active-profiling rounds per word"},
        {"accesses", "20000", "normal-operation accesses"},
    };
    spec.schema = {
        {"at_risk_cells", JsonType::Int, "ground-truth at-risk cells"},
        {"active_profiled", JsonType::Int,
         "bits profiled by the active phase"},
        {"secondary_corrections", JsonType::Int,
         "secondary-ECC corrections during normal operation"},
        {"reactive_identifications", JsonType::Int,
         "bits identified reactively"},
        {"repaired_bit_reads", JsonType::Int,
         "reads fixed by the repair mechanism"},
        {"scrubs", JsonType::Int, "patrol scrub passes"},
        {"scrub_writebacks", JsonType::Int, "scrub writebacks"},
        {"uncorrectable_events", JsonType::Int,
         "detected-uncorrectable reads (expect 0)"},
        {"silent_corruptions", JsonType::Int,
         "reads returning wrong data unnoticed (expect 0)"},
        {"repair_capacity_bits", JsonType::Int,
         "total profile size consumed"},
        {"repair_capacity_fraction", JsonType::Double,
         "profile size / data capacity"},
    };
    spec.run = [](const RunContext &ctx) {
        const auto num_words =
            static_cast<std::size_t>(ctx.getInt("words", 256));
        const double rber = ctx.getDouble("rber", 0.01);
        const double prob = ctx.getDouble("prob", 0.5);
        const auto active_rounds =
            static_cast<std::size_t>(ctx.getInt("active_rounds", 64));
        const auto accesses =
            static_cast<std::size_t>(ctx.getInt("accesses", 20000));
        const std::uint64_t seed = ctx.seed();

        common::Xoshiro256 code_rng(seed);
        const ecc::HammingCode on_die =
            ecc::HammingCode::randomSec(64, code_rng);
        mem::MemoryChip chip(on_die, num_words);
        common::Xoshiro256 secondary_rng(seed + 1);
        mem::MemoryController controller(
            chip,
            ecc::ExtendedHammingCode::randomSecDed(64, secondary_rng));

        common::Xoshiro256 fault_rng(seed + 2);
        std::size_t total_at_risk = 0;
        for (std::size_t w = 0; w < num_words; ++w) {
            auto model = fault::WordFaultModel::makeUniformRber(
                on_die.n(), rber, prob, fault_rng);
            total_at_risk += model.numFaults();
            chip.setFaultModel(w, std::move(model));
        }

        // Phase 1: HARP active profiling over the bypass read path.
        common::Xoshiro256 retention_rng(seed + 3);
        for (std::size_t w = 0; w < num_words; ++w) {
            core::PatternGenerator patterns(
                core::PatternKind::Random, 64,
                common::deriveSeed(seed, {0xACF1u, w}));
            for (std::size_t r = 0; r < active_rounds; ++r) {
                const gf2::BitVector pattern = patterns.pattern(r);
                controller.write(w, pattern);
                chip.retentionTick(w, retention_rng);
                gf2::BitVector raw = controller.readRaw(w);
                raw ^= pattern;
                raw.forEachSetBit([&](std::size_t bit) {
                    controller.profile().markAtRisk(w, bit);
                });
            }
        }
        const std::size_t active_found =
            controller.profile().totalAtRisk();

        // Phase 2: normal operation with reactive profiling + patrol
        // scrubbing.
        common::Xoshiro256 workload_rng(seed + 4);
        std::vector<gf2::BitVector> shadow(num_words,
                                           gf2::BitVector(64));
        for (std::size_t w = 0; w < num_words; ++w) {
            shadow[w] = gf2::BitVector::random(64, workload_rng);
            controller.write(w, shadow[w]);
        }
        std::size_t silent_corruptions = 0;
        const std::size_t scrub_interval = num_words * 4;
        for (std::size_t a = 0; a < accesses; ++a) {
            const std::size_t w = workload_rng.nextBelow(num_words);
            if (workload_rng.nextBernoulli(0.5)) {
                shadow[w] = gf2::BitVector::random(64, workload_rng);
                controller.write(w, shadow[w]);
            } else {
                chip.retentionTick(w, retention_rng);
                const mem::ControllerReadResult r = controller.read(w);
                if (!r.corrupt && !(r.dataword == shadow[w]))
                    ++silent_corruptions;
            }
            if (a % scrub_interval == scrub_interval - 1)
                controller.scrubAll();
        }

        const mem::ControllerStats &stats = controller.stats();
        JsonValue metrics = JsonValue::object();
        metrics.set("at_risk_cells", JsonValue(total_at_risk));
        metrics.set("active_profiled", JsonValue(active_found));
        metrics.set("secondary_corrections",
                    JsonValue(stats.secondaryCorrections));
        metrics.set("reactive_identifications",
                    JsonValue(stats.reactiveIdentifications));
        metrics.set("repaired_bit_reads", JsonValue(stats.repairedBits));
        metrics.set("scrubs", JsonValue(stats.scrubs));
        metrics.set("scrub_writebacks", JsonValue(stats.scrubWritebacks));
        metrics.set("uncorrectable_events",
                    JsonValue(stats.uncorrectableEvents));
        metrics.set("silent_corruptions", JsonValue(silent_corruptions));
        metrics.set("repair_capacity_bits",
                    JsonValue(controller.profile().totalAtRisk()));
        metrics.set(
            "repair_capacity_fraction",
            JsonValue(static_cast<double>(
                          controller.profile().totalAtRisk()) /
                      static_cast<double>(num_words * 64)));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeSecondaryEccSizing()
{
    ExperimentSpec spec;
    spec.name = "secondary_ecc_sizing";
    spec.description =
        "Required secondary-ECC correction capability per round per "
        "profiler";
    spec.labels = {"example"};
    spec.grid = ParamGrid();
    spec.tunables = {
        {"pre_errors", "5", "at-risk cells in the word"},
        {"prob", "0.5", "per-bit failure probability of at-risk cells"},
        {"rounds", "64", "profiling rounds"},
    };
    spec.schema = {
        {"direct_at_risk", JsonType::Int, "ground-truth direct bits"},
        {"indirect_at_risk", JsonType::Int, "ground-truth indirect bits"},
        {"feasible_patterns", JsonType::Int,
         "feasible pre-correction error patterns"},
        {"checkpoints", JsonType::Array,
         "round numbers (0 = before profiling)"},
        {"required_capability", JsonType::Object,
         "per profiler: max simultaneous unrepaired errors at each "
         "checkpoint"},
    };
    spec.run = [](const RunContext &ctx) {
        const auto pre_errors =
            static_cast<std::size_t>(ctx.getInt("pre_errors", 5));
        const double prob = ctx.getDouble("prob", 0.5);
        const auto rounds =
            static_cast<std::size_t>(ctx.getInt("rounds", 64));

        common::Xoshiro256 code_rng(ctx.seed());
        const ecc::HammingCode on_die =
            ecc::HammingCode::randomSec(64, code_rng);
        common::Xoshiro256 fault_rng(ctx.seed() + 1);
        const fault::WordFaultModel faults =
            fault::WordFaultModel::makeUniformFixedCount(
                on_die.n(), pre_errors, prob, fault_rng);
        const core::AtRiskAnalyzer analyzer(on_die, faults);

        core::NaiveProfiler naive(on_die.k());
        core::BeepProfiler beep(on_die);
        core::HarpUProfiler harp_u(on_die.k());
        core::HarpAProfiler harp_a(on_die);
        std::vector<core::Profiler *> profilers = {&naive, &beep,
                                                   &harp_u, &harp_a};
        core::RoundEngine engine(on_die, faults,
                                 core::PatternKind::Random,
                                 ctx.seed() + 2);

        // Checkpoints: round 0, the first 8 rounds, powers of two, and
        // the final round.
        std::vector<std::size_t> checkpoints = {0};
        std::vector<std::vector<std::size_t>> capability(
            profilers.size());
        const gf2::BitVector empty(on_die.k());
        for (std::size_t p = 0; p < profilers.size(); ++p)
            capability[p].push_back(
                analyzer.maxSimultaneousErrors(empty));
        for (std::size_t r = 0; r < rounds; ++r) {
            engine.runRound(profilers);
            const bool checkpoint =
                (r + 1) <= 8 || ((r + 1) & r) == 0 || r + 1 == rounds;
            if (!checkpoint)
                continue;
            checkpoints.push_back(r + 1);
            for (std::size_t p = 0; p < profilers.size(); ++p)
                capability[p].push_back(analyzer.maxSimultaneousErrors(
                    profilers[p]->identified()));
        }

        JsonValue cap = JsonValue::object();
        for (std::size_t p = 0; p < profilers.size(); ++p) {
            JsonValue arr = JsonValue::array();
            for (const std::size_t v : capability[p])
                arr.push(JsonValue(v));
            cap.set(profilers[p]->name(), std::move(arr));
        }
        JsonValue metrics = JsonValue::object();
        metrics.set("direct_at_risk",
                    JsonValue(analyzer.directAtRisk().popcount()));
        metrics.set("indirect_at_risk",
                    JsonValue(analyzer.indirectAtRisk().popcount()));
        metrics.set("feasible_patterns",
                    JsonValue(analyzer.outcomes().size()));
        metrics.set("checkpoints", checkpointsJson(checkpoints));
        metrics.set("required_capability", std::move(cap));
        return metrics;
    };
    return spec;
}

} // namespace

void
registerExampleSpecs(Registry &registry)
{
    registry.add(makeQuickstart());
    registry.add(makeBeerReverseEngineering());
    registry.add(makeRetentionCaseStudy());
    registry.add(makeSecondaryEccSizing());
}

} // namespace harp::runner
