/**
 * @file
 * Campaign driver: expands each selected experiment's parameter grid,
 * shards (point, repeat) jobs across a thread pool, validates every
 * metrics object against the experiment's schema, and emits
 *
 *  - `<out>/<experiment>.jsonl` — one JSON line per (point, repeat) in
 *    grid order, containing only deterministic content, and
 *  - `<out>/summary.json`       — per-experiment wall time, throughput,
 *    point-latency percentiles and a 64-bit result hash over the JSONL
 *    bytes.
 *
 * Seeds are derived per (experiment name, point index, repeat index)
 * from the campaign seed, so a fixed `--seed` produces bit-identical
 * JSONL files — and therefore result hashes — for any `--threads`.
 */

#ifndef HARP_RUNNER_CAMPAIGN_HH
#define HARP_RUNNER_CAMPAIGN_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "runner/registry.hh"

namespace harp::runner {

/** Everything `harp_run` forwards into one campaign. */
struct CampaignOptions
{
    /** Campaign seed; every job seed derives from it. */
    std::uint64_t seed = 1;
    /** Worker threads for sharding grid points; 0 = hardware
     *  concurrency. Experiments themselves run single-threaded. */
    std::size_t threads = 0;
    /** Repetitions of every grid point (distinct derived seeds). */
    std::size_t repeat = 1;
    /** Print the expanded jobs instead of running them. */
    bool dryRun = false;
    /** Omit machine-dependent timing fields (and the run-shape
     *  `threads` field) from summary.json, leaving only deterministic
     *  content — a batch summary then compares byte-for-byte against a
     *  harpd-served one. */
    bool noTimings = false;
    /** Output directory for JSONL and summary files. */
    std::string outDir = "results";
    /** Tunable/axis overrides from the command line (name -> text). */
    std::map<std::string, std::string> overrides;
};

/** Per-experiment outcome of a campaign. */
struct ExperimentRunSummary
{
    std::string name;
    std::size_t points = 0;
    std::size_t repeats = 1;
    std::string jsonlPath;
    /** FNV-1a over the experiment's JSONL bytes (deterministic). */
    std::uint64_t resultHash = 0;
    double wallSeconds = 0.0;
    double jobsPerSecond = 0.0;
    /** Per-(point, repeat) latency statistics, seconds. */
    double jobSecondsMean = 0.0;
    double jobSecondsP50 = 0.0;
    double jobSecondsP90 = 0.0;
    double jobSecondsMax = 0.0;
};

/** Whole-campaign outcome. */
struct CampaignSummary
{
    std::uint64_t seed = 1;
    std::size_t threads = 0;
    std::size_t repeat = 1;
    std::vector<ExperimentRunSummary> experiments;
    double totalWallSeconds = 0.0;

    /** The summary.json document. With @p include_timings false, only
     *  deterministic content remains: timing fields, the `threads`
     *  run-shape field and the jsonl directory prefix are dropped
     *  (`jsonl` becomes the bare file name), so two runs of the same
     *  (specs, seed, repeat) — batch or served, any thread count —
     *  serialize to identical bytes. */
    JsonValue toJson(bool include_timings = true) const;
};

/** @p hash rendered as 16 lowercase hex digits. */
std::string formatResultHash(std::uint64_t hash);

/**
 * Heuristic cost key of one grid point: the product of its
 * integer-valued parameters (clamped to >= 1). Monte-Carlo experiment
 * cost scales multiplicatively with scale-like integer axes (rounds,
 * words, pre_errors, on_die_t, ...), so on heterogeneous sweeps the
 * campaign driver submits jobs longest-expected-first to the thread
 * pool — the scheduling analogue of longest-processing-time-first —
 * which cuts tail latency without changing results: output stays in
 * grid-expansion job order and byte-identical for any `--threads`.
 */
double jobCostKey(const ParamPoint &point);

/**
 * Run @p specs under @p options, logging progress to @p log.
 *
 * @throws std::runtime_error when an experiment's metrics fail schema
 *         validation or an output file cannot be written.
 */
CampaignSummary runCampaign(const std::vector<const ExperimentSpec *> &specs,
                            const CampaignOptions &options,
                            std::ostream &log);

} // namespace harp::runner

#endif // HARP_RUNNER_CAMPAIGN_HH
