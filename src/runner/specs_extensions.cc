/**
 * @file
 * Experiment specs for the extension studies beyond the paper's
 * evaluation: stronger (t-error-correcting) on-die ECC — both the
 * exact small-word bound study and the Monte-Carlo `bch_t_sweep` on
 * the engine-selectable fast path — low-probability errors vs. the
 * active phase, and secondary ECC words interleaved across on-die
 * words.
 */

#include <algorithm>
#include <functional>
#include <memory>
#include <set>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "core/at_risk_analyzer.hh"
#include "core/data_pattern.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "core/sliced_round_engine.hh"
#include "ecc/bch_code.hh"
#include "ecc/bch_general.hh"
#include "ecc/extended_hamming_code.hh"
#include "ecc/hamming_code.hh"
#include "ecc/sliced_bch.hh"
#include "fault/fault_model.hh"
#include "gf2/linear_solver.hh"
#include "runner/registry.hh"
#include "runner/sweeps.hh"

namespace harp::runner {

namespace {

using namespace harp;

/**
 * Drive every word's profilers through blocks of <= W*64 sliced BCH
 * lanes. One prewarmed datapath is built up front; every block task
 * runs a *copy* of it — copies share the thread-safe syndrome memo
 * (ecc/sliced_bch_memo.hh) but own private scratch, so blocks shard
 * across the pool when the campaign grants inner threads. Per-lane
 * outcomes (and therefore the JSONL) are identical at any lane width
 * or thread count.
 */
template <std::size_t W>
void
driveSlicedBch(const ecc::BchCode &code,
               const std::vector<const fault::WordFaultModel *> &faults,
               const std::vector<std::uint64_t> &seeds,
               const std::vector<std::vector<core::Profiler *>> &profilers,
               std::size_t rounds, std::size_t threads)
{
    constexpr std::size_t lanes = gf2::BitSliceW<W>::laneCount;
    const std::size_t words = faults.size();
    if (words == 0)
        return;
    const ecc::SlicedBchCodeW<W> shared(code, std::min(lanes, words));
    const std::size_t num_blocks = (words + lanes - 1) / lanes;
    common::parallelFor(num_blocks, [&](std::size_t block) {
        const std::size_t begin = block * lanes;
        const std::size_t end = std::min(begin + lanes, words);
        const std::vector<const fault::WordFaultModel *> block_faults(
            faults.begin() + static_cast<std::ptrdiff_t>(begin),
            faults.begin() + static_cast<std::ptrdiff_t>(end));
        const std::vector<std::uint64_t> block_seeds(
            seeds.begin() + static_cast<std::ptrdiff_t>(begin),
            seeds.begin() + static_cast<std::ptrdiff_t>(end));
        std::vector<std::vector<core::Profiler *>> block_profilers(
            profilers.begin() + static_cast<std::ptrdiff_t>(begin),
            profilers.begin() + static_cast<std::ptrdiff_t>(end));
        // The copy shares the memo thread-safely and owns its scratch;
        // engines must never share one datapath *instance* across
        // workers (see ecc/sliced_bch.hh).
        const ecc::SlicedBchCodeW<W> datapath(shared);
        core::SlicedRoundEngineW<W> engine(datapath, block_faults,
                                           core::PatternKind::Random,
                                           block_seeds);
        for (std::size_t r = 0; r < rounds; ++r)
            engine.runRound(block_profilers);
    }, threads);
}

/**
 * Hamming sibling of driveSlicedBch: heterogeneous per-lane SEC codes
 * (equal k) pack straight into blocks of <= W*64 lanes, ragged tail
 * included. Stateless datapath, so blocks are trivially independent.
 */
template <std::size_t W>
void
driveSlicedHamming(
    const std::vector<const ecc::HammingCode *> &codes,
    const std::vector<const fault::WordFaultModel *> &faults,
    const std::vector<std::uint64_t> &seeds,
    const std::vector<std::vector<core::Profiler *>> &profilers,
    std::size_t rounds, std::size_t threads)
{
    constexpr std::size_t lanes = gf2::BitSliceW<W>::laneCount;
    const std::size_t words = codes.size();
    const std::size_t num_blocks = (words + lanes - 1) / lanes;
    common::parallelFor(num_blocks, [&](std::size_t block) {
        const std::size_t begin = block * lanes;
        const std::size_t end = std::min(begin + lanes, words);
        const std::vector<const ecc::HammingCode *> block_codes(
            codes.begin() + static_cast<std::ptrdiff_t>(begin),
            codes.begin() + static_cast<std::ptrdiff_t>(end));
        const std::vector<const fault::WordFaultModel *> block_faults(
            faults.begin() + static_cast<std::ptrdiff_t>(begin),
            faults.begin() + static_cast<std::ptrdiff_t>(end));
        const std::vector<std::uint64_t> block_seeds(
            seeds.begin() + static_cast<std::ptrdiff_t>(begin),
            seeds.begin() + static_cast<std::ptrdiff_t>(end));
        std::vector<std::vector<core::Profiler *>> block_profilers(
            profilers.begin() + static_cast<std::ptrdiff_t>(begin),
            profilers.begin() + static_cast<std::ptrdiff_t>(end));
        core::SlicedRoundEngineW<W> engine(block_codes, block_faults,
                                           core::PatternKind::Random,
                                           block_seeds);
        for (std::size_t r = 0; r < rounds; ++r)
            engine.runRound(block_profilers);
    }, threads);
}

/** True iff some dataword charges every cell of the subset @p mask. */
bool
feasibleOnBch(const ecc::BchCode &code, const fault::WordFaultModel &fm,
              std::uint32_t mask)
{
    gf2::ConstraintSystem cs(code.k());
    for (std::size_t i = 0; i < fm.numFaults(); ++i) {
        if (((mask >> i) & 1) == 0)
            continue;
        const std::size_t pos = fm.faults()[i].position;
        if (pos < code.k())
            cs.pinVariable(pos, true);
        else
            cs.addConstraint(code.parityRow(pos - code.k()), true);
    }
    return cs.consistent();
}

/**
 * Ground truth by enumeration of feasible failing subsets through the
 * general decoder (<= 2^numFaults subsets): the worst simultaneous
 * post-correction data errors over any subset, in total and restricted
 * to positions where @p unprofiled says the profile misses.
 *
 * @return {worst total errors, worst unprofiled errors}.
 */
std::pair<std::size_t, std::size_t>
worstFeasibleErrors(const ecc::BchCode &code,
                    const fault::WordFaultModel &fm,
                    const std::function<bool(std::size_t)> &unprofiled)
{
    std::size_t worst_total = 0, worst_unprofiled = 0;
    for (std::uint32_t mask = 1;
         mask < (std::uint32_t{1} << fm.numFaults()); ++mask) {
        if (!feasibleOnBch(code, fm, mask))
            continue;
        std::vector<std::size_t> failing;
        for (std::size_t i = 0; i < fm.numFaults(); ++i)
            if ((mask >> i) & 1)
                failing.push_back(fm.faults()[i].position);
        const auto errors = code.decodeErrorPattern(failing);
        worst_total = std::max(worst_total, errors.size());
        std::size_t count = 0;
        for (const std::size_t e : errors)
            if (unprofiled(e))
                ++count;
        worst_unprofiled = std::max(worst_unprofiled, count);
    }
    return {worst_total, worst_unprofiled};
}

/**
 * Generalization of the paper's key bound (section 6.3.2): with a
 * t-error-correcting on-die code and all direct-at-risk bits profiled,
 * at most t simultaneous post-correction errors remain possible. The
 * original bench evaluated t = 2 with the closed-form DEC decoder plus
 * a Berlekamp-Massey sweep; this spec sweeps t uniformly through the
 * general BCH decoder.
 */
ExperimentSpec
makeDecOnDieEcc()
{
    ExperimentSpec spec;
    spec.name = "extension_dec_on_die_ecc";
    spec.description =
        "HARP under t-error-correcting on-die BCH ECC: secondary-ECC "
        "bound equals t";
    spec.labels = {"bench", "extension"};

    ParamAxis t_axis{"on_die_t", {}};
    for (const std::size_t t : {1, 2, 3})
        t_axis.values.emplace_back(t);
    ParamAxis n_axis{"pre_errors", {}};
    for (const std::size_t n : {2, 3, 4, 5, 6})
        n_axis.values.emplace_back(n);
    spec.grid = ParamGrid({t_axis, n_axis});

    spec.tunables = {
        {"k", "64", "dataword length of the on-die BCH code"},
        {"words", "120", "simulated ECC words per point"},
        {"rounds", "128", "HARP active-profiling rounds"},
    };
    spec.schema = {
        {"code", JsonType::String, "(n,k) of the on-die BCH code"},
        {"max_simul_no_profile", JsonType::Int,
         "worst simultaneous post-correction errors with an empty "
         "profile"},
        {"max_simul_direct_profile", JsonType::Int,
         "worst simultaneous unprofiled errors once every direct bit is "
         "profiled"},
        {"bound_respected", JsonType::Bool,
         "max_simul_direct_profile <= t (the generalized HARP bound)"},
        {"words_unsafe_with_sec_secondary", JsonType::Int,
         "words where a single-error-correcting secondary ECC is "
         "insufficient"},
        {"words_unsafe_with_matched_secondary", JsonType::Int,
         "words where even a t-error-correcting secondary is "
         "insufficient (expect 0)"},
        {"harp_full_direct_coverage", JsonType::Int,
         "words whose HARP-U active phase identified every direct bit"},
        {"words", JsonType::Int, "simulated words"},
    };
    spec.run = [](const RunContext &ctx) {
        const auto t = static_cast<std::size_t>(
            ctx.point().find("on_die_t")->asInt());
        const auto n = static_cast<std::size_t>(
            ctx.point().find("pre_errors")->asInt());
        const auto k = static_cast<std::size_t>(ctx.getInt("k", 64));
        const auto words =
            static_cast<std::size_t>(ctx.getInt("words", 120));
        const auto rounds =
            static_cast<std::size_t>(ctx.getInt("rounds", 128));
        const ecc::BchCode code(k, t);

        std::size_t worst_empty_all = 0, worst_direct_all = 0;
        std::size_t unsafe_sec = 0, unsafe_matched = 0, full_coverage = 0;

        for (std::size_t w = 0; w < words; ++w) {
            common::Xoshiro256 fault_rng(
                common::deriveSeed(ctx.seed(), {0xFA17u, n, w}));
            const fault::WordFaultModel fm =
                fault::WordFaultModel::makeUniformFixedCount(code.n(), n,
                                                             0.5,
                                                             fault_rng);
            std::set<std::size_t> direct;
            for (const fault::CellFault &f : fm.faults())
                if (f.position < code.k())
                    direct.insert(f.position);

            const auto [worst_empty, worst_direct] = worstFeasibleErrors(
                code, fm,
                [&direct](std::size_t e) { return direct.count(e) == 0; });
            worst_empty_all = std::max(worst_empty_all, worst_empty);
            worst_direct_all = std::max(worst_direct_all, worst_direct);
            if (worst_direct > 1)
                ++unsafe_sec;
            if (worst_direct > t)
                ++unsafe_matched; // the generalized bound says: never

            // HARP-U active phase: bypass reads are ECC-agnostic, so
            // coverage behaviour matches the SEC case.
            core::PatternGenerator patterns(
                core::PatternKind::Random, code.k(),
                common::deriveSeed(ctx.seed(), {0xACE5u, n, w}));
            common::Xoshiro256 inject_rng(
                common::deriveSeed(ctx.seed(), {0x113Cu, n, w}));
            gf2::BitVector identified(code.k());
            for (std::size_t r = 0; r < rounds; ++r) {
                const gf2::BitVector d = patterns.pattern(r);
                const gf2::BitVector stored = code.encode(d);
                gf2::BitVector received = stored;
                received ^= fm.injectErrors(stored, inject_rng);
                gf2::BitVector raw = received.slice(0, code.k());
                raw ^= d;
                identified |= raw;
            }
            bool covered = true;
            for (const std::size_t pos : direct)
                covered = covered && identified.get(pos);
            if (covered)
                ++full_coverage;
        }

        JsonValue metrics = JsonValue::object();
        metrics.set("code", JsonValue("(" + std::to_string(code.n()) +
                                      "," + std::to_string(code.k()) +
                                      ")"));
        metrics.set("max_simul_no_profile", JsonValue(worst_empty_all));
        metrics.set("max_simul_direct_profile",
                    JsonValue(worst_direct_all));
        metrics.set("bound_respected", JsonValue(worst_direct_all <= t));
        metrics.set("words_unsafe_with_sec_secondary",
                    JsonValue(unsafe_sec));
        metrics.set("words_unsafe_with_matched_secondary",
                    JsonValue(unsafe_matched));
        metrics.set("harp_full_direct_coverage", JsonValue(full_coverage));
        metrics.set("words", JsonValue(words));
        return metrics;
    };
    return spec;
}

/**
 * Monte-Carlo sweep of the on-die code's correction capability t
 * through the round engines: the scaling study HARP section 6.3.2
 * sketches ("significantly more complex on-die ECC"), on the same
 * engine-selectable fast path as the coverage experiments. The sliced
 * engines run the BCH datapath through ecc::SlicedBchCodeW (masked
 * XOR parity/syndromes + memoized correction); `--engine scalar`,
 * `--engine sliced64` and `--engine sliced256` emit byte-identical
 * JSONL for a fixed seed.
 */
ExperimentSpec
makeBchTSweep()
{
    ExperimentSpec spec;
    spec.name = "bch_t_sweep";
    spec.description =
        "Profiler coverage and worst-case unprofiled errors under "
        "t-error-correcting on-die BCH, t swept through the general "
        "decoder";
    spec.labels = {"bench", "extension"};

    ParamAxis t_axis{"on_die_t", {}};
    for (const std::size_t t : {1, 2, 3})
        t_axis.values.emplace_back(t);
    ParamAxis n_axis{"pre_errors", {}};
    for (const std::size_t n : {2, 3, 4, 5})
        n_axis.values.emplace_back(n);
    spec.grid = ParamGrid({t_axis, n_axis});

    spec.tunables = {
        {"k", "64", "dataword length of the on-die BCH code"},
        {"words", "64", "simulated ECC words per point"},
        {"rounds", "64", "active-profiling rounds"},
        {"prob", "0.5", "per-bit failure probability of at-risk cells"},
        engineTunable(),
    };
    spec.schema = {
        {"code", JsonType::String, "(n,k) of the on-die BCH code"},
        {"words", JsonType::Int, "simulated words"},
        {"rounds", JsonType::Int, "profiling rounds per word"},
        {"naive_direct_coverage", JsonType::Double,
         "Naive: identified direct bits / ground-truth direct bits"},
        {"harpu_direct_coverage", JsonType::Double,
         "HARP-U: identified direct bits / ground-truth direct bits"},
        {"harpu_full_direct_words", JsonType::Int,
         "words whose HARP-U profile covers every direct bit"},
        {"max_simul_no_profile", JsonType::Int,
         "worst simultaneous post-correction errors with an empty "
         "profile"},
        {"max_simul_harpu_profile", JsonType::Int,
         "worst simultaneous unprofiled errors under the HARP-U "
         "profile"},
        {"bound_respected", JsonType::Bool,
         "every fully-covered word leaves <= t simultaneous unprofiled "
         "errors (the generalized HARP bound)"},
    };
    spec.run = [](const RunContext &ctx) {
        const auto t = static_cast<std::size_t>(
            ctx.point().find("on_die_t")->asInt());
        const auto n_errors = static_cast<std::size_t>(
            ctx.point().find("pre_errors")->asInt());
        const auto k = static_cast<std::size_t>(ctx.getInt("k", 64));
        const auto words =
            static_cast<std::size_t>(ctx.getInt("words", 64));
        const auto rounds =
            static_cast<std::size_t>(ctx.getInt("rounds", 64));
        const double prob = ctx.getDouble("prob", 0.5);
        const core::EngineKind engine = engineFromContext(ctx);

        const ecc::BchCode code(k, t);

        // Per-word state with the standard per-word seed derivations;
        // both engines consume the identical per-word streams.
        struct SweepWord
        {
            fault::WordFaultModel faults;
            std::unique_ptr<core::NaiveProfiler> naive;
            std::unique_ptr<core::HarpUProfiler> harp;
            std::uint64_t engineSeed = 0;
        };
        std::vector<SweepWord> sims(words);
        for (std::size_t w = 0; w < words; ++w) {
            common::Xoshiro256 fault_rng(
                common::deriveSeed(ctx.seed(), {0xFA17u, w}));
            sims[w].faults = fault::WordFaultModel::makeUniformFixedCount(
                code.n(), n_errors, prob, fault_rng);
            sims[w].naive =
                std::make_unique<core::NaiveProfiler>(code.k());
            sims[w].harp =
                std::make_unique<core::HarpUProfiler>(code.k());
            sims[w].engineSeed =
                common::deriveSeed(ctx.seed(), {0xE221u, w});
        }

        if (engine == core::EngineKind::Scalar) {
            for (SweepWord &sim : sims) {
                core::RoundEngine round_engine(code, sim.faults,
                                               core::PatternKind::Random,
                                               sim.engineSeed);
                const std::vector<core::Profiler *> ps = {
                    sim.naive.get(), sim.harp.get()};
                for (std::size_t r = 0; r < rounds; ++r)
                    round_engine.runRound(ps);
            }
        } else if (words > 0) {
            std::vector<const fault::WordFaultModel *> fault_ptrs;
            std::vector<std::uint64_t> seeds;
            std::vector<std::vector<core::Profiler *>> lane_profilers;
            for (std::size_t w = 0; w < words; ++w) {
                fault_ptrs.push_back(&sims[w].faults);
                seeds.push_back(sims[w].engineSeed);
                lane_profilers.push_back(
                    {sims[w].naive.get(), sims[w].harp.get()});
            }
            if (engine == core::EngineKind::Sliced256)
                driveSlicedBch<4>(code, fault_ptrs, seeds,
                                  lane_profilers, rounds, ctx.threads());
            else
                driveSlicedBch<1>(code, fault_ptrs, seeds,
                                  lane_profilers, rounds, ctx.threads());
        }

        // Ground truth per word by enumeration of feasible failing
        // subsets through the general decoder (<= 2^pre_errors).
        std::size_t direct_total = 0;
        std::size_t naive_found = 0, harp_found = 0;
        std::size_t full_words = 0;
        std::size_t worst_empty_all = 0, worst_harp_all = 0;
        bool bound_respected = true;
        for (const SweepWord &sim : sims) {
            std::set<std::size_t> direct;
            for (const fault::CellFault &f : sim.faults.faults())
                if (f.position < code.k())
                    direct.insert(f.position);
            direct_total += direct.size();
            bool full = true;
            for (const std::size_t pos : direct) {
                naive_found += sim.naive->identified().get(pos) ? 1 : 0;
                const bool harp_hit = sim.harp->identified().get(pos);
                harp_found += harp_hit ? 1 : 0;
                full = full && harp_hit;
            }
            if (full)
                ++full_words;

            const auto [worst_empty, worst_harp] = worstFeasibleErrors(
                code, sim.faults, [&sim](std::size_t e) {
                    return !sim.harp->identified().get(e);
                });
            worst_empty_all = std::max(worst_empty_all, worst_empty);
            worst_harp_all = std::max(worst_harp_all, worst_harp);
            if (full && worst_harp > t)
                bound_respected = false;
        }

        JsonValue metrics = JsonValue::object();
        metrics.set("code", JsonValue("(" + std::to_string(code.n()) +
                                      "," + std::to_string(code.k()) +
                                      ")"));
        metrics.set("words", JsonValue(words));
        metrics.set("rounds", JsonValue(rounds));
        metrics.set(
            "naive_direct_coverage",
            JsonValue(direct_total == 0
                          ? 1.0
                          : static_cast<double>(naive_found) /
                                static_cast<double>(direct_total)));
        metrics.set(
            "harpu_direct_coverage",
            JsonValue(direct_total == 0
                          ? 1.0
                          : static_cast<double>(harp_found) /
                                static_cast<double>(direct_total)));
        metrics.set("harpu_full_direct_words", JsonValue(full_words));
        metrics.set("max_simul_no_profile", JsonValue(worst_empty_all));
        metrics.set("max_simul_harpu_profile", JsonValue(worst_harp_all));
        metrics.set("bound_respected", JsonValue(bound_respected));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeLowProbability()
{
    ExperimentSpec spec;
    spec.name = "extension_low_probability";
    spec.description =
        "Low-probability at-risk cells evading HARP's active phase";
    spec.labels = {"bench", "extension"};

    ParamAxis p_low{"p_low", {0.1, 0.02, 0.004}};
    ParamAxis rounds{"rounds",
                     {std::size_t{128}, std::size_t{512},
                      std::size_t{2048}}};
    spec.grid = ParamGrid({p_low, rounds});

    spec.tunables = {
        {"words", "150", "simulated ECC words per point"},
        {"normal_cells", "3", "at-risk cells at p = 0.5 per word"},
        {"low_cells", "2", "low-probability at-risk cells per word"},
        engineTunable(),
    };
    spec.schema = {
        {"direct_coverage", JsonType::Double,
         "identified direct bits / ground-truth direct bits"},
        {"missed_direct_bits", JsonType::Int,
         "direct bits unidentified after the budget"},
        {"words_unsafe_for_sec_secondary", JsonType::Int,
         "words where >1 simultaneous unprofiled error stays possible"},
        {"words", JsonType::Int, "simulated words"},
    };
    spec.run = [](const RunContext &ctx) {
        const double p_low_v = ctx.point().find("p_low")->asDouble();
        const auto rounds_v = static_cast<std::size_t>(
            ctx.point().find("rounds")->asInt());
        const auto words =
            static_cast<std::size_t>(ctx.getInt("words", 150));
        const auto n_normal =
            static_cast<std::size_t>(ctx.getInt("normal_cells", 3));
        const auto n_low =
            static_cast<std::size_t>(ctx.getInt("low_cells", 2));

        const core::EngineKind engine_kind = engineFromContext(ctx);

        // Build every word first (codes, mixed-tier fault models,
        // profilers), then drive the rounds through the selected
        // engine: per-word seed derivations are identical either way,
        // so every engine emits byte-identical JSONL.
        struct TierWord
        {
            std::unique_ptr<ecc::HammingCode> code;
            fault::WordFaultModel faults;
            std::unique_ptr<core::HarpUProfiler> harp;
            std::uint64_t engineSeed = 0;
        };
        std::vector<TierWord> sims(words);
        for (std::size_t w = 0; w < words; ++w) {
            common::Xoshiro256 code_rng(
                common::deriveSeed(ctx.seed(), {0xC0DEu, w}));
            sims[w].code = std::make_unique<ecc::HammingCode>(
                ecc::HammingCode::randomSec(64, code_rng));
            const ecc::HammingCode &code = *sims[w].code;

            // Mixed fault model: distinct positions, two tiers.
            common::Xoshiro256 fault_rng(common::deriveSeed(
                ctx.seed(),
                {0xFA17u, w, static_cast<std::uint64_t>(p_low_v * 1e6)}));
            const fault::WordFaultModel placement =
                fault::WordFaultModel::makeUniformFixedCount(
                    code.n(), n_normal + n_low, 0.5, fault_rng);
            std::vector<fault::CellFault> cells = placement.faults();
            for (std::size_t i = 0; i < cells.size(); ++i)
                cells[i].probability = i < n_normal ? 0.5 : p_low_v;
            sims[w].faults = fault::WordFaultModel(code.n(), cells);
            sims[w].harp = std::make_unique<core::HarpUProfiler>(code.k());
            sims[w].engineSeed =
                common::deriveSeed(ctx.seed(), {0xE221u, w, rounds_v});
        }

        if (engine_kind == core::EngineKind::Scalar) {
            for (TierWord &sim : sims) {
                core::RoundEngine engine(*sim.code, sim.faults,
                                         core::PatternKind::Random,
                                         sim.engineSeed);
                const std::vector<core::Profiler *> ps = {sim.harp.get()};
                for (std::size_t r = 0; r < rounds_v; ++r)
                    engine.runRound(ps);
            }
        } else {
            // Heterogeneous per-lane codes (equal k) pack straight
            // into lane blocks, ragged tail included — the long-tail
            // rounds sweep is where the sliced datapath pays off most.
            std::vector<const ecc::HammingCode *> code_ptrs;
            std::vector<const fault::WordFaultModel *> fault_ptrs;
            std::vector<std::uint64_t> seeds;
            std::vector<std::vector<core::Profiler *>> lane_profilers;
            for (std::size_t w = 0; w < words; ++w) {
                code_ptrs.push_back(sims[w].code.get());
                fault_ptrs.push_back(&sims[w].faults);
                seeds.push_back(sims[w].engineSeed);
                lane_profilers.push_back({sims[w].harp.get()});
            }
            if (engine_kind == core::EngineKind::Sliced256)
                driveSlicedHamming<4>(code_ptrs, fault_ptrs, seeds,
                                      lane_profilers, rounds_v,
                                      ctx.threads());
            else
                driveSlicedHamming<1>(code_ptrs, fault_ptrs, seeds,
                                      lane_profilers, rounds_v,
                                      ctx.threads());
        }

        std::size_t direct_total = 0, direct_found = 0;
        std::size_t missed_bits = 0, unsafe_words = 0;
        for (const TierWord &sim : sims) {
            const core::AtRiskAnalyzer analyzer(*sim.code, sim.faults);
            const std::size_t total = analyzer.directAtRisk().popcount();
            gf2::BitVector covered = sim.harp->identified();
            covered &= analyzer.directAtRisk();
            const std::size_t found = covered.popcount();
            direct_total += total;
            direct_found += found;
            missed_bits += total - found;
            if (analyzer.maxSimultaneousErrors(sim.harp->identified()) >
                1)
                ++unsafe_words;
        }

        JsonValue metrics = JsonValue::object();
        metrics.set("direct_coverage",
                    JsonValue(direct_total == 0
                                  ? 1.0
                                  : static_cast<double>(direct_found) /
                                        static_cast<double>(direct_total)));
        metrics.set("missed_direct_bits", JsonValue(missed_bits));
        metrics.set("words_unsafe_for_sec_secondary",
                    JsonValue(unsafe_words));
        metrics.set("words", JsonValue(words));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeSecondaryInterleaving()
{
    ExperimentSpec spec;
    spec.name = "extension_secondary_interleaving";
    spec.description =
        "Secondary ECC word interleaved across two on-die words: SECDED "
        "vs. DEC BCH";
    spec.labels = {"bench", "extension"};
    // No sweep: one end-to-end configuration, scaled by tunables.
    spec.grid = ParamGrid();

    spec.tunables = {
        {"pairs", "40", "pairs of on-die (71,64) words"},
        {"accesses", "2000", "accesses simulated per pair"},
        {"prob", "0.5", "per-bit failure probability of at-risk cells"},
        {"pre_errors", "4", "at-risk cells per on-die word"},
    };
    spec.schema = {
        {"accesses_total", JsonType::Int, "pairs x accesses"},
        {"single_indirect", JsonType::Int,
         "accesses with exactly 1 residual (indirect) error"},
        {"double_indirect", JsonType::Int,
         "accesses with >= 2 residual errors (interleaving hazard)"},
        {"secded_uncorrectable", JsonType::Int,
         "SECDED secondary: detected-uncorrectable events"},
        {"secded_wrong", JsonType::Int,
         "SECDED secondary: silently wrong data"},
        {"bch_failures", JsonType::Int,
         "DEC BCH secondary: any failure (expect 0)"},
    };
    spec.run = [](const RunContext &ctx) {
        const auto pairs =
            static_cast<std::size_t>(ctx.getInt("pairs", 40));
        const auto accesses =
            static_cast<std::size_t>(ctx.getInt("accesses", 2000));
        const double prob = ctx.getDouble("prob", 0.5);
        const auto n_cells =
            static_cast<std::size_t>(ctx.getInt("pre_errors", 4));

        common::Xoshiro256 setup_rng(ctx.seed());
        const ecc::ExtendedHammingCode secded =
            ecc::ExtendedHammingCode::randomSecDed(128, setup_rng);
        const ecc::BchDecCode bch(128);

        std::size_t single_indirect = 0, double_indirect = 0;
        std::size_t secded_uncorrectable = 0, secded_wrong = 0;
        std::size_t bch_failures = 0;

        for (std::size_t pair = 0; pair < pairs; ++pair) {
            // Two independent on-die words with full HARP direct
            // profiles.
            std::vector<ecc::HammingCode> codes;
            std::vector<fault::WordFaultModel> faults;
            std::vector<gf2::BitVector> profiles;
            for (std::size_t w = 0; w < 2; ++w) {
                common::Xoshiro256 rng(
                    common::deriveSeed(ctx.seed(), {pair, w, 0xC0DEu}));
                codes.push_back(ecc::HammingCode::randomSec(64, rng));
                common::Xoshiro256 frng(
                    common::deriveSeed(ctx.seed(), {pair, w, 0xFA17u}));
                faults.push_back(
                    fault::WordFaultModel::makeUniformFixedCount(
                        codes[w].n(), n_cells, prob, frng));
                const core::AtRiskAnalyzer analyzer(codes[w], faults[w]);
                profiles.push_back(analyzer.directAtRisk());
            }

            common::Xoshiro256 access_rng(
                common::deriveSeed(ctx.seed(), {pair, 0xACCE55u}));
            for (std::size_t a = 0; a < accesses; ++a) {
                // Fresh write + retention + read per on-die word, with
                // the ideal repair masking every profiled (direct) bit.
                gf2::BitVector joined_written(128);
                gf2::BitVector joined_read(128);
                std::size_t residual_errors = 0;
                for (std::size_t w = 0; w < 2; ++w) {
                    const gf2::BitVector d =
                        gf2::BitVector::random(64, access_rng);
                    const gf2::BitVector stored = codes[w].encode(d);
                    gf2::BitVector received = stored;
                    received ^=
                        faults[w].injectErrors(stored, access_rng);
                    gf2::BitVector post =
                        codes[w].decode(received).dataword;
                    profiles[w].forEachSetBit([&](std::size_t bit) {
                        post.set(bit, d.get(bit));
                    });
                    for (std::size_t i = 0; i < 64; ++i) {
                        joined_written.set(w * 64 + i, d.get(i));
                        joined_read.set(w * 64 + i, post.get(i));
                        residual_errors +=
                            (post.get(i) != d.get(i)) ? 1 : 0;
                    }
                }
                if (residual_errors == 1)
                    ++single_indirect;
                if (residual_errors >= 2)
                    ++double_indirect;
                if (residual_errors == 0)
                    continue;

                // SECDED secondary over the interleaved 128-bit word.
                {
                    const gf2::BitVector check =
                        secded.encode(joined_written)
                            .slice(128, secded.n());
                    gf2::BitVector codeword(secded.n());
                    for (std::size_t i = 0; i < 128; ++i)
                        codeword.set(i, joined_read.get(i));
                    for (std::size_t i = 0; i < check.size(); ++i)
                        codeword.set(128 + i, check.get(i));
                    const ecc::SecondaryDecodeResult r =
                        secded.decode(codeword);
                    if (r.status == ecc::SecondaryDecodeStatus::
                                        DetectedUncorrectable)
                        ++secded_uncorrectable;
                    else if (!(r.dataword == joined_written))
                        ++secded_wrong;
                }
                // DEC BCH secondary over the same word.
                {
                    const gf2::BitVector check =
                        bch.encode(joined_written).slice(128, bch.n());
                    gf2::BitVector codeword(bch.n());
                    for (std::size_t i = 0; i < 128; ++i)
                        codeword.set(i, joined_read.get(i));
                    for (std::size_t i = 0; i < check.size(); ++i)
                        codeword.set(128 + i, check.get(i));
                    const ecc::BchDecodeResult r = bch.decode(codeword);
                    if (r.detectedUncorrectable ||
                        !(r.dataword == joined_written))
                        ++bch_failures;
                }
            }
        }

        JsonValue metrics = JsonValue::object();
        metrics.set("accesses_total", JsonValue(pairs * accesses));
        metrics.set("single_indirect", JsonValue(single_indirect));
        metrics.set("double_indirect", JsonValue(double_indirect));
        metrics.set("secded_uncorrectable",
                    JsonValue(secded_uncorrectable));
        metrics.set("secded_wrong", JsonValue(secded_wrong));
        metrics.set("bch_failures", JsonValue(bch_failures));
        return metrics;
    };
    return spec;
}

} // namespace

void
registerExtensionSpecs(Registry &registry)
{
    registry.add(makeDecOnDieEcc());
    registry.add(makeBchTSweep());
    registry.add(makeLowProbability());
    registry.add(makeSecondaryInterleaving());
}

} // namespace harp::runner
