/**
 * @file
 * Parameter grids for experiment campaigns.
 *
 * Every experiment declares its sweep as a cross product of named axes
 * (the paper's figure matrices: per-bit probability x pre-correction
 * error count, RBER x repair granularity, ...). The campaign driver
 * expands the grid into points, shards the points across worker
 * threads, and lets the command line collapse any axis to a single
 * value for a quick partial run.
 */

#ifndef HARP_RUNNER_PARAM_HH
#define HARP_RUNNER_PARAM_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runner/json.hh"

namespace harp::runner {

/** One axis value (or tunable default): int, double, bool or string. */
class ParamValue
{
  public:
    enum class Type
    {
        Int,
        Double,
        Bool,
        String,
    };

    ParamValue() : type_(Type::Int) {}
    ParamValue(std::int64_t i) : type_(Type::Int), int_(i) {}
    ParamValue(int i) : ParamValue(static_cast<std::int64_t>(i)) {}
    ParamValue(std::size_t u) : ParamValue(static_cast<std::int64_t>(u)) {}
    ParamValue(double d) : type_(Type::Double), double_(d) {}
    ParamValue(bool b) : type_(Type::Bool), bool_(b) {}
    ParamValue(std::string s) : type_(Type::String), string_(std::move(s)) {}
    ParamValue(const char *s) : ParamValue(std::string(s)) {}

    Type type() const { return type_; }

    /** Typed accessors; throw std::logic_error on a type mismatch
     *  (except asDouble, which also accepts Int). */
    std::int64_t asInt() const;
    double asDouble() const;
    bool asBool() const;
    const std::string &asString() const;

    /** Flag-style rendering ("0.5", "128", "true", "random"). */
    std::string toString() const;

    /** JSON rendering with the matching JSON type. */
    JsonValue toJson() const;

    /**
     * Parse @p text as this value's type (used to collapse an axis from
     * a command-line override).
     * @throws std::invalid_argument when @p text does not parse.
     */
    ParamValue parseSameType(const std::string &text) const;

    bool operator==(const ParamValue &other) const;

  private:
    Type type_;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    bool bool_ = false;
    std::string string_;
};

/** One named sweep axis with the values it takes. */
struct ParamAxis
{
    std::string name;
    std::vector<ParamValue> values;
};

/**
 * One expanded grid point: named axis values in axis order.
 */
class ParamPoint
{
  public:
    void add(std::string name, ParamValue value);

    /** Lookup by axis name; nullptr when the point has no such axis. */
    const ParamValue *find(const std::string &name) const;

    const std::vector<std::pair<std::string, ParamValue>> &entries() const
    {
        return entries_;
    }

    /** JSON object {axis: value, ...} in axis order. */
    JsonValue toJson() const;

    /** Compact "name=value name=value" rendering for logs. */
    std::string toString() const;

  private:
    std::vector<std::pair<std::string, ParamValue>> entries_;
};

/**
 * Cross product of axes. An empty grid expands to one empty point (an
 * experiment with no sweep still runs once).
 */
class ParamGrid
{
  public:
    ParamGrid() = default;
    ParamGrid(std::vector<ParamAxis> axes) : axes_(std::move(axes)) {}

    const std::vector<ParamAxis> &axes() const { return axes_; }

    /** Axis by name; nullptr when absent. */
    const ParamAxis *findAxis(const std::string &name) const;

    /** Number of points the grid expands to (product of axis sizes). */
    std::size_t numPoints() const;

    /**
     * Expand to points in row-major order: the first axis varies
     * slowest. The order is part of the output contract — JSONL result
     * files list points in exactly this order.
     */
    std::vector<ParamPoint> expand() const;

    /**
     * Copy of the grid with axis @p name collapsed to the single value
     * parsed from @p text (same type as the axis's first value).
     * @throws std::invalid_argument on unknown axis or unparsable text.
     */
    ParamGrid collapsed(const std::string &name,
                        const std::string &text) const;

  private:
    std::vector<ParamAxis> axes_;
};

} // namespace harp::runner

#endif // HARP_RUNNER_PARAM_HH
