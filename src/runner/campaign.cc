#include "runner/campaign.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "common/bits.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "runner/session.hh"

namespace harp::runner {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Batch sink: collect lines in job order for one file write. */
class CollectSink : public ResultSink
{
  public:
    void onResult(std::size_t, const std::string &line, bool) override
    {
        lines_.push_back(line);
    }

    const std::vector<std::string> &lines() const { return lines_; }

  private:
    std::vector<std::string> lines_;
};

} // namespace

double
jobCostKey(const ParamPoint &point)
{
    double cost = 1.0;
    for (const auto &[name, value] : point.entries()) {
        if (value.type() != ParamValue::Type::Int)
            continue;
        const double v = static_cast<double>(value.asInt());
        cost *= std::max(1.0, std::abs(v));
    }
    return cost;
}

std::string
formatResultHash(std::uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
        hash >>= 4;
    }
    return out;
}

JsonValue
CampaignSummary::toJson(bool include_timings) const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema_version", JsonValue(1));
    JsonValue campaign = JsonValue::object();
    campaign.set("seed", JsonValue(std::to_string(seed)));
    if (include_timings)
        campaign.set("threads", JsonValue(threads));
    campaign.set("repeat", JsonValue(repeat));
    doc.set("campaign", campaign);

    JsonValue list = JsonValue::array();
    for (const ExperimentRunSummary &e : experiments) {
        JsonValue obj = JsonValue::object();
        obj.set("name", JsonValue(e.name));
        obj.set("points", JsonValue(e.points));
        obj.set("repeats", JsonValue(e.repeats));
        obj.set("jsonl",
                JsonValue(include_timings
                              ? e.jsonlPath
                              : std::filesystem::path(e.jsonlPath)
                                    .filename()
                                    .string()));
        obj.set("result_hash", JsonValue(formatResultHash(e.resultHash)));
        if (include_timings) {
            obj.set("wall_seconds", JsonValue(e.wallSeconds));
            obj.set("jobs_per_second", JsonValue(e.jobsPerSecond));
            JsonValue latency = JsonValue::object();
            latency.set("mean", JsonValue(e.jobSecondsMean));
            latency.set("p50", JsonValue(e.jobSecondsP50));
            latency.set("p90", JsonValue(e.jobSecondsP90));
            latency.set("max", JsonValue(e.jobSecondsMax));
            obj.set("job_seconds", latency);
        }
        list.push(std::move(obj));
    }
    doc.set("experiments", list);
    if (include_timings)
        doc.set("total_wall_seconds", JsonValue(totalWallSeconds));
    return doc;
}

CampaignSummary
runCampaign(const std::vector<const ExperimentSpec *> &specs,
            const CampaignOptions &options, std::ostream &log)
{
    CampaignSummary summary;
    summary.seed = options.seed;
    summary.threads = options.threads;
    summary.repeat = options.repeat;

    const std::size_t pool_threads =
        options.threads != 0
            ? options.threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const auto campaign_start = Clock::now();

    // One shared pool for the whole campaign; sessions track their own
    // waves with WaitGroups, so the pool is reusable across specs (and,
    // in harpd, across concurrent campaigns).
    std::unique_ptr<common::ThreadPool> pool;
    if (!options.dryRun && pool_threads > 1)
        pool = std::make_unique<common::ThreadPool>(pool_threads);

    for (const ExperimentSpec *spec : specs) {
        SessionOptions session_options;
        session_options.seed = options.seed;
        session_options.repeat = options.repeat;
        session_options.overrides = options.overrides;
        CampaignSession session(*spec, session_options);

        if (options.dryRun) {
            log << spec->name << ": " << session.points().size()
                << " point(s) x " << options.repeat << " repeat(s)\n";
            for (std::size_t j = 0; j < session.totalJobs(); ++j)
                log << "  point " << session.jobPoint(j) << " repeat "
                    << session.jobRepeat(j) << " seed "
                    << session.jobSeedAt(j) << "  ["
                    << session.points()[session.jobPoint(j)].toString()
                    << "]\n";
            continue;
        }

        log << spec->name << ": running " << session.totalJobs()
            << " job(s) on " << pool_threads << " thread(s)..."
            << std::flush;
        const auto start = Clock::now();
        CollectSink sink;
        const CampaignSession::Outcome outcome =
            session.run(pool.get(), pool_threads, sink);

        ExperimentRunSummary exp;
        exp.name = spec->name;
        exp.points = session.points().size();
        exp.repeats = options.repeat;
        exp.wallSeconds = secondsSince(start);
        exp.jobsPerSecond =
            exp.wallSeconds > 0.0
                ? static_cast<double>(session.totalJobs()) /
                      exp.wallSeconds
                : 0.0;

        common::PercentileTracker latency;
        for (const double s : outcome.freshJobSeconds)
            latency.add(s);
        exp.jobSecondsMean = latency.mean();
        exp.jobSecondsP50 = latency.quantile(0.5);
        exp.jobSecondsP90 = latency.quantile(0.9);
        exp.jobSecondsMax = latency.quantile(1.0);
        exp.resultHash = outcome.resultHash;

        std::filesystem::create_directories(options.outDir);
        exp.jsonlPath = (std::filesystem::path(options.outDir) /
                         (spec->name + ".jsonl"))
                            .string();
        {
            std::ofstream out(exp.jsonlPath,
                              std::ios::binary | std::ios::trunc);
            if (!out)
                throw std::runtime_error("cannot write " + exp.jsonlPath);
            for (const std::string &line : sink.lines())
                out << line << '\n';
        }

        log << " done in " << exp.wallSeconds << "s (hash "
            << formatResultHash(exp.resultHash) << ")\n";
        summary.experiments.push_back(std::move(exp));
    }

    summary.totalWallSeconds = secondsSince(campaign_start);
    if (!options.dryRun && !summary.experiments.empty()) {
        std::filesystem::create_directories(options.outDir);
        const std::string path =
            (std::filesystem::path(options.outDir) / "summary.json")
                .string();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("cannot write " + path);
        out << summary.toJson(!options.noTimings).dump(2) << '\n';
        log << "summary: " << path << "\n";
    }
    return summary;
}

} // namespace harp::runner
