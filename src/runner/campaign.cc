#include "runner/campaign.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/bits.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace harp::runner {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One (point, repeat) job of an experiment's grid expansion. */
struct Job
{
    std::size_t pointIndex = 0;
    std::size_t repeat = 0;
    std::uint64_t seed = 0;
};

std::uint64_t
jobSeed(std::uint64_t campaign_seed, const std::string &experiment,
        std::size_t point, std::size_t repeat)
{
    // Salt with the experiment name so campaigns are insensitive to
    // registration/selection order, then with the job coordinates so
    // every job owns an independent stream.
    return common::deriveSeed(campaign_seed,
                              {common::fnv1a64(experiment), point, repeat});
}

ParamGrid
gridWithOverrides(const ExperimentSpec &spec,
                  const std::map<std::string, std::string> &overrides)
{
    ParamGrid grid = spec.grid;
    for (const auto &[name, text] : overrides) {
        if (grid.findAxis(name) != nullptr)
            grid = grid.collapsed(name, text);
    }
    return grid;
}

/** Run one experiment's jobs, returning its JSONL lines in job order. */
std::vector<std::string>
runJobs(const ExperimentSpec &spec, const std::vector<ParamPoint> &points,
        const std::vector<Job> &jobs, const CampaignOptions &options,
        std::size_t pool_threads, std::vector<double> &job_seconds)
{
    std::vector<std::string> lines(jobs.size());
    std::vector<std::string> errors(jobs.size());
    job_seconds.assign(jobs.size(), 0.0);

    // Intra-job sharding: when the grid has fewer jobs than the pool
    // has threads, the leftover parallelism is handed *into* each job
    // as its RunContext thread allowance — internally parallel
    // experiments then shard their (word, block) tasks across a nested
    // pool. Every experiment merges those shards deterministically
    // (common/ordered_merger.hh), so the JSONL stays byte-identical at
    // any --threads; only the wall clock changes.
    const std::size_t inner_threads = std::max<std::size_t>(
        1, pool_threads / std::max<std::size_t>(1, jobs.size()));

    const auto runOne = [&](std::size_t j) {
        const Job &job = jobs[j];
        const auto start = Clock::now();
        try {
            const RunContext ctx(points[job.pointIndex], options.overrides,
                                 job.seed, job.repeat, inner_threads);
            const JsonValue metrics = spec.run(ctx);
            if (const auto error = validateSchema(spec.schema, metrics))
                throw std::runtime_error("schema violation: " + *error);
            JsonValue line = JsonValue::object();
            line.set("experiment", JsonValue(spec.name));
            line.set("point", JsonValue(job.pointIndex));
            line.set("repeat", JsonValue(job.repeat));
            line.set("seed", JsonValue(std::to_string(job.seed)));
            line.set("params", points[job.pointIndex].toJson());
            line.set("metrics", metrics);
            lines[j] = line.dump();
        } catch (const std::exception &e) {
            errors[j] = e.what();
        }
        job_seconds[j] = secondsSince(start);
    };

    if (pool_threads <= 1 || jobs.size() <= 1) {
        for (std::size_t j = 0; j < jobs.size(); ++j)
            runOne(j);
    } else {
        // Submit longest-expected-first (stable on the cost key) so a
        // heavy grid point never starts last and stretches the tail.
        // Results land at their original index, so the output is in
        // job order and byte-identical regardless of submission order.
        std::vector<std::size_t> order(jobs.size());
        for (std::size_t j = 0; j < jobs.size(); ++j)
            order[j] = j;
        std::vector<double> cost(jobs.size());
        for (std::size_t j = 0; j < jobs.size(); ++j)
            cost[j] = jobCostKey(points[jobs[j].pointIndex]);
        std::stable_sort(order.begin(), order.end(),
                         [&cost](std::size_t a, std::size_t b) {
                             return cost[a] > cost[b];
                         });
        common::ThreadPool pool(pool_threads);
        for (const std::size_t j : order)
            pool.submit([&, j] { runOne(j); });
        pool.wait();
    }

    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (!errors[j].empty())
            throw std::runtime_error(
                spec.name + " [" + points[jobs[j].pointIndex].toString() +
                " repeat=" + std::to_string(jobs[j].repeat) +
                "]: " + errors[j]);
    }
    return lines;
}

} // namespace

double
jobCostKey(const ParamPoint &point)
{
    double cost = 1.0;
    for (const auto &[name, value] : point.entries()) {
        if (value.type() != ParamValue::Type::Int)
            continue;
        const double v = static_cast<double>(value.asInt());
        cost *= std::max(1.0, std::abs(v));
    }
    return cost;
}

std::string
formatResultHash(std::uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
        hash >>= 4;
    }
    return out;
}

JsonValue
CampaignSummary::toJson(bool include_timings) const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema_version", JsonValue(1));
    JsonValue campaign = JsonValue::object();
    campaign.set("seed", JsonValue(std::to_string(seed)));
    campaign.set("threads", JsonValue(threads));
    campaign.set("repeat", JsonValue(repeat));
    doc.set("campaign", campaign);

    JsonValue list = JsonValue::array();
    for (const ExperimentRunSummary &e : experiments) {
        JsonValue obj = JsonValue::object();
        obj.set("name", JsonValue(e.name));
        obj.set("points", JsonValue(e.points));
        obj.set("repeats", JsonValue(e.repeats));
        obj.set("jsonl", JsonValue(e.jsonlPath));
        obj.set("result_hash", JsonValue(formatResultHash(e.resultHash)));
        if (include_timings) {
            obj.set("wall_seconds", JsonValue(e.wallSeconds));
            obj.set("jobs_per_second", JsonValue(e.jobsPerSecond));
            JsonValue latency = JsonValue::object();
            latency.set("mean", JsonValue(e.jobSecondsMean));
            latency.set("p50", JsonValue(e.jobSecondsP50));
            latency.set("p90", JsonValue(e.jobSecondsP90));
            latency.set("max", JsonValue(e.jobSecondsMax));
            obj.set("job_seconds", latency);
        }
        list.push(std::move(obj));
    }
    doc.set("experiments", list);
    if (include_timings)
        doc.set("total_wall_seconds", JsonValue(totalWallSeconds));
    return doc;
}

CampaignSummary
runCampaign(const std::vector<const ExperimentSpec *> &specs,
            const CampaignOptions &options, std::ostream &log)
{
    CampaignSummary summary;
    summary.seed = options.seed;
    summary.threads = options.threads;
    summary.repeat = options.repeat;

    const std::size_t pool_threads =
        options.threads != 0
            ? options.threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const auto campaign_start = Clock::now();

    for (const ExperimentSpec *spec : specs) {
        const ParamGrid grid = gridWithOverrides(*spec, options.overrides);
        const std::vector<ParamPoint> points = grid.expand();

        std::vector<Job> jobs;
        jobs.reserve(points.size() * options.repeat);
        for (std::size_t p = 0; p < points.size(); ++p)
            for (std::size_t r = 0; r < options.repeat; ++r)
                jobs.push_back(
                    {p, r, jobSeed(options.seed, spec->name, p, r)});

        if (options.dryRun) {
            log << spec->name << ": " << points.size() << " point(s) x "
                << options.repeat << " repeat(s)\n";
            for (const Job &job : jobs)
                log << "  point " << job.pointIndex << " repeat "
                    << job.repeat << " seed " << job.seed << "  ["
                    << points[job.pointIndex].toString() << "]\n";
            continue;
        }

        log << spec->name << ": running " << jobs.size() << " job(s) on "
            << pool_threads << " thread(s)..." << std::flush;
        const auto start = Clock::now();
        std::vector<double> job_seconds;
        const std::vector<std::string> lines =
            runJobs(*spec, points, jobs, options, pool_threads,
                    job_seconds);

        ExperimentRunSummary exp;
        exp.name = spec->name;
        exp.points = points.size();
        exp.repeats = options.repeat;
        exp.wallSeconds = secondsSince(start);
        exp.jobsPerSecond =
            exp.wallSeconds > 0.0
                ? static_cast<double>(jobs.size()) / exp.wallSeconds
                : 0.0;

        common::PercentileTracker latency;
        for (const double s : job_seconds)
            latency.add(s);
        exp.jobSecondsMean = latency.mean();
        exp.jobSecondsP50 = latency.quantile(0.5);
        exp.jobSecondsP90 = latency.quantile(0.9);
        exp.jobSecondsMax = latency.quantile(1.0);

        std::uint64_t hash = common::fnv1a64Init;
        for (const std::string &line : lines) {
            hash = common::fnv1a64(line, hash);
            hash = common::fnv1a64("\n", hash);
        }
        exp.resultHash = hash;

        std::filesystem::create_directories(options.outDir);
        exp.jsonlPath = (std::filesystem::path(options.outDir) /
                         (spec->name + ".jsonl"))
                            .string();
        {
            std::ofstream out(exp.jsonlPath,
                              std::ios::binary | std::ios::trunc);
            if (!out)
                throw std::runtime_error("cannot write " + exp.jsonlPath);
            for (const std::string &line : lines)
                out << line << '\n';
        }

        log << " done in " << exp.wallSeconds << "s (hash "
            << formatResultHash(exp.resultHash) << ")\n";
        summary.experiments.push_back(std::move(exp));
    }

    summary.totalWallSeconds = secondsSince(campaign_start);
    if (!options.dryRun && !summary.experiments.empty()) {
        std::filesystem::create_directories(options.outDir);
        const std::string path =
            (std::filesystem::path(options.outDir) / "summary.json")
                .string();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("cannot write " + path);
        out << summary.toJson().dump(2) << '\n';
        log << "summary: " << path << "\n";
    }
    return summary;
}

} // namespace harp::runner
