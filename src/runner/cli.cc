#include "runner/cli.hh"

#include <algorithm>
#include <iostream>
#include <set>
#include <sstream>

#include "common/cli.hh"
#include "common/table.hh"
#include "runner/campaign.hh"
#include "runner/registry.hh"

namespace harp::runner {

namespace {

/** Flags consumed by the campaign driver itself; everything else is a
 *  tunable/axis override. */
const std::set<std::string> reservedFlags = {
    "list", "list-json", "dry-run", "seed",    "threads", "repeat",
    "out",  "label",     "all",     "help",    "schemas", "no-timings",
};

void
printUsage(std::ostream &os, const char *forced_experiment)
{
    if (forced_experiment != nullptr) {
        os << "Alias for `harp_run " << forced_experiment << "`.\n\n";
    }
    os << "Usage: harp_run [experiment|label:<label>]... [options]\n"
          "\n"
          "Selection:\n"
          "  --list           list registered experiments and exit\n"
          "  --list-json      machine-readable registry (names, labels,\n"
          "                   grid sizes, per-label counts) and exit\n"
          "  --schemas        with --list, also print result schemas\n"
          "  --label L        add every experiment carrying label L\n"
          "  --all            add every registered experiment\n"
          "\n"
          "Campaign:\n"
          "  --seed N         campaign seed (default 1); every job seed\n"
          "                   derives from it deterministically\n"
          "  --threads N      worker threads sharding grid points\n"
          "                   (default 0 = hardware concurrency)\n"
          "  --repeat N       repetitions per grid point (default 1)\n"
          "  --dry-run        print the expanded jobs, run nothing\n"
          "  --out DIR        output directory (default `results`);\n"
          "                   writes <experiment>.jsonl + summary.json\n"
          "  --no-timings     deterministic summary.json only (no wall\n"
          "                   times / thread count / path prefixes) —\n"
          "                   byte-comparable against a harpd-served\n"
          "                   campaign of the same spec and seed\n"
          "\n"
          "Any other --name value collapses the sweep axis `name` to one\n"
          "value or overrides the tunable `name` of a selected\n"
          "experiment (e.g. --rounds 16 --codes 2).\n";
}

std::string
joinLabels(const std::vector<std::string> &labels)
{
    std::string out;
    for (const std::string &label : labels) {
        if (!out.empty())
            out += ",";
        out += label;
    }
    return out;
}

int
listExperiments(const Registry &registry, bool with_schemas)
{
    common::Table table({"experiment", "labels", "grid", "description"});
    for (const ExperimentSpec *spec : registry.all())
        table.addRow({spec->name, joinLabels(spec->labels),
                      std::to_string(spec->grid.numPoints()),
                      spec->description});
    table.print(std::cout);
    std::cout << "\n" << registry.size() << " experiments ("
              << registry.withLabel("bench").size() << " bench, "
              << registry.withLabel("example").size() << " example)\n";
    if (with_schemas) {
        for (const ExperimentSpec *spec : registry.all()) {
            std::cout << "\n" << spec->name << "\n";
            for (const ParamAxis &axis : spec->grid.axes()) {
                std::cout << "  axis " << axis.name << ":";
                for (const ParamValue &v : axis.values)
                    std::cout << " " << v.toString();
                std::cout << "\n";
            }
            for (const TunableSpec &t : spec->tunables)
                std::cout << "  tunable " << t.name << " (default "
                          << t.defaultValue << "): " << t.description
                          << "\n";
            std::cout << "  schema: "
                      << schemaToJson(spec->schema).dump() << "\n";
        }
    }
    return 0;
}

/**
 * Machine-readable registry dump: scripts derive expected experiment
 * counts from this instead of hard-coding them (scripts/verify.sh),
 * so adding an experiment can never silently break a count check.
 */
int
listExperimentsJson(const Registry &registry)
{
    std::cout << registryToJson(registry).dump(2) << "\n";
    return 0;
}

} // namespace

int
runnerMain(int argc, const char *const *argv,
           const char *forced_experiment)
{
    // CommandLine lets a flag consume the next token as its value;
    // rewrite the runner's boolean flags to --flag=true so they can
    // never swallow a following positional selector
    // (`harp_run --all fig06...` must not misparse).
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list" || arg == "--list-json" ||
            arg == "--schemas" || arg == "--all" ||
            arg == "--dry-run" || arg == "--help" ||
            arg == "--no-timings")
            arg += "=true";
        args.push_back(std::move(arg));
    }
    std::vector<const char *> argv_fixed;
    argv_fixed.reserve(args.size());
    for (const std::string &arg : args)
        argv_fixed.push_back(arg.c_str());
    const common::CommandLine cli(static_cast<int>(argv_fixed.size()),
                                  argv_fixed.data());
    const Registry &registry = builtinRegistry();

    if (cli.getBool("help", false)) {
        printUsage(std::cout, forced_experiment);
        return 0;
    }
    if (cli.getBool("list", false))
        return listExperiments(registry, cli.getBool("schemas", false));
    if (cli.getBool("list-json", false))
        return listExperimentsJson(registry);

    // --- Selection ------------------------------------------------------
    std::vector<std::string> selectors;
    if (forced_experiment != nullptr) {
        if (!cli.positional().empty()) {
            std::cerr << "this binary is an alias for `harp_run "
                      << forced_experiment
                      << "` and accepts no positional selectors\n";
            return 2;
        }
        selectors.emplace_back(forced_experiment);
    } else {
        selectors = cli.positional();
        if (cli.has("label"))
            selectors.push_back("label:" + cli.getString("label", ""));
        if (cli.getBool("all", false))
            for (const ExperimentSpec *spec : registry.all())
                selectors.push_back(spec->name);
    }
    if (selectors.empty()) {
        printUsage(std::cerr, forced_experiment);
        return 2;
    }

    std::vector<const ExperimentSpec *> specs;
    try {
        specs = registry.select(selectors);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }

    // --- Overrides ------------------------------------------------------
    CampaignOptions options;
    options.seed = static_cast<std::uint64_t>(cli.getInt("seed", 1));
    const std::int64_t threads = cli.getInt("threads", 0);
    if (threads < 0 || threads > 4096) {
        std::cerr << "error: --threads must be in [0, 4096] "
                     "(0 = hardware concurrency)\n";
        return 2;
    }
    options.threads = static_cast<std::size_t>(threads);
    const std::int64_t repeat = cli.getInt("repeat", 1);
    if (repeat < 1 || repeat > 1'000'000) {
        std::cerr << "error: --repeat must be in [1, 1000000]\n";
        return 2;
    }
    options.repeat = static_cast<std::size_t>(repeat);
    options.dryRun = cli.getBool("dry-run", false);
    options.noTimings = cli.getBool("no-timings", false);
    options.outDir = cli.getString("out", "results");

    for (const auto &[name, text] : cli.entries()) {
        if (reservedFlags.count(name) > 0)
            continue;
        const bool known = std::any_of(
            specs.begin(), specs.end(), [&](const ExperimentSpec *spec) {
                return spec->grid.findAxis(name) != nullptr ||
                       std::any_of(spec->tunables.begin(),
                                   spec->tunables.end(),
                                   [&](const TunableSpec &t) {
                                       return t.name == name;
                                   });
            });
        if (!known) {
            std::ostringstream valid;
            for (const ExperimentSpec *spec : specs) {
                for (const ParamAxis &axis : spec->grid.axes())
                    valid << " --" << axis.name;
                for (const TunableSpec &t : spec->tunables)
                    valid << " --" << t.name;
            }
            std::cerr << "error: unknown flag --" << name
                      << " (not an axis or tunable of the selected "
                         "experiments; valid:"
                      << valid.str() << ")\n";
            return 2;
        }
        options.overrides[name] = text;
    }

    // --- Run ------------------------------------------------------------
    try {
        const CampaignSummary summary =
            runCampaign(specs, options, std::cout);
        if (!options.dryRun && !summary.experiments.empty()) {
            common::Table table({"experiment", "points", "repeats",
                                 "wall_s", "jobs_per_s", "result_hash"});
            for (const ExperimentRunSummary &e : summary.experiments)
                table.addRow({e.name, std::to_string(e.points),
                              std::to_string(e.repeats),
                              common::formatDouble(e.wallSeconds, 3),
                              common::formatDouble(e.jobsPerSecond, 2),
                              formatResultHash(e.resultHash)});
            std::cout << "\n";
            table.print(std::cout);
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}

} // namespace harp::runner
