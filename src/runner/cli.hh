/**
 * @file
 * Command-line front end shared by `harp_run` and the per-experiment
 * alias binaries (the former bench/example executables, which forward
 * into the same campaign driver with a pre-selected experiment).
 */

#ifndef HARP_RUNNER_CLI_HH
#define HARP_RUNNER_CLI_HH

namespace harp::runner {

/**
 * Entry point behind `harp_run` and every alias binary.
 *
 * Grammar:
 *   harp_run --list
 *   harp_run [selectors...] [--label L] [--all] [--dry-run]
 *            [--seed N] [--threads N] [--repeat N] [--out DIR]
 *            [--<tunable> value]...
 *
 * Selectors are experiment names or `label:<label>`. Any other flag
 * must name a sweep axis (collapsing it to one value) or a declared
 * tunable of a selected experiment.
 *
 * @param forced_experiment When non-null, the binary is an alias: that
 *        experiment is pre-selected and positional selectors are
 *        rejected.
 * @return 0 on success, 1 on a runtime failure, 2 on a usage error.
 */
int runnerMain(int argc, const char *const *argv,
               const char *forced_experiment = nullptr);

} // namespace harp::runner

#endif // HARP_RUNNER_CLI_HH
