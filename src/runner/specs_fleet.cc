/**
 * @file
 * Fleet-scale Monte Carlo reliability experiments.
 *
 * `fleet_policy_sweep` draws a large chip population from a field fault
 * distribution and runs every faulty chip through the full profiler +
 * scrub + repair stack (fleet/policy.hh) for each point of the
 * (profiler x scrub interval x repair budget) grid, emitting FIT rates
 * and repair-capacity percentiles. `fleet_population_stats` exposes
 * the sampler alone — per-mode event counts and the mode-mix
 * chi-square statistic the test tier bounds.
 *
 * Both experiments derive all randomness from ctx.seed(), so campaign
 * JSONL is byte-identical at any --threads and under every engine.
 */

#include <algorithm>
#include <array>
#include <cmath>

#include "fleet/distribution.hh"
#include "fleet/policy.hh"
#include "fleet/population.hh"
#include "runner/registry.hh"
#include "runner/sweeps.hh"

namespace harp::runner {

namespace {

using namespace harp;

/** Scale/shape tunables shared by both fleet experiments. */
std::vector<TunableSpec>
fleetShapeTunables()
{
    return {
        {"chips", "125000", "simulated chips per grid point"},
        {"words_per_chip", "128", "ECC words per chip"},
        {"device_hours", "43800",
         "field exposure per chip (Poisson window; 43800 h = 5 y)"},
        {"cell_prob", "0.5",
         "per-access failure probability of placed at-risk cells"},
        {"fit_scale", "1",
         "multiplier on every mode FIT rate (inflate for small fleets)"},
        {"fleet_seed", "0",
         "fixed population seed shared by every grid point for paired "
         "policy comparisons (0 = per-point campaign seed)"},
    };
}

std::uint64_t
fleetSeedFromContext(const RunContext &ctx)
{
    const std::int64_t pinned = ctx.getInt("fleet_seed", 0);
    return pinned > 0 ? static_cast<std::uint64_t>(pinned) : ctx.seed();
}

fleet::FleetDistribution
distributionFromContext(const RunContext &ctx)
{
    fleet::FleetDistribution dist =
        fleet::FleetDistribution::preset(ctx.getString("dist", "ddr4"));
    dist.cellProbability = ctx.getDouble("cell_prob", 0.5);
    const double fit_scale = ctx.getDouble("fit_scale", 1.0);
    for (double &fit : dist.modeFit)
        fit *= fit_scale;
    dist.validate();
    return dist;
}

JsonValue
runPolicySweepPoint(const RunContext &ctx)
{
    fleet::FleetConfig config;
    config.distribution = distributionFromContext(ctx);
    config.wordsPerChip =
        static_cast<std::size_t>(ctx.getInt("words_per_chip", 128));
    config.deviceHours = ctx.getDouble("device_hours", 43800.0);
    config.chips = static_cast<std::size_t>(ctx.getInt("chips", 125000));
    config.windows = static_cast<std::size_t>(ctx.getInt("windows", 32));
    config.seed = fleetSeedFromContext(ctx);
    config.threads = ctx.threads();
    config.engine = engineFromContext(ctx);

    config.policy.profiler =
        fleet::profilerKindFromName(ctx.getString("profiler", "harp_u"));
    config.policy.activeRounds =
        static_cast<std::size_t>(ctx.getInt("rounds", 32));
    config.policy.scrubInterval =
        static_cast<std::size_t>(ctx.getInt("scrub_interval", 8));
    const std::int64_t budget = ctx.getInt("repair_budget", -1);
    config.policy.repairBudget =
        budget < 0 ? fleet::kUnlimitedBudget
                   : static_cast<std::size_t>(budget);

    const fleet::FleetAggregator agg = fleet::runFleet(config);

    JsonValue metrics = JsonValue::object();
    metrics.set("chips", JsonValue(agg.chips()));
    metrics.set("faulty_chips", JsonValue(agg.faultyChips()));
    metrics.set("fault_events", JsonValue(agg.faultEvents()));
    metrics.set("at_risk_cells", JsonValue(agg.atRiskCells()));
    metrics.set("failed_chips", JsonValue(agg.failedChips()));
    metrics.set("fit_rate", JsonValue(agg.fitRate(config.deviceHours)));
    metrics.set("fit_rate_ci95",
                JsonValue(agg.fitRateCi95(config.deviceHours)));
    metrics.set("repair_capacity_p50",
                JsonValue(agg.repairBitsQuantile(0.50)));
    metrics.set("repair_capacity_p99",
                JsonValue(agg.repairBitsQuantile(0.99)));
    metrics.set("repair_capacity_p999",
                JsonValue(agg.repairBitsQuantile(0.999)));
    metrics.set("repair_bits_total", JsonValue(agg.repairSpareBits()));
    metrics.set("profiled_bits", JsonValue(agg.profiledBits()));
    metrics.set("uncorrectable_events",
                JsonValue(agg.uncorrectableEvents()));
    metrics.set("silent_corruptions", JsonValue(agg.silentCorruptions()));
    metrics.set("repaired_bit_reads", JsonValue(agg.repairedBitReads()));
    metrics.set("scrub_writebacks", JsonValue(agg.scrubWritebacks()));
    return metrics;
}

JsonValue
runPopulationStatsPoint(const RunContext &ctx)
{
    const fleet::FleetDistribution dist = distributionFromContext(ctx);
    const std::size_t chips =
        static_cast<std::size_t>(ctx.getInt("chips", 125000));
    const fleet::ChipGeometry geometry{
        static_cast<std::size_t>(ctx.getInt("words_per_chip", 128)), 71};
    const fleet::PopulationSampler sampler(
        dist, geometry, ctx.getDouble("device_hours", 43800.0),
        fleetSeedFromContext(ctx));

    std::array<std::uint64_t, fleet::kNumFaultModes> mode_counts{};
    std::vector<std::uint64_t> tier_counts(dist.tiers.size(), 0);
    std::uint64_t faulty = 0, events = 0, cells = 0, max_events = 0;
    for (std::size_t chip = 0; chip < chips; ++chip) {
        const fleet::ChipSample sample = sampler.sample(chip);
        ++tier_counts[sample.tier];
        if (!sample.faulty())
            continue;
        ++faulty;
        events += sample.events.size();
        max_events = std::max<std::uint64_t>(max_events,
                                             sample.events.size());
        cells += sample.distinctCells();
        for (const fleet::FaultEvent &event : sample.events)
            ++mode_counts[static_cast<std::size_t>(event.mode)];
    }

    // Conditioned on an event arriving, its mode is an iid draw from
    // modeMix() in every tier — the chi-square statistic against that
    // mix is what the statistical test tier bounds.
    const auto mix = dist.modeMix();
    double chi_square = 0.0;
    if (events > 0) {
        for (std::size_t m = 0; m < fleet::kNumFaultModes; ++m) {
            const double expected =
                static_cast<double>(events) * mix[m];
            if (expected <= 0.0)
                continue;
            const double delta =
                static_cast<double>(mode_counts[m]) - expected;
            chi_square += delta * delta / expected;
        }
    }

    // Expected faulty fraction: mixture of per-tier Poisson arrivals.
    double expected_faulty = 0.0;
    for (std::size_t t = 0; t < dist.tiers.size(); ++t)
        expected_faulty +=
            dist.tiers[t].fraction *
            -std::expm1(-sampler.eventRate(t));

    JsonValue metrics = JsonValue::object();
    metrics.set("chips", JsonValue(chips));
    metrics.set("faulty_chips", JsonValue(faulty));
    metrics.set("fault_events", JsonValue(events));
    metrics.set("distinct_cells", JsonValue(cells));
    metrics.set("max_events_per_chip", JsonValue(max_events));
    metrics.set("mean_events_per_chip",
                JsonValue(static_cast<double>(events) /
                          static_cast<double>(chips)));
    metrics.set("expected_faulty_fraction", JsonValue(expected_faulty));
    metrics.set("events_bit", JsonValue(mode_counts[0]));
    metrics.set("events_word", JsonValue(mode_counts[1]));
    metrics.set("events_column", JsonValue(mode_counts[2]));
    metrics.set("events_chip", JsonValue(mode_counts[3]));
    metrics.set("chi_square_mode_mix", JsonValue(chi_square));
    JsonValue tiers = JsonValue::array();
    for (std::size_t t = 0; t < dist.tiers.size(); ++t) {
        JsonValue tier = JsonValue::object();
        tier.set("name", JsonValue(dist.tiers[t].name));
        tier.set("chips", JsonValue(tier_counts[t]));
        tiers.push(std::move(tier));
    }
    metrics.set("tiers", tiers);
    return metrics;
}

} // namespace

void
registerFleetSpecs(Registry &registry)
{
    {
        ExperimentSpec spec;
        spec.name = "fleet_policy_sweep";
        spec.description =
            "Monte Carlo fleet reliability: FIT rate and repair-capacity "
            "percentiles per (profiler x scrub x repair budget) policy";
        spec.labels = {"fleet", "extension"};
        spec.grid = ParamGrid{{
            ParamAxis{"profiler",
                      {ParamValue("none"), ParamValue("naive"),
                       ParamValue("harp_u"), ParamValue("harp_a")}},
            ParamAxis{"scrub_interval", {ParamValue(0), ParamValue(8)}},
            ParamAxis{"repair_budget", {ParamValue(16), ParamValue(-1)}},
        }};
        spec.tunables = fleetShapeTunables();
        spec.tunables.push_back(
            {"dist", "ddr4",
             "field fault distribution preset: ddr4 | hrm (3-tier HRM)"});
        spec.tunables.push_back(
            {"windows", "32", "operation windows replayed per chip"});
        spec.tunables.push_back(
            {"rounds", "32", "active-profiling rounds per faulty word"});
        spec.tunables.push_back(engineTunable());
        spec.schema = {
            {"chips", JsonType::Int, "simulated chips"},
            {"faulty_chips", JsonType::Int,
             "chips the sampler drew fault events for"},
            {"fault_events", JsonType::Int, "field fault events drawn"},
            {"at_risk_cells", JsonType::Int,
             "distinct at-risk cells placed on faulty chips"},
            {"failed_chips", JsonType::Int,
             "chips with any corrupt read (detected or silent)"},
            {"fit_rate", JsonType::Double,
             "failed chips per billion device-hours"},
            {"fit_rate_ci95", JsonType::Double,
             "95% CI half-width of fit_rate"},
            {"repair_capacity_p50", JsonType::Int,
             "median spare bits consumed per faulty chip"},
            {"repair_capacity_p99", JsonType::Int,
             "p99 spare bits consumed per faulty chip"},
            {"repair_capacity_p999", JsonType::Int,
             "p999 spare bits consumed per faulty chip"},
            {"repair_bits_total", JsonType::Int,
             "spare bits consumed fleet-wide"},
            {"profiled_bits", JsonType::Int,
             "profiled at-risk bits fleet-wide"},
            {"uncorrectable_events", JsonType::Int,
             "detected-uncorrectable reads fleet-wide"},
            {"silent_corruptions", JsonType::Int,
             "reads returning wrong data undetected"},
            {"repaired_bit_reads", JsonType::Int,
             "bit corrections served from spares"},
            {"scrub_writebacks", JsonType::Int,
             "patrol-scrub corrections written back"},
        };
        spec.run = runPolicySweepPoint;
        registry.add(std::move(spec));
    }
    {
        ExperimentSpec spec;
        spec.name = "fleet_population_stats";
        spec.description =
            "Chip-population sampler statistics: per-mode event counts, "
            "tier split and the mode-mix chi-square statistic";
        spec.labels = {"fleet", "extension"};
        spec.grid = ParamGrid{{
            ParamAxis{"dist", {ParamValue("ddr4"), ParamValue("hrm")}},
        }};
        spec.tunables = fleetShapeTunables();
        spec.schema = {
            {"chips", JsonType::Int, "sampled chips"},
            {"faulty_chips", JsonType::Int, "chips with >= 1 event"},
            {"fault_events", JsonType::Int, "events drawn"},
            {"distinct_cells", JsonType::Int,
             "distinct at-risk cells across faulty chips"},
            {"max_events_per_chip", JsonType::Int,
             "largest per-chip event count"},
            {"mean_events_per_chip", JsonType::Double,
             "events / chips"},
            {"expected_faulty_fraction", JsonType::Double,
             "closed-form P(>=1 event) under the tier mixture"},
            {"events_bit", JsonType::Int, "single-bit events"},
            {"events_word", JsonType::Int, "single-word events"},
            {"events_column", JsonType::Int, "single-column events"},
            {"events_chip", JsonType::Int, "chip-wide events"},
            {"chi_square_mode_mix", JsonType::Double,
             "chi-square of the observed mode mix vs modeMix()"},
            {"tiers", JsonType::Array,
             "per-tier {name, chips} population split"},
        };
        spec.run = runPopulationStatsPoint;
        registry.add(std::move(spec));
    }
}

} // namespace harp::runner
