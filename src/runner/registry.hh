/**
 * @file
 * Experiment registry: the named catalogue `harp_run` selects from.
 *
 * Registration is explicit (registerBuiltinExperiments) rather than via
 * static initializers — the specs live in a static library, and the
 * linker would silently drop unreferenced translation units along with
 * their self-registering globals.
 */

#ifndef HARP_RUNNER_REGISTRY_HH
#define HARP_RUNNER_REGISTRY_HH

#include <string>
#include <vector>

#include "runner/experiment_spec.hh"

namespace harp::runner {

/**
 * Catalogue of experiment specs, ordered by name.
 */
class Registry
{
  public:
    /** Add a spec. @throws std::invalid_argument on a duplicate name or
     *  a spec without a run callback. */
    void add(ExperimentSpec spec);

    /** Spec by exact name; nullptr when absent. */
    const ExperimentSpec *find(const std::string &name) const;

    /** All specs sorted by name. */
    std::vector<const ExperimentSpec *> all() const;

    /** Specs carrying @p label, sorted by name. */
    std::vector<const ExperimentSpec *>
    withLabel(const std::string &label) const;

    /**
     * Resolve selectors to specs: each selector is an experiment name
     * or "label:<label>". Duplicates are dropped, order follows the
     * first selector that matched each spec.
     * @throws std::invalid_argument on an unknown selector.
     */
    std::vector<const ExperimentSpec *>
    select(const std::vector<std::string> &selectors) const;

    std::size_t size() const { return specs_.size(); }

  private:
    std::vector<ExperimentSpec> specs_;
};

/** Registry preloaded with every built-in experiment. */
const Registry &builtinRegistry();

/**
 * Machine-readable registry document (names, descriptions, labels,
 * grid sizes, schemas, self-consistent count/label_counts) — the body
 * of `harp_run --list-json` and of the harpd `list` verb, shared so
 * the two can be cross-checked against each other.
 */
JsonValue registryToJson(const Registry &registry);

/** @name Per-module spec registration (called by builtinRegistry) */
///@{
void registerMotivationSpecs(Registry &registry);
void registerCoverageSpecs(Registry &registry);
void registerCaseStudySpecs(Registry &registry);
void registerExtensionSpecs(Registry &registry);
void registerExampleSpecs(Registry &registry);
void registerPerfSpecs(Registry &registry);
void registerFleetSpecs(Registry &registry);
///@}

} // namespace harp::runner

#endif // HARP_RUNNER_REGISTRY_HH
