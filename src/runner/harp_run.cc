/**
 * @file
 * `harp_run`: the unified experiment-campaign CLI. Every paper figure,
 * table, ablation, extension and example walkthrough is registered as
 * an ExperimentSpec; this binary lists, dry-runs and executes them.
 */

#include "runner/cli.hh"

int
main(int argc, char **argv)
{
    return harp::runner::runnerMain(argc, argv);
}
