/**
 * @file
 * Minimal JSON document model for the experiment-campaign runner.
 *
 * The runner emits machine-readable results (JSON Lines per grid point
 * plus an aggregated summary document) and validates them against each
 * experiment's declared result schema, so it needs both a writer and a
 * reader. Objects preserve insertion order and numbers render through
 * std::to_chars (shortest round-trip form), which makes serialized
 * output byte-stable — campaign determinism is asserted by hashing it.
 */

#ifndef HARP_RUNNER_JSON_HH
#define HARP_RUNNER_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace harp::runner {

/** Type tag of a JsonValue. */
enum class JsonType
{
    Null,
    Bool,
    Int,    ///< Integral number (no fraction/exponent in the source).
    Double, ///< Any other number.
    String,
    Array,
    Object,
};

/** Human-readable type name ("null", "bool", "int", ...). */
std::string jsonTypeName(JsonType type);

/**
 * One JSON value of any type.
 *
 * Objects keep their keys in insertion order so that a document dumps
 * identically on every run; lookup is linear, which is fine for the
 * small documents the runner produces.
 */
class JsonValue
{
  public:
    /** Constructs null. */
    JsonValue() = default;

    JsonValue(bool b) : type_(JsonType::Bool), bool_(b) {}
    JsonValue(std::int64_t i) : type_(JsonType::Int), int_(i) {}
    JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
    JsonValue(std::size_t u) : JsonValue(static_cast<std::int64_t>(u)) {}
    JsonValue(double d) : type_(JsonType::Double), double_(d) {}
    JsonValue(std::string s) : type_(JsonType::String), string_(std::move(s))
    {
    }
    JsonValue(const char *s) : JsonValue(std::string(s)) {}

    /** Empty array. */
    static JsonValue array();
    /** Empty object. */
    static JsonValue object();

    JsonType type() const { return type_; }
    bool isNull() const { return type_ == JsonType::Null; }
    /** True for Int or Double. */
    bool isNumber() const
    {
        return type_ == JsonType::Int || type_ == JsonType::Double;
    }

    /** Typed accessors; throw std::logic_error on a type mismatch. */
    bool asBool() const;
    std::int64_t asInt() const;
    /** Numeric value as double (valid for Int and Double). */
    double asDouble() const;
    const std::string &asString() const;

    // --- Array interface ---------------------------------------------
    /** Append to an array (value must be an array). */
    void push(JsonValue v);
    /** Array size / object member count; 0 for other types. */
    std::size_t size() const;
    /** Array element access; throws std::out_of_range. */
    const JsonValue &at(std::size_t i) const;

    // --- Object interface --------------------------------------------
    /** Set (or replace) an object member, preserving first-set order. */
    void set(const std::string &key, JsonValue v);
    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Serialize. @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /**
     * Parse a complete JSON document.
     * @throws std::runtime_error with position info on malformed input.
     */
    static JsonValue parse(const std::string &text);

    bool operator==(const JsonValue &other) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    JsonType type_ = JsonType::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/** Shortest-round-trip rendering of a double (to_chars); "null" for
 *  non-finite values, which JSON cannot represent. */
std::string jsonNumberToString(double value);

} // namespace harp::runner

#endif // HARP_RUNNER_JSON_HH
