#include "runner/session.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/bits.hh"
#include "common/ordered_merger.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "runner/campaign.hh"

namespace harp::runner {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

ParamGrid
gridWithOverrides(const ExperimentSpec &spec,
                  const std::map<std::string, std::string> &overrides)
{
    ParamGrid grid = spec.grid;
    for (const auto &[name, text] : overrides) {
        if (grid.findAxis(name) != nullptr)
            grid = grid.collapsed(name, text);
    }
    return grid;
}

} // namespace

std::uint64_t
campaignJobSeed(std::uint64_t campaign_seed, const std::string &experiment,
                std::size_t point, std::size_t repeat)
{
    // Salt with the experiment name so campaigns are insensitive to
    // registration/selection order, then with the job coordinates so
    // every job owns an independent stream.
    return common::deriveSeed(campaign_seed,
                              {common::fnv1a64(experiment), point, repeat});
}

CampaignSession::CampaignSession(const ExperimentSpec &spec,
                                 SessionOptions options)
    : spec_(&spec), options_(std::move(options))
{
    if (options_.repeat == 0)
        options_.repeat = 1;
    points_ = gridWithOverrides(spec, options_.overrides).expand();
    seeds_.reserve(points_.size() * options_.repeat);
    for (std::size_t p = 0; p < points_.size(); ++p)
        for (std::size_t r = 0; r < options_.repeat; ++r)
            seeds_.push_back(
                campaignJobSeed(options_.seed, spec.name, p, r));
    restoredLines_.resize(seeds_.size());
    restored_.assign(seeds_.size(), false);
}

bool
CampaignSession::restore(std::size_t job, std::string line)
{
    if (job >= seeds_.size() || restored_[job])
        return false;
    restoredLines_[job] = std::move(line);
    restored_[job] = true;
    ++restoredCount_;
    return true;
}

CampaignSession::Outcome
CampaignSession::run(common::ThreadPool *pool, std::size_t poolThreads,
                     ResultSink &sink, const std::atomic<bool> *cancel,
                     const std::function<void(std::size_t)> &progress,
                     WaveScheduler *scheduler)
{
    if (poolThreads == 0) {
        poolThreads =
            std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }

    Outcome outcome;
    const std::size_t total = seeds_.size();
    std::vector<std::string> errors(total);
    std::vector<double> job_seconds(total, 0.0);
    std::atomic<std::size_t> completed{restoredCount_};

    // Every line — restored or fresh — funnels through the merger so
    // the sink observes strict job order; the hash accumulates in the
    // same pass. Merge callbacks are serialized under the merger lock.
    struct Payload
    {
        const std::string *line;
        bool fresh;
    };
    common::OrderedMerger<Payload> merger(total);
    std::size_t delivered = 0;
    std::uint64_t hash = common::fnv1a64Init;
    const auto merge = [&](const Payload &p) {
        hash = common::fnv1a64(*p.line, hash);
        hash = common::fnv1a64("\n", hash);
        sink.onResult(delivered++, *p.line, p.fresh);
    };

    std::vector<std::string> freshLines(total);
    const auto runOne = [&](std::size_t j, std::size_t inner_threads) {
        const auto start = Clock::now();
        try {
            const RunContext ctx(points_[jobPoint(j)], options_.overrides,
                                 seeds_[j], jobRepeat(j), inner_threads);
            const JsonValue metrics = spec_->run(ctx);
            if (const auto error = validateSchema(spec_->schema, metrics))
                throw std::runtime_error("schema violation: " + *error);
            JsonValue line = JsonValue::object();
            line.set("experiment", JsonValue(spec_->name));
            line.set("point", JsonValue(jobPoint(j)));
            line.set("repeat", JsonValue(jobRepeat(j)));
            line.set("seed", JsonValue(std::to_string(seeds_[j])));
            line.set("params", points_[jobPoint(j)].toJson());
            line.set("metrics", metrics);
            freshLines[j] = line.dump();
        } catch (const std::exception &e) {
            errors[j] = e.what();
        }
        job_seconds[j] = secondsSince(start);
        merger.deposit(j, Payload{&freshLines[j], true}, merge);
    };

    // Restored jobs enter the merger first: a contiguous restored
    // prefix streams to the sink immediately; interior restored jobs
    // wait for the fresh jobs filling the gaps before them.
    for (std::size_t j = 0; j < total; ++j) {
        if (restored_[j])
            merger.deposit(j, Payload{&restoredLines_[j], false}, merge);
    }
    if (progress && restoredCount_ > 0)
        progress(restoredCount_);

    // Remaining jobs, longest-expected-first (stable on the cost key)
    // so a heavy grid point never starts last and stretches the tail.
    std::vector<std::size_t> remaining;
    remaining.reserve(total - restoredCount_);
    for (std::size_t j = 0; j < total; ++j) {
        if (!restored_[j])
            remaining.push_back(j);
    }
    std::vector<double> cost(total, 0.0);
    for (const std::size_t j : remaining)
        cost[j] = jobCostKey(points_[jobPoint(j)]);
    std::stable_sort(remaining.begin(), remaining.end(),
                     [&cost](std::size_t a, std::size_t b) {
                         return cost[a] > cost[b];
                     });

    // Wave scheduler: at most poolThreads jobs per wave, and the
    // intra-job allowance recomputed per wave from the jobs actually
    // in flight — trailing waves narrower than the pool hand the idle
    // capacity *into* their jobs as intra-job sharding width.
    std::size_t next = 0;
    while (next < remaining.size()) {
        if (cancel != nullptr &&
            cancel->load(std::memory_order_relaxed)) {
            outcome.cancelled = true;
            break;
        }
        const std::size_t rest = remaining.size() - next;
        std::size_t wave;
        std::size_t inner_threads;
        if (scheduler != nullptr) {
            // The governor may block here until the shared pool has
            // capacity for this session, and aborts with width 0 (the
            // session then reports cancelled, like a cancel flag).
            const WaveScheduler::Wave plan = scheduler->next(rest);
            if (plan.width == 0) {
                outcome.cancelled = true;
                break;
            }
            wave = std::min(plan.width, rest);
            inner_threads = std::max<std::size_t>(1, plan.innerThreads);
        } else {
            wave = std::min(poolThreads, rest);
            inner_threads = std::max<std::size_t>(1, poolThreads / wave);
        }
        const auto finishOne = [&] {
            if (progress)
                progress(completed.fetch_add(1) + 1);
            if (scheduler != nullptr)
                scheduler->jobDone();
        };
        if (pool == nullptr || poolThreads <= 1 || wave <= 1) {
            for (std::size_t w = 0; w < wave; ++w) {
                runOne(remaining[next + w], inner_threads);
                finishOne();
            }
        } else {
            common::WaitGroup wg;
            wg.add(wave);
            for (std::size_t w = 0; w < wave; ++w) {
                const std::size_t j = remaining[next + w];
                pool->submit([&, j, inner_threads] {
                    runOne(j, inner_threads);
                    finishOne();
                    wg.done();
                });
            }
            wg.wait();
        }
        next += wave;
    }

    for (std::size_t j = 0; j < total && !outcome.cancelled; ++j) {
        if (!errors[j].empty())
            throw std::runtime_error(
                spec_->name + " [" + points_[jobPoint(j)].toString() +
                " repeat=" + std::to_string(jobRepeat(j)) +
                "]: " + errors[j]);
    }

    outcome.resultHash = hash;
    outcome.freshJobs = next;
    outcome.freshJobSeconds.reserve(next);
    for (std::size_t w = 0; w < next; ++w)
        outcome.freshJobSeconds.push_back(job_seconds[remaining[w]]);
    return outcome;
}

} // namespace harp::runner
