/**
 * @file
 * Experiment specs built on the Monte-Carlo coverage experiment: Fig. 6
 * (direct coverage), Fig. 7 (bootstrapping), Fig. 8 (missed indirect
 * errors), Fig. 9 (secondary-ECC sizing) and the code-length and
 * data-pattern ablations.
 */

#include <algorithm>

#include "core/coverage_experiment.hh"
#include "ecc/hamming_code.hh"
#include "runner/registry.hh"
#include "runner/sweeps.hh"

namespace harp::runner {

namespace {

using namespace harp;

/** Coverage config for one (prob, pre_errors) grid point. */
core::CoverageConfig
coverageConfigFromPoint(const RunContext &ctx)
{
    core::CoverageConfig config = coverageConfigFromContext(ctx);
    config.perBitProbability = ctx.getDouble("prob", 0.5);
    config.numPreCorrectionErrors =
        static_cast<std::size_t>(ctx.getInt("pre_errors", 2));
    return config;
}

/** Coverage values at the log-spaced checkpoints, as a JSON array. */
JsonValue
curveAtCheckpoints(const std::vector<std::size_t> &checkpoints,
                   const std::function<double(std::size_t)> &value)
{
    JsonValue arr = JsonValue::array();
    for (const std::size_t cp : checkpoints)
        arr.push(JsonValue(value(cp - 1)));
    return arr;
}

/** 1-based round at which the profiler reaches full aggregate direct
 *  coverage; rounds+1 when it never does. */
std::size_t
fullCoverageRound(const core::CoverageResult &result, std::size_t profiler)
{
    for (std::size_t r = 0; r < result.config.rounds; ++r)
        if (result.profilers[profiler].directIdentifiedSum[r] ==
            result.totalDirectAtRisk)
            return r + 1;
    return result.config.rounds + 1;
}

ExperimentSpec
makeFig06()
{
    ExperimentSpec spec;
    spec.name = "fig06_direct_coverage";
    spec.description =
        "Direct-error coverage vs. profiling rounds per profiler";
    spec.labels = {"bench", "figure"};
    spec.grid = ParamGrid({probabilityAxis(), preErrorAxis()});
    spec.tunables = coverageTunables();
    spec.schema = {
        {"checkpoints", JsonType::Array, "log-spaced round numbers"},
        {"profilers", JsonType::Array,
         "per profiler: name, coverage curve, full-coverage round, false "
         "positives"},
        {"total_direct_at_risk", JsonType::Int,
         "ground-truth direct-at-risk bits over all words"},
        {"num_words", JsonType::Int, "simulated ECC words"},
        {"harp_vs_best_baseline", JsonType::Double,
         "HARP-U full-coverage round / best baseline's (null when either "
         "never reaches full coverage)"},
    };
    spec.run = [](const RunContext &ctx) {
        const core::CoverageConfig config = coverageConfigFromPoint(ctx);
        const core::CoverageResult result =
            core::runCoverageExperiment(config);
        const auto checkpoints = roundCheckpoints(config.rounds);

        JsonValue profilers = JsonValue::array();
        std::vector<std::size_t> full_round;
        for (std::size_t p = 0; p < result.profilers.size(); ++p) {
            full_round.push_back(fullCoverageRound(result, p));
            JsonValue obj = JsonValue::object();
            obj.set("name", JsonValue(result.profilers[p].name));
            obj.set("coverage",
                    curveAtCheckpoints(checkpoints, [&](std::size_t r) {
                        return result.directCoverage(p, r);
                    }));
            obj.set("full_coverage_round", JsonValue(full_round.back()));
            obj.set("false_positives_mean",
                    JsonValue(static_cast<double>(
                                  result.profilers[p].falsePositiveSum
                                      [config.rounds - 1]) /
                              static_cast<double>(result.numWords)));
            profilers.push(std::move(obj));
        }

        // Profiler order is Naive, BEEP, HARP-U, HARP-A (coverage
        // experiment contract, asserted by its tests).
        const std::size_t harp = full_round[2];
        const std::size_t best_baseline =
            std::min(full_round[0], full_round[1]);
        JsonValue ratio; // null when either side never converged
        if (harp <= config.rounds && best_baseline <= config.rounds)
            ratio = JsonValue(static_cast<double>(harp) /
                              static_cast<double>(best_baseline));

        JsonValue metrics = JsonValue::object();
        metrics.set("checkpoints", checkpointsJson(checkpoints));
        metrics.set("profilers", std::move(profilers));
        metrics.set("total_direct_at_risk",
                    JsonValue(result.totalDirectAtRisk));
        metrics.set("num_words", JsonValue(result.numWords));
        metrics.set("harp_vs_best_baseline", std::move(ratio));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeFig07()
{
    ExperimentSpec spec;
    spec.name = "fig07_bootstrapping";
    spec.description =
        "Rounds until the first direct error is identified per profiler";
    spec.labels = {"bench", "figure"};
    spec.grid = ParamGrid({probabilityAxis(), preErrorAxis()});
    spec.tunables = coverageTunables();
    spec.schema = {
        {"profilers", JsonType::Array,
         "per profiler: bootstrap-round quantiles and the count of words "
         "that never bootstrapped"},
    };
    spec.run = [](const RunContext &ctx) {
        const core::CoverageConfig config = coverageConfigFromPoint(ctx);
        const core::CoverageResult result =
            core::runCoverageExperiment(config);

        JsonValue profilers = JsonValue::array();
        for (const core::ProfilerAggregate &agg : result.profilers) {
            const auto &boot = agg.bootstrapRounds;
            // Words reported at rounds+1 never identified a direct error.
            const auto samples = boot.sortedSamples();
            const std::size_t never = static_cast<std::size_t>(
                samples.end() -
                std::upper_bound(samples.begin(), samples.end(),
                                 static_cast<double>(config.rounds)));
            JsonValue obj = JsonValue::object();
            obj.set("name", JsonValue(agg.name));
            obj.set("p25", JsonValue(boot.quantile(0.25)));
            obj.set("median", JsonValue(boot.median()));
            obj.set("p75", JsonValue(boot.quantile(0.75)));
            obj.set("p99", JsonValue(boot.quantile(0.99)));
            obj.set("max", JsonValue(boot.quantile(1.0)));
            obj.set("never_bootstrapped", JsonValue(never));
            profilers.push(std::move(obj));
        }
        JsonValue metrics = JsonValue::object();
        metrics.set("profilers", std::move(profilers));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeFig08()
{
    ExperimentSpec spec;
    spec.name = "fig08_indirect_coverage";
    spec.description =
        "Missed indirect errors per ECC word vs. profiling rounds";
    spec.labels = {"bench", "figure"};
    spec.grid = ParamGrid({probabilityAxis(), preErrorAxis()});
    spec.tunables = coverageTunables();
    spec.schema = {
        {"checkpoints", JsonType::Array, "log-spaced round numbers"},
        {"profilers", JsonType::Array,
         "per profiler (incl. HARP-A+BEEP): missed-indirect curve"},
    };
    spec.run = [](const RunContext &ctx) {
        core::CoverageConfig config = coverageConfigFromPoint(ctx);
        config.includeHarpABeep = true;
        const core::CoverageResult result =
            core::runCoverageExperiment(config);
        const auto checkpoints = roundCheckpoints(config.rounds);

        JsonValue profilers = JsonValue::array();
        for (std::size_t p = 0; p < result.profilers.size(); ++p) {
            JsonValue obj = JsonValue::object();
            obj.set("name", JsonValue(result.profilers[p].name));
            obj.set("missed_indirect_per_word",
                    curveAtCheckpoints(checkpoints, [&](std::size_t r) {
                        return result.missedIndirectPerWord(p, r);
                    }));
            profilers.push(std::move(obj));
        }
        JsonValue metrics = JsonValue::object();
        metrics.set("checkpoints", checkpointsJson(checkpoints));
        metrics.set("profilers", std::move(profilers));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeFig09()
{
    ExperimentSpec spec;
    spec.name = "fig09_secondary_ecc";
    spec.description =
        "Secondary-ECC correction capability: max-simultaneous-error "
        "histogram and rounds to bound";
    spec.labels = {"bench", "figure"};
    spec.grid = ParamGrid({probabilityAxis(), preErrorAxis()});
    spec.tunables = coverageTunables();
    spec.schema = {
        {"profilers", JsonType::Array,
         "per profiler: final max-simultaneous-error fractions and "
         "99th-percentile rounds to bound <= 1/2/3"},
    };
    spec.run = [](const RunContext &ctx) {
        const core::CoverageConfig config = coverageConfigFromPoint(ctx);
        const core::CoverageResult result =
            core::runCoverageExperiment(config);

        JsonValue profilers = JsonValue::array();
        for (const core::ProfilerAggregate &agg : result.profilers) {
            const auto &hist = agg.maxSimultaneousFinal;
            double frac4plus = 0.0;
            for (std::size_t b = 4; b < hist.numBins(); ++b)
                frac4plus += hist.fraction(b);
            JsonValue obj = JsonValue::object();
            obj.set("name", JsonValue(agg.name));
            JsonValue fracs = JsonValue::array();
            for (std::size_t b = 0; b < 4; ++b)
                fracs.push(JsonValue(hist.fraction(b)));
            fracs.push(JsonValue(frac4plus));
            obj.set("final_max_simultaneous_fractions", std::move(fracs));
            JsonValue bounds = JsonValue::array();
            for (std::size_t x = 1; x <= 3; ++x) {
                const double v = agg.roundsToBound[x - 1].quantile(0.99);
                // rounds+1 means the bound was never reached in budget.
                bounds.push(JsonValue(v));
            }
            obj.set("rounds_to_bound_p99", std::move(bounds));
            profilers.push(std::move(obj));
        }
        JsonValue metrics = JsonValue::object();
        metrics.set("profilers", std::move(profilers));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeAblationCodeLength()
{
    ExperimentSpec spec;
    spec.name = "ablation_code_length";
    spec.description =
        "Direct coverage at (71,64) vs. (136,128) on-die code lengths";
    spec.labels = {"bench", "ablation"};
    ParamAxis k{"k", {std::size_t{64}, std::size_t{128}}};
    spec.grid = ParamGrid({k, preErrorAxis()});
    spec.tunables = {
        {"codes", "8", "randomly generated codes per point"},
        {"words", "24", "simulated ECC words per code"},
        {"rounds", "128", "active-profiling rounds"},
        {"prob", "0.5", "per-bit failure probability of at-risk cells"},
        engineTunable(),
    };
    spec.schema = {
        {"code", JsonType::String, "(n,k) of the evaluated code"},
        {"checkpoints", JsonType::Array, "log-spaced round numbers"},
        {"profilers", JsonType::Array, "per profiler: coverage curve"},
    };
    spec.run = [](const RunContext &ctx) {
        core::CoverageConfig config = coverageConfigFromContext(ctx);
        config.k =
            static_cast<std::size_t>(ctx.point().find("k")->asInt());
        config.perBitProbability = ctx.getDouble("prob", 0.5);
        config.numPreCorrectionErrors =
            static_cast<std::size_t>(ctx.getInt("pre_errors", 2));
        const core::CoverageResult result =
            core::runCoverageExperiment(config);
        const auto checkpoints = roundCheckpoints(config.rounds);

        JsonValue profilers = JsonValue::array();
        for (std::size_t p = 0; p < result.profilers.size(); ++p) {
            JsonValue obj = JsonValue::object();
            obj.set("name", JsonValue(result.profilers[p].name));
            obj.set("coverage",
                    curveAtCheckpoints(checkpoints, [&](std::size_t r) {
                        return result.directCoverage(p, r);
                    }));
            profilers.push(std::move(obj));
        }
        JsonValue metrics = JsonValue::object();
        metrics.set(
            "code",
            JsonValue("(" +
                      std::to_string(
                          config.k +
                          ecc::HammingCode::minParityBits(config.k)) +
                      "," + std::to_string(config.k) + ")"));
        metrics.set("checkpoints", checkpointsJson(checkpoints));
        metrics.set("profilers", std::move(profilers));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeAblationDataPatterns()
{
    ExperimentSpec spec;
    spec.name = "ablation_data_patterns";
    spec.description =
        "Direct coverage under random vs. charged vs. checkered patterns";
    spec.labels = {"bench", "ablation"};
    ParamAxis pattern{"pattern", {"random", "charged", "checkered"}};
    spec.grid = ParamGrid({pattern});
    spec.tunables = {
        {"codes", "8", "randomly generated codes per point"},
        {"words", "24", "simulated ECC words per code"},
        {"rounds", "128", "active-profiling rounds"},
        {"prob", "0.5", "per-bit failure probability of at-risk cells"},
        {"pre_errors", "4", "at-risk cells per ECC word"},
        engineTunable(),
    };
    spec.schema = {
        {"checkpoints", JsonType::Array, "log-spaced round numbers"},
        {"profilers", JsonType::Array,
         "Naive and HARP-U coverage curves (the ablation's focus)"},
    };
    spec.run = [](const RunContext &ctx) {
        core::CoverageConfig config = coverageConfigFromContext(ctx);
        config.perBitProbability = ctx.getDouble("prob", 0.5);
        config.numPreCorrectionErrors =
            static_cast<std::size_t>(ctx.getInt("pre_errors", 4));
        config.pattern = core::patternKindFromName(
            ctx.point().find("pattern")->asString());
        const core::CoverageResult result =
            core::runCoverageExperiment(config);
        const auto checkpoints = roundCheckpoints(config.rounds);

        JsonValue profilers = JsonValue::array();
        for (std::size_t p = 0; p < result.profilers.size(); ++p) {
            // Focus the ablation on Naive (0) and HARP-U (2).
            if (p != 0 && p != 2)
                continue;
            JsonValue obj = JsonValue::object();
            obj.set("name", JsonValue(result.profilers[p].name));
            obj.set("coverage",
                    curveAtCheckpoints(checkpoints, [&](std::size_t r) {
                        return result.directCoverage(p, r);
                    }));
            profilers.push(std::move(obj));
        }
        JsonValue metrics = JsonValue::object();
        metrics.set("checkpoints", checkpointsJson(checkpoints));
        metrics.set("profilers", std::move(profilers));
        return metrics;
    };
    return spec;
}

} // namespace

void
registerCoverageSpecs(Registry &registry)
{
    registry.add(makeFig06());
    registry.add(makeFig07());
    registry.add(makeFig08());
    registry.add(makeFig09());
    registry.add(makeAblationCodeLength());
    registry.add(makeAblationDataPatterns());
}

} // namespace harp::runner
