#include "runner/experiment_spec.hh"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace harp::runner {

const std::string *
RunContext::findOverride(const std::string &name) const
{
    const auto it = overrides_.find(name);
    return it == overrides_.end() ? nullptr : &it->second;
}

std::int64_t
RunContext::getInt(const std::string &name, std::int64_t def) const
{
    if (const ParamValue *v = point_.find(name))
        return v->asInt();
    if (const std::string *text = findOverride(name)) {
        std::int64_t i = 0;
        const auto r =
            std::from_chars(text->data(), text->data() + text->size(), i);
        if (r.ec != std::errc() || r.ptr != text->data() + text->size())
            throw std::invalid_argument("--" + name + "=" + *text +
                                        ": not an integer");
        return i;
    }
    return def;
}

double
RunContext::getDouble(const std::string &name, double def) const
{
    if (const ParamValue *v = point_.find(name))
        return v->asDouble();
    if (const std::string *text = findOverride(name)) {
        double d = 0.0;
        const auto r =
            std::from_chars(text->data(), text->data() + text->size(), d);
        if (r.ec != std::errc() || r.ptr != text->data() + text->size())
            throw std::invalid_argument("--" + name + "=" + *text +
                                        ": not a number");
        return d;
    }
    return def;
}

bool
RunContext::getBool(const std::string &name, bool def) const
{
    if (const ParamValue *v = point_.find(name))
        return v->asBool();
    if (const std::string *text = findOverride(name))
        return *text != "false" && *text != "0";
    return def;
}

std::string
RunContext::getString(const std::string &name, const std::string &def) const
{
    if (const ParamValue *v = point_.find(name))
        return v->asString();
    if (const std::string *text = findOverride(name))
        return *text;
    return def;
}

bool
ExperimentSpec::hasLabel(const std::string &label) const
{
    return std::find(labels.begin(), labels.end(), label) != labels.end();
}

std::optional<std::string>
validateSchema(const std::vector<FieldSpec> &schema, const JsonValue &metrics)
{
    if (metrics.type() != JsonType::Object)
        return "metrics is not a JSON object";
    for (const FieldSpec &field : schema) {
        const JsonValue *v = metrics.find(field.name);
        if (v == nullptr)
            return "missing field '" + field.name + "'";
        if (v->isNull())
            continue; // null marks a not-applicable value
        if (v->type() == field.type)
            continue;
        if (field.type == JsonType::Double && v->type() == JsonType::Int)
            continue; // integral doubles parse back as Int
        return "field '" + field.name + "' has type " +
               jsonTypeName(v->type()) + ", schema says " +
               jsonTypeName(field.type);
    }
    for (const auto &[key, value] : metrics.members()) {
        const bool declared =
            std::any_of(schema.begin(), schema.end(),
                        [&](const FieldSpec &f) { return f.name == key; });
        if (!declared)
            return "undeclared field '" + key + "'";
    }
    return std::nullopt;
}

JsonValue
schemaToJson(const std::vector<FieldSpec> &schema)
{
    JsonValue obj = JsonValue::object();
    for (const FieldSpec &field : schema)
        obj.set(field.name, JsonValue(jsonTypeName(field.type)));
    return obj;
}

} // namespace harp::runner
