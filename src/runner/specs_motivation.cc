/**
 * @file
 * Experiment specs for the paper's motivation studies: Fig. 2 (wasted
 * storage vs. repair granularity), Table 1 (repair-mechanism survey),
 * Table 2 (at-risk bit amplification) and Fig. 4 (post-correction
 * error-probability distribution).
 */

#include <cmath>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/at_risk_analyzer.hh"
#include "core/fig4_experiment.hh"
#include "core/waste_model.hh"
#include "ecc/hamming_code.hh"
#include "fault/fault_model.hh"
#include "runner/registry.hh"
#include "runner/sweeps.hh"

namespace harp::runner {

namespace {

using namespace harp;

ExperimentSpec
makeFig02()
{
    ExperimentSpec spec;
    spec.name = "fig02_wasted_storage";
    spec.description =
        "Expected wasted storage vs. RBER per repair granularity";
    spec.labels = {"bench", "figure"};

    // RBER sweep 1e-7 .. ~0.5 (log-spaced), matching the figure's x-axis.
    ParamAxis rber{"rber", {}};
    for (double p = 1e-7; p <= 0.5; p *= std::sqrt(10.0))
        rber.values.emplace_back(p);
    ParamAxis granularity{"granularity", {}};
    for (const std::size_t g : {1024, 512, 64, 32, 1})
        granularity.values.emplace_back(g);
    spec.grid = ParamGrid({rber, granularity});

    spec.tunables = {
        {"blocks", "4000", "Monte-Carlo blocks per cross-check point"},
    };
    spec.schema = {
        {"expected_waste", JsonType::Double,
         "closed form (1-(1-p)^g) - p"},
        {"monte_carlo", JsonType::Double, "simulated wasted fraction"},
        {"abs_error", JsonType::Double, "|expected - monte_carlo|"},
    };
    spec.run = [](const RunContext &ctx) {
        const double rber = ctx.point().find("rber")->asDouble();
        const auto g = static_cast<std::size_t>(
            ctx.point().find("granularity")->asInt());
        const auto blocks =
            static_cast<std::size_t>(ctx.getInt("blocks", 4000));
        common::Xoshiro256 rng(ctx.seed());

        const double expected = core::expectedWastedFraction(g, rber);
        const double simulated =
            core::simulateWastedFraction(g, rber, blocks, rng);
        JsonValue metrics = JsonValue::object();
        metrics.set("expected_waste", JsonValue(expected));
        metrics.set("monte_carlo", JsonValue(simulated));
        metrics.set("abs_error", JsonValue(std::abs(expected - simulated)));
        return metrics;
    };
    return spec;
}

/** Table 1 survey rows (literature data; the quantitative columns come
 *  from the Fig. 2 waste model). */
struct SurveyRow
{
    const char *mechanismClass;
    const char *sizeBits;
    std::size_t representativeBits;
    const char *examples;
};

constexpr SurveyRow surveyRows[] = {
    {"system_page", "32K", 32768, "RAPID, RIO, page retirement"},
    {"dram_external_row", "2-64K", 16384, "PPR, Agnos, RAIDR, DIVA"},
    {"dram_internal_row_col", "512-1024", 1024, "row/col sparing, Solar"},
    {"cache_block", "256-512", 512, "FREE-p, CiDRA"},
    {"processor_word", "32-64", 64, "ArchShield"},
    {"byte", "8", 8, "DRM"},
    {"single_bit", "1", 1,
     "ECP, SECRET, REMAP, SFaultMap, HOTH, FLOWER, SAFER, Bit-fix"},
};

ExperimentSpec
makeTable01()
{
    ExperimentSpec spec;
    spec.name = "table01_repair_survey";
    spec.description =
        "Survey of repair mechanisms + waste model per granularity class";
    spec.labels = {"bench", "table"};

    ParamAxis mechanism{"mechanism", {}};
    for (const SurveyRow &row : surveyRows)
        mechanism.values.emplace_back(row.mechanismClass);
    spec.grid = ParamGrid({mechanism});

    spec.schema = {
        {"size_bits", JsonType::String, "granularity range from the survey"},
        {"representative_bits", JsonType::Int,
         "granularity used for the waste model"},
        {"examples", JsonType::String, "mechanisms from the literature"},
        {"waste_at_rber_1e4", JsonType::Double,
         "expected wasted fraction at RBER 1e-4"},
        {"waste_at_rber_1e2", JsonType::Double,
         "expected wasted fraction at RBER 1e-2"},
    };
    spec.run = [](const RunContext &ctx) {
        const std::string &name =
            ctx.point().find("mechanism")->asString();
        const SurveyRow *row = nullptr;
        for (const SurveyRow &candidate : surveyRows)
            if (name == candidate.mechanismClass)
                row = &candidate;
        if (row == nullptr)
            throw std::runtime_error("unknown mechanism class " + name);
        JsonValue metrics = JsonValue::object();
        metrics.set("size_bits", JsonValue(row->sizeBits));
        metrics.set("representative_bits",
                    JsonValue(row->representativeBits));
        metrics.set("examples", JsonValue(row->examples));
        metrics.set("waste_at_rber_1e4",
                    JsonValue(core::expectedWastedFraction(
                        row->representativeBits, 1e-4)));
        metrics.set("waste_at_rber_1e2",
                    JsonValue(core::expectedWastedFraction(
                        row->representativeBits, 1e-2)));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeTable02()
{
    ExperimentSpec spec;
    spec.name = "table02_amplification";
    spec.description =
        "On-die ECC amplification of n at-risk cells: closed forms vs. "
        "measured";
    spec.labels = {"bench", "table"};

    ParamAxis n{"pre_errors", {}};
    for (const std::size_t v : {1, 2, 3, 4, 5, 6, 8})
        n.values.emplace_back(v);
    spec.grid = ParamGrid({n});

    spec.tunables = {
        {"k", "64", "dataword length of the random SEC codes"},
        {"trials", "400", "random (code, fault placement) trials"},
    };
    spec.schema = {
        {"unique_patterns", JsonType::Int, "2^n - 1"},
        {"uncorrectable_patterns", JsonType::Int, "2^n - n - 1"},
        {"worst_case_at_risk", JsonType::Int,
         "upper bound on post-correction at-risk bits (2^n - 1)"},
        {"measured_max", JsonType::Double,
         "largest at-risk count across trials"},
        {"measured_mean", JsonType::Double,
         "mean at-risk count across trials"},
    };
    spec.run = [](const RunContext &ctx) {
        const auto n = static_cast<std::size_t>(
            ctx.point().find("pre_errors")->asInt());
        const auto k = static_cast<std::size_t>(ctx.getInt("k", 64));
        const auto trials =
            static_cast<std::size_t>(ctx.getInt("trials", 400));

        common::RunningStat at_risk;
        for (std::size_t t = 0; t < trials; ++t) {
            common::Xoshiro256 code_rng(
                common::deriveSeed(ctx.seed(), {n, t, 0xC0DEu}));
            const ecc::HammingCode code =
                ecc::HammingCode::randomSec(k, code_rng);
            common::Xoshiro256 fault_rng(
                common::deriveSeed(ctx.seed(), {n, t, 0xFA17u}));
            const fault::WordFaultModel faults =
                fault::WordFaultModel::makeUniformFixedCount(code.n(), n,
                                                             0.5,
                                                             fault_rng);
            const core::AtRiskAnalyzer analyzer(code, faults);
            at_risk.add(static_cast<double>(
                analyzer.postCorrectionAtRisk().popcount()));
        }
        const std::size_t unique = (std::size_t{1} << n) - 1;
        JsonValue metrics = JsonValue::object();
        metrics.set("unique_patterns", JsonValue(unique));
        metrics.set("uncorrectable_patterns",
                    JsonValue((std::size_t{1} << n) - n - 1));
        metrics.set("worst_case_at_risk", JsonValue(unique));
        metrics.set("measured_max", JsonValue(at_risk.max()));
        metrics.set("measured_mean", JsonValue(at_risk.mean()));
        return metrics;
    };
    return spec;
}

ExperimentSpec
makeFig04()
{
    ExperimentSpec spec;
    spec.name = "fig04_postcorrection_probability";
    spec.description =
        "Distribution of per-bit post-correction error probability";
    spec.labels = {"bench", "figure"};

    ParamAxis n{"pre_errors", {}};
    for (std::size_t v = 2; v <= 8; ++v)
        n.values.emplace_back(v);
    spec.grid = ParamGrid({n});

    spec.tunables = {
        {"k", "64", "dataword length of the on-die ECC code"},
        {"codes", "40", "randomly generated codes"},
        {"words", "40", "simulated ECC words per code"},
        {"prob", "0.5", "per-bit failure probability of at-risk cells"},
    };
    const char *quantiles[] = {"p5", "p25", "median", "p75", "p95"};
    for (const char *q : quantiles)
        spec.schema.push_back({std::string("post_") + q, JsonType::Double,
                               "post-correction probability quantile"});
    spec.schema.push_back({"post_mean", JsonType::Double,
                           "mean post-correction probability"});
    spec.schema.push_back({"pre_mean", JsonType::Double,
                           "mean pre-correction probability (reference)"});
    spec.schema.push_back(
        {"samples", JsonType::Int, "at-risk bits sampled"});

    spec.run = [](const RunContext &ctx) {
        core::Fig4Config config;
        config.k = static_cast<std::size_t>(ctx.getInt("k", 64));
        config.numCodes =
            static_cast<std::size_t>(ctx.getInt("codes", 40));
        config.wordsPerCode =
            static_cast<std::size_t>(ctx.getInt("words", 40));
        config.perBitProbability = ctx.getDouble("prob", 0.5);
        const auto n = static_cast<std::size_t>(
            ctx.point().find("pre_errors")->asInt());
        config.minPreCorrectionErrors = n;
        config.maxPreCorrectionErrors = n;
        config.seed = ctx.seed();
        config.threads = ctx.threads();

        const core::Fig4Result result = core::runFig4Experiment(config);
        const core::Fig4Row &row = result.rows.front();
        JsonValue metrics = JsonValue::object();
        metrics.set("post_p5", JsonValue(row.postCorrection.quantile(0.05)));
        metrics.set("post_p25",
                    JsonValue(row.postCorrection.quantile(0.25)));
        metrics.set("post_median", JsonValue(row.postCorrection.median()));
        metrics.set("post_p75",
                    JsonValue(row.postCorrection.quantile(0.75)));
        metrics.set("post_p95",
                    JsonValue(row.postCorrection.quantile(0.95)));
        metrics.set("post_mean", JsonValue(row.postCorrection.mean()));
        metrics.set("pre_mean", JsonValue(row.preCorrection.mean()));
        metrics.set("samples", JsonValue(row.postCorrection.count()));
        return metrics;
    };
    return spec;
}

} // namespace

void
registerMotivationSpecs(Registry &registry)
{
    registry.add(makeFig02());
    registry.add(makeTable01());
    registry.add(makeTable02());
    registry.add(makeFig04());
}

} // namespace harp::runner
