/**
 * @file
 * Performance experiment: profiling-round throughput of the scalar
 * vs. bit-sliced engines, on a Fig. 6-sized Hamming coverage workload
 * and on a t-error BCH workload (the `bch_t_sweep` extension shape)
 * driven through the memoized sliced BCH datapath.
 *
 * Unlike every other spec, the timing fields of this experiment's
 * metrics are machine- and run-dependent, so its JSONL (and therefore
 * its result_hash) is intentionally *not* reproducible across runs.
 * The `profile_checksum` field, however, is deterministic and must be
 * identical for both engines — the in-band witness that the speedup is
 * measured over bit-identical simulations (docs/PERFORMANCE.md).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "common/bits.hh"
#include "core/beep_profiler.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "core/sliced_round_engine.hh"
#include "ecc/bch_general.hh"
#include "ecc/hamming_code.hh"
#include "ecc/sliced_bch.hh"
#include "ecc/sliced_hamming.hh"
#include "runner/registry.hh"
#include "runner/sweeps.hh"

namespace harp::runner {

namespace {

using namespace harp;

/** Scale of one throughput measurement (Fig. 6 defaults). */
struct PerfWorkload
{
    std::size_t k = 64;
    std::size_t numCodes = 8;
    std::size_t wordsPerCode = 24;
    std::size_t rounds = 128;
    std::size_t preErrors = 4;
    double probability = 0.5;
    std::uint64_t seed = 1;
    /** BCH workload instead of the Hamming one. */
    bool bch = false;
    /** Correction capability of the BCH workload's code. */
    std::size_t bchT = 3;
};

/**
 * One simulated word with its workload-specific profiler set, no
 * ground-truth analysis — this experiment times the profiling rounds
 * themselves. Hamming words carry the Fig. 6 set (Naive, BEEP, HARP-U,
 * HARP-A); BCH words carry the code-agnostic set (Naive, HARP-U).
 */
struct PerfWord
{
    PerfWord(const PerfWorkload &workload,
             const ecc::HammingCode *hamming_code,
             const ecc::BchCode *bch_code, std::size_t code_idx,
             std::size_t word_idx)
        : hamming(hamming_code),
          bch(bch_code),
          faults([&] {
              common::Xoshiro256 fault_rng(common::deriveSeed(
                  workload.seed, {0xFA17u, code_idx, word_idx}));
              return fault::WordFaultModel::makeUniformFixedCount(
                  hamming ? hamming->n() : bch->n(), workload.preErrors,
                  workload.probability, fault_rng);
          }()),
          engineSeed(common::deriveSeed(workload.seed,
                                        {0xE221u, code_idx, word_idx}))
    {
        const std::size_t k = hamming ? hamming->k() : bch->k();
        profilers.push_back(std::make_unique<core::NaiveProfiler>(k));
        if (hamming) {
            profilers.push_back(
                std::make_unique<core::BeepProfiler>(*hamming));
            profilers.push_back(
                std::make_unique<core::HarpUProfiler>(k));
            profilers.push_back(
                std::make_unique<core::HarpAProfiler>(*hamming));
        } else {
            profilers.push_back(
                std::make_unique<core::HarpUProfiler>(k));
        }
        for (auto &p : profilers)
            raw.push_back(p.get());
    }

    const ecc::HammingCode *hamming;
    const ecc::BchCode *bch;
    fault::WordFaultModel faults;
    std::uint64_t engineSeed;
    std::vector<std::unique_ptr<core::Profiler>> profilers;
    std::vector<core::Profiler *> raw;
};

/** The pre-built sliced datapaths of one fleet at lane width W:
 *  construction (lane-mask tables, BCH syndrome-memo pre-warm) is
 *  initialization, paid alongside the scalar decoder's own table
 *  construction — the timed loops measure profiling rounds only. */
template <std::size_t W>
struct SlicedDatapaths
{
    void build(const PerfWorkload &workload,
               const std::vector<ecc::HammingCode> &codes,
               const ecc::BchCode *bch_code)
    {
        constexpr std::size_t lanes = gf2::BitSliceW<W>::laneCount;
        const std::size_t words =
            workload.numCodes * workload.wordsPerCode;
        if (workload.bch) {
            // One shared datapath for every block of the fleet.
            if (words > 0)
                sharedBch = std::make_unique<ecc::SlicedBchCodeW<W>>(
                    *bch_code, std::min(lanes, words));
            return;
        }
        // Per-block sliced Hamming datapaths (the lane-mask tables),
        // prebuilt over the same flat block partition driveFleet uses.
        std::vector<const ecc::HammingCode *> flat_codes;
        for (std::size_t c = 0; c < workload.numCodes; ++c)
            for (std::size_t w = 0; w < workload.wordsPerCode; ++w)
                flat_codes.push_back(&codes[c]);
        for (std::size_t begin = 0; begin < flat_codes.size();
             begin += lanes) {
            const std::size_t end =
                std::min(begin + lanes, flat_codes.size());
            slicedHamming.push_back(
                std::make_unique<ecc::SlicedHammingCodeW<W>>(
                    std::vector<const ecc::HammingCode *>(
                        flat_codes.begin() +
                            static_cast<std::ptrdiff_t>(begin),
                        flat_codes.begin() +
                            static_cast<std::ptrdiff_t>(end))));
        }
    }

    std::unique_ptr<ecc::SlicedBchCodeW<W>> sharedBch;
    std::vector<std::unique_ptr<ecc::SlicedHammingCodeW<W>>>
        slicedHamming;
};

/** The words of one workload, grouped per code (= per sliced block). */
struct PerfFleet
{
    PerfFleet(const PerfWorkload &workload, core::EngineKind engine)
    {
        if (workload.bch) {
            // A BCH code is fully determined by (k, t): one shared
            // instance; the `codes` tunable still scales word count.
            bchCode = std::make_unique<ecc::BchCode>(workload.k,
                                                     workload.bchT);
        } else {
            codes.reserve(workload.numCodes);
            for (std::size_t c = 0; c < workload.numCodes; ++c) {
                common::Xoshiro256 code_rng(
                    common::deriveSeed(workload.seed, {0xC0DEu, c}));
                codes.push_back(
                    ecc::HammingCode::randomSec(workload.k, code_rng));
            }
        }
        for (std::size_t c = 0; c < workload.numCodes; ++c) {
            words.emplace_back();
            for (std::size_t w = 0; w < workload.wordsPerCode; ++w)
                words.back().push_back(std::make_unique<PerfWord>(
                    workload, workload.bch ? nullptr : &codes[c],
                    bchCode.get(), c, w));
        }
        // Scalar fleets never touch the sliced datapaths, so they skip
        // the build (incl. the BCH syndrome-memo pre-warm).
        if (engine == core::EngineKind::Sliced64)
            sliced64.build(workload, codes, bchCode.get());
        else if (engine == core::EngineKind::Sliced256)
            sliced256.build(workload, codes, bchCode.get());
    }

    /** The width-W datapath set (one of the two is built per fleet). */
    template <std::size_t W>
    SlicedDatapaths<W> &datapaths()
    {
        if constexpr (W == 1)
            return sliced64;
        else
            return sliced256;
    }

    /** From the words actually built, so the profiler_rounds metric
     *  cannot drift from PerfWord's constructor. */
    std::size_t profilersPerWord() const
    {
        if (words.empty() || words[0].empty())
            return 0;
        return words[0][0]->raw.size();
    }

    /** FNV-1a over every profiler's final identified profile, in
     *  deterministic (code, word, profiler) order. */
    std::uint64_t checksum() const
    {
        std::uint64_t hash = common::fnv1a64Init;
        for (const auto &code_words : words) {
            for (const auto &word : code_words) {
                for (const core::Profiler *profiler : word->raw) {
                    for (const std::uint64_t v :
                         profiler->identified().words()) {
                        const char *bytes =
                            reinterpret_cast<const char *>(&v);
                        hash = common::fnv1a64(
                            std::string_view(bytes, sizeof(v)), hash);
                    }
                }
            }
        }
        return hash;
    }

    std::vector<ecc::HammingCode> codes;
    std::unique_ptr<ecc::BchCode> bchCode;
    SlicedDatapaths<1> sliced64;
    SlicedDatapaths<4> sliced256;
    std::vector<std::vector<std::unique_ptr<PerfWord>>> words;
};

/** One engine measurement: wall seconds of the profiling loop alone,
 *  plus the sliced BCH memo statistics when applicable. */
struct DriveStats
{
    double seconds = 0.0;
    std::uint64_t memoHits = 0;
    std::uint64_t memoMisses = 0;
    std::size_t memoEntries = 0;
    bool memoPrewarmed = false;
};

/**
 * Drive every word of @p fleet through all rounds with one engine.
 * A non-null @p phases attaches the per-phase wall-time sink to every
 * engine (setup / datapath / observe split); the headline timing reps
 * leave it null so clock reads never contaminate them.
 */
/** The sliced half of driveFleet at lane width W; fills the memo
 *  fields of @p stats for BCH workloads. */
template <std::size_t W>
void
driveFleetSliced(PerfFleet &fleet, const PerfWorkload &workload,
                 core::EnginePhaseSeconds *phases, DriveStats &stats)
{
    // Batch blocks straight across code boundaries: Hamming lanes
    // carry their own code, BCH lanes share the one code function
    // (and the fleet's pre-built datapath + memo), so every block
    // is as full as possible.
    constexpr std::size_t lanes = gf2::BitSliceW<W>::laneCount;
    SlicedDatapaths<W> &datapaths = fleet.datapaths<W>();
    std::vector<PerfWord *> flat;
    for (auto &code_words : fleet.words)
        for (auto &word : code_words)
            flat.push_back(word.get());
    for (std::size_t begin = 0; begin < flat.size(); begin += lanes) {
        const std::size_t end = std::min(begin + lanes, flat.size());
        std::vector<const fault::WordFaultModel *> fault_ptrs;
        std::vector<std::uint64_t> seeds;
        std::vector<std::vector<core::Profiler *>> lane_profilers;
        for (std::size_t w = begin; w < end; ++w) {
            fault_ptrs.push_back(&flat[w]->faults);
            seeds.push_back(flat[w]->engineSeed);
            lane_profilers.push_back(flat[w]->raw);
        }
        std::unique_ptr<core::SlicedRoundEngineW<W>> round_engine;
        if (workload.bch) {
            round_engine = std::make_unique<core::SlicedRoundEngineW<W>>(
                *datapaths.sharedBch, fault_ptrs,
                core::PatternKind::Random, seeds);
        } else {
            round_engine = std::make_unique<core::SlicedRoundEngineW<W>>(
                *datapaths.slicedHamming[begin / lanes], fault_ptrs,
                core::PatternKind::Random, seeds);
        }
        round_engine->setPhaseSink(phases);
        for (std::size_t r = 0; r < workload.rounds; ++r)
            round_engine->runRound(lane_profilers);
    }
    if (datapaths.sharedBch != nullptr) {
        stats.memoHits = datapaths.sharedBch->memoHits();
        stats.memoMisses = datapaths.sharedBch->memoMisses();
        stats.memoEntries = datapaths.sharedBch->memoEntries();
        stats.memoPrewarmed = datapaths.sharedBch->memoPrewarmed();
    }
}

DriveStats
driveFleet(PerfFleet &fleet, const PerfWorkload &workload,
           core::EngineKind engine,
           core::EnginePhaseSeconds *phases = nullptr)
{
    DriveStats stats;
    const auto start = std::chrono::steady_clock::now();
    if (engine == core::EngineKind::Scalar) {
        for (auto &code_words : fleet.words) {
            for (auto &word : code_words) {
                std::unique_ptr<core::RoundEngine> round_engine;
                if (word->hamming != nullptr)
                    round_engine = std::make_unique<core::RoundEngine>(
                        *word->hamming, word->faults,
                        core::PatternKind::Random, word->engineSeed);
                else
                    round_engine = std::make_unique<core::RoundEngine>(
                        *word->bch, word->faults,
                        core::PatternKind::Random, word->engineSeed);
                round_engine->setPhaseSink(phases);
                for (std::size_t r = 0; r < workload.rounds; ++r)
                    round_engine->runRound(word->raw);
            }
        }
    } else if (engine == core::EngineKind::Sliced256) {
        driveFleetSliced<4>(fleet, workload, phases, stats);
    } else {
        driveFleetSliced<1>(fleet, workload, phases, stats);
    }
    const auto stop = std::chrono::steady_clock::now();
    stats.seconds = std::chrono::duration<double>(stop - start).count();
    return stats;
}

/** Best-of-@p reps wall time plus the (deterministic) profile
 *  checksum for one engine; memo stats come from the last rep, the
 *  phase split from one additional instrumented rep. */
struct EngineMeasurement
{
    double seconds = 0.0;
    std::uint64_t checksum = 0;
    std::uint64_t memoHits = 0;
    std::uint64_t memoMisses = 0;
    std::size_t memoEntries = 0;
    bool memoPrewarmed = false;
    std::size_t profilersPerWord = 0;
    core::EnginePhaseSeconds phases;
};

EngineMeasurement
measureEngine(const PerfWorkload &workload, core::EngineKind engine,
              std::size_t reps)
{
    EngineMeasurement best;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        PerfFleet fleet(workload, engine);
        const DriveStats stats = driveFleet(fleet, workload, engine);
        if (rep == 0 || stats.seconds < best.seconds)
            best.seconds = stats.seconds;
        best.checksum = fleet.checksum();
        best.memoHits = stats.memoHits;
        best.memoMisses = stats.memoMisses;
        best.memoEntries = stats.memoEntries;
        best.memoPrewarmed = stats.memoPrewarmed;
        best.profilersPerWord = fleet.profilersPerWord();
    }
    // Extra instrumented reps for the setup/datapath/observe cost
    // split — separate from the headline reps, whose loops never read
    // a clock between phases. The first rep warms caches and
    // allocators; the last rep's split is reported.
    for (int rep = 0; rep < 2; ++rep) {
        best.phases = core::EnginePhaseSeconds{};
        PerfFleet fleet(workload, engine);
        driveFleet(fleet, workload, engine, &best.phases);
    }
    return best;
}

ExperimentSpec
makePerfEngineThroughput()
{
    ExperimentSpec spec;
    spec.name = "perf_engine_throughput";
    spec.description =
        "Profiling-round throughput: scalar vs. sliced64 vs. sliced256 "
        "engines on Hamming (Fig. 6-sized) and t-error BCH workloads "
        "(timing fields are machine-dependent)";
    spec.labels = {"bench", "perf"};
    spec.grid =
        ParamGrid({ParamAxis{"workload", {"hamming", "bch"}}});
    spec.tunables = {
        {"k", "64", "dataword length of the on-die ECC code"},
        {"codes", "8", "randomly generated codes (word-count scale for "
                       "the BCH workload)"},
        {"words", "24", "simulated ECC words per code"},
        {"rounds", "128", "active-profiling rounds"},
        {"prob", "0.5", "per-bit failure probability of at-risk cells"},
        {"pre_errors", "4", "at-risk cells per ECC word"},
        {"t", "3", "correction capability of the BCH workload's code"},
        {"reps", "3", "measurement repetitions (best-of)"},
    };
    spec.schema = {
        {"words_total", JsonType::Int, "simulated ECC words"},
        {"rounds", JsonType::Int, "profiling rounds per word"},
        {"profilers_per_word", JsonType::Int,
         "profilers driven per word (4 Hamming, 2 BCH)"},
        {"profiler_rounds", JsonType::Int,
         "words x rounds x profilers driven per engine"},
        {"scalar_wall_seconds", JsonType::Double,
         "best-of-reps wall time of the scalar profiling loop"},
        {"sliced64_wall_seconds", JsonType::Double,
         "best-of-reps wall time of the sliced64 profiling loop"},
        {"sliced256_wall_seconds", JsonType::Double,
         "best-of-reps wall time of the sliced256 profiling loop"},
        {"scalar_rounds_per_sec", JsonType::Double,
         "profiler-rounds/s under the scalar engine"},
        {"sliced64_rounds_per_sec", JsonType::Double,
         "profiler-rounds/s under the sliced64 engine"},
        {"sliced256_rounds_per_sec", JsonType::Double,
         "profiler-rounds/s under the sliced256 engine"},
        {"speedup", JsonType::Double,
         "sliced64 throughput / scalar throughput"},
        {"speedup_256", JsonType::Double,
         "sliced256 throughput / scalar throughput"},
        {"profiles_match", JsonType::Bool,
         "all three engines produced identical identified profiles"},
        {"profile_checksum", JsonType::String,
         "FNV-1a over all final identified profiles (deterministic; "
         "equal for every engine)"},
        {"memo_hits", JsonType::Int,
         "sliced BCH syndrome-memo hits (null for Hamming)"},
        {"memo_misses", JsonType::Int,
         "sliced BCH syndrome-memo misses = scalar fallbacks (null for "
         "Hamming)"},
        {"memo_hit_rate", JsonType::Double,
         "memo_hits / (memo_hits + memo_misses) (null for Hamming)"},
        {"memo_prewarmed", JsonType::Bool,
         "syndrome memo pre-populated with all weight <= t error "
         "syndromes at construction (null for Hamming)"},
        {"memo_entries", JsonType::Int,
         "distinct syndromes memoized, incl. pre-warm (null for "
         "Hamming)"},
        {"scalar_setup_seconds", JsonType::Double,
         "scalar pattern/CRN/choose wall seconds (instrumented rep)"},
        {"scalar_datapath_seconds", JsonType::Double,
         "scalar encode+inject+decode wall seconds (instrumented rep)"},
        {"scalar_observe_seconds", JsonType::Double,
         "scalar observation wall seconds (instrumented rep)"},
        {"sliced64_setup_seconds", JsonType::Double,
         "sliced64 pattern/CRN/choose wall seconds (instrumented rep)"},
        {"sliced64_datapath_seconds", JsonType::Double,
         "sliced64 gather+encode+inject+decode wall seconds "
         "(instrumented rep)"},
        {"sliced64_observe_seconds", JsonType::Double,
         "sliced64 observation wall seconds — lane observes, scatters "
         "and scalar observe calls (instrumented rep)"},
        {"sliced256_setup_seconds", JsonType::Double,
         "sliced256 pattern/CRN/choose wall seconds (instrumented rep)"},
        {"sliced256_datapath_seconds", JsonType::Double,
         "sliced256 gather+encode+inject+decode wall seconds "
         "(instrumented rep)"},
        {"sliced256_observe_seconds", JsonType::Double,
         "sliced256 observation wall seconds — lane observes, scatters "
         "and scalar observe calls (instrumented rep)"},
    };
    spec.run = [](const RunContext &ctx) {
        PerfWorkload workload;
        workload.k = static_cast<std::size_t>(ctx.getInt("k", 64));
        workload.numCodes =
            static_cast<std::size_t>(ctx.getInt("codes", 8));
        workload.wordsPerCode =
            static_cast<std::size_t>(ctx.getInt("words", 24));
        workload.rounds =
            static_cast<std::size_t>(ctx.getInt("rounds", 128));
        workload.preErrors =
            static_cast<std::size_t>(ctx.getInt("pre_errors", 4));
        workload.probability = ctx.getDouble("prob", 0.5);
        workload.seed = ctx.seed();
        workload.bch =
            ctx.point().find("workload")->asString() == "bch";
        workload.bchT = static_cast<std::size_t>(ctx.getInt("t", 3));
        // At least one rep: --reps 0 would otherwise report a
        // zero-checksum "match" without measuring anything.
        const auto reps = std::max<std::size_t>(
            1, static_cast<std::size_t>(ctx.getInt("reps", 3)));

        const EngineMeasurement scalar =
            measureEngine(workload, core::EngineKind::Scalar, reps);
        const EngineMeasurement sliced =
            measureEngine(workload, core::EngineKind::Sliced64, reps);
        const EngineMeasurement sliced256 =
            measureEngine(workload, core::EngineKind::Sliced256, reps);
        // Degenerate workloads (--words 0, --rounds 0) can time as
        // exactly zero; clamp so the throughput/speedup divisions stay
        // finite (JSON serializes non-finite doubles as null, which
        // would violate the declared schema).
        const double scalar_seconds = std::max(scalar.seconds, 1e-9);
        const double sliced_seconds = std::max(sliced.seconds, 1e-9);
        const double sliced256_seconds =
            std::max(sliced256.seconds, 1e-9);

        const std::size_t words_total =
            workload.numCodes * workload.wordsPerCode;
        // From the fleet itself, so the metric can never drift from
        // the profiler sets PerfWord actually constructs.
        const std::size_t profilers = scalar.profilersPerWord;
        const double profiler_rounds = static_cast<double>(
            words_total * workload.rounds * profilers);

        JsonValue metrics = JsonValue::object();
        metrics.set("words_total", JsonValue(words_total));
        metrics.set("rounds", JsonValue(workload.rounds));
        metrics.set("profilers_per_word", JsonValue(profilers));
        metrics.set("profiler_rounds",
                    JsonValue(static_cast<std::uint64_t>(profiler_rounds)));
        metrics.set("scalar_wall_seconds", JsonValue(scalar_seconds));
        metrics.set("sliced64_wall_seconds", JsonValue(sliced_seconds));
        metrics.set("sliced256_wall_seconds",
                    JsonValue(sliced256_seconds));
        metrics.set("scalar_rounds_per_sec",
                    JsonValue(profiler_rounds / scalar_seconds));
        metrics.set("sliced64_rounds_per_sec",
                    JsonValue(profiler_rounds / sliced_seconds));
        metrics.set("sliced256_rounds_per_sec",
                    JsonValue(profiler_rounds / sliced256_seconds));
        metrics.set("speedup",
                    JsonValue(scalar_seconds / sliced_seconds));
        metrics.set("speedup_256",
                    JsonValue(scalar_seconds / sliced256_seconds));
        metrics.set("profiles_match",
                    JsonValue(scalar.checksum == sliced.checksum &&
                              scalar.checksum == sliced256.checksum));
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(scalar.checksum));
        metrics.set("profile_checksum", JsonValue(std::string(hex)));
        const std::uint64_t lookups =
            sliced.memoHits + sliced.memoMisses;
        metrics.set("memo_hits", workload.bch
                                     ? JsonValue(sliced.memoHits)
                                     : JsonValue());
        metrics.set("memo_misses", workload.bch
                                       ? JsonValue(sliced.memoMisses)
                                       : JsonValue());
        metrics.set("memo_hit_rate",
                    workload.bch && lookups > 0
                        ? JsonValue(static_cast<double>(sliced.memoHits) /
                                    static_cast<double>(lookups))
                        : JsonValue());
        metrics.set("memo_prewarmed", workload.bch
                                          ? JsonValue(sliced.memoPrewarmed)
                                          : JsonValue());
        metrics.set("memo_entries", workload.bch
                                        ? JsonValue(sliced.memoEntries)
                                        : JsonValue());
        metrics.set("scalar_setup_seconds",
                    JsonValue(scalar.phases.setup));
        metrics.set("scalar_datapath_seconds",
                    JsonValue(scalar.phases.datapath));
        metrics.set("scalar_observe_seconds",
                    JsonValue(scalar.phases.observe));
        metrics.set("sliced64_setup_seconds",
                    JsonValue(sliced.phases.setup));
        metrics.set("sliced64_datapath_seconds",
                    JsonValue(sliced.phases.datapath));
        metrics.set("sliced64_observe_seconds",
                    JsonValue(sliced.phases.observe));
        metrics.set("sliced256_setup_seconds",
                    JsonValue(sliced256.phases.setup));
        metrics.set("sliced256_datapath_seconds",
                    JsonValue(sliced256.phases.datapath));
        metrics.set("sliced256_observe_seconds",
                    JsonValue(sliced256.phases.observe));
        return metrics;
    };
    return spec;
}

} // namespace

void
registerPerfSpecs(Registry &registry)
{
    registry.add(makePerfEngineThroughput());
}

} // namespace harp::runner
