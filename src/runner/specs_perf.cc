/**
 * @file
 * Performance experiment: profiling-round throughput of the scalar
 * vs. bit-sliced engines on a Fig. 6-sized coverage workload.
 *
 * Unlike every other spec, the timing fields of this experiment's
 * metrics are machine- and run-dependent, so its JSONL (and therefore
 * its result_hash) is intentionally *not* reproducible across runs.
 * The `profile_checksum` field, however, is deterministic and must be
 * identical for both engines — the in-band witness that the speedup is
 * measured over bit-identical simulations (docs/PERFORMANCE.md).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "common/bits.hh"
#include "core/beep_profiler.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "core/sliced_round_engine.hh"
#include "ecc/hamming_code.hh"
#include "runner/registry.hh"
#include "runner/sweeps.hh"

namespace harp::runner {

namespace {

using namespace harp;

/** Scale of one throughput measurement (Fig. 6 defaults). */
struct PerfWorkload
{
    std::size_t k = 64;
    std::size_t numCodes = 8;
    std::size_t wordsPerCode = 24;
    std::size_t rounds = 128;
    std::size_t preErrors = 4;
    double probability = 0.5;
    std::uint64_t seed = 1;
};

/** One simulated word: the Fig. 6 profiler set, no ground-truth
 *  analysis — this experiment times the profiling rounds themselves. */
struct PerfWord
{
    PerfWord(const PerfWorkload &workload, const ecc::HammingCode &word_code,
             std::size_t code_idx, std::size_t word_idx)
        : code(word_code),
          faults([&] {
              common::Xoshiro256 fault_rng(common::deriveSeed(
                  workload.seed, {0xFA17u, code_idx, word_idx}));
              return fault::WordFaultModel::makeUniformFixedCount(
                  code.n(), workload.preErrors, workload.probability,
                  fault_rng);
          }()),
          engineSeed(common::deriveSeed(workload.seed,
                                        {0xE221u, code_idx, word_idx}))
    {
        profilers.push_back(
            std::make_unique<core::NaiveProfiler>(code.k()));
        profilers.push_back(std::make_unique<core::BeepProfiler>(code));
        profilers.push_back(
            std::make_unique<core::HarpUProfiler>(code.k()));
        profilers.push_back(std::make_unique<core::HarpAProfiler>(code));
        for (auto &p : profilers)
            raw.push_back(p.get());
    }

    const ecc::HammingCode &code;
    fault::WordFaultModel faults;
    std::uint64_t engineSeed;
    std::vector<std::unique_ptr<core::Profiler>> profilers;
    std::vector<core::Profiler *> raw;
};

/** The words of one workload, grouped per code (= per sliced block). */
struct PerfFleet
{
    explicit PerfFleet(const PerfWorkload &workload)
    {
        codes.reserve(workload.numCodes);
        for (std::size_t c = 0; c < workload.numCodes; ++c) {
            common::Xoshiro256 code_rng(
                common::deriveSeed(workload.seed, {0xC0DEu, c}));
            codes.push_back(
                ecc::HammingCode::randomSec(workload.k, code_rng));
        }
        for (std::size_t c = 0; c < workload.numCodes; ++c) {
            words.emplace_back();
            for (std::size_t w = 0; w < workload.wordsPerCode; ++w)
                words.back().push_back(std::make_unique<PerfWord>(
                    workload, codes[c], c, w));
        }
    }

    /** FNV-1a over every profiler's final identified profile, in
     *  deterministic (code, word, profiler) order. */
    std::uint64_t checksum() const
    {
        std::uint64_t hash = common::fnv1a64Init;
        for (const auto &code_words : words) {
            for (const auto &word : code_words) {
                for (const core::Profiler *profiler : word->raw) {
                    for (const std::uint64_t v :
                         profiler->identified().words()) {
                        const char *bytes =
                            reinterpret_cast<const char *>(&v);
                        hash = common::fnv1a64(
                            std::string_view(bytes, sizeof(v)), hash);
                    }
                }
            }
        }
        return hash;
    }

    std::vector<ecc::HammingCode> codes;
    std::vector<std::vector<std::unique_ptr<PerfWord>>> words;
};

/** Drive every word of @p fleet through all rounds with one engine;
 *  returns wall seconds of the profiling loop alone. */
double
driveFleet(PerfFleet &fleet, const PerfWorkload &workload,
           core::EngineKind engine)
{
    const auto start = std::chrono::steady_clock::now();
    if (engine == core::EngineKind::Scalar) {
        for (auto &code_words : fleet.words) {
            for (auto &word : code_words) {
                core::RoundEngine round_engine(word->code, word->faults,
                                               core::PatternKind::Random,
                                               word->engineSeed);
                for (std::size_t r = 0; r < workload.rounds; ++r)
                    round_engine.runRound(word->raw);
            }
        }
    } else {
        // Batch blocks straight across code boundaries: lanes carry
        // their own code, so every block is as full as possible.
        constexpr std::size_t lanes = gf2::BitSlice64::laneCount;
        std::vector<PerfWord *> flat;
        for (auto &code_words : fleet.words)
            for (auto &word : code_words)
                flat.push_back(word.get());
        for (std::size_t begin = 0; begin < flat.size(); begin += lanes) {
            const std::size_t end =
                std::min(begin + lanes, flat.size());
            std::vector<const ecc::HammingCode *> code_ptrs;
            std::vector<const fault::WordFaultModel *> fault_ptrs;
            std::vector<std::uint64_t> seeds;
            std::vector<std::vector<core::Profiler *>> lane_profilers;
            for (std::size_t w = begin; w < end; ++w) {
                code_ptrs.push_back(&flat[w]->code);
                fault_ptrs.push_back(&flat[w]->faults);
                seeds.push_back(flat[w]->engineSeed);
                lane_profilers.push_back(flat[w]->raw);
            }
            core::SlicedRoundEngine round_engine(
                code_ptrs, fault_ptrs, core::PatternKind::Random, seeds);
            for (std::size_t r = 0; r < workload.rounds; ++r)
                round_engine.runRound(lane_profilers);
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/** Best-of-@p reps wall time plus the (deterministic) profile
 *  checksum for one engine. */
std::pair<double, std::uint64_t>
measureEngine(const PerfWorkload &workload, core::EngineKind engine,
              std::size_t reps)
{
    double best = 0.0;
    std::uint64_t checksum = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        PerfFleet fleet(workload);
        const double seconds = driveFleet(fleet, workload, engine);
        if (rep == 0 || seconds < best)
            best = seconds;
        checksum = fleet.checksum();
    }
    return {best, checksum};
}

ExperimentSpec
makePerfEngineThroughput()
{
    ExperimentSpec spec;
    spec.name = "perf_engine_throughput";
    spec.description =
        "Profiling-round throughput: scalar vs. sliced64 engine on a "
        "Fig. 6-sized workload (timing fields are machine-dependent)";
    spec.labels = {"bench", "perf"};
    spec.grid = ParamGrid();
    spec.tunables = {
        {"k", "64", "dataword length of the on-die ECC code"},
        {"codes", "8", "randomly generated codes"},
        {"words", "24", "simulated ECC words per code"},
        {"rounds", "128", "active-profiling rounds"},
        {"prob", "0.5", "per-bit failure probability of at-risk cells"},
        {"pre_errors", "4", "at-risk cells per ECC word"},
        {"reps", "3", "measurement repetitions (best-of)"},
    };
    spec.schema = {
        {"words_total", JsonType::Int, "simulated ECC words"},
        {"rounds", JsonType::Int, "profiling rounds per word"},
        {"profiler_rounds", JsonType::Int,
         "words x rounds x profilers driven per engine"},
        {"scalar_wall_seconds", JsonType::Double,
         "best-of-reps wall time of the scalar profiling loop"},
        {"sliced64_wall_seconds", JsonType::Double,
         "best-of-reps wall time of the sliced64 profiling loop"},
        {"scalar_rounds_per_sec", JsonType::Double,
         "profiler-rounds/s under the scalar engine"},
        {"sliced64_rounds_per_sec", JsonType::Double,
         "profiler-rounds/s under the sliced64 engine"},
        {"speedup", JsonType::Double,
         "sliced64 throughput / scalar throughput"},
        {"profiles_match", JsonType::Bool,
         "both engines produced identical identified profiles"},
        {"profile_checksum", JsonType::String,
         "FNV-1a over all final identified profiles (deterministic; "
         "equal for both engines)"},
    };
    spec.run = [](const RunContext &ctx) {
        PerfWorkload workload;
        workload.k = static_cast<std::size_t>(ctx.getInt("k", 64));
        workload.numCodes =
            static_cast<std::size_t>(ctx.getInt("codes", 8));
        workload.wordsPerCode =
            static_cast<std::size_t>(ctx.getInt("words", 24));
        workload.rounds =
            static_cast<std::size_t>(ctx.getInt("rounds", 128));
        workload.preErrors =
            static_cast<std::size_t>(ctx.getInt("pre_errors", 4));
        workload.probability = ctx.getDouble("prob", 0.5);
        workload.seed = ctx.seed();
        // At least one rep: --reps 0 would otherwise report a
        // zero-checksum "match" without measuring anything.
        const auto reps = std::max<std::size_t>(
            1, static_cast<std::size_t>(ctx.getInt("reps", 3)));

        auto [scalar_seconds, scalar_checksum] =
            measureEngine(workload, core::EngineKind::Scalar, reps);
        auto [sliced_seconds, sliced_checksum] =
            measureEngine(workload, core::EngineKind::Sliced64, reps);
        // Degenerate workloads (--words 0, --rounds 0) can time as
        // exactly zero; clamp so the throughput/speedup divisions stay
        // finite (JSON serializes non-finite doubles as null, which
        // would violate the declared schema).
        scalar_seconds = std::max(scalar_seconds, 1e-9);
        sliced_seconds = std::max(sliced_seconds, 1e-9);

        const std::size_t words_total =
            workload.numCodes * workload.wordsPerCode;
        const double profiler_rounds = static_cast<double>(
            words_total * workload.rounds * std::size_t{4});

        JsonValue metrics = JsonValue::object();
        metrics.set("words_total", JsonValue(words_total));
        metrics.set("rounds", JsonValue(workload.rounds));
        metrics.set("profiler_rounds",
                    JsonValue(static_cast<std::uint64_t>(profiler_rounds)));
        metrics.set("scalar_wall_seconds", JsonValue(scalar_seconds));
        metrics.set("sliced64_wall_seconds", JsonValue(sliced_seconds));
        metrics.set("scalar_rounds_per_sec",
                    JsonValue(profiler_rounds / scalar_seconds));
        metrics.set("sliced64_rounds_per_sec",
                    JsonValue(profiler_rounds / sliced_seconds));
        metrics.set("speedup",
                    JsonValue(scalar_seconds / sliced_seconds));
        metrics.set("profiles_match",
                    JsonValue(scalar_checksum == sliced_checksum));
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(scalar_checksum));
        metrics.set("profile_checksum", JsonValue(std::string(hex)));
        return metrics;
    };
    return spec;
}

} // namespace

void
registerPerfSpecs(Registry &registry)
{
    registry.add(makePerfEngineThroughput());
}

} // namespace harp::runner
