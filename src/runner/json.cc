#include "runner/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace harp::runner {

namespace {

[[noreturn]] void
typeError(const char *wanted, JsonType got)
{
    throw std::logic_error(std::string("JSON value is not ") + wanted +
                           " (actual type: " + jsonTypeName(got) + ")");
}

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

/** Recursive-descent parser over a complete document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue parseDocument()
    {
        JsonValue v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing content after JSON document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeLiteral(const char *lit)
    {
        const std::size_t len = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, len, lit) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    JsonValue parseValue()
    {
        skipWhitespace();
        const char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue();
            fail("bad literal");
          default: return parseNumber();
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // The runner only ever emits ASCII control escapes; decode
                // BMP code points as UTF-8 for completeness.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
            fail("bad number");
        const char *first = text_.data() + start;
        const char *last = text_.data() + pos_;
        if (integral) {
            std::int64_t i = 0;
            const auto r = std::from_chars(first, last, i);
            if (r.ec == std::errc() && r.ptr == last)
                return JsonValue(i);
            // Out-of-range integer: fall through to double.
        }
        double d = 0.0;
        const auto r = std::from_chars(first, last, d);
        if (r.ec != std::errc() || r.ptr != last)
            fail("bad number");
        return JsonValue(d);
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue arr = JsonValue::array();
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            skipWhitespace();
            const char c = peek();
            ++pos_;
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue obj = JsonValue::object();
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            obj.set(key, parseValue());
            skipWhitespace();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
jsonTypeName(JsonType type)
{
    switch (type) {
      case JsonType::Null: return "null";
      case JsonType::Bool: return "bool";
      case JsonType::Int: return "int";
      case JsonType::Double: return "double";
      case JsonType::String: return "string";
      case JsonType::Array: return "array";
      case JsonType::Object: return "object";
    }
    return "unknown";
}

std::string
jsonNumberToString(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof buf, value);
    return std::string(buf, r.ptr);
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.type_ = JsonType::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.type_ = JsonType::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    if (type_ != JsonType::Bool)
        typeError("a bool", type_);
    return bool_;
}

std::int64_t
JsonValue::asInt() const
{
    if (type_ != JsonType::Int)
        typeError("an int", type_);
    return int_;
}

double
JsonValue::asDouble() const
{
    if (type_ == JsonType::Int)
        return static_cast<double>(int_);
    if (type_ != JsonType::Double)
        typeError("a number", type_);
    return double_;
}

const std::string &
JsonValue::asString() const
{
    if (type_ != JsonType::String)
        typeError("a string", type_);
    return string_;
}

void
JsonValue::push(JsonValue v)
{
    if (type_ != JsonType::Array)
        typeError("an array", type_);
    array_.push_back(std::move(v));
}

std::size_t
JsonValue::size() const
{
    if (type_ == JsonType::Array)
        return array_.size();
    if (type_ == JsonType::Object)
        return object_.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (type_ != JsonType::Array)
        typeError("an array", type_);
    return array_.at(i);
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (type_ != JsonType::Object)
        typeError("an object", type_);
    for (auto &[k, existing] : object_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != JsonType::Object)
        return nullptr;
    for (const auto &[k, v] : object_)
        if (k == key)
            return &v;
    return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (type_ != JsonType::Object)
        typeError("an object", type_);
    return object_;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent > 0;
    const auto newline = [&](int d) {
        if (pretty) {
            out.push_back('\n');
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (type_) {
      case JsonType::Null: out += "null"; break;
      case JsonType::Bool: out += bool_ ? "true" : "false"; break;
      case JsonType::Int: out += std::to_string(int_); break;
      case JsonType::Double: out += jsonNumberToString(double_); break;
      case JsonType::String: appendEscaped(out, string_); break;
      case JsonType::Array:
        out.push_back('[');
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i != 0)
                out.push_back(',');
            newline(depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (!array_.empty())
            newline(depth);
        out.push_back(']');
        break;
      case JsonType::Object:
        out.push_back('{');
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i != 0)
                out.push_back(',');
            newline(depth + 1);
            appendEscaped(out, object_[i].first);
            out.push_back(':');
            if (pretty)
                out.push_back(' ');
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!object_.empty())
            newline(depth);
        out.push_back('}');
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case JsonType::Null: return true;
      case JsonType::Bool: return bool_ == other.bool_;
      case JsonType::Int: return int_ == other.int_;
      case JsonType::Double: return double_ == other.double_;
      case JsonType::String: return string_ == other.string_;
      case JsonType::Array: return array_ == other.array_;
      case JsonType::Object: return object_ == other.object_;
    }
    return false;
}

} // namespace harp::runner
