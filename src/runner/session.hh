/**
 * @file
 * Resumable campaign session: one experiment's (point, repeat) job set
 * behind a pluggable result sink.
 *
 * The batch driver (campaign.hh) and the resident daemon (harpd/) share
 * this class so a served campaign is *the same computation* as a batch
 * one — same grid expansion, same per-(name, point, repeat) seed
 * derivation, same line serialization — and therefore byte-identical
 * JSONL for a fixed seed, no matter which front end ran it or how many
 * times it was interrupted and resumed in between.
 *
 * Resumability: completed jobs restored from a checkpoint via restore()
 * are never recomputed; their stored lines re-enter the ordered output
 * stream exactly where a fresh computation would have placed them.
 *
 * Scheduling: remaining jobs run in waves of at most `poolThreads`
 * jobs, longest-expected-first (jobCostKey). The intra-job thread
 * allowance is recomputed per wave — `inner = poolThreads / waveSize` —
 * so a campaign whose trailing jobs run alone widens their intra-job
 * sharding instead of leaving cores idle. A WaveScheduler can override
 * both knobs per wave (harpd's weighted fair governor does, to share
 * one pool across tenants). Output order and bytes are unaffected
 * either way: every job derives its own seed and the sink is fed in
 * strict job order through an OrderedMerger.
 */

#ifndef HARP_RUNNER_SESSION_HH
#define HARP_RUNNER_SESSION_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runner/experiment_spec.hh"

namespace harp::common {
class ThreadPool;
}

namespace harp::runner {

/**
 * Receives result lines in strict job order. Implementations decide
 * where lines go: a vector (batch), a checkpoint file plus a client
 * stream (harpd), or both.
 *
 * onResult may be invoked from pool worker threads (serialized — never
 * concurrently) for fresh results, and from the run() caller for
 * restored ones; it must not assume a particular thread.
 */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /**
     * @param job   0-based job index (point-major, repeat-minor).
     * @param line  The serialized JSONL line (no trailing newline).
     *              Empty when the job threw — run() reports the error
     *              after the stream ends; durable sinks (checkpoints)
     *              must skip empty lines rather than persist them.
     * @param fresh False when the line was restored from a checkpoint
     *              rather than recomputed.
     */
    virtual void onResult(std::size_t job, const std::string &line,
                          bool fresh) = 0;
};

/**
 * Decides the width and intra-job allowance of each wave when several
 * sessions share one pool (harpd's weighted fair governor implements
 * this over common::FairScheduler). next() may block until capacity is
 * granted; returning width 0 aborts the session cooperatively (run()
 * reports cancelled). jobDone() is invoked once per finished wave job,
 * possibly from pool worker threads, so slots free one job at a time
 * rather than one wave at a time.
 *
 * Scheduling never changes campaign bytes: whatever widths a scheduler
 * picks, seeds are per-job and the sink is fed in strict job order.
 */
class WaveScheduler
{
  public:
    virtual ~WaveScheduler() = default;

    struct Wave
    {
        /** Jobs to dispatch this wave; 0 aborts the session. */
        std::size_t width = 1;
        /** Intra-job sharding allowance for each of them. */
        std::size_t innerThreads = 1;
    };

    /** @param remaining Jobs not yet dispatched (> 0). */
    virtual Wave next(std::size_t remaining) = 0;

    /** One wave job finished (any thread). */
    virtual void jobDone() {}
};

/** Inputs shared by every job of a session. */
struct SessionOptions
{
    std::uint64_t seed = 1;
    std::size_t repeat = 1;
    /** Tunable/axis overrides (axis matches collapse the grid). */
    std::map<std::string, std::string> overrides;
};

/** Deterministic per-(experiment, point, repeat) seed — the one
 *  derivation batch runs, served runs and resumed runs all share. */
std::uint64_t campaignJobSeed(std::uint64_t campaign_seed,
                              const std::string &experiment,
                              std::size_t point, std::size_t repeat);

class CampaignSession
{
  public:
    /** Expands @p spec's grid (with overrides applied) into the job
     *  list. @p spec must outlive the session. */
    CampaignSession(const ExperimentSpec &spec, SessionOptions options);

    const ExperimentSpec &spec() const { return *spec_; }
    const std::vector<ParamPoint> &points() const { return points_; }
    std::size_t repeats() const { return options_.repeat; }
    std::size_t totalJobs() const { return seeds_.size(); }

    /** Point / repeat coordinates and seed of job @p job. */
    std::size_t jobPoint(std::size_t job) const
    {
        return job / options_.repeat;
    }
    std::size_t jobRepeat(std::size_t job) const
    {
        return job % options_.repeat;
    }
    std::uint64_t jobSeedAt(std::size_t job) const { return seeds_[job]; }

    /**
     * Mark @p job completed with checkpoint-restored @p line; run()
     * will emit it instead of recomputing. Returns false (and ignores
     * the line) when @p job is out of range or already restored.
     */
    bool restore(std::size_t job, std::string line);
    std::size_t restoredJobs() const { return restoredCount_; }

    /** What one run() produced. */
    struct Outcome
    {
        /** FNV-1a over every emitted line + '\n', in job order. */
        std::uint64_t resultHash = 0;
        /** Jobs actually computed this run (excludes restored). */
        std::size_t freshJobs = 0;
        /** True when a cancel flag stopped the session early; the sink
         *  saw only a prefix of the stream. */
        bool cancelled = false;
        /** Wall seconds of each fresh job, in job order. */
        std::vector<double> freshJobSeconds;
    };

    /**
     * Run every not-restored job and feed *all* lines (restored +
     * fresh) to @p sink in job order.
     *
     * @param pool        Shared worker pool; nullptr runs inline.
     * @param poolThreads Thread budget: wave width and intra-job
     *                    allowance (0 = hardware concurrency).
     * @param sink        Ordered line consumer.
     * @param cancel      Optional cooperative stop flag, checked at
     *                    wave boundaries (running jobs finish).
     * @param progress    Optional callback invoked with the cumulative
     *                    completed-job count as jobs finish.
     * @param scheduler   Optional wave-shape override; nullptr keeps
     *                    the default policy (width = poolThreads,
     *                    inner = poolThreads / width).
     * @throws std::runtime_error when a job throws or its metrics fail
     *         schema validation (after the remaining jobs finish).
     */
    Outcome run(common::ThreadPool *pool, std::size_t poolThreads,
                ResultSink &sink, const std::atomic<bool> *cancel = nullptr,
                const std::function<void(std::size_t)> &progress = {},
                WaveScheduler *scheduler = nullptr);

  private:
    const ExperimentSpec *spec_;
    SessionOptions options_;
    std::vector<ParamPoint> points_;
    std::vector<std::uint64_t> seeds_;
    std::vector<std::string> restoredLines_;
    std::vector<bool> restored_;
    std::size_t restoredCount_ = 0;
};

} // namespace harp::runner

#endif // HARP_RUNNER_SESSION_HH
