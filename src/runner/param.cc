#include "runner/param.hh"

#include <charconv>
#include <stdexcept>

namespace harp::runner {

std::int64_t
ParamValue::asInt() const
{
    if (type_ != Type::Int)
        throw std::logic_error("parameter is not an int");
    return int_;
}

double
ParamValue::asDouble() const
{
    if (type_ == Type::Int)
        return static_cast<double>(int_);
    if (type_ != Type::Double)
        throw std::logic_error("parameter is not a number");
    return double_;
}

bool
ParamValue::asBool() const
{
    if (type_ != Type::Bool)
        throw std::logic_error("parameter is not a bool");
    return bool_;
}

const std::string &
ParamValue::asString() const
{
    if (type_ != Type::String)
        throw std::logic_error("parameter is not a string");
    return string_;
}

std::string
ParamValue::toString() const
{
    switch (type_) {
      case Type::Int: return std::to_string(int_);
      case Type::Double: return jsonNumberToString(double_);
      case Type::Bool: return bool_ ? "true" : "false";
      case Type::String: return string_;
    }
    return "";
}

JsonValue
ParamValue::toJson() const
{
    switch (type_) {
      case Type::Int: return JsonValue(int_);
      case Type::Double: return JsonValue(double_);
      case Type::Bool: return JsonValue(bool_);
      case Type::String: return JsonValue(string_);
    }
    return JsonValue();
}

ParamValue
ParamValue::parseSameType(const std::string &text) const
{
    switch (type_) {
      case Type::Int: {
        std::int64_t i = 0;
        const auto r =
            std::from_chars(text.data(), text.data() + text.size(), i);
        if (r.ec != std::errc() || r.ptr != text.data() + text.size())
            throw std::invalid_argument("'" + text + "' is not an integer");
        return ParamValue(i);
      }
      case Type::Double: {
        double d = 0.0;
        const auto r =
            std::from_chars(text.data(), text.data() + text.size(), d);
        if (r.ec != std::errc() || r.ptr != text.data() + text.size())
            throw std::invalid_argument("'" + text + "' is not a number");
        return ParamValue(d);
      }
      case Type::Bool:
        if (text == "true" || text == "1")
            return ParamValue(true);
        if (text == "false" || text == "0")
            return ParamValue(false);
        throw std::invalid_argument("'" + text + "' is not a bool");
      case Type::String: return ParamValue(text);
    }
    throw std::invalid_argument("unknown parameter type");
}

bool
ParamValue::operator==(const ParamValue &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Int: return int_ == other.int_;
      case Type::Double: return double_ == other.double_;
      case Type::Bool: return bool_ == other.bool_;
      case Type::String: return string_ == other.string_;
    }
    return false;
}

void
ParamPoint::add(std::string name, ParamValue value)
{
    entries_.emplace_back(std::move(name), std::move(value));
}

const ParamValue *
ParamPoint::find(const std::string &name) const
{
    for (const auto &[n, v] : entries_)
        if (n == name)
            return &v;
    return nullptr;
}

JsonValue
ParamPoint::toJson() const
{
    JsonValue obj = JsonValue::object();
    for (const auto &[n, v] : entries_)
        obj.set(n, v.toJson());
    return obj;
}

std::string
ParamPoint::toString() const
{
    std::string out;
    for (const auto &[n, v] : entries_) {
        if (!out.empty())
            out.push_back(' ');
        out += n + "=" + v.toString();
    }
    return out;
}

const ParamAxis *
ParamGrid::findAxis(const std::string &name) const
{
    for (const ParamAxis &axis : axes_)
        if (axis.name == name)
            return &axis;
    return nullptr;
}

std::size_t
ParamGrid::numPoints() const
{
    std::size_t n = 1;
    for (const ParamAxis &axis : axes_)
        n *= axis.values.size();
    return n;
}

std::vector<ParamPoint>
ParamGrid::expand() const
{
    std::vector<ParamPoint> points;
    points.reserve(numPoints());
    std::vector<std::size_t> index(axes_.size(), 0);
    while (true) {
        ParamPoint point;
        for (std::size_t a = 0; a < axes_.size(); ++a)
            point.add(axes_[a].name, axes_[a].values[index[a]]);
        points.push_back(std::move(point));
        // Row-major increment: last axis fastest.
        std::size_t a = axes_.size();
        while (a > 0) {
            --a;
            if (++index[a] < axes_[a].values.size())
                break;
            index[a] = 0;
            if (a == 0)
                return points;
        }
        if (axes_.empty())
            return points;
    }
}

ParamGrid
ParamGrid::collapsed(const std::string &name, const std::string &text) const
{
    ParamGrid grid = *this;
    for (ParamAxis &axis : grid.axes_) {
        if (axis.name != name)
            continue;
        axis.values = {axis.values.front().parseSameType(text)};
        return grid;
    }
    throw std::invalid_argument("no axis named '" + name + "'");
}

} // namespace harp::runner
