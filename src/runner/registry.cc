#include "runner/registry.hh"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace harp::runner {

void
Registry::add(ExperimentSpec spec)
{
    if (spec.name.empty())
        throw std::invalid_argument("experiment spec has no name");
    if (!spec.run)
        throw std::invalid_argument("experiment '" + spec.name +
                                    "' has no run callback");
    if (find(spec.name) != nullptr)
        throw std::invalid_argument("duplicate experiment '" + spec.name +
                                    "'");
    specs_.push_back(std::move(spec));
}

const ExperimentSpec *
Registry::find(const std::string &name) const
{
    for (const ExperimentSpec &spec : specs_)
        if (spec.name == name)
            return &spec;
    return nullptr;
}

std::vector<const ExperimentSpec *>
Registry::all() const
{
    std::vector<const ExperimentSpec *> out;
    out.reserve(specs_.size());
    for (const ExperimentSpec &spec : specs_)
        out.push_back(&spec);
    std::sort(out.begin(), out.end(),
              [](const ExperimentSpec *a, const ExperimentSpec *b) {
                  return a->name < b->name;
              });
    return out;
}

std::vector<const ExperimentSpec *>
Registry::withLabel(const std::string &label) const
{
    std::vector<const ExperimentSpec *> out;
    for (const ExperimentSpec *spec : all())
        if (spec->hasLabel(label))
            out.push_back(spec);
    return out;
}

std::vector<const ExperimentSpec *>
Registry::select(const std::vector<std::string> &selectors) const
{
    std::vector<const ExperimentSpec *> out;
    const auto addUnique = [&](const ExperimentSpec *spec) {
        if (std::find(out.begin(), out.end(), spec) == out.end())
            out.push_back(spec);
    };
    for (const std::string &selector : selectors) {
        if (selector.rfind("label:", 0) == 0) {
            const auto matched = withLabel(selector.substr(6));
            if (matched.empty())
                throw std::invalid_argument("no experiment has label '" +
                                            selector.substr(6) + "'");
            for (const ExperimentSpec *spec : matched)
                addUnique(spec);
            continue;
        }
        const ExperimentSpec *spec = find(selector);
        if (spec == nullptr)
            throw std::invalid_argument(
                "unknown experiment '" + selector +
                "' (try `harp_run --list`)");
        addUnique(spec);
    }
    return out;
}

JsonValue
registryToJson(const Registry &registry)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema_version", JsonValue(1));
    JsonValue list = JsonValue::array();
    std::set<std::string> label_names;
    for (const ExperimentSpec *spec : registry.all()) {
        JsonValue obj = JsonValue::object();
        obj.set("name", JsonValue(spec->name));
        obj.set("description", JsonValue(spec->description));
        JsonValue labels = JsonValue::array();
        for (const std::string &label : spec->labels) {
            labels.push(JsonValue(label));
            label_names.insert(label);
        }
        obj.set("labels", labels);
        obj.set("grid_points", JsonValue(spec->grid.numPoints()));
        obj.set("schema", schemaToJson(spec->schema));
        list.push(std::move(obj));
    }
    doc.set("experiments", list);
    doc.set("count", JsonValue(registry.size()));
    JsonValue counts = JsonValue::object();
    for (const std::string &label : label_names)
        counts.set(label, JsonValue(registry.withLabel(label).size()));
    doc.set("label_counts", counts);
    return doc;
}

const Registry &
builtinRegistry()
{
    static const Registry registry = [] {
        Registry r;
        registerMotivationSpecs(r);
        registerCoverageSpecs(r);
        registerCaseStudySpecs(r);
        registerExtensionSpecs(r);
        registerExampleSpecs(r);
        registerPerfSpecs(r);
        registerFleetSpecs(r);
        return r;
    }();
    return registry;
}

} // namespace harp::runner
