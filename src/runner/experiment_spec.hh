/**
 * @file
 * The common interface every figure/table/extension experiment registers
 * behind: a name, a parameter grid, a set of tunables, a result schema,
 * and a run() callback producing one JSON metrics object per grid point.
 *
 * The campaign driver (campaign.hh) expands the grid, derives one
 * deterministic seed per (experiment, point, repeat) and invokes run()
 * from worker threads — run() must therefore be pure apart from its
 * RunContext inputs: all randomness flows from ctx.seed, never from
 * global state, so a campaign's results are bit-identical regardless of
 * how points are sharded across threads.
 */

#ifndef HARP_RUNNER_EXPERIMENT_SPEC_HH
#define HARP_RUNNER_EXPERIMENT_SPEC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runner/json.hh"
#include "runner/param.hh"

namespace harp::runner {

/**
 * Everything an experiment's run() callback may depend on for one grid
 * point. Tunable lookup order is: grid-point axis value, then
 * command-line override, then the caller-supplied default.
 */
class RunContext
{
  public:
    /**
     * @param point     The expanded grid point.
     * @param overrides Command-line tunable overrides (name -> text).
     * @param seed      Deterministic per-(point, repeat) seed.
     * @param repeat    0-based repeat index.
     * @param threads   Worker-thread allowance for internally parallel
     *                  experiments (1 when the campaign itself shards
     *                  across at least as many jobs as it has threads;
     *                  the leftover pool capacity otherwise — heavy
     *                  single-point runs shard their blocks instead).
     */
    RunContext(const ParamPoint &point,
               const std::map<std::string, std::string> &overrides,
               std::uint64_t seed, std::size_t repeat, std::size_t threads)
        : point_(point), overrides_(overrides), seed_(seed),
          repeat_(repeat), threads_(threads)
    {
    }

    const ParamPoint &point() const { return point_; }
    std::uint64_t seed() const { return seed_; }
    std::size_t repeat() const { return repeat_; }
    std::size_t threads() const { return threads_; }

    /** Integer tunable (axis value -> CLI override -> @p def). */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;
    /** Floating-point tunable; axis Int values convert. */
    double getDouble(const std::string &name, double def) const;
    /** Boolean tunable. */
    bool getBool(const std::string &name, bool def) const;
    /** String tunable. */
    std::string getString(const std::string &name,
                          const std::string &def) const;

  private:
    const std::string *findOverride(const std::string &name) const;

    const ParamPoint &point_;
    const std::map<std::string, std::string> &overrides_;
    std::uint64_t seed_;
    std::size_t repeat_;
    std::size_t threads_;
};

/** One declared top-level field of an experiment's metrics object. */
struct FieldSpec
{
    std::string name;
    JsonType type = JsonType::Double;
    std::string description;
};

/** One documented non-axis knob (scale parameters like words/rounds). */
struct TunableSpec
{
    std::string name;
    std::string defaultValue;
    std::string description;
};

/**
 * One registered experiment: a named, self-describing unit the
 * campaign driver can list, dry-run, shard and validate.
 */
struct ExperimentSpec
{
    /** Unique registry key, e.g. "fig06_direct_coverage". */
    std::string name;
    /** One-line summary shown by `harp_run --list`. */
    std::string description;
    /** Selector labels ("bench", "figure", "table", "ablation",
     *  "extension", "example"). */
    std::vector<std::string> labels;
    /** Default sweep; axes may be collapsed from the command line. */
    ParamGrid grid;
    /** Documented tunables read through RunContext getters. */
    std::vector<TunableSpec> tunables;
    /** Declared top-level fields of the metrics object. */
    std::vector<FieldSpec> schema;
    /** Compute the metrics object for one grid point. */
    std::function<JsonValue(const RunContext &)> run;

    bool hasLabel(const std::string &label) const;
};

/**
 * Validate @p metrics against @p schema: it must be an object, every
 * declared field must be present with the declared type (null is
 * allowed for optional/not-applicable values, and Int satisfies
 * Double), and no undeclared field may appear.
 *
 * @return std::nullopt on success, else a human-readable error.
 */
std::optional<std::string>
validateSchema(const std::vector<FieldSpec> &schema,
               const JsonValue &metrics);

/** Schema rendered as a JSON object {field: type-name, ...}. */
JsonValue schemaToJson(const std::vector<FieldSpec> &schema);

} // namespace harp::runner

#endif // HARP_RUNNER_EXPERIMENT_SPEC_HH
