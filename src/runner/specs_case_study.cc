/**
 * @file
 * Experiment spec for the DRAM data-retention case study (Fig. 10,
 * section 7.4): BER before/after reactive profiling vs. active rounds.
 */

#include "core/case_study_experiment.hh"
#include "runner/registry.hh"
#include "runner/sweeps.hh"

namespace harp::runner {

namespace {

using namespace harp;

ExperimentSpec
makeFig10()
{
    ExperimentSpec spec;
    spec.name = "fig10_case_study";
    spec.description =
        "Data-retention BER before/after reactive profiling vs. rounds";
    spec.labels = {"bench", "figure"};
    spec.grid = ParamGrid({probabilityAxis()});
    spec.tunables = {
        {"k", "64", "dataword length of the on-die ECC code"},
        {"samples", "24", "Monte-Carlo samples per conditioned cell count"},
        {"max_cells", "5", "largest conditioned at-risk-cell count"},
        {"rounds", "128", "active-profiling rounds"},
        engineTunable(),
    };
    spec.schema = {
        {"checkpoints", JsonType::Array, "log-spaced round numbers"},
        {"series", JsonType::Array,
         "per (profiler, RBER): BER curves before/after reactive "
         "profiling at the checkpoints"},
        {"rounds_to_zero_after", JsonType::Object,
         "per profiler: first round with zero post-reactive BER "
         "(rounds+1 = never)"},
        {"slowdown_vs_harp_u", JsonType::Object,
         "per profiler: rounds-to-zero ratio vs. HARP-U (null when "
         "either never reaches zero)"},
    };
    spec.run = [](const RunContext &ctx) {
        core::CaseStudyConfig config;
        config.k = static_cast<std::size_t>(ctx.getInt("k", 64));
        config.samplesPerCellCount =
            static_cast<std::size_t>(ctx.getInt("samples", 24));
        config.maxConditionedCells =
            static_cast<std::size_t>(ctx.getInt("max_cells", 5));
        config.rounds =
            static_cast<std::size_t>(ctx.getInt("rounds", 128));
        config.perBitProbability = ctx.getDouble("prob", 0.5);
        config.seed = ctx.seed();
        config.threads = ctx.threads();
        config.engine = engineFromContext(ctx);

        const core::CaseStudyResult result =
            core::runCaseStudyExperiment(config);
        const auto checkpoints = roundCheckpoints(config.rounds);

        JsonValue series = JsonValue::array();
        for (const core::CaseStudySeries &s : result.series) {
            JsonValue obj = JsonValue::object();
            obj.set("profiler", JsonValue(s.profiler));
            obj.set("rber", JsonValue(s.rber));
            JsonValue before = JsonValue::array();
            JsonValue after = JsonValue::array();
            for (const std::size_t cp : checkpoints) {
                before.push(JsonValue(s.berBefore[cp - 1]));
                after.push(JsonValue(s.berAfter[cp - 1]));
            }
            obj.set("ber_before", std::move(before));
            obj.set("ber_after", std::move(after));
            series.push(std::move(obj));
        }

        // HARP-U is index 2 (Naive, BEEP, HARP-U, HARP-A).
        const std::size_t harp_u_rounds = result.roundsToZeroAfter[2];
        JsonValue rounds_to_zero = JsonValue::object();
        JsonValue slowdown = JsonValue::object();
        for (std::size_t p = 0; p < result.profilerNames.size(); ++p) {
            const std::size_t rounds = result.roundsToZeroAfter[p];
            rounds_to_zero.set(result.profilerNames[p], JsonValue(rounds));
            JsonValue ratio; // null when either never reaches zero
            if (rounds <= config.rounds && harp_u_rounds <= config.rounds)
                ratio = JsonValue(static_cast<double>(rounds) /
                                  static_cast<double>(harp_u_rounds));
            slowdown.set(result.profilerNames[p], std::move(ratio));
        }

        JsonValue metrics = JsonValue::object();
        metrics.set("checkpoints", checkpointsJson(checkpoints));
        metrics.set("series", std::move(series));
        metrics.set("rounds_to_zero_after", std::move(rounds_to_zero));
        metrics.set("slowdown_vs_harp_u", std::move(slowdown));
        return metrics;
    };
    return spec;
}

} // namespace

void
registerCaseStudySpecs(Registry &registry)
{
    registry.add(makeFig10());
}

} // namespace harp::runner
