#include "fault/fault_model.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace harp::fault {

WordFaultModel::WordFaultModel(std::size_t word_bits,
                               std::vector<CellFault> faults,
                               CellTechnology tech)
    : wordBits_(word_bits), faults_(std::move(faults)), tech_(tech)
{
    std::sort(faults_.begin(), faults_.end(),
              [](const CellFault &a, const CellFault &b) {
                  return a.position < b.position;
              });
    for (std::size_t i = 0; i < faults_.size(); ++i) {
        if (faults_[i].position >= wordBits_)
            throw std::invalid_argument("WordFaultModel: position >= n");
        if (i > 0 && faults_[i].position == faults_[i - 1].position)
            throw std::invalid_argument("WordFaultModel: duplicate position");
        if (faults_[i].probability < 0.0 || faults_[i].probability > 1.0)
            throw std::invalid_argument("WordFaultModel: bad probability");
    }
}

WordFaultModel
WordFaultModel::makeUniformFixedCount(std::size_t word_bits,
                                      std::size_t count, double probability,
                                      common::Xoshiro256 &rng)
{
    assert(count <= word_bits);
    // Floyd's algorithm for a uniform distinct sample.
    std::vector<bool> chosen(word_bits, false);
    std::vector<CellFault> faults;
    faults.reserve(count);
    for (std::size_t j = word_bits - count; j < word_bits; ++j) {
        std::size_t t = rng.nextBelow(j + 1);
        if (chosen[t])
            t = j;
        chosen[t] = true;
        faults.push_back({t, probability});
    }
    return WordFaultModel(word_bits, std::move(faults));
}

WordFaultModel
WordFaultModel::makeUniformRber(std::size_t word_bits, double rber,
                                double probability, common::Xoshiro256 &rng)
{
    std::vector<CellFault> faults;
    for (std::size_t pos = 0; pos < word_bits; ++pos)
        if (rng.nextBernoulli(rber))
            faults.push_back({pos, probability});
    return WordFaultModel(word_bits, std::move(faults));
}

std::vector<std::size_t>
WordFaultModel::atRiskPositions() const
{
    std::vector<std::size_t> positions;
    positions.reserve(faults_.size());
    for (const CellFault &f : faults_)
        positions.push_back(f.position);
    return positions;
}

bool
WordFaultModel::isAtRisk(std::size_t position) const
{
    return std::any_of(faults_.begin(), faults_.end(),
                       [position](const CellFault &f) {
                           return f.position == position;
                       });
}

gf2::BitVector
WordFaultModel::injectErrors(const gf2::BitVector &stored_codeword,
                             common::Xoshiro256 &rng) const
{
    assert(stored_codeword.size() == wordBits_);
    gf2::BitVector mask(wordBits_);
    for (const CellFault &f : faults_) {
        if (!isCharged(tech_, stored_codeword.get(f.position)))
            continue;
        if (rng.nextBernoulli(f.probability))
            mask.set(f.position, true);
    }
    return mask;
}

gf2::BitVector
WordFaultModel::injectErrorsCrn(const gf2::BitVector &stored_codeword,
                                const std::vector<double> &uniforms) const
{
    assert(stored_codeword.size() == wordBits_);
    assert(uniforms.size() >= faults_.size());
    gf2::BitVector mask(wordBits_);
    for (std::size_t i = 0; i < faults_.size(); ++i) {
        const CellFault &f = faults_[i];
        if (!isCharged(tech_, stored_codeword.get(f.position)))
            continue;
        if (uniforms[i] < f.probability)
            mask.set(f.position, true);
    }
    return mask;
}

} // namespace harp::fault
