#include "fault/sliced_injector.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace harp::fault {

template <std::size_t W>
SlicedCrnInjectorW<W>::SlicedCrnInjectorW(
    const std::vector<const WordFaultModel *> &models)
{
    if (models.empty() || models.size() > gf2::BitSliceW<W>::laneCount)
        throw std::invalid_argument(
            "SlicedCrnInjector: lane count out of range");
    wordBits_ = models[0]->wordBits();
    lanes_ = models.size();
    for (std::size_t w = 0; w < lanes_; ++w) {
        const WordFaultModel &model = *models[w];
        if (model.wordBits() != wordBits_)
            throw std::invalid_argument(
                "SlicedCrnInjector: lanes must share word length");
        if (model.technology() == CellTechnology::AntiCell)
            gf2::laneSetBit(antiMask_, w);
        for (const CellFault &fault : model.faults()) {
            entries_.push_back({static_cast<std::uint32_t>(w),
                                static_cast<std::uint32_t>(fault.position),
                                fault.probability});
            touchedPositions_.push_back(
                static_cast<std::uint32_t>(fault.position));
        }
    }
    std::sort(touchedPositions_.begin(), touchedPositions_.end());
    touchedPositions_.erase(
        std::unique(touchedPositions_.begin(), touchedPositions_.end()),
        touchedPositions_.end());
    trial_.assign(wordBits_, Lane{});
}

template <std::size_t W>
void
SlicedCrnInjectorW<W>::drawRound(std::vector<common::Xoshiro256> &rngs)
{
    assert(rngs.size() >= lanes_);
    for (const std::uint32_t pos : touchedPositions_)
        trial_[pos] = Lane{};
    // entries_ is lane-major with each lane's cells in ascending
    // position order (WordFaultModel sorts its faults), so lane w's
    // stream consumption matches the scalar uniforms loop exactly.
    // Each lane's generator is copied into a local (registers) for its
    // run of entries — the trial_ stores would otherwise force the
    // state to be reloaded from memory on every draw — and written
    // back once per lane. Trials target one precomputed 64-lane
    // sub-word, so the lane-major walk costs the same at every width.
    const Entry *entry = entries_.data();
    const Entry *const end = entry + entries_.size();
    while (entry != end) {
        const std::uint32_t lane = entry->lane;
        common::Xoshiro256 rng = rngs[lane];
        const std::size_t sub = lane / 64;
        const std::uint64_t bit = std::uint64_t{1} << (lane % 64);
        do {
            if (rng.nextDouble() < entry->probability)
                gf2::laneWordRef(trial_[entry->position], sub) |= bit;
            ++entry;
        } while (entry != end && entry->lane == lane);
        rngs[lane] = rng;
    }
}

template <std::size_t W>
void
SlicedCrnInjectorW<W>::apply(const gf2::BitSliceW<W> &stored,
                             gf2::BitSliceW<W> &received) const
{
    assert(stored.positions() == wordBits_);
    assert(received.positions() == wordBits_);
    for (const std::uint32_t pos : touchedPositions_) {
        const Lane charged = stored.lane(pos) ^ antiMask_;
        received.lane(pos) ^= trial_[pos] & charged;
    }
}

template class SlicedCrnInjectorW<1>;
template class SlicedCrnInjectorW<4>;

} // namespace harp::fault
