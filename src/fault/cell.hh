/**
 * @file
 * Memory-cell technology types for the data-dependent error model.
 *
 * The paper's error model (HARP section 2.4/7.1.2) assumes true-cells:
 * a cell can only leak (fail) when it stores charge, i.e.\ when the stored
 * bit is '1'. Anti-cells are the complementary layout, common in real DRAM
 * where the sense-amplifier orientation flips the encoding.
 */

#ifndef HARP_FAULT_CELL_HH
#define HARP_FAULT_CELL_HH

namespace harp::fault {

/** Cell charge encoding. */
enum class CellTechnology
{
    TrueCell, ///< Charged ⇔ stores logical '1' (paper's assumption).
    AntiCell  ///< Charged ⇔ stores logical '0'.
};

/** Whether a cell holding @p stored_bit is charged (vulnerable). */
constexpr bool
isCharged(CellTechnology tech, bool stored_bit)
{
    return tech == CellTechnology::TrueCell ? stored_bit : !stored_bit;
}

} // namespace harp::fault

#endif // HARP_FAULT_CELL_HH
