/**
 * @file
 * Bit-sliced common-random-number fault injection for up to W*64 ECC
 * words at once.
 *
 * The scalar profiling loop draws one uniform variate per at-risk cell
 * per round and reuses it for every profiler (the paper's fairness
 * requirement, HARP section 7.1.2). The sliced injector keeps that
 * contract bit-identical — each lane consumes its *own* RNG stream in
 * the exact order WordFaultModel::injectErrorsCrn would — but turns
 * the per-profiler application of the Bernoulli outcomes into a few
 * lane-mask AND/XOR operations: a cell flips iff its trial succeeded
 * *and* it is charged under the codeword that profiler stored.
 */

#ifndef HARP_FAULT_SLICED_INJECTOR_HH
#define HARP_FAULT_SLICED_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "fault/fault_model.hh"
#include "gf2/bit_slice.hh"
#include "gf2/lane.hh"

namespace harp::fault {

/**
 * Common-random-number fault injector over up to W*64 lanes.
 *
 * One WordFaultModel per lane (equal word length n; at-risk cells,
 * probabilities and cell technologies may differ freely). The word
 * length is whatever the engine's ecc::SlicedCodeW reports — the
 * injector is shared unchanged by the Hamming and BCH datapaths, whose
 * codewords differ in parity width. Per round,
 * drawRound() consumes each lane's RNG exactly as the scalar path
 * would; apply() then flips received bits lane-parallel, any number of
 * times per round (once per profiler).
 */
template <std::size_t W>
class SlicedCrnInjectorW
{
  public:
    using Lane = gf2::LaneOf<W>;

    /**
     * Build from one fault model per lane (1..W*64 entries, equal
     * wordBits). The models are only read during construction.
     */
    explicit SlicedCrnInjectorW(
        const std::vector<const WordFaultModel *> &models);

    /** Codeword length n shared by all lanes. */
    std::size_t wordBits() const { return wordBits_; }
    /** Number of live lanes. */
    std::size_t lanes() const { return lanes_; }

    /**
     * Draw this round's Bernoulli trials: for each lane w, one
     * nextDouble() from @p rngs[w] per at-risk cell, in ascending cell
     * position order — the same stream consumption as
     * WordFaultModel::injectErrorsCrn fed from a per-word uniform
     * buffer.
     */
    void drawRound(std::vector<common::Xoshiro256> &rngs);

    /**
     * Flip @p received (n positions) where this round's trial
     * succeeded and the cell is charged under @p stored (n positions):
     * received ^= trial & charged(stored). Uses the trials of the last
     * drawRound(); may be applied to any number of (stored, received)
     * pairs per round.
     */
    void apply(const gf2::BitSliceW<W> &stored,
               gf2::BitSliceW<W> &received) const;

  private:
    /** One at-risk cell of one lane, flattened lane-major. */
    struct Entry
    {
        std::uint32_t lane = 0;
        std::uint32_t position = 0;
        double probability = 0.0;
    };

    std::size_t wordBits_ = 0;
    std::size_t lanes_ = 0;
    std::vector<Entry> entries_;
    /** Distinct at-risk positions across all lanes, ascending. */
    std::vector<std::uint32_t> touchedPositions_;
    /** Lane mask of AntiCell lanes: charged = stored ^ antiMask. */
    Lane antiMask_{};
    /** trial_[pos]: lanes whose cell at pos trialed "fail" this round. */
    std::vector<Lane> trial_;
};

/** The historical 64-lane name. */
using SlicedCrnInjector = SlicedCrnInjectorW<1>;
/** The wide 256-lane variant. */
using SlicedCrnInjector256 = SlicedCrnInjectorW<4>;

extern template class SlicedCrnInjectorW<1>;
extern template class SlicedCrnInjectorW<4>;

} // namespace harp::fault

#endif // HARP_FAULT_SLICED_INJECTOR_HH
