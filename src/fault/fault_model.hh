/**
 * @file
 * Per-word fault model: which cells are at risk of pre-correction error and
 * with what probability, plus data-dependent error injection.
 *
 * Implements the three-property error model of HARP section 2.4:
 * (1) Bernoulli, (2) isolated, (3) data-dependent.
 */

#ifndef HARP_FAULT_FAULT_MODEL_HH
#define HARP_FAULT_FAULT_MODEL_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "fault/cell.hh"
#include "gf2/bit_vector.hh"

namespace harp::fault {

/** One at-risk cell: codeword position plus per-access failure probability
 *  (conditioned on the cell being charged). */
struct CellFault
{
    std::size_t position = 0;
    double probability = 0.0;

    bool operator==(const CellFault &o) const
    {
        return position == o.position && probability == o.probability;
    }
};

/**
 * Fault model for one ECC word (codeword of n = k + p cells).
 */
class WordFaultModel
{
  public:
    WordFaultModel() = default;

    /**
     * @param word_bits Codeword length n.
     * @param faults    At-risk cells (positions must be < n and distinct).
     * @param tech      Charge encoding shared by all cells of the word.
     */
    WordFaultModel(std::size_t word_bits, std::vector<CellFault> faults,
                   CellTechnology tech = CellTechnology::TrueCell);

    /**
     * Fixed-count generator: @p count distinct at-risk cells placed
     * uniformly at random, each failing with @p probability. This is the
     * paper's Fig. 4/6-9 workload ("n pre-correction errors per ECC word").
     */
    static WordFaultModel makeUniformFixedCount(std::size_t word_bits,
                                                std::size_t count,
                                                double probability,
                                                common::Xoshiro256 &rng);

    /**
     * RBER-driven generator: every cell is independently at risk with
     * probability @p rber; at-risk cells fail with @p probability. This is
     * the Fig. 10 data-retention workload.
     */
    static WordFaultModel makeUniformRber(std::size_t word_bits, double rber,
                                          double probability,
                                          common::Xoshiro256 &rng);

    std::size_t wordBits() const { return wordBits_; }
    CellTechnology technology() const { return tech_; }
    const std::vector<CellFault> &faults() const { return faults_; }
    std::size_t numFaults() const { return faults_.size(); }

    /** Positions of all at-risk cells, ascending. */
    std::vector<std::size_t> atRiskPositions() const;

    /** True iff @p position is an at-risk cell. */
    bool isAtRisk(std::size_t position) const;

    /**
     * Sample an error mask for one access.
     *
     * A cell flips iff it is at risk, currently charged given
     * @p stored_codeword, and its Bernoulli trial succeeds.
     *
     * @return n-bit mask; set bits are pre-correction errors.
     */
    gf2::BitVector injectErrors(const gf2::BitVector &stored_codeword,
                                common::Xoshiro256 &rng) const;

    /**
     * Common-random-numbers variant: the i-th at-risk cell flips iff it is
     * charged and @p uniforms[i] < its probability. Lets the evaluation
     * expose *identical* pre-correction randomness to every profiler
     * (HARP section 7.1.2's fairness requirement) even when profilers
     * write different data patterns.
     */
    gf2::BitVector injectErrorsCrn(const gf2::BitVector &stored_codeword,
                                   const std::vector<double> &uniforms) const;

  private:
    std::size_t wordBits_ = 0;
    std::vector<CellFault> faults_;
    CellTechnology tech_ = CellTechnology::TrueCell;
};

} // namespace harp::fault

#endif // HARP_FAULT_FAULT_MODEL_HH
