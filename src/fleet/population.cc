#include "fleet/population.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

namespace harp::fleet {

namespace {

/** Seed-derivation domain for per-chip population streams. */
constexpr std::uint64_t kPopulationDomain = 0xF1EE7u;

/**
 * Poisson draw by Knuth's product method — exact and cheap for the
 * small event rates of field fleets (lambda well below 1 for realistic
 * device-hours; exp(-lambda) stays comfortably above double underflow
 * for every rate validate() accepts via the count cap below).
 */
std::size_t
drawPoisson(double lambda, common::Xoshiro256 &rng)
{
    // Events per chip beyond this are astronomically unlikely at field
    // rates and would only grow the placement work; cap to bound cost.
    constexpr std::size_t kMaxEvents = 64;
    const double limit = std::exp(-lambda);
    std::size_t count = 0;
    double product = 1.0;
    while (count < kMaxEvents) {
        product *= rng.nextDouble();
        if (product <= limit)
            break;
        ++count;
    }
    return count;
}

/** Index below @p cdf.size() whose cumulative bucket holds @p u. */
template <typename Cdf>
std::size_t
drawFromCdf(const Cdf &cdf, double u)
{
    for (std::size_t i = 0; i + 1 < cdf.size(); ++i)
        if (u < cdf[i])
            return i;
    return cdf.size() - 1;
}

} // namespace

std::size_t
ChipSample::distinctCells() const
{
    std::set<std::pair<std::size_t, std::size_t>> cells;
    for (const FaultEvent &event : events)
        cells.insert(event.cells.begin(), event.cells.end());
    return cells.size();
}

PopulationSampler::PopulationSampler(FleetDistribution dist,
                                     ChipGeometry geometry,
                                     double device_hours,
                                     std::uint64_t fleet_seed)
    : dist_(std::move(dist)), geometry_(geometry),
      deviceHours_(device_hours), fleetSeed_(fleet_seed)
{
    dist_.validate();
    if (geometry_.wordsPerChip == 0 || geometry_.codewordBits == 0)
        throw std::invalid_argument("empty chip geometry");
    if (!(deviceHours_ > 0.0) || !std::isfinite(deviceHours_))
        throw std::invalid_argument("device hours must be > 0");

    double cum = 0.0;
    for (const ReliabilityTier &tier : dist_.tiers) {
        cum += tier.fraction;
        tierCdf_.push_back(cum);
    }
    const auto mix = dist_.modeMix();
    cum = 0.0;
    for (std::size_t m = 0; m < kNumFaultModes; ++m) {
        cum += mix[m];
        modeCdf_[m] = cum;
    }
}

ChipSample
PopulationSampler::sample(std::size_t chip) const
{
    common::Xoshiro256 rng(
        common::deriveSeed(fleetSeed_, {kPopulationDomain, chip}));
    ChipSample sample;
    sample.chipIndex = chip;
    sample.tier = drawFromCdf(tierCdf_, rng.nextDouble());
    const std::size_t events = drawPoisson(eventRate(sample.tier), rng);
    sample.events.reserve(events);
    for (std::size_t e = 0; e < events; ++e)
        sample.events.push_back(sampleEvent(rng));
    return sample;
}

FaultEvent
PopulationSampler::sampleEvent(common::Xoshiro256 &rng) const
{
    const std::size_t words = geometry_.wordsPerChip;
    const std::size_t n = geometry_.codewordBits;
    FaultEvent event;
    event.mode =
        static_cast<FaultMode>(drawFromCdf(modeCdf_, rng.nextDouble()));
    switch (event.mode) {
      case FaultMode::SingleBit: {
        const std::size_t word = rng.nextBelow(words);
        event.cells.emplace_back(word, rng.nextBelow(n));
        break;
      }
      case FaultMode::SingleWord: {
        const std::size_t word = rng.nextBelow(words);
        const std::size_t count = std::min(dist_.wordEventCells, n);
        std::set<std::size_t> positions;
        while (positions.size() < count)
            positions.insert(rng.nextBelow(n));
        for (const std::size_t pos : positions)
            event.cells.emplace_back(word, pos);
        break;
      }
      case FaultMode::SingleColumn: {
        const std::size_t pos = rng.nextBelow(n);
        // One Bernoulli per word: the draw count is fixed by the
        // geometry, keeping the chip's RNG stream layout deterministic.
        for (std::size_t w = 0; w < words; ++w)
            if (rng.nextBernoulli(dist_.columnDensity))
                event.cells.emplace_back(w, pos);
        break;
      }
      case FaultMode::ChipWide: {
        for (std::size_t c = 0; c < dist_.chipEventCells; ++c) {
            const std::size_t word = rng.nextBelow(words);
            event.cells.emplace_back(word, rng.nextBelow(n));
        }
        break;
      }
    }
    return event;
}

std::vector<std::pair<std::size_t, fault::WordFaultModel>>
PopulationSampler::materialize(const ChipSample &sample) const
{
    std::map<std::size_t, std::set<std::size_t>> by_word;
    for (const FaultEvent &event : sample.events)
        for (const auto &[word, pos] : event.cells)
            by_word[word].insert(pos);

    std::vector<std::pair<std::size_t, fault::WordFaultModel>> models;
    models.reserve(by_word.size());
    for (const auto &[word, positions] : by_word) {
        std::vector<fault::CellFault> faults;
        faults.reserve(positions.size());
        for (const std::size_t pos : positions)
            faults.push_back({pos, dist_.cellProbability});
        models.emplace_back(
            word, fault::WordFaultModel(geometry_.codewordBits,
                                        std::move(faults)));
    }
    return models;
}

std::size_t
PopulationSampler::placeOnChip(mem::MemoryChip &chip,
                               const ChipSample &sample) const
{
    if (chip.numWords() != geometry_.wordsPerChip ||
        chip.codewordBits() != geometry_.codewordBits)
        throw std::invalid_argument(
            "placeOnChip: chip geometry mismatch");
    std::set<std::pair<std::size_t, std::size_t>> placed;
    for (const FaultEvent &event : sample.events) {
        for (const auto &[word, pos] : event.cells) {
            if (!placed.insert({word, pos}).second)
                continue;
            chip.addCellFault(word, {pos, dist_.cellProbability});
        }
    }
    return placed.size();
}

} // namespace harp::fleet
