#include "fleet/distribution.hh"

#include <cmath>
#include <stdexcept>

namespace harp::fleet {

const char *
faultModeName(FaultMode mode)
{
    switch (mode) {
      case FaultMode::SingleBit:
        return "bit";
      case FaultMode::SingleWord:
        return "word";
      case FaultMode::SingleColumn:
        return "column";
      case FaultMode::ChipWide:
        return "chip";
    }
    return "?";
}

FaultMode
faultModeFromName(const std::string &name)
{
    if (name == "bit")
        return FaultMode::SingleBit;
    if (name == "word")
        return FaultMode::SingleWord;
    if (name == "column")
        return FaultMode::SingleColumn;
    if (name == "chip")
        return FaultMode::ChipWide;
    throw std::invalid_argument("unknown fault mode '" + name +
                                "' (bit | word | column | chip)");
}

double
FleetDistribution::totalFit() const
{
    double total = 0.0;
    for (const double fit : modeFit)
        total += fit;
    return total;
}

std::array<double, kNumFaultModes>
FleetDistribution::modeMix() const
{
    std::array<double, kNumFaultModes> mix{};
    const double total = totalFit();
    if (total <= 0.0)
        return mix;
    for (std::size_t m = 0; m < kNumFaultModes; ++m)
        mix[m] = modeFit[m] / total;
    return mix;
}

double
FleetDistribution::eventsPerChip(std::size_t tier,
                                 double device_hours) const
{
    return totalFit() * tiers.at(tier).rateScale * device_hours * 1e-9;
}

void
FleetDistribution::validate() const
{
    for (const double fit : modeFit)
        if (!(fit >= 0.0) || !std::isfinite(fit))
            throw std::invalid_argument("mode FIT rate must be >= 0");
    if (!(totalFit() > 0.0))
        throw std::invalid_argument("total FIT rate must be > 0");
    if (!(cellProbability > 0.0) || cellProbability > 1.0)
        throw std::invalid_argument("cell probability must be in (0, 1]");
    if (!(columnDensity > 0.0) || columnDensity > 1.0)
        throw std::invalid_argument("column density must be in (0, 1]");
    if (wordEventCells == 0 || chipEventCells == 0)
        throw std::invalid_argument("event cell counts must be >= 1");
    if (tiers.empty())
        throw std::invalid_argument("at least one reliability tier");
    double fractions = 0.0;
    for (const ReliabilityTier &tier : tiers) {
        if (!(tier.fraction > 0.0) || tier.fraction > 1.0)
            throw std::invalid_argument("tier fraction must be in (0, 1]");
        if (!(tier.rateScale >= 0.0) || !std::isfinite(tier.rateScale))
            throw std::invalid_argument("tier rate scale must be >= 0");
        fractions += tier.fraction;
    }
    if (std::abs(fractions - 1.0) > 1e-9)
        throw std::invalid_argument("tier fractions must sum to 1");
}

FleetDistribution
FleetDistribution::ddr4Field()
{
    return FleetDistribution{};
}

FleetDistribution
FleetDistribution::hrmTiers()
{
    FleetDistribution dist;
    dist.tiers = {
        {"premium", 0.25, 0.5},
        {"standard", 0.50, 1.0},
        {"relaxed", 0.25, 2.0},
    };
    return dist;
}

FleetDistribution
FleetDistribution::preset(const std::string &name)
{
    if (name == "ddr4")
        return ddr4Field();
    if (name == "hrm")
        return hrmTiers();
    throw std::invalid_argument("unknown distribution preset '" + name +
                                "' (ddr4 | hrm)");
}

} // namespace harp::fleet
