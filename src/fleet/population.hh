/**
 * @file
 * Chip-population sampler: deterministic per-chip draws from a
 * FleetDistribution.
 *
 * Every chip of the fleet gets its own RNG stream derived from
 * (fleet seed, chip index), so sampling chip i is a pure function —
 * independent of which thread samples it, in what order, and of how
 * many chips the fleet has. The sampler draws the chip's reliability
 * tier, a Poisson number of fault events over the configured
 * device-hours, and each event's mode + cell placement; almost every
 * chip draws zero events and costs two RNG taps, which is what makes
 * million-chip fleets cheap.
 *
 * Placement output is a list of (word, codeword position) cells; the
 * materialize helpers dedup them into per-word fault::WordFaultModel
 * objects or place them onto a mem::MemoryChip through its
 * addCellFault hook.
 */

#ifndef HARP_FLEET_POPULATION_HH
#define HARP_FLEET_POPULATION_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "fault/fault_model.hh"
#include "fleet/distribution.hh"
#include "memsys/memory_chip.hh"

namespace harp::fleet {

/** Simulated chip geometry (all chips of a fleet share it). */
struct ChipGeometry
{
    /** ECC words per chip. */
    std::size_t wordsPerChip = 128;
    /** Codeword length n of the on-die ECC (placement space per word). */
    std::size_t codewordBits = 71;
};

/** One sampled fault event: its mode and the cells it struck. */
struct FaultEvent
{
    FaultMode mode = FaultMode::SingleBit;
    /** (word, codeword position) pairs; may contain duplicates across
     *  events — materialization dedups. */
    std::vector<std::pair<std::size_t, std::size_t>> cells;
};

/** Everything sampled for one chip. */
struct ChipSample
{
    std::size_t chipIndex = 0;
    /** Reliability-tier index into the distribution's tiers. */
    std::size_t tier = 0;
    std::vector<FaultEvent> events;

    bool faulty() const { return !events.empty(); }

    /** Distinct at-risk cells across all events. */
    std::size_t distinctCells() const;
};

/**
 * Deterministic sampler over a fleet of chips.
 */
class PopulationSampler
{
  public:
    /**
     * @param dist         Field fault distribution (validated here).
     * @param geometry     Shared chip geometry.
     * @param device_hours Field exposure per chip.
     * @param fleet_seed   Root seed; chip i's stream is derived from
     *                     (fleet_seed, i) only.
     */
    PopulationSampler(FleetDistribution dist, ChipGeometry geometry,
                      double device_hours, std::uint64_t fleet_seed);

    /** Sample chip @p chip (pure; any order, any thread). */
    ChipSample sample(std::size_t chip) const;

    /**
     * Dedup a sample's cells into per-word fault models (ascending
     * word order, every cell at the distribution's cellProbability).
     */
    std::vector<std::pair<std::size_t, fault::WordFaultModel>>
    materialize(const ChipSample &sample) const;

    /** Place a sample's cells onto @p chip via MemoryChip::addCellFault
     *  (the chip must have the sampler's geometry).
     *  @return Number of distinct cells placed. */
    std::size_t placeOnChip(mem::MemoryChip &chip,
                            const ChipSample &sample) const;

    const FleetDistribution &distribution() const { return dist_; }
    const ChipGeometry &geometry() const { return geometry_; }
    double deviceHours() const { return deviceHours_; }

    /** Expected events per chip of @p tier (the Poisson mean). */
    double eventRate(std::size_t tier) const
    {
        return dist_.eventsPerChip(tier, deviceHours_);
    }

  private:
    FaultEvent sampleEvent(common::Xoshiro256 &rng) const;

    FleetDistribution dist_;
    ChipGeometry geometry_;
    double deviceHours_;
    std::uint64_t fleetSeed_;
    /** Cumulative tier fractions for the tier draw. */
    std::vector<double> tierCdf_;
    /** Cumulative mode mix for the mode draw. */
    std::array<double, kNumFaultModes> modeCdf_{};
};

} // namespace harp::fleet

#endif // HARP_FLEET_POPULATION_HH
