#include "fleet/policy.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/ordered_merger.hh"
#include "common/thread_pool.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "core/sliced_round_engine.hh"
#include "memsys/memory_controller.hh"

namespace harp::fleet {

namespace {

/** @name Per-chip seed-derivation domains
 * All chip randomness hangs off chipSimSeed(fleet seed, chip); these
 * constants split it into independent streams. None of them depend on
 * the policy, so the whole policy grid sees common random numbers.
 * @{ */
constexpr std::uint64_t kChipSimDomain = 0xC417u;
constexpr std::uint64_t kCodeDomain = 0xC0DEu;
constexpr std::uint64_t kSecondaryDomain = 0x5EC0u;
constexpr std::uint64_t kEngineDomain = 0xE221u;
constexpr std::uint64_t kDataDomain = 0xDA7Au;
constexpr std::uint64_t kCrnDomain = 0xC124u;
/** @} */

std::unique_ptr<core::Profiler>
makeProfiler(ProfilerKind kind, const ecc::HammingCode &code)
{
    switch (kind) {
      case ProfilerKind::Naive:
        return std::make_unique<core::NaiveProfiler>(code.k());
      case ProfilerKind::HarpU:
        return std::make_unique<core::HarpUProfiler>(code.k());
      case ProfilerKind::HarpA:
        return std::make_unique<core::HarpAProfiler>(code);
      case ProfilerKind::None:
        break;
    }
    return nullptr;
}

std::uint64_t
wordEngineSeed(const ChipSim &sim, std::size_t word)
{
    return common::deriveSeed(sim.chipSeed, {kEngineDomain, word});
}

/**
 * Sliced profiling over one stratum: faulty words of *different* chips
 * share lane blocks (each chip contributes few faulty words, so
 * cross-chip batching is what fills 64/256 lanes). Per-lane seeds use
 * the scalar derivation, so profiles are bit-identical to
 * profileChipScalar at any width.
 */
template <std::size_t W>
void
profileStratumSliced(std::vector<ChipSim> &sims,
                     const FleetPolicy &policy)
{
    struct Entry
    {
        std::size_t sim;
        std::size_t word;
    };
    std::vector<Entry> entries;
    for (std::size_t s = 0; s < sims.size(); ++s) {
        sims[s].profiles.assign(sims[s].faultyWords.size(),
                                gf2::BitVector());
        for (std::size_t i = 0; i < sims[s].faultyWords.size(); ++i)
            entries.push_back({s, i});
    }

    const std::size_t lanes_per_block = W * 64;
    for (std::size_t base = 0; base < entries.size();
         base += lanes_per_block) {
        const std::size_t count =
            std::min(lanes_per_block, entries.size() - base);
        std::vector<const ecc::HammingCode *> codes(count);
        std::vector<const fault::WordFaultModel *> faults(count);
        std::vector<std::uint64_t> seeds(count);
        std::vector<std::unique_ptr<core::Profiler>> profilers(count);
        std::vector<std::vector<core::Profiler *>> slots(count);
        for (std::size_t j = 0; j < count; ++j) {
            ChipSim &sim = sims[entries[base + j].sim];
            const auto &[word, model] =
                sim.faultyWords[entries[base + j].word];
            codes[j] = &sim.onDie;
            faults[j] = &model;
            seeds[j] = wordEngineSeed(sim, word);
            profilers[j] = makeProfiler(policy.profiler, sim.onDie);
            slots[j] = {profilers[j].get()};
        }
        {
            core::SlicedRoundEngineW<W> engine(
                codes, faults, core::PatternKind::Random, seeds);
            for (std::size_t r = 0; r < policy.activeRounds; ++r)
                engine.runRound(slots);
            // Engine destruction flushes the lane-native observer
            // groups before the profiles are read below.
        }
        for (std::size_t j = 0; j < count; ++j) {
            const Entry &entry = entries[base + j];
            sims[entry.sim].profiles[entry.word] =
                profilers[j]->identified();
        }
    }
}

FleetAggregator
runStratum(const FleetConfig &config, const PopulationSampler &sampler,
           std::size_t begin, std::size_t end)
{
    FleetAggregator agg;
    std::vector<ChipSim> sims;
    for (std::size_t chip = begin; chip < end; ++chip) {
        const ChipSample sample = sampler.sample(chip);
        if (!sample.faulty()) {
            agg.addCleanChip();
            continue;
        }
        sims.push_back(makeChipSim(config.seed, chip, config.k,
                                   sampler.materialize(sample),
                                   sample.events.size()));
    }

    if (config.policy.profiler != ProfilerKind::None &&
        config.policy.activeRounds > 0) {
        switch (config.engine) {
          case core::EngineKind::Scalar:
            for (ChipSim &sim : sims)
                profileChipScalar(sim, config.policy);
            break;
          case core::EngineKind::Sliced64:
            profileStratumSliced<1>(sims, config.policy);
            break;
          case core::EngineKind::Sliced256:
            profileStratumSliced<4>(sims, config.policy);
            break;
        }
    }

    for (ChipSim &sim : sims)
        agg.addChip(runChipOperation(sim, config.wordsPerChip,
                                     config.policy, config.windows));
    return agg;
}

} // namespace

const char *
profilerKindName(ProfilerKind kind)
{
    switch (kind) {
      case ProfilerKind::None:
        return "none";
      case ProfilerKind::Naive:
        return "naive";
      case ProfilerKind::HarpU:
        return "harp_u";
      case ProfilerKind::HarpA:
        return "harp_a";
    }
    return "?";
}

ProfilerKind
profilerKindFromName(const std::string &name)
{
    if (name == "none")
        return ProfilerKind::None;
    if (name == "naive")
        return ProfilerKind::Naive;
    if (name == "harp_u")
        return ProfilerKind::HarpU;
    if (name == "harp_a")
        return ProfilerKind::HarpA;
    throw std::invalid_argument("unknown profiler '" + name +
                                "' (none | naive | harp_u | harp_a)");
}

std::uint64_t
chipSimSeed(std::uint64_t fleet_seed, std::size_t chip)
{
    return common::deriveSeed(fleet_seed, {kChipSimDomain, chip});
}

ChipSim
makeChipSim(
    std::uint64_t fleet_seed, std::size_t chip, std::size_t k,
    std::vector<std::pair<std::size_t, fault::WordFaultModel>> faulty_words,
    std::size_t fault_events)
{
    const std::uint64_t chip_seed = chipSimSeed(fleet_seed, chip);
    common::Xoshiro256 code_rng(
        common::deriveSeed(chip_seed, {kCodeDomain}));
    common::Xoshiro256 secondary_rng(
        common::deriveSeed(chip_seed, {kSecondaryDomain}));
    return ChipSim{chip,
                   chip_seed,
                   fault_events,
                   std::move(faulty_words),
                   ecc::HammingCode::randomSec(k, code_rng),
                   ecc::ExtendedHammingCode::randomSecDed(k, secondary_rng),
                   {}};
}

void
profileChipScalar(ChipSim &sim, const FleetPolicy &policy)
{
    if (policy.profiler == ProfilerKind::None ||
        policy.activeRounds == 0) {
        sim.profiles.clear();
        return;
    }
    sim.profiles.assign(sim.faultyWords.size(), gf2::BitVector());
    for (std::size_t i = 0; i < sim.faultyWords.size(); ++i) {
        const auto &[word, model] = sim.faultyWords[i];
        const std::unique_ptr<core::Profiler> profiler =
            makeProfiler(policy.profiler, sim.onDie);
        core::RoundEngine engine(sim.onDie, model,
                                 core::PatternKind::Random,
                                 wordEngineSeed(sim, word));
        const std::vector<core::Profiler *> set = {profiler.get()};
        for (std::size_t r = 0; r < policy.activeRounds; ++r)
            engine.runRound(set);
        sim.profiles[i] = profiler->identified();
    }
}

ChipOutcome
runChipOperation(ChipSim &sim, std::size_t words_per_chip,
                 const FleetPolicy &policy, std::size_t windows)
{
    const std::size_t k = sim.onDie.k();
    mem::MemoryChip chip(sim.onDie, words_per_chip);
    for (const auto &[word, model] : sim.faultyWords)
        chip.setFaultModel(word, model);

    mem::MemoryController controller(chip, sim.secondary);
    controller.setRepairCapacity(policy.repairBudget);
    if (!sim.profiles.empty()) {
        for (std::size_t i = 0; i < sim.faultyWords.size(); ++i)
            controller.profile().markWordBitmap(sim.faultyWords[i].first,
                                                sim.profiles[i]);
    }

    // Initial field contents: fault-free words stay all-zero (their
    // zero codeword is self-consistent and scrubs clean), so cost
    // scales with the chip's faults, not its capacity.
    std::vector<gf2::BitVector> shadow(sim.faultyWords.size());
    for (std::size_t i = 0; i < sim.faultyWords.size(); ++i) {
        const std::size_t word = sim.faultyWords[i].first;
        common::Xoshiro256 data_rng(
            common::deriveSeed(sim.chipSeed, {kDataDomain, word}));
        shadow[i] = gf2::BitVector::random(k, data_rng);
        controller.write(word, shadow[i]);
    }

    ChipOutcome out;
    out.faultEvents = sim.faultEvents;
    for (const auto &[word, model] : sim.faultyWords)
        out.atRiskCells += model.numFaults();

    std::vector<double> uniforms;
    for (std::size_t w = 0; w < windows; ++w) {
        // Retention strikes: one CRN stream per (chip, word, window),
        // indexed by at-risk cell — identical trials under every
        // policy, so tightening an axis never changes the raw physics.
        for (const auto &[word, model] : sim.faultyWords) {
            common::Xoshiro256 crn_rng(common::deriveSeed(
                sim.chipSeed, {kCrnDomain, word, w}));
            uniforms.resize(model.numFaults());
            for (double &u : uniforms)
                u = crn_rng.nextDouble();
            const gf2::BitVector mask = model.injectErrorsCrn(
                chip.storedCodeword(word), uniforms);
            if (!mask.isZero())
                chip.corrupt(word, mask);
        }
        // Application reads of the words that can err.
        for (std::size_t i = 0; i < sim.faultyWords.size(); ++i) {
            const mem::ControllerReadResult r =
                controller.read(sim.faultyWords[i].first);
            if (!r.corrupt && !(r.dataword == shadow[i]))
                ++out.silentCorruptions;
        }
        if (policy.scrubInterval != 0 &&
            (w + 1) % policy.scrubInterval == 0)
            controller.scrubAll();
    }

    const mem::ControllerStats &stats = controller.stats();
    out.uncorrectableEvents = stats.uncorrectableEvents;
    out.profiledBits = controller.profile().totalAtRisk();
    out.repairSpareBits = controller.repairMechanism().spareBitsUsed();
    out.repairedBitReads = stats.repairedBits;
    out.scrubWritebacks = stats.scrubWritebacks;
    return out;
}

FleetAggregator
runFleet(const FleetConfig &config)
{
    // Probe the code family once: the codeword length n is a
    // deterministic function of k, and the sampler needs it as the
    // cell-placement space.
    common::Xoshiro256 probe_rng(1);
    const std::size_t n =
        ecc::HammingCode::randomSec(config.k, probe_rng).n();
    const PopulationSampler sampler(config.distribution,
                                    {config.wordsPerChip, n},
                                    config.deviceHours, config.seed);

    const std::size_t stratum =
        std::max<std::size_t>(1, config.stratumChips);
    const std::size_t strata = (config.chips + stratum - 1) / stratum;

    FleetAggregator total;
    common::OrderedMerger<FleetAggregator> merger(strata);
    common::parallelFor(
        strata,
        [&](std::size_t s) {
            const std::size_t begin = s * stratum;
            const std::size_t end =
                std::min(config.chips, begin + stratum);
            FleetAggregator part =
                runStratum(config, sampler, begin, end);
            merger.deposit(s, std::move(part),
                           [&](FleetAggregator &partial) {
                               total.merge(partial);
                           });
        },
        config.threads);
    return total;
}

} // namespace harp::fleet
