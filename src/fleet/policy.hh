/**
 * @file
 * Fleet policy-sweep driver: run every faulty chip of a sampled
 * population through the profiler + scrub + repair machinery and
 * aggregate fleet-level reliability.
 *
 * One policy point fixes a profiler kind, an active-profiling round
 * count, a scrub interval and a per-chip repair budget. The driver
 * samples the chip population (fleet/population.hh), active-profiles
 * every faulty word through the round engines (the sliced engines
 * batch faulty words *across chips* into 64/256-wide lanes), then
 * replays field operation on the full memory system — controller
 * reads, CRN retention injection, patrol scrubbing, budgeted repair —
 * and folds each chip into a streaming FleetAggregator.
 *
 * Determinism contract: every chip's randomness derives from
 * (fleet seed, chip index) only — never from the policy, the engine
 * kind, the thread count or the stratum size. Policies therefore see
 * common random numbers (the same chips with the same per-window cell
 * trials), engines produce bit-identical profiles, and aggregation
 * runs over fixed chip strata merged in index order, so a fleet run is
 * byte-identical at any --threads and under any engine.
 */

#ifndef HARP_FLEET_POLICY_HH
#define HARP_FLEET_POLICY_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_kind.hh"
#include "ecc/extended_hamming_code.hh"
#include "ecc/hamming_code.hh"
#include "fault/fault_model.hh"
#include "fleet/aggregate.hh"
#include "fleet/population.hh"
#include "gf2/bit_vector.hh"

namespace harp::fleet {

/** Active-profiling choice of a fleet policy. */
enum class ProfilerKind
{
    None,  ///< No active profiling (reactive-only baseline).
    Naive, ///< Post-correction observer.
    HarpU, ///< Decode-bypass direct-error observer.
    HarpA, ///< HARP-U plus indirect-error prediction.
};

/** Human-readable profiler name ("none", "naive", "harp_u", "harp_a"). */
const char *profilerKindName(ProfilerKind kind);

/** Parse a profiler name; throws std::invalid_argument on bad input. */
ProfilerKind profilerKindFromName(const std::string &name);

/** Repair budget meaning "unlimited spare storage". */
inline constexpr std::size_t kUnlimitedBudget =
    std::numeric_limits<std::size_t>::max();

/** One point of the (profiler x scrub interval x repair budget)
 *  policy grid. */
struct FleetPolicy
{
    ProfilerKind profiler = ProfilerKind::HarpU;
    /** Active-profiling rounds per faulty word (0 disables). */
    std::size_t activeRounds = 32;
    /** Patrol-scrub period in operation windows (0 disables). */
    std::size_t scrubInterval = 8;
    /** Spare bits per chip the repair mechanism may allocate. */
    std::size_t repairBudget = kUnlimitedBudget;
};

/** One full fleet-simulation configuration. */
struct FleetConfig
{
    FleetDistribution distribution;
    /** Dataword length of every chip's on-die SEC code. */
    std::size_t k = 64;
    /** ECC words per chip. */
    std::size_t wordsPerChip = 128;
    /** Field exposure per chip (the Poisson window). */
    double deviceHours = 43800.0;
    /** Chips in the fleet. */
    std::size_t chips = 100000;
    /** Operation windows replayed per faulty chip. */
    std::size_t windows = 32;
    FleetPolicy policy;
    std::uint64_t seed = 1;
    /** Worker threads for the stratum fan-out (0 = hardware). */
    std::size_t threads = 1;
    core::EngineKind engine = core::EngineKind::Sliced64;
    /** Chips per stratum — the fixed parallel grain. Results are
     *  independent of this only in ordering terms (aggregation is
     *  commutative), but keep it fixed per experiment so strata line
     *  up across runs. */
    std::size_t stratumChips = 4096;
};

/**
 * One faulty chip ready to simulate: its sampled faults plus its
 * chip-private codes, all derived from (fleet seed, chip index).
 * Exposed so the test tier can hand-craft small-population oracles.
 */
struct ChipSim
{
    std::size_t chipIndex = 0;
    /** deriveSeed(fleet seed, {domain, chip index}) — every stream of
     *  this chip's simulation derives from it. */
    std::uint64_t chipSeed = 0;
    std::size_t faultEvents = 0;
    /** (word, fault model) pairs, ascending word order. */
    std::vector<std::pair<std::size_t, fault::WordFaultModel>> faultyWords;
    /** Chip-private on-die SEC code (the secret the profilers work
     *  around). */
    ecc::HammingCode onDie;
    /** Controller-side secondary SECDED code. */
    ecc::ExtendedHammingCode secondary;
    /** Per-faultyWords active profile (identified() bitmaps, k bits
     *  each); empty until a profiling pass fills it. */
    std::vector<gf2::BitVector> profiles;
};

/** The per-chip seed root (policy-independent: common random numbers
 *  across the whole policy grid). */
std::uint64_t chipSimSeed(std::uint64_t fleet_seed, std::size_t chip);

/**
 * Build a ChipSim with derived codes from explicit faulty words (the
 * oracle-test entry; runFleet builds its sims from PopulationSampler
 * output through the same path).
 */
ChipSim makeChipSim(
    std::uint64_t fleet_seed, std::size_t chip, std::size_t k,
    std::vector<std::pair<std::size_t, fault::WordFaultModel>> faulty_words,
    std::size_t fault_events);

/**
 * Active-profile every faulty word of @p sim with the scalar round
 * engine, filling sim.profiles. The sliced stratum path produces
 * bit-identical profiles (same per-word seed derivation).
 */
void profileChipScalar(ChipSim &sim, const FleetPolicy &policy);

/**
 * Replay field operation for one chip on the full memory system and
 * return its outcome. sim.profiles (if filled) seeds the error profile
 * before the initial writes, so the repair budget is consumed in
 * (word, bit) order.
 */
ChipOutcome runChipOperation(ChipSim &sim, std::size_t words_per_chip,
                             const FleetPolicy &policy,
                             std::size_t windows);

/**
 * Full fleet run: sample, profile (batched through the configured
 * engine), operate, aggregate. Deterministic for a given (config minus
 * threads/engine): byte-identical at any thread count and engine kind.
 */
FleetAggregator runFleet(const FleetConfig &config);

} // namespace harp::fleet

#endif // HARP_FLEET_POLICY_HH
