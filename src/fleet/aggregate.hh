/**
 * @file
 * Streaming fleet aggregator: FIT rates and repair-capacity
 * percentiles without holding per-chip results.
 *
 * A fleet campaign simulates millions of chips per grid point; keeping
 * one record per chip would dwarf the simulation state. The aggregator
 * therefore folds every chip into integer counters plus fixed-size
 * integer histograms (common::Histogram), so memory is O(bins) —
 * independent of the fleet size — and percentiles (p50/p99/p999) come
 * from histogram mass. All state is integral and merging is
 * commutative/associative, so partial aggregates merged in any stratum
 * order produce byte-identical output at any thread count.
 */

#ifndef HARP_FLEET_AGGREGATE_HH
#define HARP_FLEET_AGGREGATE_HH

#include <cstddef>
#include <cstdint>

#include "common/stats.hh"

namespace harp::fleet {

/** Per-chip outcome of one policy simulation (policy.hh fills it). */
struct ChipOutcome
{
    std::size_t faultEvents = 0;
    std::size_t atRiskCells = 0;
    std::size_t profiledBits = 0;
    std::size_t repairSpareBits = 0;
    std::size_t repairedBitReads = 0;
    std::size_t uncorrectableEvents = 0;
    std::size_t silentCorruptions = 0;
    std::size_t scrubWritebacks = 0;

    /** A chip fails when any read returned corrupt data — detected
     *  (uncorrectable event) or silent (shadow mismatch). */
    bool failed() const
    {
        return uncorrectableEvents + silentCorruptions > 0;
    }
};

/**
 * Order-insensitive accumulator over chip outcomes.
 */
class FleetAggregator
{
  public:
    /**
     * @param repair_bins Bins of the repair-capacity histogram; spare
     *        counts at or above the last bin clamp into it.
     * @param event_bins  Bins of the per-chip uncorrectable-event
     *        histogram.
     */
    explicit FleetAggregator(std::size_t repair_bins = 257,
                             std::size_t event_bins = 65);

    /** Fold in a chip the sampler drew no fault events for (the
     *  overwhelmingly common case; clean chips cannot fail). */
    void addCleanChip();

    /** Fold in a simulated faulty chip. */
    void addChip(const ChipOutcome &outcome);

    /** Merge a partial aggregate (parallel reduction; commutative). */
    void merge(const FleetAggregator &other);

    /** @name Population counters */
    ///@{
    std::uint64_t chips() const { return chips_; }
    std::uint64_t faultyChips() const { return faultyChips_; }
    std::uint64_t faultEvents() const { return faultEvents_; }
    std::uint64_t atRiskCells() const { return atRiskCells_; }
    ///@}

    /** @name Outcome counters */
    ///@{
    std::uint64_t failedChips() const { return failedChips_; }
    std::uint64_t uncorrectableEvents() const { return uncorrectable_; }
    std::uint64_t silentCorruptions() const { return silent_; }
    std::uint64_t profiledBits() const { return profiledBits_; }
    std::uint64_t repairSpareBits() const { return repairSpareBits_; }
    std::uint64_t repairedBitReads() const { return repairedBitReads_; }
    std::uint64_t scrubWritebacks() const { return scrubWritebacks_; }
    ///@}

    /**
     * Fleet FIT rate: failed chips per billion device-hours of
     * exposure (chips() * @p device_hours total). 0 for an empty
     * fleet.
     */
    double fitRate(double device_hours) const;

    /** Half-width of the 95% Poisson (Wald) confidence interval on
     *  fitRate(). */
    double fitRateCi95(double device_hours) const;

    /**
     * Repair-capacity quantile over *faulty* chips: the smallest spare
     * bit count covering fraction @p q of them (clean chips consume no
     * spares and would pin every percentile to 0).
     */
    std::size_t repairBitsQuantile(double q) const;

    /** Per-faulty-chip uncorrectable-event quantile. */
    std::size_t uncorrectableQuantile(double q) const;

    /** Exact equality (every counter and histogram bin) — the
     *  cross-engine / cross-thread identity check of the test tier. */
    bool operator==(const FleetAggregator &other) const;
    bool operator!=(const FleetAggregator &other) const
    {
        return !(*this == other);
    }

  private:
    std::uint64_t chips_ = 0;
    std::uint64_t faultyChips_ = 0;
    std::uint64_t faultEvents_ = 0;
    std::uint64_t atRiskCells_ = 0;
    std::uint64_t failedChips_ = 0;
    std::uint64_t uncorrectable_ = 0;
    std::uint64_t silent_ = 0;
    std::uint64_t profiledBits_ = 0;
    std::uint64_t repairSpareBits_ = 0;
    std::uint64_t repairedBitReads_ = 0;
    std::uint64_t scrubWritebacks_ = 0;
    common::Histogram repairBits_;
    common::Histogram uncorrectablePerChip_;
};

} // namespace harp::fleet

#endif // HARP_FLEET_AGGREGATE_HH
