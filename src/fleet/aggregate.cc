#include "fleet/aggregate.hh"

#include <cmath>

namespace harp::fleet {

namespace {

bool
histogramsEqual(const common::Histogram &a, const common::Histogram &b)
{
    if (a.numBins() != b.numBins())
        return false;
    for (std::size_t i = 0; i < a.numBins(); ++i)
        if (a.bin(i) != b.bin(i))
            return false;
    return true;
}

} // namespace

FleetAggregator::FleetAggregator(std::size_t repair_bins,
                                 std::size_t event_bins)
    : repairBits_(repair_bins), uncorrectablePerChip_(event_bins)
{
}

void
FleetAggregator::addCleanChip()
{
    ++chips_;
}

void
FleetAggregator::addChip(const ChipOutcome &outcome)
{
    ++chips_;
    ++faultyChips_;
    faultEvents_ += outcome.faultEvents;
    atRiskCells_ += outcome.atRiskCells;
    if (outcome.failed())
        ++failedChips_;
    uncorrectable_ += outcome.uncorrectableEvents;
    silent_ += outcome.silentCorruptions;
    profiledBits_ += outcome.profiledBits;
    repairSpareBits_ += outcome.repairSpareBits;
    repairedBitReads_ += outcome.repairedBitReads;
    scrubWritebacks_ += outcome.scrubWritebacks;
    repairBits_.add(static_cast<std::int64_t>(outcome.repairSpareBits));
    uncorrectablePerChip_.add(
        static_cast<std::int64_t>(outcome.uncorrectableEvents +
                                  outcome.silentCorruptions));
}

void
FleetAggregator::merge(const FleetAggregator &other)
{
    chips_ += other.chips_;
    faultyChips_ += other.faultyChips_;
    faultEvents_ += other.faultEvents_;
    atRiskCells_ += other.atRiskCells_;
    failedChips_ += other.failedChips_;
    uncorrectable_ += other.uncorrectable_;
    silent_ += other.silent_;
    profiledBits_ += other.profiledBits_;
    repairSpareBits_ += other.repairSpareBits_;
    repairedBitReads_ += other.repairedBitReads_;
    scrubWritebacks_ += other.scrubWritebacks_;
    repairBits_.merge(other.repairBits_);
    uncorrectablePerChip_.merge(other.uncorrectablePerChip_);
}

double
FleetAggregator::fitRate(double device_hours) const
{
    const double exposure =
        static_cast<double>(chips_) * device_hours * 1e-9;
    if (!(exposure > 0.0))
        return 0.0;
    return static_cast<double>(failedChips_) / exposure;
}

double
FleetAggregator::fitRateCi95(double device_hours) const
{
    const double exposure =
        static_cast<double>(chips_) * device_hours * 1e-9;
    if (!(exposure > 0.0))
        return 0.0;
    return 1.96 * std::sqrt(static_cast<double>(failedChips_)) / exposure;
}

std::size_t
FleetAggregator::repairBitsQuantile(double q) const
{
    // An all-clean fleet has an empty histogram (quantileBin would
    // report the clamp bin); its spare consumption is simply 0.
    return repairBits_.total() == 0 ? 0 : repairBits_.quantileBin(q);
}

std::size_t
FleetAggregator::uncorrectableQuantile(double q) const
{
    return uncorrectablePerChip_.total() == 0
               ? 0
               : uncorrectablePerChip_.quantileBin(q);
}

bool
FleetAggregator::operator==(const FleetAggregator &other) const
{
    return chips_ == other.chips_ && faultyChips_ == other.faultyChips_ &&
           faultEvents_ == other.faultEvents_ &&
           atRiskCells_ == other.atRiskCells_ &&
           failedChips_ == other.failedChips_ &&
           uncorrectable_ == other.uncorrectable_ &&
           silent_ == other.silent_ &&
           profiledBits_ == other.profiledBits_ &&
           repairSpareBits_ == other.repairSpareBits_ &&
           repairedBitReads_ == other.repairedBitReads_ &&
           scrubWritebacks_ == other.scrubWritebacks_ &&
           histogramsEqual(repairBits_, other.repairBits_) &&
           histogramsEqual(uncorrectablePerChip_,
                           other.uncorrectablePerChip_);
}

} // namespace harp::fleet
