/**
 * @file
 * Field fault distributions for the Monte Carlo fleet simulator.
 *
 * A FleetDistribution describes how fault events arrive on chips in the
 * field: a per-mode FIT rate (failures per billion device-hours) for
 * the four spatial fault modes the DDR4 field study distinguishes
 * (single-bit, single-word/row, single-column, chip-wide/bank), the
 * shape of each event's cell placement, and a set of heterogeneous
 * reliability tiers (Heterogeneous-Reliability Memory) that scale the
 * event rate per population stratum. The numbers bundled in the
 * presets are inspired by the published field measurements, not copies
 * of them — the simulator's contract is the *shape* of the sweep
 * (mode mix x rate x tiers), with every number tunable.
 */

#ifndef HARP_FLEET_DISTRIBUTION_HH
#define HARP_FLEET_DISTRIBUTION_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace harp::fleet {

/** Spatial extent of one field fault event. */
enum class FaultMode
{
    SingleBit,    ///< One cell of one ECC word.
    SingleWord,   ///< A cluster of cells inside one ECC word (row-like).
    SingleColumn, ///< One bit position across many words (column-like).
    ChipWide,     ///< Cells scattered over the whole chip (bank-like).
};

/** Number of FaultMode values (array sizing). */
inline constexpr std::size_t kNumFaultModes = 4;

/** Human-readable mode name ("bit", "word", "column", "chip"). */
const char *faultModeName(FaultMode mode);

/** Parse a mode name; throws std::invalid_argument on bad input. */
FaultMode faultModeFromName(const std::string &name);

/**
 * One reliability tier of a heterogeneous fleet: a fraction of the
 * chip population whose fault-event rate is scaled by @p rateScale
 * (tier 0 of an HRM deployment holds the most reliable parts).
 */
struct ReliabilityTier
{
    std::string name;
    /** Fraction of the chip population in this tier; the fractions of
     *  a distribution's tiers must sum to 1. */
    double fraction = 1.0;
    /** Multiplier on every mode's FIT rate for chips of this tier. */
    double rateScale = 1.0;
};

/**
 * Configurable field fault distribution: per-mode FIT rates, event
 * placement shape, and reliability tiers.
 */
struct FleetDistribution
{
    /** FIT rate (failures per billion device-hours, per chip) of each
     *  fault mode, indexed by FaultMode. Default mix is dominated by
     *  single-bit faults, as in the DDR4 field study. */
    std::array<double, kNumFaultModes> modeFit{33.0, 12.0, 10.0, 5.0};

    /** Per-access failure probability of every placed at-risk cell
     *  (conditioned on the cell being charged). */
    double cellProbability = 0.5;

    /** Cells placed by one SingleWord event (within one ECC word). */
    std::size_t wordEventCells = 4;

    /** Per-word hit probability of a SingleColumn event (which words
     *  of the chip the broken column actually strikes). */
    double columnDensity = 0.25;

    /** Cells scattered over the chip by one ChipWide event. */
    std::size_t chipEventCells = 12;

    /** Reliability tiers; fractions must sum to 1. */
    std::vector<ReliabilityTier> tiers{{"standard", 1.0, 1.0}};

    /** Sum of the per-mode FIT rates (tier scale 1.0). */
    double totalFit() const;

    /** Normalized probability of each mode given that an event
     *  occurred (identical across tiers: tiers scale all modes). */
    std::array<double, kNumFaultModes> modeMix() const;

    /** Expected fault events per chip of @p tier over
     *  @p device_hours. */
    double eventsPerChip(std::size_t tier, double device_hours) const;

    /** @throws std::invalid_argument on non-physical parameters
     *  (negative rates, probabilities outside [0,1], tier fractions
     *  not summing to 1, no tiers). */
    void validate() const;

    /** Single-tier preset with the default field-study-inspired mode
     *  mix. */
    static FleetDistribution ddr4Field();

    /**
     * Three-tier Heterogeneous-Reliability-Memory preset: a premium
     * tier at half the field rate, a standard tier, and a relaxed tier
     * at double rate, over the same mode mix.
     */
    static FleetDistribution hrmTiers();

    /** Preset by name ("ddr4" | "hrm");
     *  @throws std::invalid_argument on bad input. */
    static FleetDistribution preset(const std::string &name);
};

} // namespace harp::fleet

#endif // HARP_FLEET_DISTRIBUTION_HH
