/**
 * @file
 * Basic SAT types: variables, literals, clauses.
 *
 * Variables are 0-based integers. A literal packs a variable and a sign
 * into one int: lit = 2·var for the positive phase, 2·var+1 for negative.
 */

#ifndef HARP_SAT_TYPES_HH
#define HARP_SAT_TYPES_HH

#include <cstdint>
#include <vector>

namespace harp::sat {

/** Variable index (0-based). */
using Var = std::int32_t;

/**
 * Packed literal: (var << 1) | sign, where sign 1 means negated.
 */
struct Lit
{
    std::int32_t code = -2;

    Lit() = default;

    /** Build from variable and phase. @p positive true means "var is true". */
    static Lit make(Var v, bool positive)
    {
        Lit l;
        l.code = (v << 1) | (positive ? 0 : 1);
        return l;
    }

    Var var() const { return code >> 1; }
    bool positive() const { return (code & 1) == 0; }

    /** Negation. */
    Lit operator~() const
    {
        Lit l;
        l.code = code ^ 1;
        return l;
    }

    bool operator==(const Lit &o) const { return code == o.code; }
    bool operator!=(const Lit &o) const { return code != o.code; }
    bool operator<(const Lit &o) const { return code < o.code; }

    /** Index usable for watch lists (0..2·numVars-1). */
    std::size_t index() const { return static_cast<std::size_t>(code); }
};

/** An undefined literal sentinel. */
inline const Lit litUndef{};

/** Clause: a disjunction of literals. */
using Clause = std::vector<Lit>;

/** Tri-state assignment value. */
enum class LBool : std::int8_t { False = 0, True = 1, Undef = 2 };

/** Solver verdict. */
enum class SolveResult { Sat, Unsat, Unknown };

} // namespace harp::sat

#endif // HARP_SAT_TYPES_HH
