#include "sat/solver.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace harp::sat {

Solver::Solver() = default;

Var
Solver::newVar()
{
    const Var v = static_cast<Var>(numVars_++);
    watches_.emplace_back();
    watches_.emplace_back();
    assigns_.push_back(LBool::Undef);
    savedPhase_.push_back(false);
    levels_.push_back(0);
    reasons_.push_back(invalidClause);
    varActivity_.push_back(0.0);
    seen_.push_back(false);
    return v;
}

LBool
Solver::value(Var v) const
{
    return assigns_[static_cast<std::size_t>(v)];
}

LBool
Solver::value(Lit l) const
{
    const LBool v = assigns_[static_cast<std::size_t>(l.var())];
    if (v == LBool::Undef)
        return LBool::Undef;
    const bool truth = (v == LBool::True);
    return (truth == l.positive()) ? LBool::True : LBool::False;
}

bool
Solver::addClause(Clause clause)
{
    if (!okay_)
        return false;
    assert(trailLimits_.empty() && "clauses must be added at level 0");

    // Normalize: sort, dedupe, drop tautologies and level-0-false literals.
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    Clause kept;
    for (std::size_t i = 0; i < clause.size(); ++i) {
        const Lit l = clause[i];
        if (i + 1 < clause.size() && clause[i + 1] == ~l)
            return true; // tautology: x ∨ ¬x
        if (value(l) == LBool::True)
            return true; // already satisfied at level 0
        if (value(l) != LBool::False)
            kept.push_back(l);
    }

    if (kept.empty()) {
        okay_ = false;
        return false;
    }
    if (kept.size() == 1) {
        enqueue(kept[0], invalidClause);
        okay_ = (propagate() == invalidClause);
        return okay_;
    }

    const auto ci = static_cast<std::uint32_t>(clauses_.size());
    clauses_.push_back({std::move(kept), 0.0, false, false});
    attachClause(ci);
    ++numProblemClauses_;
    return true;
}

bool
Solver::addClause(Lit a)
{
    return addClause(Clause{a});
}

bool
Solver::addClause(Lit a, Lit b)
{
    return addClause(Clause{a, b});
}

bool
Solver::addClause(Lit a, Lit b, Lit c)
{
    return addClause(Clause{a, b, c});
}

void
Solver::attachClause(std::uint32_t ci)
{
    const auto &lits = clauses_[ci].lits;
    assert(lits.size() >= 2);
    watches_[(~lits[0]).index()].push_back({ci, lits[1]});
    watches_[(~lits[1]).index()].push_back({ci, lits[0]});
}

void
Solver::enqueue(Lit l, std::uint32_t reason)
{
    assert(value(l) == LBool::Undef);
    const auto v = static_cast<std::size_t>(l.var());
    assigns_[v] = l.positive() ? LBool::True : LBool::False;
    savedPhase_[v] = l.positive();
    levels_[v] = currentLevel();
    reasons_[v] = reason;
    trail_.push_back(l);
}

std::uint32_t
Solver::propagate()
{
    while (propagateHead_ < trail_.size()) {
        const Lit p = trail_[propagateHead_++];
        ++stats_.propagations;
        auto &watch_list = watches_[p.index()];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < watch_list.size(); ++i) {
            const Watcher w = watch_list[i];
            // Cheap out: the blocker literal is already true.
            if (value(w.blocker) == LBool::True) {
                watch_list[keep++] = w;
                continue;
            }
            auto &lits = clauses_[w.clause].lits;
            // Ensure the falsified literal ~p sits in slot 1.
            const Lit false_lit = ~p;
            if (lits[0] == false_lit)
                std::swap(lits[0], lits[1]);
            assert(lits[1] == false_lit);

            if (value(lits[0]) == LBool::True) {
                watch_list[keep++] = {w.clause, lits[0]};
                continue;
            }

            // Look for a new literal to watch.
            bool moved = false;
            for (std::size_t k = 2; k < lits.size(); ++k) {
                if (value(lits[k]) != LBool::False) {
                    std::swap(lits[1], lits[k]);
                    watches_[(~lits[1]).index()].push_back(
                        {w.clause, lits[0]});
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;

            // Clause is unit or conflicting.
            watch_list[keep++] = {w.clause, lits[0]};
            if (value(lits[0]) == LBool::False) {
                // Conflict: compact the remaining watchers and report.
                for (std::size_t j = i + 1; j < watch_list.size(); ++j)
                    watch_list[keep++] = watch_list[j];
                watch_list.resize(keep);
                propagateHead_ = trail_.size();
                return w.clause;
            }
            enqueue(lits[0], w.clause);
        }
        watch_list.resize(keep);
    }
    return invalidClause;
}

void
Solver::analyze(std::uint32_t confl, Clause &out_learnt, int &out_btlevel)
{
    // Standard 1-UIP conflict analysis.
    out_learnt.clear();
    out_learnt.push_back(litUndef); // slot for the asserting literal
    int counter = 0;
    Lit p = litUndef;
    std::size_t trail_index = trail_.size();

    for (;;) {
        assert(confl != invalidClause);
        bumpClauseActivity(confl);
        const auto &lits = clauses_[confl].lits;
        const std::size_t start = (p == litUndef) ? 0 : 1;
        for (std::size_t i = start; i < lits.size(); ++i) {
            const Lit q = lits[i];
            const auto v = static_cast<std::size_t>(q.var());
            if (seen_[v] || levels_[v] == 0)
                continue;
            seen_[v] = true;
            bumpVarActivity(q.var());
            if (levels_[v] == currentLevel())
                ++counter;
            else
                out_learnt.push_back(q);
        }
        // Select the next trail literal seen in the conflict graph.
        do {
            --trail_index;
            p = trail_[trail_index];
        } while (!seen_[static_cast<std::size_t>(p.var())]);
        seen_[static_cast<std::size_t>(p.var())] = false;
        --counter;
        if (counter == 0)
            break;
        confl = reasons_[static_cast<std::size_t>(p.var())];
    }
    out_learnt[0] = ~p;

    // Remember every variable still marked seen (the lower-level literals
    // now in out_learnt) so the flags can be cleared before returning;
    // stale seen flags would corrupt the next conflict analysis.
    const Clause to_clear = out_learnt;

    // Clause minimization: drop literals implied by the rest of the clause
    // through their reason clauses (local / non-recursive check).
    std::vector<bool> in_clause(numVars_, false);
    for (const Lit l : out_learnt)
        in_clause[static_cast<std::size_t>(l.var())] = true;
    auto redundant = [&](Lit l) {
        const auto reason = reasons_[static_cast<std::size_t>(l.var())];
        if (reason == invalidClause)
            return false;
        for (const Lit q : clauses_[reason].lits) {
            const auto v = static_cast<std::size_t>(q.var());
            if (q.var() == l.var() || levels_[v] == 0)
                continue;
            if (!in_clause[v])
                return false;
        }
        return true;
    };
    std::size_t keep = 1;
    for (std::size_t i = 1; i < out_learnt.size(); ++i) {
        if (!redundant(out_learnt[i]))
            out_learnt[keep++] = out_learnt[i];
        else
            in_clause[static_cast<std::size_t>(out_learnt[i].var())] = false;
    }
    out_learnt.resize(keep);

    for (const Lit l : to_clear)
        seen_[static_cast<std::size_t>(l.var())] = false;

    // Compute the backtrack level: max level among non-asserting literals.
    out_btlevel = 0;
    if (out_learnt.size() > 1) {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < out_learnt.size(); ++i) {
            const auto vi =
                static_cast<std::size_t>(out_learnt[i].var());
            const auto vm =
                static_cast<std::size_t>(out_learnt[max_i].var());
            if (levels_[vi] > levels_[vm])
                max_i = i;
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = levels_[static_cast<std::size_t>(out_learnt[1].var())];
    }
}

void
Solver::backtrack(int level)
{
    if (currentLevel() <= level)
        return;
    const std::size_t bound = trailLimits_[static_cast<std::size_t>(level)];
    for (std::size_t i = trail_.size(); i > bound; --i) {
        const auto v = static_cast<std::size_t>(trail_[i - 1].var());
        assigns_[v] = LBool::Undef;
        reasons_[v] = invalidClause;
    }
    trail_.resize(bound);
    trailLimits_.resize(static_cast<std::size_t>(level));
    propagateHead_ = trail_.size();
}

void
Solver::bumpVarActivity(Var v)
{
    auto &a = varActivity_[static_cast<std::size_t>(v)];
    a += varActivityInc_;
    if (a > 1e100) {
        for (auto &act : varActivity_)
            act *= 1e-100;
        varActivityInc_ *= 1e-100;
    }
}

void
Solver::decayVarActivity()
{
    varActivityInc_ /= 0.95;
}

void
Solver::bumpClauseActivity(std::uint32_t ci)
{
    auto &a = clauses_[ci].activity;
    a += clauseActivityInc_;
    if (a > 1e100) {
        for (auto &c : clauses_)
            c.activity *= 1e-100;
        clauseActivityInc_ *= 1e-100;
    }
}

void
Solver::reduceDb()
{
    // Delete the less-active half of the learnt clauses. Clauses that are
    // currently a reason for an assignment must be kept.
    std::vector<std::uint32_t> learnts;
    for (std::uint32_t ci = 0; ci < clauses_.size(); ++ci)
        if (clauses_[ci].learnt && !clauses_[ci].deleted)
            learnts.push_back(ci);
    if (learnts.size() < 64)
        return;
    std::sort(learnts.begin(), learnts.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return clauses_[a].activity < clauses_[b].activity;
              });
    std::vector<bool> is_reason(clauses_.size(), false);
    for (const Lit l : trail_) {
        const auto reason = reasons_[static_cast<std::size_t>(l.var())];
        if (reason != invalidClause)
            is_reason[reason] = true;
    }
    const std::size_t to_delete = learnts.size() / 2;
    std::size_t deleted = 0;
    for (std::uint32_t ci : learnts) {
        if (deleted >= to_delete)
            break;
        if (is_reason[ci] || clauses_[ci].lits.size() <= 2)
            continue;
        clauses_[ci].deleted = true;
        ++deleted;
    }
    // Rebuild all watch lists without the deleted clauses.
    for (auto &wl : watches_)
        wl.clear();
    for (std::uint32_t ci = 0; ci < clauses_.size(); ++ci)
        if (!clauses_[ci].deleted)
            attachClause(ci);
}

Lit
Solver::pickBranchLit()
{
    Var best = -1;
    double best_activity = -1.0;
    for (std::size_t v = 0; v < numVars_; ++v) {
        if (assigns_[v] != LBool::Undef)
            continue;
        if (varActivity_[v] > best_activity) {
            best_activity = varActivity_[v];
            best = static_cast<Var>(v);
        }
    }
    if (best < 0)
        return litUndef;
    return Lit::make(best, savedPhase_[static_cast<std::size_t>(best)]);
}

SolveResult
Solver::solve(std::uint64_t conflict_budget)
{
    return solve({}, conflict_budget);
}

SolveResult
Solver::solve(const std::vector<Lit> &assumptions,
              std::uint64_t conflict_budget)
{
    if (!okay_)
        return SolveResult::Unsat;
    backtrack(0);
    if (propagate() != invalidClause) {
        okay_ = false;
        return SolveResult::Unsat;
    }

    std::uint64_t conflicts_this_call = 0;
    std::uint64_t restart_limit = 128;
    std::uint64_t conflicts_since_restart = 0;
    std::uint64_t learnt_limit =
        std::max<std::uint64_t>(256, numProblemClauses_ * 2);

    for (;;) {
        const std::uint32_t confl = propagate();
        if (confl != invalidClause) {
            ++stats_.conflicts;
            ++conflicts_this_call;
            ++conflicts_since_restart;
            if (currentLevel() == 0)
                return SolveResult::Unsat;
            Clause learnt;
            int bt_level = 0;
            analyze(confl, learnt, bt_level);
            backtrack(bt_level);
            if (learnt.size() == 1) {
                enqueue(learnt[0], invalidClause);
            } else {
                const auto ci =
                    static_cast<std::uint32_t>(clauses_.size());
                clauses_.push_back({std::move(learnt),
                                    clauseActivityInc_, true, false});
                attachClause(ci);
                enqueue(clauses_[ci].lits[0], ci);
            }
            decayVarActivity();
            clauseActivityInc_ /= 0.999;
            if (conflict_budget != 0 &&
                conflicts_this_call >= conflict_budget) {
                backtrack(0);
                return SolveResult::Unknown;
            }
            if (conflicts_since_restart >= restart_limit) {
                conflicts_since_restart = 0;
                restart_limit += restart_limit / 2;
                ++stats_.restarts;
                backtrack(0);
            }
            continue;
        }

        // Re-assert assumptions that are not yet on the trail.
        bool assumption_pending = false;
        for (const Lit a : assumptions) {
            if (value(a) == LBool::True)
                continue;
            if (value(a) == LBool::False)
                return SolveResult::Unsat;
            trailLimits_.push_back(trail_.size());
            enqueue(a, invalidClause);
            assumption_pending = true;
            break;
        }
        if (assumption_pending)
            continue;

        std::uint64_t live_learnts = 0;
        for (const auto &c : clauses_)
            live_learnts += (c.learnt && !c.deleted) ? 1 : 0;
        if (live_learnts > learnt_limit) {
            reduceDb();
            learnt_limit += learnt_limit / 4;
        }

        const Lit next = pickBranchLit();
        if (next == litUndef)
            return SolveResult::Sat; // full assignment, no conflict
        ++stats_.decisions;
        trailLimits_.push_back(trail_.size());
        enqueue(next, invalidClause);
    }
}

bool
Solver::modelValue(Var v) const
{
    return assigns_[static_cast<std::size_t>(v)] == LBool::True;
}

} // namespace harp::sat
