/**
 * @file
 * Structured constraint encoding on top of the CDCL solver.
 *
 * Provides the encodings HARP's analyses need: XOR (parity) constraints for
 * GF(2) relations between dataword bits and parity/syndrome bits, and small
 * cardinality constraints.
 */

#ifndef HARP_SAT_CNF_BUILDER_HH
#define HARP_SAT_CNF_BUILDER_HH

#include <cstddef>
#include <vector>

#include "sat/solver.hh"
#include "sat/types.hh"

namespace harp::sat {

/**
 * Convenience layer that owns a Solver and offers higher-level constraints.
 */
class CnfBuilder
{
  public:
    CnfBuilder() = default;

    /** Create @p n fresh variables and return their indices. */
    std::vector<Var> newVars(std::size_t n);

    Var newVar() { return solver_.newVar(); }

    Solver &solver() { return solver_; }
    const Solver &solver() const { return solver_; }

    /** Plain clause passthrough. */
    bool addClause(Clause clause) { return solver_.addClause(std::move(clause)); }

    /**
     * Add the parity constraint l1 ⊕ l2 ⊕ ... ⊕ ln = rhs.
     *
     * Short constraints are expanded directly (2^(n-1) clauses); longer
     * ones are chunked through fresh auxiliary variables so clause count
     * stays linear.
     */
    bool addXor(const std::vector<Lit> &lits, bool rhs);

    /** At most one of @p lits is true (pairwise encoding). */
    bool addAtMostOne(const std::vector<Lit> &lits);

    /** Exactly one of @p lits is true. */
    bool addExactlyOne(const std::vector<Lit> &lits);

    /** a → b. */
    bool addImplies(Lit a, Lit b);

    /** Define y ↔ (a ∧ b) with a fresh variable y; returns y. */
    Var defineAnd(Lit a, Lit b);

    /** Define y ↔ (l1 ∧ l2 ∧ ... ∧ ln); returns y. */
    Var defineAnd(const std::vector<Lit> &lits);

    /** Define y ↔ (l1 ∨ l2 ∨ ... ∨ ln); returns y. */
    Var defineOr(const std::vector<Lit> &lits);

  private:
    /** Direct CNF expansion of an XOR over ≤ chunk-size literals. */
    bool addXorDirect(const std::vector<Lit> &lits, bool rhs);

    Solver solver_;
};

} // namespace harp::sat

#endif // HARP_SAT_CNF_BUILDER_HH
