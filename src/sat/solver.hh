/**
 * @file
 * Conflict-driven clause-learning (CDCL) SAT solver.
 *
 * This is the repository's substitute for the paper's Z3 dependency (HARP
 * artifact, appendix A.4): it powers BEEP's data-pattern crafting queries
 * and cross-checks the exact at-risk enumeration in tests. Features:
 * two-literal watching, 1-UIP clause learning, VSIDS-style decaying
 * activities, phase saving, geometric restarts, and learnt-clause deletion.
 */

#ifndef HARP_SAT_SOLVER_HH
#define HARP_SAT_SOLVER_HH

#include <cstdint>
#include <vector>

#include "sat/types.hh"

namespace harp::sat {

/**
 * CDCL SAT solver over CNF formulas.
 *
 * Usage: create variables with newVar(), add clauses with addClause(),
 * query with solve(), then read the model with modelValue().
 */
class Solver
{
  public:
    Solver();

    /** Create a fresh variable and return its index. */
    Var newVar();

    std::size_t numVars() const { return numVars_; }
    std::size_t numClauses() const { return numProblemClauses_; }

    /**
     * Add a problem clause.
     *
     * Tautologies are dropped, duplicate literals removed. Adding an empty
     * clause (or a clause falsified at level 0) makes the formula UNSAT.
     *
     * @return false iff the formula is already known UNSAT.
     */
    bool addClause(Clause clause);

    /** Convenience overloads for short clauses. */
    bool addClause(Lit a);
    bool addClause(Lit a, Lit b);
    bool addClause(Lit a, Lit b, Lit c);

    /**
     * Decide satisfiability.
     *
     * @param conflict_budget Abort with Unknown after this many conflicts;
     *        0 means unlimited.
     */
    SolveResult solve(std::uint64_t conflict_budget = 0);

    /**
     * Decide satisfiability under assumptions (temporary unit literals).
     * The assumptions are not added to the formula.
     */
    SolveResult solve(const std::vector<Lit> &assumptions,
                      std::uint64_t conflict_budget = 0);

    /** Value of @p v in the most recent satisfying model. */
    bool modelValue(Var v) const;

    /** Total conflicts encountered over the solver's lifetime. */
    std::uint64_t conflicts() const { return stats_.conflicts; }
    /** Total decisions made over the solver's lifetime. */
    std::uint64_t decisions() const { return stats_.decisions; }
    /** Total literal propagations over the solver's lifetime. */
    std::uint64_t propagations() const { return stats_.propagations; }

  private:
    struct Watcher
    {
        std::uint32_t clause;
        Lit blocker;
    };

    struct ClauseData
    {
        std::vector<Lit> lits;
        double activity = 0.0;
        bool learnt = false;
        bool deleted = false;
    };

    struct Stats
    {
        std::uint64_t conflicts = 0;
        std::uint64_t decisions = 0;
        std::uint64_t propagations = 0;
        std::uint64_t restarts = 0;
    };

    static constexpr std::uint32_t invalidClause = ~std::uint32_t{0};

    LBool value(Lit l) const;
    LBool value(Var v) const;

    void attachClause(std::uint32_t ci);
    void enqueue(Lit l, std::uint32_t reason);
    std::uint32_t propagate();
    void analyze(std::uint32_t confl, Clause &out_learnt, int &out_btlevel);
    void backtrack(int level);
    void bumpVarActivity(Var v);
    void decayVarActivity();
    void bumpClauseActivity(std::uint32_t ci);
    void reduceDb();
    Lit pickBranchLit();
    int currentLevel() const
    {
        return static_cast<int>(trailLimits_.size());
    }

    std::size_t numVars_ = 0;
    std::size_t numProblemClauses_ = 0;
    bool okay_ = true;

    std::vector<ClauseData> clauses_;
    std::vector<std::vector<Watcher>> watches_;

    std::vector<LBool> assigns_;
    std::vector<bool> savedPhase_;
    std::vector<int> levels_;
    std::vector<std::uint32_t> reasons_;

    std::vector<Lit> trail_;
    std::vector<std::size_t> trailLimits_;
    std::size_t propagateHead_ = 0;

    std::vector<double> varActivity_;
    double varActivityInc_ = 1.0;
    double clauseActivityInc_ = 1.0;

    std::vector<bool> seen_;
    Stats stats_;
};

} // namespace harp::sat

#endif // HARP_SAT_SOLVER_HH
