#include "sat/cnf_builder.hh"

#include <cassert>

namespace harp::sat {

namespace {

/** Largest XOR expanded directly to CNF (2^(k-1) clauses ≤ 16). */
constexpr std::size_t xorChunk = 5;

} // namespace

std::vector<Var>
CnfBuilder::newVars(std::size_t n)
{
    std::vector<Var> vars;
    vars.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        vars.push_back(solver_.newVar());
    return vars;
}

bool
CnfBuilder::addXorDirect(const std::vector<Lit> &lits, bool rhs)
{
    assert(!lits.empty() && lits.size() <= xorChunk + 1);
    // Forbid every assignment whose parity differs from rhs: for each
    // sign vector with even numbers of negations relative to the target,
    // emit the blocking clause.
    const std::size_t n = lits.size();
    bool ok = true;
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
        // The assignment encoded by `mask` sets lits[i] true iff bit i set.
        int parity = 0;
        for (std::size_t i = 0; i < n; ++i)
            parity ^= static_cast<int>((mask >> i) & 1);
        if (parity == static_cast<int>(rhs))
            continue; // satisfying assignment, keep it
        Clause blocking;
        blocking.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const bool assigned_true = ((mask >> i) & 1) != 0;
            blocking.push_back(assigned_true ? ~lits[i] : lits[i]);
        }
        ok = solver_.addClause(std::move(blocking)) && ok;
    }
    return ok;
}

bool
CnfBuilder::addXor(const std::vector<Lit> &lits, bool rhs)
{
    if (lits.empty()) {
        // Empty XOR sums to 0; rhs == 1 is a contradiction.
        if (rhs)
            return solver_.addClause(Clause{});
        return true;
    }
    if (lits.size() <= xorChunk)
        return addXorDirect(lits, rhs);

    // Chunk: t = XOR(first chunk), then recurse on {t, rest...}.
    std::vector<Lit> chunk(lits.begin(),
                           lits.begin() + static_cast<long>(xorChunk - 1));
    const Var t = solver_.newVar();
    chunk.push_back(Lit::make(t, true));
    // chunkXor ⊕ t = 0  ⇔  t = XOR(chunk)
    if (!addXorDirect(chunk, false))
        return false;
    std::vector<Lit> rest;
    rest.push_back(Lit::make(t, true));
    rest.insert(rest.end(),
                lits.begin() + static_cast<long>(xorChunk - 1), lits.end());
    return addXor(rest, rhs);
}

bool
CnfBuilder::addAtMostOne(const std::vector<Lit> &lits)
{
    bool ok = true;
    for (std::size_t i = 0; i < lits.size(); ++i)
        for (std::size_t j = i + 1; j < lits.size(); ++j)
            ok = solver_.addClause(~lits[i], ~lits[j]) && ok;
    return ok;
}

bool
CnfBuilder::addExactlyOne(const std::vector<Lit> &lits)
{
    bool ok = solver_.addClause(Clause(lits));
    return addAtMostOne(lits) && ok;
}

bool
CnfBuilder::addImplies(Lit a, Lit b)
{
    return solver_.addClause(~a, b);
}

Var
CnfBuilder::defineAnd(Lit a, Lit b)
{
    return defineAnd(std::vector<Lit>{a, b});
}

Var
CnfBuilder::defineAnd(const std::vector<Lit> &lits)
{
    const Var y = solver_.newVar();
    const Lit ly = Lit::make(y, true);
    // y → each literal
    for (const Lit l : lits)
        solver_.addClause(~ly, l);
    // all literals → y
    Clause back;
    back.reserve(lits.size() + 1);
    for (const Lit l : lits)
        back.push_back(~l);
    back.push_back(ly);
    solver_.addClause(std::move(back));
    return y;
}

Var
CnfBuilder::defineOr(const std::vector<Lit> &lits)
{
    const Var y = solver_.newVar();
    const Lit ly = Lit::make(y, true);
    // each literal → y
    for (const Lit l : lits)
        solver_.addClause(~l, ly);
    // y → some literal
    Clause fwd;
    fwd.reserve(lits.size() + 1);
    fwd.push_back(~ly);
    for (const Lit l : lits)
        fwd.push_back(l);
    solver_.addClause(std::move(fwd));
    return y;
}

} // namespace harp::sat
