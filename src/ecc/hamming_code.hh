/**
 * @file
 * Systematic single-error-correcting (SEC) Hamming codes, the on-die ECC
 * used by the paper's evaluation ((71,64) and (136,128) configurations;
 * HARP section 2.5).
 *
 * Codeword layout: positions [0, k) are the systematically-encoded data
 * bits, positions [k, k+p) are the parity-check bits. The parity-check
 * matrix H therefore has the form [P | I_p], and encoding computes
 * q = P·d.
 */

#ifndef HARP_ECC_HAMMING_CODE_HH
#define HARP_ECC_HAMMING_CODE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "gf2/bit_matrix.hh"
#include "gf2/bit_vector.hh"

namespace harp::ecc {

/** Outcome of one syndrome-decode operation. */
struct DecodeResult
{
    /** Post-correction dataword d' (length k). */
    gf2::BitVector dataword;
    /** Codeword position the decoder flipped, if any (data or parity). */
    std::optional<std::size_t> correctedPosition;
    /**
     * True when the syndrome was nonzero but matched no column — possible
     * only for shortened codes, where the decoder performs no correction.
     */
    bool detectedUncorrectable = false;
    /** Raw syndrome value for diagnostics/analysis. */
    std::uint32_t syndrome = 0;
};

/**
 * A systematic SEC Hamming code with configurable parity-column layout.
 *
 * Supports the design degrees of freedom the paper discusses (section
 * 2.5.2): any arrangement of distinct, nonzero, non-identity columns for
 * the data bits defines a valid code, and different arrangements yield
 * different miscorrection behaviour.
 */
class HammingCode
{
  public:
    /**
     * Construct from explicit data parity-columns.
     *
     * @param k         Number of data bits.
     * @param data_cols k distinct p-bit column values, each of weight ≥ 2.
     */
    HammingCode(std::size_t k, std::vector<std::uint32_t> data_cols);

    /**
     * Generate a uniformly random systematic SEC Hamming code, mirroring
     * the paper's randomly-generated parity-check matrices (section 7.1.2).
     *
     * @param k   Dataword length (e.g.\ 64 or 128).
     * @param rng Random source; determines the column arrangement.
     */
    static HammingCode randomSec(std::size_t k, common::Xoshiro256 &rng);

    /** Minimal parity-bit count for a SEC code over @p k data bits. */
    static std::size_t minParityBits(std::size_t k);

    std::size_t k() const { return k_; }
    std::size_t p() const { return p_; }
    /** Codeword length n = k + p. */
    std::size_t n() const { return k_ + p_; }

    /** Parity column of data bit @p i (p-bit value). */
    std::uint32_t dataColumn(std::size_t i) const { return dataCols_[i]; }

    /** Parity-check column of codeword position @p pos (data or parity). */
    std::uint32_t codewordColumn(std::size_t pos) const;

    /** True iff @p pos indexes a data bit (systematic region). */
    bool isDataPosition(std::size_t pos) const { return pos < k_; }

    /** Encode dataword (length k) into codeword (length n). */
    gf2::BitVector encode(const gf2::BitVector &dataword) const;

    /** Allocation-free encode into a pre-sized codeword (length n). */
    void encodeInto(const gf2::BitVector &dataword,
                    gf2::BitVector &codeword) const;

    /**
     * Allocation-free post-correction dataword of @p received into
     * @p data_out (pre-sized k): exactly decode().dataword — only
     * data-position corrections change the dataword; parity
     * corrections and unmatched (shortened-code) syndromes do not.
     */
    void decodeDataInto(const gf2::BitVector &received,
                        gf2::BitVector &data_out) const;

    /** Syndrome of a (possibly erroneous) codeword. */
    std::uint32_t syndrome(const gf2::BitVector &codeword) const;

    /** Syndrome of an error pattern given by set positions. */
    std::uint32_t
    syndromeOfErrors(const std::vector<std::size_t> &positions) const;

    /** Codeword position a syndrome corrects, if it matches any column. */
    std::optional<std::size_t>
    syndromeToPosition(std::uint32_t syndrome) const;

    /** Full syndrome decode of a (possibly erroneous) codeword. */
    DecodeResult decode(const gf2::BitVector &codeword) const;

    /** Parity-check matrix H = [P | I_p] as a p × n BitMatrix. */
    gf2::BitMatrix parityCheckMatrix() const;

    /** Generator matrix G = [I_k ; P] as an n × k BitMatrix (c = G·d). */
    gf2::BitMatrix generatorMatrix() const;

    /**
     * Parity row @p j as a length-k vector over the dataword: parity bit j
     * of the codeword equals row · d. Used by analyses that treat cell
     * charge states as affine functions of the dataword.
     */
    const gf2::BitVector &parityRow(std::size_t j) const
    {
        return parityRows_[j];
    }

    bool operator==(const HammingCode &other) const
    {
        return k_ == other.k_ && dataCols_ == other.dataCols_;
    }

  private:
    std::size_t k_;
    std::size_t p_;
    std::vector<std::uint32_t> dataCols_;
    /** parityRows_[j].get(i) == bit j of dataCols_[i]. */
    std::vector<gf2::BitVector> parityRows_;
    /** syndrome (< 2^p) -> codeword position, or -1 when unmatched. */
    std::vector<std::int32_t> syndromeMap_;
};

} // namespace harp::ecc

#endif // HARP_ECC_HAMMING_CODE_HH
