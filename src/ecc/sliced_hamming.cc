#include "ecc/sliced_hamming.hh"

#include <cassert>
#include <stdexcept>

namespace harp::ecc {

SlicedHammingCode::SlicedHammingCode(
    const std::vector<const HammingCode *> &codes)
{
    build(codes);
}

SlicedHammingCode::SlicedHammingCode(const HammingCode &code,
                                     std::size_t lanes)
{
    build(std::vector<const HammingCode *>(lanes, &code));
}

void
SlicedHammingCode::build(const std::vector<const HammingCode *> &codes)
{
    if (codes.empty() || codes.size() > gf2::BitSlice64::laneCount)
        throw std::invalid_argument("SlicedHammingCode: need 1..64 lanes");
    k_ = codes[0]->k();
    p_ = codes[0]->p();
    lanes_ = codes.size();
    assert(p_ <= 32); // syndrome scratch arrays are sized for p <= 32
    for (const HammingCode *code : codes)
        if (code->k() != k_)
            throw std::invalid_argument(
                "SlicedHammingCode: lanes must share k");

    columnBits_.assign(k_ * p_, 0);
    for (std::size_t w = 0; w < lanes_; ++w) {
        for (std::size_t i = 0; i < k_; ++i) {
            const std::uint32_t col = codes[w]->dataColumn(i);
            for (std::size_t j = 0; j < p_; ++j)
                if ((col >> j) & 1)
                    columnBits_[i * p_ + j] |= std::uint64_t{1} << w;
        }
    }
}

void
SlicedHammingCode::encode(const gf2::BitSlice64 &data,
                          gf2::BitSlice64 &codeword) const
{
    assert(data.positions() == k_ && codeword.positions() == n());
    // Parity lanes accumulate in a local array: read-modify-writes
    // through the codeword's heap storage would force the compiler to
    // assume aliasing with the data lanes and spill the accumulators
    // every iteration.
    std::uint64_t parity[32] = {};
    assert(p_ <= 32);
    for (std::size_t i = 0; i < k_; ++i) {
        const std::uint64_t d = data.lane(i);
        codeword.lane(i) = d;
        const std::uint64_t *col = &columnBits_[i * p_];
        for (std::size_t j = 0; j < p_; ++j)
            parity[j] ^= d & col[j];
    }
    for (std::size_t j = 0; j < p_; ++j)
        codeword.lane(k_ + j) = parity[j];
}

void
SlicedHammingCode::syndromes(const gf2::BitSlice64 &received,
                             std::uint64_t *out) const
{
    assert(received.positions() >= n());
    for (std::size_t j = 0; j < p_; ++j)
        out[j] = received.lane(k_ + j);
    for (std::size_t i = 0; i < k_; ++i) {
        const std::uint64_t r = received.lane(i);
        const std::uint64_t *col = &columnBits_[i * p_];
        for (std::size_t j = 0; j < p_; ++j)
            out[j] ^= r & col[j];
    }
}

std::uint64_t
SlicedHammingCode::correctionMasks(const std::uint64_t *s,
                                   gf2::BitSlice64 &match_out) const
{
    assert(match_out.positions() == k_);
    std::uint64_t matched_any = 0;
    for (std::size_t i = 0; i < k_; ++i) {
        const std::uint64_t *col = &columnBits_[i * p_];
        // Lanes whose syndrome equals this lane's column i. Data
        // columns have weight >= 2, so a zero syndrome can never match
        // and needs no separate exclusion.
        std::uint64_t match = ~std::uint64_t{0};
        for (std::size_t j = 0; j < p_; ++j)
            match &= ~(s[j] ^ col[j]);
        match_out.lane(i) = match;
        matched_any |= match;
    }
    // Parity columns are the unit vectors e_j, identical in every lane.
    for (std::size_t j = 0; j < p_; ++j) {
        std::uint64_t match = s[j];
        for (std::size_t j2 = 0; j2 < p_; ++j2)
            if (j2 != j)
                match &= ~s[j2];
        matched_any |= match;
    }
    return matched_any;
}

void
SlicedHammingCode::decodeData(const gf2::BitSlice64 &received,
                              gf2::BitSlice64 &data_out) const
{
    assert(received.positions() >= n());
    assert(data_out.positions() == k_);
    std::uint64_t s[32];
    syndromes(received, s);
    for (std::size_t i = 0; i < k_; ++i) {
        const std::uint64_t *col = &columnBits_[i * p_];
        std::uint64_t match = ~std::uint64_t{0};
        for (std::size_t j = 0; j < p_; ++j)
            match &= ~(s[j] ^ col[j]);
        data_out.lane(i) = received.lane(i) ^ match;
    }
}

SlicedExtendedHammingCode::SlicedExtendedHammingCode(
    const std::vector<const ExtendedHammingCode *> &codes)
    : inner_([&codes] {
          std::vector<const HammingCode *> inner;
          inner.reserve(codes.size());
          for (const ExtendedHammingCode *code : codes)
              inner.push_back(&code->inner());
          return SlicedHammingCode(inner);
      }())
{
}

void
SlicedExtendedHammingCode::encode(const gf2::BitSlice64 &data,
                                  gf2::BitSlice64 &codeword) const
{
    assert(codeword.positions() == n());
    inner_.encode(data, codeword);
    std::uint64_t overall = 0;
    for (std::size_t pos = 0; pos < inner_.n(); ++pos)
        overall ^= codeword.lane(pos);
    codeword.lane(n() - 1) = overall;
}

void
SlicedExtendedHammingCode::decodeData(const gf2::BitSlice64 &received,
                                      gf2::BitSlice64 &data_out) const
{
    std::uint64_t corrected = 0, detected = 0;
    decode(received, data_out, corrected, detected);
}

void
SlicedExtendedHammingCode::decode(const gf2::BitSlice64 &received,
                                  gf2::BitSlice64 &data_out,
                                  std::uint64_t &corrected_out,
                                  std::uint64_t &detected_out) const
{
    assert(received.positions() == n());
    assert(data_out.positions() == k());

    std::uint64_t s[32];
    inner_.syndromes(received, s);
    std::uint64_t s_nonzero = 0;
    for (std::size_t j = 0; j < inner_.p(); ++j)
        s_nonzero |= s[j];

    // Parity of the whole received codeword: 1 = odd error count.
    std::uint64_t overall = 0;
    for (std::size_t pos = 0; pos < n(); ++pos)
        overall ^= received.lane(pos);

    gf2::BitSlice64 match(k());
    const std::uint64_t matched_any = inner_.correctionMasks(s, match);

    // Odd parity: a single error; correctable iff the syndrome is zero
    // (the overall bit itself) or matches some column. Even parity with
    // a nonzero syndrome: a double error — detected, never corrected.
    corrected_out = overall & (~s_nonzero | matched_any);
    detected_out = (~overall & s_nonzero) | (overall & s_nonzero & ~matched_any);

    for (std::size_t i = 0; i < k(); ++i)
        data_out.lane(i) = received.lane(i) ^ (overall & match.lane(i));
}

} // namespace harp::ecc
