#include "ecc/sliced_hamming.hh"

#include <cassert>
#include <stdexcept>

namespace harp::ecc {

template <std::size_t W>
SlicedHammingCodeW<W>::SlicedHammingCodeW(
    const std::vector<const HammingCode *> &codes)
{
    build(codes);
}

template <std::size_t W>
SlicedHammingCodeW<W>::SlicedHammingCodeW(const HammingCode &code,
                                          std::size_t lanes)
{
    build(std::vector<const HammingCode *>(lanes, &code));
}

template <std::size_t W>
void
SlicedHammingCodeW<W>::build(const std::vector<const HammingCode *> &codes)
{
    if (codes.empty() || codes.size() > gf2::BitSliceW<W>::laneCount)
        throw std::invalid_argument(
            "SlicedHammingCode: lane count out of range");
    k_ = codes[0]->k();
    p_ = codes[0]->p();
    lanes_ = codes.size();
    assert(p_ <= 32); // syndrome scratch arrays are sized for p <= 32
    for (const HammingCode *code : codes)
        if (code->k() != k_)
            throw std::invalid_argument(
                "SlicedHammingCode: lanes must share k");

    columnBits_.assign(k_ * p_, Lane{});
    for (std::size_t w = 0; w < lanes_; ++w) {
        for (std::size_t i = 0; i < k_; ++i) {
            const std::uint32_t col = codes[w]->dataColumn(i);
            for (std::size_t j = 0; j < p_; ++j)
                if ((col >> j) & 1)
                    gf2::laneSetBit(columnBits_[i * p_ + j], w);
        }
    }
}

template <std::size_t W>
void
SlicedHammingCodeW<W>::encode(const gf2::BitSliceW<W> &data,
                              gf2::BitSliceW<W> &codeword) const
{
    assert(data.positions() == k_ && codeword.positions() == n());
    // Parity lanes accumulate in a local array: read-modify-writes
    // through the codeword's heap storage would force the compiler to
    // assume aliasing with the data lanes and spill the accumulators
    // every iteration.
    Lane parity[32] = {};
    assert(p_ <= 32);
    for (std::size_t i = 0; i < k_; ++i) {
        const Lane d = data.lane(i);
        codeword.lane(i) = d;
        const Lane *col = &columnBits_[i * p_];
        for (std::size_t j = 0; j < p_; ++j)
            parity[j] ^= d & col[j];
    }
    for (std::size_t j = 0; j < p_; ++j)
        codeword.lane(k_ + j) = parity[j];
}

template <std::size_t W>
void
SlicedHammingCodeW<W>::syndromes(const gf2::BitSliceW<W> &received,
                                 Lane *out) const
{
    assert(received.positions() >= n());
    for (std::size_t j = 0; j < p_; ++j)
        out[j] = received.lane(k_ + j);
    for (std::size_t i = 0; i < k_; ++i) {
        const Lane r = received.lane(i);
        const Lane *col = &columnBits_[i * p_];
        for (std::size_t j = 0; j < p_; ++j)
            out[j] ^= r & col[j];
    }
}

template <std::size_t W>
typename SlicedHammingCodeW<W>::Lane
SlicedHammingCodeW<W>::correctionMasks(const Lane *s,
                                       gf2::BitSliceW<W> &match_out) const
{
    assert(match_out.positions() == k_);
    Lane matched_any{};
    for (std::size_t i = 0; i < k_; ++i) {
        const Lane *col = &columnBits_[i * p_];
        // Lanes whose syndrome equals this lane's column i. Data
        // columns have weight >= 2, so a zero syndrome can never match
        // and needs no separate exclusion.
        Lane match = gf2::laneOnes<Lane>();
        for (std::size_t j = 0; j < p_; ++j)
            match &= ~(s[j] ^ col[j]);
        match_out.lane(i) = match;
        matched_any |= match;
    }
    // Parity columns are the unit vectors e_j, identical in every lane.
    for (std::size_t j = 0; j < p_; ++j) {
        Lane match = s[j];
        for (std::size_t j2 = 0; j2 < p_; ++j2)
            if (j2 != j)
                match &= ~s[j2];
        matched_any |= match;
    }
    return matched_any;
}

template <std::size_t W>
void
SlicedHammingCodeW<W>::decodeData(const gf2::BitSliceW<W> &received,
                                  gf2::BitSliceW<W> &data_out) const
{
    assert(received.positions() >= n());
    assert(data_out.positions() == k_);
    Lane s[32];
    syndromes(received, s);
    for (std::size_t i = 0; i < k_; ++i) {
        const Lane *col = &columnBits_[i * p_];
        Lane match = gf2::laneOnes<Lane>();
        for (std::size_t j = 0; j < p_; ++j)
            match &= ~(s[j] ^ col[j]);
        data_out.lane(i) = received.lane(i) ^ match;
    }
}

template <std::size_t W>
SlicedExtendedHammingCodeW<W>::SlicedExtendedHammingCodeW(
    const std::vector<const ExtendedHammingCode *> &codes)
    : inner_([&codes] {
          std::vector<const HammingCode *> inner;
          inner.reserve(codes.size());
          for (const ExtendedHammingCode *code : codes)
              inner.push_back(&code->inner());
          return SlicedHammingCodeW<W>(inner);
      }())
{
}

template <std::size_t W>
void
SlicedExtendedHammingCodeW<W>::encode(const gf2::BitSliceW<W> &data,
                                      gf2::BitSliceW<W> &codeword) const
{
    assert(codeword.positions() == n());
    inner_.encode(data, codeword);
    Lane overall{};
    for (std::size_t pos = 0; pos < inner_.n(); ++pos)
        overall ^= codeword.lane(pos);
    codeword.lane(n() - 1) = overall;
}

template <std::size_t W>
void
SlicedExtendedHammingCodeW<W>::decodeData(const gf2::BitSliceW<W> &received,
                                          gf2::BitSliceW<W> &data_out) const
{
    Lane corrected{}, detected{};
    decode(received, data_out, corrected, detected);
}

template <std::size_t W>
void
SlicedExtendedHammingCodeW<W>::decode(const gf2::BitSliceW<W> &received,
                                      gf2::BitSliceW<W> &data_out,
                                      Lane &corrected_out,
                                      Lane &detected_out) const
{
    assert(received.positions() == n());
    assert(data_out.positions() == k());

    Lane s[32];
    inner_.syndromes(received, s);
    Lane s_nonzero{};
    for (std::size_t j = 0; j < inner_.p(); ++j)
        s_nonzero |= s[j];

    // Parity of the whole received codeword: 1 = odd error count.
    Lane overall{};
    for (std::size_t pos = 0; pos < n(); ++pos)
        overall ^= received.lane(pos);

    gf2::BitSliceW<W> match(k());
    const Lane matched_any = inner_.correctionMasks(s, match);

    // Odd parity: a single error; correctable iff the syndrome is zero
    // (the overall bit itself) or matches some column. Even parity with
    // a nonzero syndrome: a double error — detected, never corrected.
    corrected_out = overall & (~s_nonzero | matched_any);
    detected_out = (~overall & s_nonzero) | (overall & s_nonzero & ~matched_any);

    for (std::size_t i = 0; i < k(); ++i)
        data_out.lane(i) = received.lane(i) ^ (overall & match.lane(i));
}

template class SlicedHammingCodeW<1>;
template class SlicedHammingCodeW<4>;
template class SlicedExtendedHammingCodeW<1>;
template class SlicedExtendedHammingCodeW<4>;

} // namespace harp::ecc
