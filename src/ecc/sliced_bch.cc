#include "ecc/sliced_bch.hh"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "common/bits.hh"

namespace harp::ecc {

template <std::size_t W>
SlicedBchCodeW<W>::SlicedBchCodeW(const std::vector<const BchCode *> &codes,
                                  bool prewarm,
                                  std::shared_ptr<SlicedBchMemo> memo)
    : code_([&codes]() -> const BchCode & {
          if (codes.empty() || codes[0] == nullptr)
              throw std::invalid_argument(
                  "SlicedBchCode: lane count out of range");
          return *codes[0];
      }()),
      memo_(memo ? std::move(memo) : std::make_shared<SlicedBchMemo>())
{
    build(codes, prewarm);
}

template <std::size_t W>
SlicedBchCodeW<W>::SlicedBchCodeW(const BchCode &code, std::size_t lanes,
                                  bool prewarm,
                                  std::shared_ptr<SlicedBchMemo> memo)
    : code_(code),
      memo_(memo ? std::move(memo) : std::make_shared<SlicedBchMemo>())
{
    build(std::vector<const BchCode *>(lanes, &code), prewarm);
}

template <std::size_t W>
void
SlicedBchCodeW<W>::build(const std::vector<const BchCode *> &codes,
                         bool prewarm)
{
    if (codes.empty() || codes.size() > gf2::BitSliceW<W>::laneCount)
        throw std::invalid_argument(
            "SlicedBchCode: lane count out of range");
    lanes_ = codes.size();
    for (const BchCode *code : codes)
        if (code->k() != code_.k() ||
            code->generatorPolynomial() != code_.generatorPolynomial())
            throw std::invalid_argument(
                "SlicedBchCode: lanes must share one code function "
                "(equal k and generator polynomial)");

    const std::size_t k = code_.k();
    const std::size_t p = code_.p();
    const std::size_t two_t = 2 * code_.t();
    const unsigned m = code_.field().m();
    syndromeBits_ = two_t * m;
    assert(syndromeBits_ <= 4 * 64); // t <= 8, m <= 14 -> <= 224 bits

    // Parity matrix, CSR over data positions: bit j of the parity word
    // is parityRow(j) . d.
    parityOff_.assign(k + 1, 0);
    parityIdx_.clear();
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < p; ++j)
            if (code_.parityRow(j).get(i))
                parityIdx_.push_back(static_cast<std::uint32_t>(j));
        parityOff_[i + 1] = static_cast<std::uint32_t>(parityIdx_.size());
    }

    // Packed syndrome matrix, CSR over codeword positions: an error at
    // position pos contributes alpha^((j+1) * coeff(pos)) to S_{j+1};
    // packed bit b = j*m + u is bit u of that field element.
    synOff_.assign(code_.n() + 1, 0);
    synIdx_.clear();
    for (std::size_t pos = 0; pos < code_.n(); ++pos) {
        const std::size_t c = code_.coefficientOf(pos);
        for (std::size_t j = 0; j < two_t; ++j) {
            const Gf2m::Element e = code_.field().alphaPow(
                static_cast<std::uint64_t>(j + 1) * c);
            for (unsigned u = 0; u < m; ++u)
                if ((e >> u) & 1)
                    synIdx_.push_back(
                        static_cast<std::uint32_t>(j * m + u));
        }
        synOff_[pos + 1] = static_cast<std::uint32_t>(synIdx_.size());
    }

    synScratch_.assign(syndromeBits_, Lane{});
    wordScratch_ = gf2::BitVector(code_.n());

    if (prewarm && !memo_->prewarmed())
        prewarmMemo();
}

template <std::size_t W>
void
SlicedBchCodeW<W>::prewarmMemo()
{
    const std::size_t n = code_.n();
    const std::size_t t = code_.t();

    // Entry count sum_{w=1..t} C(n, w); bail out beyond the cap before
    // enumerating anything.
    std::size_t total = 0;
    for (std::size_t w = 1; w <= t; ++w) {
        std::size_t choose = 1;
        for (std::size_t i = 0; i < w; ++i)
            choose = choose * (n - i) / (i + 1);
        total += choose;
        if (total > prewarmEntryCap)
            return;
    }
    memo_->reserve(total);

    // Depth-first enumeration of error-position subsets of size 1..t.
    // Every weight <= t pattern is corrected exactly (minimum distance
    // >= 2t+1), so its memo action is its own data-bit flips and its
    // syndrome is the XOR of the per-position packed-syndrome columns
    // — identical to what a scalar-decode fallback would memoize.
    MemoKey key;
    MemoAction action;
    const auto toggle = [&](std::size_t pos) {
        for (std::uint32_t s = synOff_[pos]; s < synOff_[pos + 1]; ++s)
            key.words[synIdx_[s] >> 6] ^=
                std::uint64_t{1} << (synIdx_[s] & 63);
    };
    // Subset weight is tracked separately from the data-flip count:
    // parity-position errors contribute to the syndrome but no flips.
    const auto recurse = [&](std::size_t first, std::size_t weight,
                             const auto &self) -> void {
        if (weight == t)
            return;
        for (std::size_t pos = first; pos < n; ++pos) {
            toggle(pos);
            const std::uint8_t saved = action.numFlips;
            if (pos < code_.k())
                action.flips[action.numFlips++] =
                    static_cast<std::uint16_t>(pos);
            memo_->insertOrGet(key, action);
            self(pos + 1, weight + 1, self);
            action.numFlips = saved;
            toggle(pos);
        }
    };
    recurse(0, 0, recurse);
    memo_->markPrewarmed();
}

template <std::size_t W>
void
SlicedBchCodeW<W>::encode(const gf2::BitSliceW<W> &data,
                          gf2::BitSliceW<W> &codeword) const
{
    const std::size_t k = code_.k();
    const std::size_t p = code_.p();
    assert(data.positions() == k && codeword.positions() == n());
    for (std::size_t j = 0; j < p; ++j)
        codeword.lane(k + j) = Lane{};
    for (std::size_t i = 0; i < k; ++i) {
        const Lane d = data.lane(i);
        codeword.lane(i) = d;
        if (!gf2::laneAny(d))
            continue;
        for (std::uint32_t r = parityOff_[i]; r < parityOff_[i + 1]; ++r)
            codeword.lane(k + parityIdx_[r]) ^= d;
    }
}

template <std::size_t W>
void
SlicedBchCodeW<W>::syndromes(const gf2::BitSliceW<W> &received,
                             Lane *out) const
{
    assert(received.positions() >= n());
    for (std::size_t b = 0; b < syndromeBits_; ++b)
        out[b] = Lane{};
    for (std::size_t pos = 0; pos < n(); ++pos) {
        const Lane r = received.lane(pos);
        if (!gf2::laneAny(r))
            continue;
        for (std::uint32_t s = synOff_[pos]; s < synOff_[pos + 1]; ++s)
            out[synIdx_[s]] ^= r;
    }
}

template <std::size_t W>
const typename SlicedBchCodeW<W>::MemoAction &
SlicedBchCodeW<W>::lookupAction(const MemoKey &key,
                                const gf2::BitSliceW<W> &received,
                                std::size_t lane) const
{
    if (const MemoAction *hit = memo_->find(key))
        return *hit;
    // Miss: reconstruct this lane's received word, run the scalar
    // decoder once, and memoize its action. Exact because BM + Chien
    // are pure syndrome decoding — the flips depend on the syndrome
    // alone, not on the rest of the received word — which also makes
    // racing workers memoize identical entries.
    for (std::size_t pos = 0; pos < n(); ++pos)
        wordScratch_.set(pos, received.get(pos, lane));
    code_.decodeInto(wordScratch_, decodeScratch_);
    MemoAction action;
    for (const std::size_t pos : decodeScratch_.correctedPositions) {
        if (pos < code_.k()) {
            assert(action.numFlips < action.flips.size());
            action.flips[action.numFlips++] =
                static_cast<std::uint16_t>(pos);
        }
    }
    return memo_->insertOrGet(key, action);
}

template <std::size_t W>
void
SlicedBchCodeW<W>::decodeData(const gf2::BitSliceW<W> &received,
                              gf2::BitSliceW<W> &data_out) const
{
    const std::size_t k = code_.k();
    assert(received.positions() >= n());
    assert(data_out.positions() == k);

    syndromes(received, synScratch_.data());
    for (std::size_t i = 0; i < k; ++i)
        data_out.lane(i) = received.lane(i);

    // Lanes beyond lanes_ may hold unspecified bits (ragged tails);
    // never decode them.
    const Lane live_mask = gf2::laneMaskOf<Lane>(lanes_);
    Lane nonzero{};
    for (std::size_t b = 0; b < syndromeBits_; ++b)
        nonzero |= synScratch_[b];
    nonzero &= live_mask;
    if (!gf2::laneAny(nonzero))
        return; // every lane clean: zero syndrome decodes to no flips

    // Resolve erroneous lanes one 64-lane sub-word at a time: extract
    // each lane's packed syndrome key with one 64x64 transpose per 64
    // packed bits (t <= 4 with m <= 8 needs exactly one), then walk the
    // set bits of that sub-word's pending mask.
    const std::size_t blocks = (syndromeBits_ + 63) / 64;
    for (std::size_t sub = 0; sub < W; ++sub) {
        std::uint64_t pending = gf2::laneWord(nonzero, sub);
        if (pending == 0)
            continue;
        for (std::size_t block = 0; block < blocks; ++block) {
            std::array<std::uint64_t, 64> &tmp = laneKeyScratch_[block];
            const std::size_t base = block * 64;
            const std::size_t live =
                std::min<std::size_t>(64, syndromeBits_ - base);
            for (std::size_t r = 0; r < live; ++r)
                tmp[r] = gf2::laneWord(synScratch_[base + r], sub);
            for (std::size_t r = live; r < 64; ++r)
                tmp[r] = 0;
            gf2::transpose64x64(tmp.data());
        }

        const std::size_t laneBase = sub * 64;
        while (pending != 0) {
            const auto sublane = static_cast<std::size_t>(
                std::countr_zero(pending));
            pending &= pending - 1;
            MemoKey key;
            for (std::size_t block = 0; block < blocks; ++block)
                key.words[block] = laneKeyScratch_[block][sublane];
            const MemoAction &action =
                lookupAction(key, received, laneBase + sublane);
            const std::uint64_t bit = std::uint64_t{1} << sublane;
            for (std::uint8_t f = 0; f < action.numFlips; ++f)
                gf2::laneWordRef(data_out.lane(action.flips[f]), sub) ^= bit;
        }
    }
}

template class SlicedBchCodeW<1>;
template class SlicedBchCodeW<4>;

} // namespace harp::ecc
