#include "ecc/extended_hamming_code.hh"

#include <cassert>

namespace harp::ecc {

ExtendedHammingCode::ExtendedHammingCode(HammingCode inner)
    : inner_(std::move(inner))
{
}

ExtendedHammingCode
ExtendedHammingCode::randomSecDed(std::size_t k, common::Xoshiro256 &rng)
{
    return ExtendedHammingCode(HammingCode::randomSec(k, rng));
}

gf2::BitVector
ExtendedHammingCode::encode(const gf2::BitVector &dataword) const
{
    const gf2::BitVector inner_cw = inner_.encode(dataword);
    gf2::BitVector codeword(n());
    bool overall = false;
    for (std::size_t i = 0; i < inner_cw.size(); ++i) {
        const bool bit = inner_cw.get(i);
        codeword.set(i, bit);
        overall ^= bit;
    }
    codeword.set(n() - 1, overall);
    return codeword;
}

SecondaryDecodeResult
ExtendedHammingCode::decode(const gf2::BitVector &codeword) const
{
    assert(codeword.size() == n());
    SecondaryDecodeResult result;

    const gf2::BitVector inner_cw = codeword.slice(0, inner_.n());
    const std::uint32_t s = inner_.syndrome(inner_cw);
    bool overall = codeword.get(n() - 1);
    for (std::size_t i = 0; i < inner_.n(); ++i)
        overall ^= inner_cw.get(i);
    // `overall` is now the parity of the whole received codeword: 1 means
    // an odd number of bit errors occurred.

    if (s == 0 && !overall) {
        result.status = SecondaryDecodeStatus::NoError;
        result.dataword = inner_cw.slice(0, inner_.k());
        return result;
    }

    if (overall) {
        // Odd error count: assume a single error (the SECDED guarantee).
        if (s == 0) {
            // The overall parity bit itself flipped.
            result.status = SecondaryDecodeStatus::CorrectedSingle;
            result.correctedPosition = n() - 1;
            result.dataword = inner_cw.slice(0, inner_.k());
            return result;
        }
        const auto pos = inner_.syndromeToPosition(s);
        if (pos) {
            gf2::BitVector fixed = inner_cw;
            fixed.flip(*pos);
            result.status = SecondaryDecodeStatus::CorrectedSingle;
            result.correctedPosition = pos;
            result.dataword = fixed.slice(0, inner_.k());
            return result;
        }
        // Odd-weight error pattern matching no column: >= 3 errors.
        result.status = SecondaryDecodeStatus::DetectedUncorrectable;
        result.dataword = inner_cw.slice(0, inner_.k());
        return result;
    }

    // Even parity with nonzero syndrome: a double error. Detected, not
    // correctable.
    result.status = SecondaryDecodeStatus::DetectedUncorrectable;
    result.dataword = inner_cw.slice(0, inner_.k());
    return result;
}

} // namespace harp::ecc
