/**
 * @file
 * Bit-sliced evaluation of up to W*64 systematic SEC Hamming codes (and
 * their SECDED extensions) at once.
 *
 * Parity-check evaluation over GF(2) is pure linear algebra, so with
 * codewords held in transposed gf2::BitSliceW layout (one lane word per
 * codeword position, one lane *bit* per independent ECC word) the whole
 * encode/decode hot path becomes word-parallel:
 *
 *  - encoding: each parity lane is an XOR-reduction of data lanes,
 *    masked by which lanes' codes include that data column;
 *  - syndrome decoding: the corrected-position selection becomes an
 *    AND/XOR mask cascade (lane bit set iff that lane's syndrome equals
 *    that lane's parity column), with no per-word branching.
 *
 * Lanes may carry *different* codes of the same dataword length k,
 * which is what lets the sliced profiling engine batch both
 * coverage-style workloads (a block of words of one code) and
 * case-study-style workloads (distinct random codes per lane). Results
 * are bit-identical to the scalar HammingCode/ExtendedHammingCode paths
 * at every width; W=4 retires four 64-lane sub-words per lane-op via
 * the auto-vectorized gf2::LaneVec arithmetic.
 */

#ifndef HARP_ECC_SLICED_HAMMING_HH
#define HARP_ECC_SLICED_HAMMING_HH

#include <cstdint>
#include <vector>

#include "ecc/extended_hamming_code.hh"
#include "ecc/hamming_code.hh"
#include "ecc/sliced_code.hh"
#include "gf2/bit_slice.hh"
#include "gf2/lane.hh"

namespace harp::ecc {

/**
 * Up to W*64 SEC Hamming codes evaluated lane-parallel.
 *
 * All lanes must share the dataword length k (and therefore the parity
 * count p); the parity-column *arrangements* may differ per lane.
 */
template <std::size_t W>
class SlicedHammingCodeW final : public SlicedCodeW<W>
{
  public:
    using Lane = gf2::LaneOf<W>;

    /**
     * Build from one code per lane (1..W*64 entries, equal k). The
     * codes are only read during construction; no references are
     * retained.
     */
    explicit SlicedHammingCodeW(const std::vector<const HammingCode *> &codes);

    /** Homogeneous convenience: the same code in @p lanes lanes. */
    SlicedHammingCodeW(const HammingCode &code, std::size_t lanes);

    std::size_t k() const override { return k_; }
    std::size_t p() const { return p_; }
    /** Codeword length n = k + p (identical across lanes). */
    std::size_t n() const override { return k_ + p_; }
    /** Number of live lanes. */
    std::size_t lanes() const override { return lanes_; }

    /**
     * Encode all lanes: @p data has k positions, @p codeword n
     * positions. Codeword positions [0,k) copy the data lanes,
     * positions [k,n) receive each lane's parity bits.
     */
    void encode(const gf2::BitSliceW<W> &data,
                gf2::BitSliceW<W> &codeword) const override;

    /**
     * Per-lane syndromes of a received codeword slice: @p out[j] gets
     * the lane mask of syndrome bit j (j < p()).
     */
    void syndromes(const gf2::BitSliceW<W> &received, Lane *out) const;

    /**
     * Per-data-position correction masks for precomputed syndrome
     * lanes @p s (from syndromes()): @p match_out (k positions) gets,
     * for each data position, the lanes whose syndrome equals that
     * lane's column there.
     *
     * @return Lane mask where the syndrome matched *any* codeword
     *         column (data or parity) — the correctable-single-error
     *         lanes among those with a nonzero syndrome.
     */
    Lane correctionMasks(const Lane *s, gf2::BitSliceW<W> &match_out) const;

    /**
     * Syndrome-decode all lanes to their post-correction *datawords*
     * (@p data_out has k positions). Matches HammingCode::decode
     * exactly on the data bits: a lane whose syndrome equals one of its
     * data columns gets that bit flipped; zero, parity-column and
     * unmatched (shortened-code) syndromes leave the data untouched.
     */
    void decodeData(const gf2::BitSliceW<W> &received,
                    gf2::BitSliceW<W> &data_out) const override;

  private:
    void build(const std::vector<const HammingCode *> &codes);

    std::size_t k_ = 0;
    std::size_t p_ = 0;
    std::size_t lanes_ = 0;
    /** columnBits_[i * p + j]: lanes whose data column i has bit j set. */
    std::vector<Lane> columnBits_;
};

/**
 * Up to W*64 SECDED (extended Hamming) codes evaluated lane-parallel,
 * mirroring ExtendedHammingCode::decode semantics per lane.
 */
template <std::size_t W>
class SlicedExtendedHammingCodeW final : public SlicedCodeW<W>
{
  public:
    using Lane = gf2::LaneOf<W>;

    /** Build from one code per lane (1..W*64 entries, equal k). */
    explicit SlicedExtendedHammingCodeW(
        const std::vector<const ExtendedHammingCode *> &codes);

    std::size_t k() const override { return inner_.k(); }
    /** Codeword length including the overall parity bit. */
    std::size_t n() const override { return inner_.n() + 1; }
    std::size_t lanes() const override { return inner_.lanes(); }

    /** Encode all lanes (@p data k positions, @p codeword n positions,
     *  the last being the overall parity bit). */
    void encode(const gf2::BitSliceW<W> &data,
                gf2::BitSliceW<W> &codeword) const override;

    /** SECDED decode to post-correction datawords alone (the
     *  SlicedCode view; detected-uncorrectable lanes keep the
     *  uncorrected data, as in the scalar decoder). */
    void decodeData(const gf2::BitSliceW<W> &received,
                    gf2::BitSliceW<W> &data_out) const override;

    /**
     * SECDED decode of all lanes.
     *
     * @param received       Received codewords (n positions).
     * @param data_out       Post-correction datawords (k positions);
     *                       for detected-uncorrectable lanes this is
     *                       the uncorrected data, as in the scalar
     *                       decoder.
     * @param corrected_out  Lane mask: single error corrected.
     * @param detected_out   Lane mask: uncorrectable (>= 2 errors)
     *                       detected.
     */
    void decode(const gf2::BitSliceW<W> &received,
                gf2::BitSliceW<W> &data_out, Lane &corrected_out,
                Lane &detected_out) const;

  private:
    SlicedHammingCodeW<W> inner_;
};

/** The historical 64-lane names. */
using SlicedHammingCode = SlicedHammingCodeW<1>;
using SlicedExtendedHammingCode = SlicedExtendedHammingCodeW<1>;
/** The wide 256-lane variants. */
using SlicedHammingCode256 = SlicedHammingCodeW<4>;
using SlicedExtendedHammingCode256 = SlicedExtendedHammingCodeW<4>;

extern template class SlicedHammingCodeW<1>;
extern template class SlicedHammingCodeW<4>;
extern template class SlicedExtendedHammingCodeW<1>;
extern template class SlicedExtendedHammingCodeW<4>;

} // namespace harp::ecc

#endif // HARP_ECC_SLICED_HAMMING_HH
