/**
 * @file
 * Binary extension field GF(2^m) arithmetic, 2 <= m <= 16.
 *
 * Substrate for the double-error-correcting BCH on-die ECC extension
 * (HARP section 2.5.1 footnote 9 / section 6.3.2 discuss stronger on-die
 * codes as future work). Elements are represented as m-bit polynomial
 * coefficients over a fixed primitive polynomial; multiplication and
 * inversion go through log/antilog tables built at construction.
 */

#ifndef HARP_ECC_GF2M_HH
#define HARP_ECC_GF2M_HH

#include <cstdint>
#include <vector>

namespace harp::ecc {

/**
 * The finite field GF(2^m) with generator alpha (a primitive element).
 *
 * Addition is XOR; multiplication/division/power use discrete-log
 * tables. The zero element has no logarithm; operations handle it
 * explicitly.
 */
class Gf2m
{
  public:
    using Element = std::uint32_t;

    /** Construct GF(2^m) over a built-in primitive polynomial. */
    explicit Gf2m(unsigned m);

    unsigned m() const { return m_; }
    /** Field size 2^m. */
    std::uint32_t size() const { return std::uint32_t{1} << m_; }
    /** Multiplicative order 2^m - 1. */
    std::uint32_t order() const { return size() - 1; }

    /** The primitive element alpha (polynomial "x"). */
    Element alpha() const { return 2; }

    /** alpha^e (e taken mod the multiplicative order; e may exceed it). */
    Element alphaPow(std::uint64_t e) const;

    /** Discrete log base alpha of nonzero @p x. */
    std::uint32_t log(Element x) const;

    Element add(Element a, Element b) const { return a ^ b; }
    Element multiply(Element a, Element b) const;
    /** Multiplicative inverse of nonzero @p a. */
    Element inverse(Element a) const;
    /** a / b with nonzero @p b. */
    Element divide(Element a, Element b) const;
    /** a^e with 0^0 defined as 1. */
    Element power(Element a, std::uint64_t e) const;

    /** Trace map Tr(x) = x + x^2 + x^4 + ... + x^(2^(m-1)), in {0,1}. */
    Element trace(Element x) const;

    /**
     * Solve z^2 + z = c over the field (the half-trace method; used by
     * the closed-form double-error BCH decoder). A solution exists iff
     * Tr(c) == 0; the other solution is z + 1.
     *
     * @return One solution, or 0xFFFFFFFF when none exists.
     */
    Element solveQuadratic(Element c) const;

    /** The primitive polynomial used for this m (bit i = coeff of x^i). */
    std::uint32_t primitivePolynomial() const { return poly_; }

  private:
    unsigned m_;
    std::uint32_t poly_;
    std::vector<Element> antilog_; ///< antilog_[i] = alpha^i
    std::vector<std::uint32_t> logTable_;
};

} // namespace harp::ecc

#endif // HARP_ECC_GF2M_HH
