/**
 * @file
 * General t-error-correcting shortened systematic binary BCH code with a
 * Berlekamp-Massey + Chien-search decoder.
 *
 * Complements the closed-form t=2 decoder (BchDecCode) for the paper's
 * "significantly more complex on-die ECC" discussion (HARP section
 * 6.3.2): the secondary-ECC strength a system needs scales with the
 * on-die code's correction capability, and this class provides the
 * arbitrary-t codes to study that scaling.
 *
 * The decode hot path is allocation-free: syndromes come from a
 * precomputed per-coefficient alpha-power table, the Berlekamp-Massey
 * and Chien stages run on reusable member scratch, and decodeInto()
 * writes into a caller-owned result whose buffers persist across
 * calls. Because that scratch is per-instance, decoding the *same*
 * BchCode object from multiple threads requires external
 * synchronization — give each concurrently-driven word its own copy
 * (the class is cheaply copyable).
 */

#ifndef HARP_ECC_BCH_GENERAL_HH
#define HARP_ECC_BCH_GENERAL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/gf2m.hh"
#include "gf2/bit_vector.hh"

namespace harp::ecc {

/** Outcome of one general-BCH decode. */
struct BchGeneralDecodeResult
{
    /** Post-correction dataword d' (length k). */
    gf2::BitVector dataword;
    /** Codeword positions flipped by the decoder (<= t, sorted). */
    std::vector<std::size_t> correctedPositions;
    /** True when the syndromes were inconsistent with <= t in-range
     *  errors; no correction is applied. */
    bool detectedUncorrectable = false;
};

/**
 * Shortened systematic BCH code correcting up to @p t errors.
 */
class BchCode
{
  public:
    /**
     * @param k Dataword length.
     * @param t Correction capability (1 <= t <= 8). The field degree m
     *          is the smallest giving the shortened code room for the
     *          data plus the generator's parity bits.
     */
    BchCode(std::size_t k, std::size_t t);

    std::size_t k() const { return k_; }
    std::size_t p() const { return parityBits_; }
    std::size_t n() const { return k_ + parityBits_; }
    std::size_t t() const { return t_; }

    const Gf2m &field() const { return field_; }

    bool isDataPosition(std::size_t pos) const { return pos < k_; }

    /** Encode dataword (length k) into codeword (length n). */
    gf2::BitVector encode(const gf2::BitVector &dataword) const;

    /** Allocation-free encode into a pre-sized codeword (length n). */
    void encodeInto(const gf2::BitVector &dataword,
                    gf2::BitVector &codeword) const;

    /** Full decode: syndromes -> Berlekamp-Massey -> Chien search. */
    BchGeneralDecodeResult decode(const gf2::BitVector &codeword) const;

    /**
     * Allocation-free decode into a reusable result object: after the
     * first call with the same @p result, steady state performs no
     * heap allocation (scratch lives in the code instance and the
     * result's buffers are reused). Not thread-safe on a shared
     * instance — see the file comment.
     */
    void decodeInto(const gf2::BitVector &codeword,
                    BchGeneralDecodeResult &result) const;

    /** Post-correction data error positions of a raw error pattern. */
    std::vector<std::size_t>
    decodeErrorPattern(const std::vector<std::size_t> &error_positions)
        const;

    /** Parity bit @p j as a linear function of the dataword. */
    const gf2::BitVector &parityRow(std::size_t j) const
    {
        return parityRows_[j];
    }

    /** Generator polynomial g(x) as a GF(2) bitmask. */
    std::uint64_t generatorPolynomial() const { return generator_; }

    /**
     * Polynomial-coefficient index of codeword position @p pos: data
     * positions map to the high coefficients, parity positions to the
     * low ones (systematic layout over x^p * d(x) + q(x)).
     */
    std::size_t coefficientOf(std::size_t pos) const;

    /** Codeword position of coefficient @p coeff; nullopt when the
     *  coefficient lies outside the shortened code. */
    std::optional<std::size_t> positionOf(std::size_t coeff) const;

  private:
    /**
     * Berlekamp-Massey over the member syndrome scratch: fills
     * lambdaScratch_ with the error-locator polynomial. False when the
     * register length exceeds t (more than t errors signalled).
     */
    bool berlekampMassey() const;

    /**
     * Chien search over lambdaScratch_: fills rootsScratch_ with the
     * coefficient indices i < n where Lambda(alpha^-i) = 0. False when
     * the root count does not match deg Lambda (errors outside the
     * shortened range or a degenerate locator).
     */
    bool chienSearch() const;

    std::size_t k_;
    std::size_t t_;
    Gf2m field_;
    std::size_t parityBits_;
    std::uint64_t generator_;
    std::vector<std::uint64_t> parityMasks_;
    std::vector<gf2::BitVector> parityRows_;
    /** synAlpha_[c * 2t + j] = alpha^((j+1) * c) for coefficient c < n:
     *  the syndrome contribution of an error at coefficient c. */
    std::vector<Gf2m::Element> synAlpha_;
    /** chienXInv_[i] = alpha^(-i), the Chien evaluation points. */
    std::vector<Gf2m::Element> chienXInv_;

    // Decode scratch (see the thread-safety note in the file comment).
    mutable std::vector<Gf2m::Element> synScratch_;
    mutable std::vector<Gf2m::Element> lambdaScratch_;
    mutable std::vector<Gf2m::Element> bScratch_;
    mutable std::vector<Gf2m::Element> nextScratch_;
    mutable std::vector<std::size_t> rootsScratch_;
};

} // namespace harp::ecc

#endif // HARP_ECC_BCH_GENERAL_HH
