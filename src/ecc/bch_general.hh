/**
 * @file
 * General t-error-correcting shortened systematic binary BCH code with a
 * Berlekamp-Massey + Chien-search decoder.
 *
 * Complements the closed-form t=2 decoder (BchDecCode) for the paper's
 * "significantly more complex on-die ECC" discussion (HARP section
 * 6.3.2): the secondary-ECC strength a system needs scales with the
 * on-die code's correction capability, and this class provides the
 * arbitrary-t codes to study that scaling.
 */

#ifndef HARP_ECC_BCH_GENERAL_HH
#define HARP_ECC_BCH_GENERAL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/gf2m.hh"
#include "gf2/bit_vector.hh"

namespace harp::ecc {

/** Outcome of one general-BCH decode. */
struct BchGeneralDecodeResult
{
    /** Post-correction dataword d' (length k). */
    gf2::BitVector dataword;
    /** Codeword positions flipped by the decoder (<= t, sorted). */
    std::vector<std::size_t> correctedPositions;
    /** True when the syndromes were inconsistent with <= t in-range
     *  errors; no correction is applied. */
    bool detectedUncorrectable = false;
};

/**
 * Shortened systematic BCH code correcting up to @p t errors.
 */
class BchCode
{
  public:
    /**
     * @param k Dataword length.
     * @param t Correction capability (1 <= t <= 8). The field degree m
     *          is the smallest giving the shortened code room for the
     *          data plus the generator's parity bits.
     */
    BchCode(std::size_t k, std::size_t t);

    std::size_t k() const { return k_; }
    std::size_t p() const { return parityBits_; }
    std::size_t n() const { return k_ + parityBits_; }
    std::size_t t() const { return t_; }

    const Gf2m &field() const { return field_; }

    bool isDataPosition(std::size_t pos) const { return pos < k_; }

    /** Encode dataword (length k) into codeword (length n). */
    gf2::BitVector encode(const gf2::BitVector &dataword) const;

    /** Full decode: syndromes -> Berlekamp-Massey -> Chien search. */
    BchGeneralDecodeResult decode(const gf2::BitVector &codeword) const;

    /** Post-correction data error positions of a raw error pattern. */
    std::vector<std::size_t>
    decodeErrorPattern(const std::vector<std::size_t> &error_positions)
        const;

    /** Parity bit @p j as a linear function of the dataword. */
    const gf2::BitVector &parityRow(std::size_t j) const
    {
        return parityRows_[j];
    }

    /** Generator polynomial g(x) as a GF(2) bitmask. */
    std::uint64_t generatorPolynomial() const { return generator_; }

  private:
    std::size_t coefficientOf(std::size_t pos) const;
    std::optional<std::size_t> positionOf(std::size_t coeff) const;

    /**
     * Berlekamp-Massey: error-locator polynomial Lambda over GF(2^m)
     * from the 2t syndromes; nullopt when the register length exceeds t
     * (more than t errors).
     */
    std::optional<std::vector<Gf2m::Element>>
    berlekampMassey(const std::vector<Gf2m::Element> &syndromes) const;

    /**
     * Chien search: coefficient indices i < n with Lambda(alpha^-i) = 0.
     * nullopt when the root count does not match deg Lambda (errors
     * outside the shortened range or a degenerate locator).
     */
    std::optional<std::vector<std::size_t>>
    chienSearch(const std::vector<Gf2m::Element> &lambda) const;

    std::size_t k_;
    std::size_t t_;
    Gf2m field_;
    std::size_t parityBits_;
    std::uint64_t generator_;
    std::vector<std::uint64_t> parityMasks_;
    std::vector<gf2::BitVector> parityRows_;
};

} // namespace harp::ecc

#endif // HARP_ECC_BCH_GENERAL_HH
